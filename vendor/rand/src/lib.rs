//! Vendored shim for the subset of the `rand` 0.8 API this workspace uses:
//! `rngs::SmallRng`, `SeedableRng::{seed_from_u64, from_seed}`, and the
//! `Rng` extension methods `gen`, `gen_range` (half-open and inclusive
//! integer/float ranges), and `gen_bool`. The build environment has no
//! registry access, so the real crate cannot be fetched; this shim keeps
//! the same call-sites compiling unchanged.
//!
//! The generator behind `SmallRng` is xoshiro256++ seeded via SplitMix64 —
//! the same family upstream `SmallRng` uses on 64-bit targets — so the
//! statistical quality is adequate for workload generation and benchmarks.
//! Streams are NOT bit-for-bit identical to upstream; nothing in this
//! workspace depends on upstream's exact streams, only on determinism for
//! a fixed seed, which this shim provides.

#![deny(missing_docs)]

/// Low-level source of randomness: a stream of `u64`/`u32` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// RNGs that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for the shipped RNGs).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG by expanding a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty, matching upstream behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes (convenience alias).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the standard distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Rounding can land exactly on the excluded upper bound for
                // very narrow ranges; keep the half-open contract.
                if v >= self.end {
                    self.end.next_down()
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Uniform draw from `[0, span)` via Lemire's widening-multiply reduction
/// (`span = 0` means the full `u64` domain).
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic RNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(mut seed_word: u64) -> Self {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut seed_word);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (w, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                // All-zero state would be a fixed point; re-derive.
                return Self::from_state(0xBAD_5EED);
            }
            SmallRng { s }
        }

        fn seed_from_u64(seed: u64) -> Self {
            Self::from_state(seed)
        }
    }

    /// A "cryptographic-quality" RNG in upstream; here an alias stream of
    /// [`SmallRng`] with an independent type for API compatibility.
    #[derive(Clone, Debug)]
    pub struct StdRng(SmallRng);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            StdRng(SmallRng::from_seed(seed))
        }
    }
}

/// A convenience RNG seeded from the calling thread's id and a fixed
/// constant: every call on the same thread (and across runs) returns the
/// same stream, unlike upstream's entropy-seeded version. Reproducibility
/// is the point of this shim; callers wanting distinct streams should
/// seed [`rngs::SmallRng`] explicitly.
pub fn thread_rng() -> rngs::SmallRng {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::hash::DefaultHasher::new();
    std::thread::current().id().hash(&mut hasher);
    SeedableRng::seed_from_u64(hasher.finish() ^ 0x7461_7261_6E64_6F6D)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5i64..=15);
            assert!((5..=15).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn narrow_float_range_stays_half_open() {
        let mut rng = SmallRng::seed_from_u64(5);
        let lo = 1.0f64;
        let hi = 1.0000000000000002f64; // one ULP above lo
        for _ in 0..10_000 {
            let v = rng.gen_range(lo..hi);
            assert!(v >= lo && v < hi, "out of half-open range: {v}");
        }
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn thread_rng_is_stable_within_a_thread() {
        let mut a = super::thread_rng();
        let mut b = super::thread_rng();
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn covers_small_ranges_uniformly_enough() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!(c > 700, "bucket starved: {counts:?}");
        }
    }
}
