//! Vendored shim for the subset of the `proptest` API this workspace's
//! tests use: the [`Strategy`] trait with `prop_map`/`boxed`, range and
//! tuple strategies, `any::<T>()`, `collection::vec`, `prop_oneof!`, the
//! `proptest!` macro with `#![proptest_config(..)]`, `prop_assert!`/
//! `prop_assert_eq!`, and [`ProptestConfig::with_cases`]. The build
//! environment has no registry access, so the real crate cannot be
//! fetched.
//!
//! Differences from upstream, deliberate for a test shim:
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the panic message (every strategy value is `Debug`-printed) instead
//!   of a minimized counterexample.
//! * **Deterministic by default.** Cases derive from a fixed seed so CI
//!   runs are reproducible; set `PROPTEST_SEED` (u64) to explore a
//!   different stream. `PROPTEST_CASES` scales the case count for tests
//!   using the default config; an explicit `with_cases(n)` wins over the
//!   env var, matching upstream precedence.

#![deny(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG driving strategy generation.
pub type TestRng = SmallRng;

/// Default seed for deterministic runs (overridden by `PROPTEST_SEED`).
pub const DEFAULT_SEED: u64 = 0xBA4B_005E_ED01;

/// Builds the per-test RNG honouring the `PROPTEST_SEED` env var.
pub fn test_rng() -> TestRng {
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(DEFAULT_SEED);
    SmallRng::seed_from_u64(seed)
}

/// Runner configuration (the `cases` knob is the only one honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property. An explicit count wins
    /// over the `PROPTEST_CASES` env var, matching upstream precedence
    /// (the env var only feeds [`Default`]).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Cases to actually run.
    pub fn resolved_cases(&self) -> u32 {
        self.cases
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A generator of random values of an associated type.
///
/// Object-safe core (`generate`) plus `Sized`-gated combinators, so
/// `Box<dyn Strategy<Value = T>>` works for `prop_oneof!`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy mapping another strategy's output ([`Strategy::prop_map`]).
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy for [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical unconstrained strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Size specification for [`vec()`](fn@vec): a fixed size or a half-open /
    /// inclusive range of sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration module, mirroring upstream's layout.
pub mod test_runner {
    pub use super::ProptestConfig as Config;
}

/// The glob-import surface tests use (`use proptest::prelude::*`).
pub mod prelude {
    pub use super::collection;
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Uniform choice among strategy arms (unweighted form only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
/// Failing inputs are included in the panic message (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.resolved_cases();
                let mut rng = $crate::test_rng();
                for case in 0..cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    // Describe the case before the body (which may move the
                    // bindings) so a failure can still report its inputs.
                    let mut case_desc = String::new();
                    $(case_desc.push_str(&format!(
                        "  {} = {:?}\n",
                        stringify!($arg),
                        $arg
                    ));)*
                    let result = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {}/{} failed in `{}` with inputs:\n{}",
                            case + 1,
                            cases,
                            stringify!($name),
                            case_desc,
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn explicit_case_count_beats_env_var() {
        // No env mutation needed for the precedence half of the claim.
        assert_eq!(ProptestConfig::with_cases(1024).resolved_cases(), 1024);
        // The Default-reads-env half mutates process-global state: save and
        // restore the prior value so a harness-exported PROPTEST_CASES
        // survives this test. No sibling test in this binary reads the var;
        // any future one must coordinate with this block.
        let prev = std::env::var("PROPTEST_CASES").ok();
        std::env::set_var("PROPTEST_CASES", "7");
        assert_eq!(ProptestConfig::default().resolved_cases(), 7);
        assert_eq!(ProptestConfig::with_cases(1024).resolved_cases(), 1024);
        match prev {
            Some(v) => std::env::set_var("PROPTEST_CASES", v),
            None => std::env::remove_var("PROPTEST_CASES"),
        }
    }

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = super::test_rng();
        let s = (0u32..3, 0u64..4).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..1000 {
            assert!(s.generate(&mut rng) < 7);
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = super::test_rng();
        let s = prop_oneof![(0usize..1).prop_map(|_| 0u8), (0usize..1).prop_map(|_| 1u8)];
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = super::test_rng();
        let s = collection::vec(any::<bool>(), 1..4);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_runs(a in 0u64..10, b in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert_eq!(b as u8 <= 1, true);
        }
    }
}
