//! Vendored shim for the subset of the `criterion` API this workspace's
//! benches use: `Criterion::benchmark_group`, group knobs (`sample_size`,
//! `warm_up_time`, `measurement_time`), `bench_function` with `&str` or
//! [`BenchmarkId`] ids, `Bencher::{iter, iter_custom}`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros. The build environment
//! has no registry access, so the real crate cannot be fetched.
//!
//! Instead of criterion's statistical machinery this shim runs a
//! warm-up, then samples the closure for the configured measurement time
//! and reports mean ns/iter (plus min/max over samples) on stdout — enough
//! to compare protocols and catch gross regressions. `--bench`/`--test`
//! flags and name filters are accepted; `--test` runs each benchmark for
//! a single iteration. Note that with `harness = false` cargo does NOT
//! pass `--test` on its own — `cargo test --benches` runs the binaries
//! in full measurement mode unless you append `-- --test` (CI does).

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported from std.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How the harness was invoked (parsed from CLI args cargo passes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Full measurement run (`cargo bench`).
    Bench,
    /// Smoke run: one iteration per benchmark (`-- --test`).
    Test,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Bench;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => mode = Mode::Test,
                "--bench" => {}
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { mode, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mode = self.mode;
        let filter = self.filter.clone();
        run_one(
            &id.into().full(""),
            mode,
            &filter,
            10,
            Duration::from_millis(100),
            Duration::from_millis(500),
            f,
        );
        self
    }
}

/// A set of benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget for timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &id.into().full(&self.name),
            self.criterion.mode,
            &self.criterion.filter,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            f,
        );
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full(&self, group: &str) -> String {
        let mut s = String::new();
        if !group.is_empty() {
            s.push_str(group);
        }
        if !self.function.is_empty() {
            if !s.is_empty() {
                s.push('/');
            }
            s.push_str(&self.function);
        }
        if let Some(p) = &self.parameter {
            if !s.is_empty() {
                s.push('/');
            }
            s.push_str(p);
        }
        s
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, called `self.iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the closure time `iters` iterations itself and report the
    /// total duration (used for contended multi-thread sections).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

#[allow(clippy::too_many_arguments)]
fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    mode: Mode,
    filter: &Option<String>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    if mode == Mode::Test {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {name} ... ok (1 iter smoke)");
        return;
    }

    // Warm-up and iteration-count calibration: grow iters until one sample
    // costs ~1/sample_size of the measurement budget.
    let per_sample = measurement_time
        .checked_div(sample_size as u32)
        .unwrap_or(Duration::from_millis(10));
    let mut iters: u64 = 1;
    let warm_deadline = Instant::now() + warm_up_time;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= per_sample || Instant::now() >= warm_deadline {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    let deadline = Instant::now() + measurement_time;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples_ns.push(b.elapsed.as_nanos() as f64 / iters.max(1) as f64);
        if Instant::now() >= deadline {
            break;
        }
    }
    let n = samples_ns.len().max(1) as f64;
    let mean = samples_ns.iter().sum::<f64>() / n;
    let min = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples_ns.iter().copied().fold(0.0f64, f64::max);
    println!(
        "{name:<60} {mean:>12.1} ns/iter (min {min:.1}, max {max:.1}, {} samples x {iters} iters)",
        samples_ns.len()
    );
}

/// Groups benchmark functions under one runner function, mirroring
/// criterion's macro of the same name (simple `name, targets...` form).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::new("f", 3).full("g"), "g/f/3");
        assert_eq!(BenchmarkId::from("plain").full("g"), "g/plain");
        assert_eq!(BenchmarkId::from_parameter(9).full(""), "9");
    }

    #[test]
    fn bencher_iter_counts() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
    }

    #[test]
    fn iter_custom_records_reported_duration() {
        let mut b = Bencher {
            iters: 4,
            elapsed: Duration::ZERO,
        };
        b.iter_custom(|iters| Duration::from_nanos(iters * 10));
        assert_eq!(b.elapsed, Duration::from_nanos(40));
    }
}
