//! Litmus tests for the model checker: classic memory-model shapes with
//! known outcome sets, checking both that exploration *finds* every
//! reachable outcome (completeness at the bound) and that it never invents
//! an unreachable one (soundness).

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use interleave::sync::atomic::{AtomicU64, Ordering};
use interleave::{model, model_with, sync::fence, thread, Config};

/// Runs the two-thread store-buffering shape, with or without a `SeqCst`
/// fence between each thread's store and load, and collects every
/// `(r0, r1)` outcome reached.
fn sb_outcomes(with_fence: bool) -> (HashSet<(u64, u64)>, interleave::Report) {
    let outcomes: Arc<Mutex<HashSet<(u64, u64)>>> = Arc::new(Mutex::new(HashSet::new()));
    let o = Arc::clone(&outcomes);
    let report = model_with(
        Config {
            preemption_bound: None,
            ..Config::default()
        },
        move || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x0, y0) = (Arc::clone(&x), Arc::clone(&y));
            let t0 = thread::spawn(move || {
                x0.store(1, Ordering::Release);
                if with_fence {
                    fence(Ordering::SeqCst);
                }
                y0.load(Ordering::Acquire)
            });
            let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
            let t1 = thread::spawn(move || {
                y1.store(1, Ordering::Release);
                if with_fence {
                    fence(Ordering::SeqCst);
                }
                x1.load(Ordering::Acquire)
            });
            let r0 = t0.join().unwrap();
            let r1 = t1.join().unwrap();
            o.lock().unwrap().insert((r0, r1));
        },
    );
    (
        Arc::try_unwrap(outcomes).unwrap().into_inner().unwrap(),
        report,
    )
}

#[test]
fn store_buffering_without_fence_reaches_0_0() {
    let (outcomes, report) = sb_outcomes(false);
    assert!(report.complete, "exploration must exhaust the tree");
    // The TSO-only outcome: both stores parked in store buffers while both
    // loads read main memory. This is the reorder the commit clock's fence
    // exists to defeat — the model must be able to reach it.
    assert!(
        outcomes.contains(&(0, 0)),
        "store-buffering outcome not found: {outcomes:?}"
    );
    // SC outcomes are reachable too.
    assert!(outcomes.contains(&(0, 1)) || outcomes.contains(&(1, 0)));
}

#[test]
fn store_buffering_with_fence_excludes_0_0() {
    let (outcomes, report) = sb_outcomes(true);
    assert!(report.complete);
    // With both buffers drained before the loads, at least one thread sees
    // the other's store: (0,0) is impossible, exactly as on real hardware.
    assert!(
        !outcomes.contains(&(0, 0)),
        "fenced SB must never yield (0,0): {outcomes:?}"
    );
    assert!(outcomes.contains(&(1, 1)));
}

#[test]
fn rmws_are_atomic_under_every_schedule() {
    let report = model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::Relaxed), 4);
    });
    assert!(report.complete);
    // More than one schedule actually ran.
    assert!(
        report.iterations > 1,
        "only {} iterations",
        report.iterations
    );
}

#[test]
fn compare_exchange_observes_drained_memory() {
    // A CAS loop from two threads must serialize: exactly one wins each
    // value transition, under every interleaving.
    let report = model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..2)
            .map(|i| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    let mut cur = c.load(Ordering::Acquire);
                    loop {
                        match c.compare_exchange_weak(
                            cur,
                            cur + 10 + i,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => return,
                            Err(seen) => cur = seen,
                        }
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        let v = c.load(Ordering::Relaxed);
        // One thread moved 0 -> 10+i, the other stacked on top.
        assert!(v == 10 + 11 || v == 10 + 10 + 1 + 10, "unexpected {v}");
    });
    assert!(report.complete);
}

#[test]
fn failing_schedule_panics_out_of_model() {
    // A bug reachable only under a specific interleaving must surface as a
    // panic from model(): two increments done as load-then-store (not
    // RMW) can lose an update.
    let result = std::panic::catch_unwind(|| {
        model(|| {
            let c = Arc::new(AtomicU64::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        })
    });
    assert!(result.is_err(), "model failed to find the lost update");
}

#[test]
fn store_to_load_forwarding_sees_own_buffered_store() {
    let report = model(|| {
        let x = Arc::new(AtomicU64::new(7));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.store(9, Ordering::Release);
            // Buffered, but our own load must forward it.
            assert_eq!(x2.load(Ordering::Acquire), 9);
        });
        t.join().unwrap();
        // After the thread exits its buffer has drained.
        assert_eq!(x.load(Ordering::Acquire), 9);
    });
    assert!(report.complete);
}

#[test]
fn preemption_bound_zero_explores_only_forced_switches() {
    // With bound 0 a runnable thread is never preempted, so the two
    // writers run serially in either order: 2 schedules at most per
    // blocking structure, and the SB outcome (0,0) is unreachable (it
    // needs a mid-thread preemption).
    let outcomes: Arc<Mutex<HashSet<(u64, u64)>>> = Arc::new(Mutex::new(HashSet::new()));
    let o = Arc::clone(&outcomes);
    let report = model_with(
        Config {
            preemption_bound: Some(0),
            ..Config::default()
        },
        move || {
            let x = Arc::new(AtomicU64::new(0));
            let y = Arc::new(AtomicU64::new(0));
            let (x0, y0) = (Arc::clone(&x), Arc::clone(&y));
            let t0 = thread::spawn(move || {
                x0.store(1, Ordering::Release);
                y0.load(Ordering::Acquire)
            });
            let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
            let t1 = thread::spawn(move || {
                y1.store(1, Ordering::Release);
                x1.load(Ordering::Acquire)
            });
            let r0 = t0.join().unwrap();
            let r1 = t1.join().unwrap();
            o.lock().unwrap().insert((r0, r1));
        },
    );
    assert!(report.complete);
    let outcomes = outcomes.lock().unwrap();
    assert!(
        !outcomes.contains(&(0, 0)),
        "bound 0 reached a preemptive outcome"
    );
}

#[test]
fn iteration_cap_reports_incomplete() {
    let report = model_with(
        Config {
            preemption_bound: None,
            max_iterations: 2,
            ..Config::default()
        },
        || {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || {
                c2.fetch_add(1, Ordering::Relaxed);
                c2.fetch_add(1, Ordering::Relaxed);
            });
            c.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
        },
    );
    assert!(!report.complete);
    assert_eq!(report.iterations, 2);
}

#[test]
fn atomics_outside_model_fall_back_to_std() {
    let x = AtomicU64::new(3);
    assert_eq!(x.fetch_add(2, Ordering::SeqCst), 3);
    assert_eq!(x.load(Ordering::SeqCst), 5);
    assert_eq!(
        x.compare_exchange(5, 9, Ordering::SeqCst, Ordering::SeqCst),
        Ok(5)
    );
    fence(Ordering::SeqCst);
}
