//! Model replacements for `std::sync::atomic` and `std::sync::atomic::fence`.
//!
//! Each atomic constructed *inside* a model run (see [`crate::model`])
//! becomes a location in the model's shared memory, and every operation on
//! it is a scheduler yield point with TSO store-buffer semantics (see the
//! crate docs). Constructed outside a model run, the types transparently
//! delegate to the real `std::sync::atomic` primitives, so code compiled
//! against this module still behaves normally in ordinary tests.
//!
//! Approximations, all *behavior subsets* (they can hide schedules, never
//! invent them): `compare_exchange_weak` never fails spuriously, `SeqCst`
//! loads are plain loads (x86), and `Acquire`/`Release` fences are no-ops
//! (TSO provides their ordering already).

use std::sync::Arc;

use crate::{current, drain, schedule_point, Shared};

/// Model atomic integer types (plus the re-exported real
/// [`Ordering`](std::sync::atomic::Ordering)).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::*;

    enum Inner<R> {
        Real(R),
        Model { shared: Arc<Shared>, loc: usize },
    }

    macro_rules! model_atomic {
        ($name:ident, $ty:ty, $real:ty) => {
            /// Model version of the equivalently-named `std::sync::atomic`
            /// type. See the module docs for semantics.
            pub struct $name(Inner<$real>);

            impl $name {
                #[allow(clippy::cast_lossless)]
                fn to_u64(v: $ty) -> u64 {
                    v as u64
                }

                #[allow(clippy::cast_lossless, clippy::cast_possible_truncation)]
                fn from_u64(v: u64) -> $ty {
                    v as $ty
                }

                /// Creates the atomic: a model memory location inside a
                /// model run, a real atomic otherwise.
                pub fn new(v: $ty) -> Self {
                    match current() {
                        Some(ctx) => {
                            let loc = ctx.shared.lock().alloc_loc(Self::to_u64(v));
                            $name(Inner::Model {
                                shared: ctx.shared,
                                loc,
                            })
                        }
                        None => $name(Inner::Real(<$real>::new(v))),
                    }
                }

                pub fn load(&self, order: Ordering) -> $ty {
                    match &self.0 {
                        Inner::Real(a) => a.load(order),
                        Inner::Model { shared, loc } => {
                            let ctx = current().expect("model atomic used outside a model run");
                            debug_assert!(Arc::ptr_eq(shared, &ctx.shared));
                            let st = schedule_point(shared, ctx.tid);
                            Self::from_u64(st.read(ctx.tid, *loc))
                        }
                    }
                }

                pub fn store(&self, val: $ty, order: Ordering) {
                    match &self.0 {
                        Inner::Real(a) => a.store(val, order),
                        Inner::Model { shared, loc } => {
                            let ctx = current().expect("model atomic used outside a model run");
                            let mut st = schedule_point(shared, ctx.tid);
                            if order == Ordering::SeqCst {
                                // SeqCst stores drain and write through
                                // (x86: mov + mfence).
                                drain(&mut st, ctx.tid);
                                st.write_now(*loc, Self::to_u64(val));
                            } else {
                                st.buffer_store(ctx.tid, *loc, Self::to_u64(val));
                            }
                        }
                    }
                }

                /// All RMWs drain the store buffer and act on shared memory
                /// (x86: locked instructions are full barriers).
                fn rmw(&self, f: impl FnOnce($ty) -> $ty) -> $ty {
                    match &self.0 {
                        Inner::Real(_) => unreachable!("rmw dispatches per-op on Real"),
                        Inner::Model { shared, loc } => {
                            let ctx = current().expect("model atomic used outside a model run");
                            let mut st = schedule_point(shared, ctx.tid);
                            drain(&mut st, ctx.tid);
                            let old = Self::from_u64(st.read(ctx.tid, *loc));
                            st.write_now(*loc, Self::to_u64(f(old)));
                            old
                        }
                    }
                }

                pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                    match &self.0 {
                        Inner::Real(a) => a.fetch_add(val, order),
                        _ => self.rmw(|old| old.wrapping_add(val)),
                    }
                }

                pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                    match &self.0 {
                        Inner::Real(a) => a.fetch_sub(val, order),
                        _ => self.rmw(|old| old.wrapping_sub(val)),
                    }
                }

                pub fn fetch_max(&self, val: $ty, order: Ordering) -> $ty {
                    match &self.0 {
                        Inner::Real(a) => a.fetch_max(val, order),
                        _ => self.rmw(|old| old.max(val)),
                    }
                }

                pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                    match &self.0 {
                        Inner::Real(a) => a.swap(val, order),
                        _ => self.rmw(|_| val),
                    }
                }

                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    match &self.0 {
                        Inner::Real(a) => a.compare_exchange(current, new, success, failure),
                        Inner::Model { shared, loc } => {
                            let ctx = current_ctx();
                            let mut st = schedule_point(shared, ctx.tid);
                            // Failed CAS drains too: x86 lock cmpxchg is a
                            // full barrier either way.
                            drain(&mut st, ctx.tid);
                            let old = Self::from_u64(st.read(ctx.tid, *loc));
                            if old == current {
                                st.write_now(*loc, Self::to_u64(new));
                                Ok(old)
                            } else {
                                Err(old)
                            }
                        }
                    }
                }

                /// Never fails spuriously in the model (a strict behavior
                /// subset of the real weak CAS).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    match &self.0 {
                        Inner::Real(a) => a.compare_exchange_weak(current, new, success, failure),
                        _ => self.compare_exchange(current, new, success, failure),
                    }
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    // No load here: Debug must not be a yield point.
                    match &self.0 {
                        Inner::Real(_) => write!(f, concat!(stringify!($name), "(real)")),
                        Inner::Model { loc, .. } => {
                            write!(f, concat!(stringify!($name), "(model @{})"), loc)
                        }
                    }
                }
            }
        };
    }

    fn current_ctx() -> crate::Ctx {
        current().expect("model atomic used outside a model run")
    }

    model_atomic!(AtomicU8, u8, std::sync::atomic::AtomicU8);
    model_atomic!(AtomicU32, u32, std::sync::atomic::AtomicU32);
    model_atomic!(AtomicU64, u64, std::sync::atomic::AtomicU64);
    model_atomic!(AtomicUsize, usize, std::sync::atomic::AtomicUsize);
    model_atomic!(AtomicI64, i64, std::sync::atomic::AtomicI64);

    /// Model version of `std::sync::atomic::AtomicBool`.
    pub struct AtomicBool(Inner<std::sync::atomic::AtomicBool>);

    impl AtomicBool {
        pub fn new(v: bool) -> Self {
            match current() {
                Some(ctx) => {
                    let loc = ctx.shared.lock().alloc_loc(u64::from(v));
                    AtomicBool(Inner::Model {
                        shared: ctx.shared,
                        loc,
                    })
                }
                None => AtomicBool(Inner::Real(std::sync::atomic::AtomicBool::new(v))),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            match &self.0 {
                Inner::Real(a) => a.load(order),
                Inner::Model { shared, loc } => {
                    let ctx = current_ctx();
                    let st = schedule_point(shared, ctx.tid);
                    st.read(ctx.tid, *loc) != 0
                }
            }
        }

        pub fn store(&self, val: bool, order: Ordering) {
            match &self.0 {
                Inner::Real(a) => a.store(val, order),
                Inner::Model { shared, loc } => {
                    let ctx = current_ctx();
                    let mut st = schedule_point(shared, ctx.tid);
                    if order == Ordering::SeqCst {
                        drain(&mut st, ctx.tid);
                        st.write_now(*loc, u64::from(val));
                    } else {
                        st.buffer_store(ctx.tid, *loc, u64::from(val));
                    }
                }
            }
        }

        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            match &self.0 {
                Inner::Real(a) => a.swap(val, order),
                Inner::Model { shared, loc } => {
                    let ctx = current_ctx();
                    let mut st = schedule_point(shared, ctx.tid);
                    drain(&mut st, ctx.tid);
                    let old = st.read(ctx.tid, *loc) != 0;
                    st.write_now(*loc, u64::from(val));
                    old
                }
            }
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match &self.0 {
                Inner::Real(_) => write!(f, "AtomicBool(real)"),
                Inner::Model { loc, .. } => write!(f, "AtomicBool(model @{loc})"),
            }
        }
    }
}

/// Model version of `std::sync::atomic::fence`: inside a model run a
/// `SeqCst` fence drains the calling thread's store buffer (x86 `mfence`);
/// `Acquire`/`Release` fences are no-ops under TSO. Outside a model run it
/// is the real fence.
pub fn fence(order: atomic::Ordering) {
    match current() {
        Some(ctx) => {
            if order == atomic::Ordering::SeqCst {
                let mut st = schedule_point(&ctx.shared, ctx.tid);
                drain(&mut st, ctx.tid);
            }
        }
        None => std::sync::atomic::fence(order),
    }
}
