//! Model threads: real OS threads driven by the model scheduler.
//!
//! Must only be used inside a [`crate::model`] run. A spawned thread does
//! not start executing until a scheduling decision picks it; `join` is a
//! blocking yield point (the joiner leaves the runnable set until the
//! target exits).

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use crate::{
    block_point, current, exit_point, record_failure, register_thread, set_ctx, thread_finished,
    wait_until_active, Ctx, Shared,
};

type Payload = Box<dyn Any + Send + 'static>;

/// Handle to a model thread; `join` it before the model closure returns.
pub struct JoinHandle<T> {
    shared: Arc<Shared>,
    tid: usize,
    result: Arc<Mutex<Option<Result<T, Payload>>>>,
}

/// Spawns a model thread. Panics if called outside a model run.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let ctx = current().expect("interleave::thread::spawn outside a model run");
    let shared = ctx.shared;
    let tid = register_thread(&shared);
    let result: Arc<Mutex<Option<Result<T, Payload>>>> = Arc::new(Mutex::new(None));
    let real = {
        let shared = Arc::clone(&shared);
        let result = Arc::clone(&result);
        std::thread::spawn(move || {
            set_ctx(Ctx {
                shared: Arc::clone(&shared),
                tid,
            });
            wait_until_active(&shared, tid);
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(v) => {
                    // Publish the result before the Finished status a
                    // joiner checks.
                    *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v));
                    exit_point(&shared, tid);
                }
                Err(payload) => {
                    *result.lock().unwrap_or_else(|e| e.into_inner()) =
                        Some(Err(Box::new("model thread panicked") as Payload));
                    record_failure(&shared, tid, payload);
                }
            }
        })
    };
    shared
        .real
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(real);
    JoinHandle {
        shared,
        tid,
        result,
    }
}

impl<T> JoinHandle<T> {
    /// Waits (as a scheduling decision) until the thread exits, then
    /// returns its result — `Err` if it panicked, like `std`'s join.
    pub fn join(self) -> Result<T, Payload> {
        let ctx = current().expect("interleave join outside a model run");
        loop {
            {
                let mut st = self.shared.lock();
                if st.free_run {
                    drop(st);
                    // Scheduling is abandoned (a sibling failed): fall back
                    // to plain waiting so the iteration can unwind.
                    while !thread_finished(&self.shared, self.tid) {
                        std::thread::yield_now();
                    }
                    break;
                }
                if st.finished(self.tid) {
                    break;
                }
                st.block_on(ctx.tid, self.tid);
            }
            block_point(&self.shared, ctx.tid);
        }
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("model thread result already taken")
    }
}
