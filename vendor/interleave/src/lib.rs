//! A minimal deterministic concurrency model checker in the loom/shuttle
//! family, sized for this workspace's commit-pipeline invariants.
//!
//! [`model`] runs a closure over and over, each time forcing a different
//! thread interleaving, until every schedule reachable under the configured
//! preemption bound has been explored (or a panic — an assertion failure in
//! the closure — surfaces a buggy schedule, which then propagates out of
//! [`model`] so the enclosing test fails).
//!
//! # Execution model
//!
//! * Threads created with [`thread::spawn`] are real OS threads, but a
//!   scheduler serializes them: exactly one runs at a time, and control
//!   transfers only at *yield points* — every operation on a model atomic
//!   ([`sync::atomic`]), every [`sync::fence`]`(SeqCst)`, joins, and thread
//!   exit. Plain (non-atomic) code runs atomically between yield points,
//!   which is exactly the reduction loom applies: only operations on shared
//!   state order threads against each other.
//! * At each yield point the scheduler consults a DFS *choice tree*: the
//!   first run takes the first option everywhere, each subsequent run
//!   replays a recorded prefix and flips the deepest unexplored decision
//!   (backtracking). When the tree is exhausted, exploration is complete.
//! * **Preemption bounding** (CHESS-style): switching away from a thread
//!   that could have kept running costs one preemption from
//!   [`Config::preemption_bound`]; forced switches (the yielder blocked or
//!   exited) are free. Most real concurrency bugs need very few
//!   preemptions, so a small bound explores a tiny, high-yield slice of
//!   the schedule space — and `None` means exhaustive.
//!
//! # Memory model: TSO store buffers
//!
//! Sequentially-consistent interleaving exploration cannot reproduce the
//! store-buffering reorder that the commit clock's `SeqCst` fence exists to
//! defeat, so the model atomics implement a TSO (x86-style) memory model:
//!
//! * Plain stores (`Relaxed`/`Release`) enter the writing thread's FIFO
//!   store buffer and are invisible to other threads until drained.
//! * `SeqCst` stores, every read-modify-write (`fetch_add`,
//!   `compare_exchange`, ...), `fence(SeqCst)`, and thread exit drain the
//!   buffer to shared memory first.
//! * Loads forward from the newest buffered store to the same location
//!   (store-to-load forwarding), else read shared memory. `SeqCst` loads
//!   are plain loads, as on x86.
//! * `Acquire`/`Release` fences are no-ops (TSO already provides them).
//!
//! Buffers drain only at those points, never spontaneously — a *subset* of
//! TSO's behaviors (real hardware may flush earlier, which only makes
//! stores visible *sooner*). Exploring a subset can miss schedules but
//! never invents one, so a failure found here is a real TSO execution, and
//! the commit pipeline's documented race (db.rs module docs) is exactly a
//! delayed-flush scenario this model does reach.
//!
//! # Limitations
//!
//! Spin loops that wait on another thread without bounded progress will hit
//! [`Config::max_steps`] (the DFS keeps choosing the spinner); code under
//! test must be lock-free on the explored paths. Blocking locks are
//! invisible to the scheduler — safe only if no yield point occurs while
//! one is held (see CONCURRENCY.md at the workspace root).

pub mod sync;
pub mod thread;

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Exploration limits.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum voluntary preemptions per schedule (`None` = unbounded =
    /// exhaustive over all interleavings at every yield point).
    pub preemption_bound: Option<usize>,
    /// Give up (report `complete: false`) after this many schedules.
    pub max_iterations: usize,
    /// Fail the model if one schedule makes more than this many scheduling
    /// decisions (catches unbounded spin loops).
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: Some(2),
            max_iterations: 1_000_000,
            max_steps: 100_000,
        }
    }
}

/// What an exploration did.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub iterations: usize,
    /// True when the choice tree was exhausted (every schedule reachable
    /// under the preemption bound ran); false when `max_iterations` cut
    /// exploration short.
    pub complete: bool,
}

/// One recorded scheduling decision: the runnable options at that point
/// (yielder first when it was runnable) and which one the current schedule
/// takes.
struct Choice {
    options: Vec<usize>,
    index: usize,
    /// Whether the yielding thread could have kept running — taking
    /// `index > 0` then costs a preemption.
    yielder_runnable: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked,
    Finished,
}

enum Picked {
    Thread(usize),
    AllDone,
    Deadlock,
}

pub(crate) struct State {
    /// The one thread allowed to run (meaningless once `free_run`).
    active: usize,
    statuses: Vec<Status>,
    /// Per-thread list of threads blocked joining it.
    joiners: Vec<Vec<usize>>,
    /// Shared memory: location id → value (absent = 0).
    mem: HashMap<usize, u64>,
    /// Per-thread FIFO store buffers (TSO).
    buffers: Vec<Vec<(usize, u64)>>,
    next_loc: usize,
    /// The DFS schedule: replayed up to `depth`, extended past it.
    decisions: Vec<Choice>,
    depth: usize,
    preemptions: usize,
    steps: usize,
    preemption_bound: Option<usize>,
    max_steps: usize,
    /// Set on failure (or after main exits with stragglers): scheduling is
    /// abandoned and every thread runs freely so the iteration can unwind.
    free_run: bool,
    failed: Option<Box<dyn Any + Send>>,
}

pub(crate) struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    /// Real OS-thread handles, joined by the controller between iterations.
    real: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Shared {
    fn new(config: &Config, decisions: Vec<Choice>) -> Self {
        Shared {
            state: Mutex::new(State {
                active: 0,
                statuses: vec![Status::Runnable],
                joiners: vec![Vec::new()],
                mem: HashMap::new(),
                buffers: vec![Vec::new()],
                next_loc: 0,
                decisions,
                depth: 0,
                preemptions: 0,
                steps: 0,
                preemption_bound: config.preemption_bound,
                max_steps: config.max_steps,
                free_run: false,
                failed: None,
            }),
            cv: Condvar::new(),
            real: Mutex::new(Vec::new()),
        }
    }

    /// Locks the state, ignoring poisoning: a panicking model thread must
    /// not wedge its siblings (they free-run to completion instead).
    pub(crate) fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait<'a>(&self, st: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        self.cv.wait(st).unwrap_or_else(|e| e.into_inner())
    }

    /// Records a failure, releases every thread into free-run, and panics
    /// (the descriptive payload is what [`model`] re-raises).
    fn fail(&self, mut st: MutexGuard<'_, State>, msg: String) -> ! {
        if st.failed.is_none() {
            st.failed = Some(Box::new(msg.clone()));
        }
        st.free_run = true;
        self.cv.notify_all();
        drop(st);
        panic!("{msg}");
    }
}

/// Takes the next scheduling decision: replays the recorded choice at this
/// depth, or creates a new one (yielder-first, others admitted while the
/// preemption budget lasts).
fn pick(st: &mut State, tid: usize, yielder_runnable: bool) -> Picked {
    let i = st.depth;
    st.depth += 1;
    if i < st.decisions.len() {
        let c = &st.decisions[i];
        if c.yielder_runnable && c.index != 0 {
            st.preemptions += 1;
        }
        return Picked::Thread(c.options[c.index]);
    }
    let mut options = Vec::new();
    if yielder_runnable {
        options.push(tid);
    }
    let budget_open = st.preemption_bound.is_none_or(|b| st.preemptions < b);
    if !yielder_runnable || budget_open {
        options.extend(
            (0..st.statuses.len()).filter(|&t| t != tid && st.statuses[t] == Status::Runnable),
        );
    }
    if options.is_empty() {
        return if st.statuses.iter().all(|s| *s == Status::Finished) {
            Picked::AllDone
        } else {
            Picked::Deadlock
        };
    }
    let chosen = options[0];
    st.decisions.push(Choice {
        options,
        index: 0,
        yielder_runnable,
    });
    Picked::Thread(chosen)
}

/// Yield point before an atomic operation: decide who runs next, hand off
/// if it is someone else, and return the state lock once this thread is
/// active again (the caller performs its memory effect under the returned
/// guard, atomically with the decision).
pub(crate) fn schedule_point<'a>(shared: &'a Shared, tid: usize) -> MutexGuard<'a, State> {
    let mut st = shared.lock();
    if st.free_run {
        return st;
    }
    st.steps += 1;
    if st.steps > st.max_steps {
        let msg = format!(
            "interleave: schedule exceeded max_steps ({}) — unbounded spin loop under test?",
            st.max_steps
        );
        shared.fail(st, msg);
    }
    match pick(&mut st, tid, true) {
        Picked::Thread(next) if next != tid => {
            st.active = next;
            shared.cv.notify_all();
            loop {
                st = shared.wait(st);
                if st.free_run || st.active == tid {
                    break;
                }
            }
        }
        Picked::Thread(_) => {}
        // The yielder itself is runnable, so options can never be empty.
        Picked::AllDone | Picked::Deadlock => unreachable!("runnable yielder had no options"),
    }
    st
}

/// Yield point for a thread that just blocked (status already set by the
/// caller): always hands off, and returns once this thread is runnable and
/// scheduled again.
pub(crate) fn block_point(shared: &Shared, tid: usize) {
    let mut st = shared.lock();
    if st.free_run {
        return;
    }
    st.steps += 1;
    if st.steps > st.max_steps {
        let msg = format!("interleave: schedule exceeded max_steps ({})", st.max_steps);
        shared.fail(st, msg);
    }
    match pick(&mut st, tid, false) {
        Picked::Thread(next) => {
            st.active = next;
            shared.cv.notify_all();
            loop {
                st = shared.wait(st);
                if st.free_run || (st.active == tid && st.statuses[tid] == Status::Runnable) {
                    break;
                }
            }
        }
        Picked::AllDone => unreachable!("blocked thread outlives every other"),
        Picked::Deadlock => {
            let msg = "interleave: deadlock — every live thread is blocked".to_string();
            shared.fail(st, msg);
        }
    }
}

/// Final yield point of a thread: drain its store buffer, wake joiners,
/// and hand the schedule to a survivor without waiting.
pub(crate) fn exit_point(shared: &Shared, tid: usize) {
    // Pre-exit yield: the terminal buffer drain is a visible memory event
    // (it publishes this thread's last plain stores), so siblings must be
    // schedulable before it — otherwise the store-buffering window closes
    // artificially early and reachable TSO outcomes disappear.
    let mut st = schedule_point(shared, tid);
    drain(&mut st, tid);
    st.statuses[tid] = Status::Finished;
    let joiners = std::mem::take(&mut st.joiners[tid]);
    for j in joiners {
        st.statuses[j] = Status::Runnable;
    }
    if st.free_run {
        shared.cv.notify_all();
        return;
    }
    match pick(&mut st, tid, false) {
        Picked::Thread(next) => {
            st.active = next;
            shared.cv.notify_all();
        }
        Picked::AllDone => shared.cv.notify_all(),
        Picked::Deadlock => {
            let msg =
                "interleave: deadlock — exiting thread leaves only blocked threads".to_string();
            shared.fail(st, msg);
        }
    }
}

/// Called by a spawned thread before running its closure: its first slice
/// starts only once a decision schedules it.
pub(crate) fn wait_until_active(shared: &Shared, tid: usize) {
    let mut st = shared.lock();
    while !st.free_run && st.active != tid {
        st = shared.wait(st);
    }
}

/// Records a panic escaping a model thread and releases every sibling.
pub(crate) fn record_failure(shared: &Shared, tid: usize, payload: Box<dyn Any + Send>) {
    let mut st = shared.lock();
    if st.failed.is_none() {
        st.failed = Some(payload);
    }
    st.free_run = true;
    st.statuses[tid] = Status::Finished;
    let joiners = std::mem::take(&mut st.joiners[tid]);
    for j in joiners {
        st.statuses[j] = Status::Runnable;
    }
    shared.cv.notify_all();
}

// ---------------------------------------------------------------------
// State helpers used by the model atomics (sync.rs)
// ---------------------------------------------------------------------

/// Flushes `tid`'s store buffer to shared memory, oldest first.
pub(crate) fn drain(st: &mut State, tid: usize) {
    let buf = std::mem::take(&mut st.buffers[tid]);
    for (loc, val) in buf {
        st.mem.insert(loc, val);
    }
}

impl State {
    pub(crate) fn alloc_loc(&mut self, initial: u64) -> usize {
        let loc = self.next_loc;
        self.next_loc += 1;
        if initial != 0 {
            self.mem.insert(loc, initial);
        }
        loc
    }

    /// Load with store-to-load forwarding from `tid`'s own buffer.
    pub(crate) fn read(&self, tid: usize, loc: usize) -> u64 {
        self.buffers[tid]
            .iter()
            .rev()
            .find(|(l, _)| *l == loc)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| self.mem.get(&loc).copied().unwrap_or(0))
    }

    pub(crate) fn buffer_store(&mut self, tid: usize, loc: usize, val: u64) {
        self.buffers[tid].push((loc, val));
    }

    pub(crate) fn write_now(&mut self, loc: usize, val: u64) {
        self.mem.insert(loc, val);
    }

    pub(crate) fn finished(&self, tid: usize) -> bool {
        self.statuses[tid] == Status::Finished
    }

    /// Marks `joiner` blocked until `target` exits.
    pub(crate) fn block_on(&mut self, joiner: usize, target: usize) {
        self.statuses[joiner] = Status::Blocked;
        self.joiners[target].push(joiner);
    }
}

pub(crate) fn register_thread(shared: &Shared) -> usize {
    let mut st = shared.lock();
    st.statuses.push(Status::Runnable);
    st.joiners.push(Vec::new());
    st.buffers.push(Vec::new());
    st.statuses.len() - 1
}

pub(crate) fn thread_finished(shared: &Shared, tid: usize) -> bool {
    shared.lock().statuses[tid] == Status::Finished
}

// ---------------------------------------------------------------------
// Thread-local model context
// ---------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) shared: Arc<Shared>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(ctx: Ctx) {
    CTX.with(|c| *c.borrow_mut() = Some(ctx));
}

// ---------------------------------------------------------------------
// The exploration driver
// ---------------------------------------------------------------------

/// Moves the DFS cursor to the next unexplored schedule. Returns false when
/// the tree is exhausted.
fn advance(decisions: &mut Vec<Choice>) -> bool {
    while let Some(c) = decisions.last_mut() {
        c.index += 1;
        if c.index < c.options.len() {
            return true;
        }
        decisions.pop();
    }
    false
}

/// Explores every schedule of `f` under the default [`Config`]. Panics (in
/// the caller) with the failing schedule's panic if any schedule fails.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Config::default(), f)
}

/// [`model`] with explicit limits.
pub fn model_with<F>(config: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut decisions: Vec<Choice> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let shared = Arc::new(Shared::new(&config, std::mem::take(&mut decisions)));
        let main = {
            let shared = Arc::clone(&shared);
            let f = Arc::clone(&f);
            std::thread::spawn(move || {
                set_ctx(Ctx {
                    shared: Arc::clone(&shared),
                    tid: 0,
                });
                match catch_unwind(AssertUnwindSafe(|| f())) {
                    Ok(()) => exit_point(&shared, 0),
                    Err(payload) => record_failure(&shared, 0, payload),
                }
            })
        };
        // The wrappers catch everything, so these joins cannot fail.
        let _ = main.join();
        let handles = std::mem::take(&mut *shared.real.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
        let mut st = shared.lock();
        if let Some(payload) = st.failed.take() {
            drop(st);
            resume_unwind(payload);
        }
        decisions = std::mem::take(&mut st.decisions);
        drop(st);
        if !advance(&mut decisions) {
            return Report {
                iterations,
                complete: true,
            };
        }
        if iterations >= config.max_iterations {
            return Report {
                iterations,
                complete: false,
            };
        }
    }
}
