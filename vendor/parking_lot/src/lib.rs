//! Vendored, std-backed shim for the subset of the `parking_lot` API this
//! workspace uses: `Mutex`, `RwLock`, and `Condvar` with guard-based
//! `wait_for`. The build environment has no registry access, so the real
//! crate cannot be fetched; this shim keeps the same call-sites compiling
//! unchanged (no poisoning `Result`s, `lock()`/`read()`/`write()` return
//! guards directly) so the real crate can be dropped in later without any
//! source edits.
//!
//! Semantics notes:
//! * Poisoning is swallowed (`parking_lot` has no poisoning): a panic while
//!   holding a guard does not poison the lock for other threads.
//! * Fairness/eventual-fairness of the real crate is not reproduced; these
//!   wrappers inherit std's platform locking behaviour.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Shim-only diagnostics: a per-thread count of blocking lock
/// acquisitions (`Mutex::lock`, `RwLock::read`/`write`, and successful
/// `try_lock`s). `bamboo_core::sync::thread_lock_acquisitions` exposes it
/// so tests can assert that a code path acquired **zero** locks — the
/// executable form of the commit pipeline's lock-free claim.
///
/// The real `parking_lot` has no such module; the workspace only reaches
/// it through the `bamboo_core::sync` seam, which is the single place to
/// stub if the shim is ever swapped for the registry crate.
pub mod diag {
    use std::cell::Cell;

    thread_local! {
        static ACQUISITIONS: Cell<u64> = const { Cell::new(0) };
    }

    #[inline]
    pub(crate) fn bump() {
        ACQUISITIONS.with(|c| c.set(c.get() + 1));
    }

    /// Blocking lock acquisitions performed by the calling thread since it
    /// started. Condvar re-acquisitions after a wait are not counted (they
    /// happen inside std); every path asserted lock-free never parks.
    #[inline]
    pub fn thread_acquisitions() -> u64 {
        ACQUISITIONS.with(|c| c.get())
    }
}

/// A mutual exclusion primitive (no poisoning, guard returned directly).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        diag::bump();
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => {
                diag::bump();
                Some(MutexGuard { inner: Some(g) })
            }
            Err(std::sync::TryLockError::Poisoned(e)) => {
                diag::bump();
                Some(MutexGuard {
                    inner: Some(e.into_inner()),
                })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the data (no locking needed: `&mut self` is unique).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait_for`] can take it
/// out by `&mut` reference (the std condvar consumes and returns guards,
/// while the parking_lot API waits on `&mut MutexGuard`). The option is
/// `None` only transiently inside `wait_for`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock (no poisoning, guards returned directly).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new `RwLock` protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        diag::bump();
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        diag::bump();
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutably borrows the data (no locking needed: `&mut self` is unique).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable usable with [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing the guarded mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Blocks until notified or `timeout` elapses; returns whether the wait
    /// timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_notify_wakes_parked_thread() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait_for(&mut done, Duration::from_millis(50));
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
