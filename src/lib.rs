//! Umbrella crate: re-exports the Bamboo reproduction workspace for
//! integration tests and examples.
pub use bamboo_analysis as analysis;
pub use bamboo_core as core;
pub use bamboo_storage as storage;
pub use bamboo_workload as workload;
