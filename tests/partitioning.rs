//! End-to-end partitioning tests: router determinism at the storage layer,
//! cross-partition serializability (the bank-transfer invariant under all
//! five protocols), the zero-extra-locks guarantee of the single-partition
//! fast path, and the snapshot-scan visibility regression (a remote
//! partition's post-snapshot insert is a phantom to skip, never an abort).

use std::sync::Arc;
use std::time::Duration;

use bamboo_repro::core::partition::{PartSession, PartitionedDb};
use bamboo_repro::core::protocol::{
    Ic3Protocol, InteractiveProtocol, LockingProtocol, PieceAccess, PieceDecl, Protocol,
    SiloProtocol, TemplateDecl,
};
use bamboo_repro::core::sync::thread_lock_acquisitions;
use bamboo_repro::core::{Database, Session};
use bamboo_repro::storage::{
    DataType, PartitionId, RouteStrategy, Router, Row, Schema, TableId, Value,
};

/// Accounts per partition in the bank fixture.
const ACCOUNTS_PER_PART: u64 = 8;
/// Initial balance of every account.
const INITIAL: i64 = 1000;

fn kv_schema() -> Schema {
    Schema::build()
        .column("k", DataType::U64)
        .column("v", DataType::I64)
}

/// A bank of `parts * ACCOUNTS_PER_PART` accounts, range-partitioned so
/// account `a` lives on partition `a / ACCOUNTS_PER_PART`.
fn bank(parts: u32) -> (Arc<PartitionedDb>, TableId) {
    let bounds = (1..parts as u64).map(|i| i * ACCOUNTS_PER_PART).collect();
    let mut b = PartitionedDb::builder(parts);
    let t = b.add_table("accounts", kv_schema(), RouteStrategy::Range(bounds));
    let pdb = b.build();
    for a in 0..parts as u64 * ACCOUNTS_PER_PART {
        pdb.insert(t, a, Row::from(vec![Value::U64(a), Value::I64(INITIAL)]));
    }
    (pdb, t)
}

fn total_balance(pdb: &PartitionedDb, t: TableId) -> i64 {
    pdb.parts()
        .iter()
        .map(|p| {
            let table = p.db().table(t);
            (0..table.len() as u64)
                .map(|r| table.get_by_row_id(r).unwrap().read_row().get_i64(1))
                .sum::<i64>()
        })
        .sum()
}

/// The five-protocol roster of the acceptance criterion: Bamboo, WW, Silo,
/// IC3 and Interactive (Bamboo behind per-op RPC delays).
fn roster() -> Vec<(&'static str, Arc<dyn Protocol>)> {
    let template = TemplateDecl {
        name: "transfer".into(),
        pieces: vec![PieceDecl::new(vec![PieceAccess::write(
            TableId(0),
            u64::MAX,
            u64::MAX,
        )])],
    };
    vec![
        ("bamboo", Arc::new(LockingProtocol::bamboo())),
        ("wound_wait", Arc::new(LockingProtocol::wound_wait())),
        ("silo", Arc::new(SiloProtocol::new())),
        ("ic3", Arc::new(Ic3Protocol::new(vec![template], false))),
        (
            "interactive",
            Arc::new(InteractiveProtocol::new(
                LockingProtocol::bamboo(),
                Duration::from_micros(5),
            )),
        ),
    ]
}

/// Cross-partition serializability: concurrent transfers between accounts
/// on *different* partitions must conserve the total balance under every
/// protocol, and a concurrent snapshot reader must always see a balanced
/// total (one commit timestamp per cross-partition commit).
#[test]
fn cross_partition_bank_transfers_conserve_money_under_all_protocols() {
    for (name, proto) in roster() {
        let (pdb, t) = bank(2);
        let session = Arc::new(PartSession::new(Arc::clone(&pdb), Arc::clone(&proto)));
        let threads = 4;
        let per = 60;
        std::thread::scope(|s| {
            for w in 0..threads {
                let session = Arc::clone(&session);
                s.spawn(move || {
                    let mut rng = w as u64;
                    let mut next = move || {
                        // xorshift: cheap deterministic per-thread stream.
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
                        rng
                    };
                    let mut done = 0;
                    while done < per {
                        // `from` on partition 0, `to` on partition 1: every
                        // transfer is cross-partition by construction.
                        let from = next() % ACCOUNTS_PER_PART;
                        let to = ACCOUNTS_PER_PART + next() % ACCOUNTS_PER_PART;
                        let amount = (next() % 10) as i64 + 1;
                        let mut txn = session.begin_on(PartitionId(0));
                        let moved = txn
                            .update(t, from, |r| r.set(1, Value::I64(r.get_i64(1) - amount)))
                            .and_then(|_| {
                                txn.update(t, to, |r| r.set(1, Value::I64(r.get_i64(1) + amount)))
                            })
                            .and_then(|_| txn.commit());
                        if moved.is_ok() {
                            done += 1;
                        }
                    }
                });
            }
            // A snapshot reader riding along: every snapshot total must be
            // exactly balanced — a torn cross-partition commit would show.
            let session = Arc::clone(&session);
            let expected = 2 * ACCOUNTS_PER_PART as i64 * INITIAL;
            s.spawn(move || {
                for _ in 0..40 {
                    let mut snap = session.snapshot_on(PartitionId(1));
                    let mut sum = 0i64;
                    for a in 0..2 * ACCOUNTS_PER_PART {
                        sum += snap.read(t, a).unwrap().get_i64(1);
                    }
                    snap.commit().unwrap();
                    assert_eq!(sum, expected, "{name}: snapshot saw a torn transfer");
                }
            });
        });
        assert_eq!(
            total_balance(&pdb, t),
            2 * ACCOUNTS_PER_PART as i64 * INITIAL,
            "{name}: cross-partition transfers leaked money"
        );
        assert!(
            pdb.part(PartitionId(0)).wal().records() > 0
                && pdb.part(PartitionId(1)).wal().records() > 0,
            "{name}: cross-partition commits must log on both partitions"
        );
    }
}

/// The single-partition fast path takes **no more lock acquisitions** than
/// the identical transaction on a pre-refactor-style monolithic database —
/// measured with the vendored parking_lot shim's per-thread lock counter
/// over the whole begin→read→update→commit cycle (tuple latches, WAL lock,
/// everything).
#[test]
fn single_partition_fast_path_takes_no_extra_locks() {
    let ops = |session: &Session, t: TableId, base: u64| {
        // Steady-state: warm up, then measure 32 identical transactions.
        let run = |session: &Session| {
            let mut txn = session.begin();
            let v = txn.read(t, base).unwrap().get_i64(1);
            txn.update(t, base + 1, |r| r.set(1, Value::I64(v + 1)))
                .unwrap();
            txn.update(t, base + 2, |r| r.set(1, Value::I64(v + 2)))
                .unwrap();
            txn.commit().unwrap();
        };
        for _ in 0..4 {
            run(session);
        }
        let before = thread_lock_acquisitions();
        for _ in 0..32 {
            run(session);
        }
        thread_lock_acquisitions() - before
    };

    // Monolithic baseline.
    let mut b = Database::builder();
    let t = b.add_table("accounts", kv_schema());
    let mono = b.build();
    for a in 0..ACCOUNTS_PER_PART {
        mono.table(t)
            .insert(a, Row::from(vec![Value::U64(a), Value::I64(0)]));
    }
    let mono_session = Session::new(mono, Arc::new(LockingProtocol::bamboo()));
    let mono_locks = ops(&mono_session, t, 0);

    // 4-partition database, transaction confined to partition 2's keys.
    let (pdb, t) = bank(4);
    let psession = PartSession::new(Arc::clone(&pdb), Arc::new(LockingProtocol::bamboo()));
    let home = PartitionId(2);
    let part_locks = ops(psession.session(home), t, 2 * ACCOUNTS_PER_PART);

    assert!(
        part_locks <= mono_locks,
        "partition-local fast path took {part_locks} lock acquisitions vs \
         {mono_locks} on the monolithic baseline"
    );
}

/// Satellite regression: a cross-partition snapshot scan must honor
/// `SnapshotNotVisible` exactly like single-key reads — a row inserted
/// *after* the snapshot, on a remote partition, is skipped as a phantom
/// (`read_opt` returns `Ok(None)`, `scan` omits it); it must never abort
/// the scan.
#[test]
fn cross_partition_snapshot_scan_skips_post_snapshot_inserts() {
    // Sparse ranges so both partitions have room for new keys: partition 0
    // owns [0, 1000), partition 1 owns the rest.
    let mut b = PartitionedDb::builder(2);
    let t = b.add_table("accounts", kv_schema(), RouteStrategy::Range(vec![1000]));
    let pdb = b.build();
    for a in (0..8u64).chain(1000..1008) {
        pdb.insert(t, a, Row::from(vec![Value::U64(a), Value::I64(INITIAL)]));
    }
    pdb.enable_ordered_index(t);
    let session = PartSession::new(Arc::clone(&pdb), Arc::new(LockingProtocol::bamboo()));

    // Take the snapshot first (homed on partition 0).
    let mut snap = session.snapshot_on(PartitionId(0));
    // Then commit one insert into each partition's range — from a session
    // homed on partition 1, so the partition-0 insert is itself a
    // cross-partition commit.
    let local_key = 500; // partition 0 (the snapshot's home)
    let remote_key = 2000; // partition 1 (remote from the snapshot's home)
    for key in [local_key, remote_key] {
        let mut w = session.begin_on(PartitionId(1));
        w.insert(
            t,
            key,
            Row::from(vec![Value::U64(key), Value::I64(1)]),
            None,
        )
        .unwrap();
        w.commit().unwrap();
    }

    // The scan spans both partitions and must silently skip both phantoms.
    let rows = snap.scan(t, 0..=u64::MAX).unwrap();
    assert_eq!(
        rows.len(),
        16,
        "snapshot scan must see exactly the pre-snapshot rows"
    );
    // Single-key reads agree: Ok(None) through read_opt, not an abort.
    assert!(snap.read_opt(t, local_key).unwrap().is_none());
    assert!(snap.read_opt(t, remote_key).unwrap().is_none());
    snap.commit().unwrap();

    // A fresh snapshot sees the inserts.
    let mut snap = session.snapshot_on(PartitionId(0));
    assert_eq!(snap.scan(t, 0..=u64::MAX).unwrap().len(), 18);
    snap.commit().unwrap();
}

/// Router sanity at the integration level: the same `(table, key)` routes
/// identically from every partition's viewpoint (except replicated
/// tables, which resolve locally) — the property the WAL-ordering
/// contract depends on.
#[test]
fn routing_is_viewpoint_independent_for_owned_tables() {
    let r = Router::new(4, RouteStrategy::Hash)
        .with_table(TableId(1), RouteStrategy::Range(vec![10, 20, 30]))
        .with_table(TableId(2), RouteStrategy::Replicated);
    for key in 0..64u64 {
        let owned = r.route(TableId(1), key);
        for p in 0..4 {
            assert_eq!(r.route_from(PartitionId(p), TableId(1), key), owned);
            assert_eq!(
                r.route_from(PartitionId(p), TableId(2), key),
                PartitionId(p),
                "replicated tables resolve to the asking partition"
            );
        }
    }
}
