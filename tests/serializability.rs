//! Cross-protocol serializability tests: invariants that hold under any
//! serializable execution, exercised with real concurrency.

use std::sync::Arc;
use std::time::Duration;

use bamboo_repro::core::executor::{run_bench, BenchConfig, TxnSpec, Workload};
use bamboo_repro::core::protocol::{LockingProtocol, Protocol, SiloProtocol};
use bamboo_repro::core::{Abort, Database, Session, Txn};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};
use rand::rngs::SmallRng;
use rand::Rng;

const N_ACCOUNTS: u64 = 64;
const INITIAL: i64 = 100;

fn load() -> (Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "acct",
        Schema::build()
            .column("id", DataType::U64)
            .column("bal", DataType::I64),
    );
    let db = b.build();
    for id in 0..N_ACCOUNTS {
        db.table(t)
            .insert(id, Row::from(vec![Value::U64(id), Value::I64(INITIAL)]));
    }
    (db, t)
}

/// Moves money between two accounts plus a fee into the hot account 0.
struct Transfer {
    table: TableId,
    from: u64,
    to: u64,
    amount: i64,
}

impl TxnSpec for Transfer {
    fn planned_ops(&self) -> Option<usize> {
        Some(3)
    }

    fn run_piece(&self, _piece: usize, txn: &mut Txn<'_>) -> Result<(), Abort> {
        let amount = self.amount;
        txn.update(self.table, 0, |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v + 1));
        })?;
        txn.update(self.table, self.from, |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v - amount - 1));
        })?;
        txn.update(self.table, self.to, |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v + amount));
        })?;
        Ok(())
    }
}

struct TransferWl {
    table: TableId,
}

impl Workload for TransferWl {
    fn name(&self) -> &str {
        "transfer"
    }

    fn generate(&self, _w: usize, rng: &mut SmallRng) -> Box<dyn TxnSpec> {
        let from = rng.gen_range(1..N_ACCOUNTS);
        let mut to = rng.gen_range(1..N_ACCOUNTS - 1);
        if to >= from {
            to += 1;
        }
        Box::new(Transfer {
            table: self.table,
            from,
            to,
            amount: rng.gen_range(1..10),
        })
    }
}

fn total(db: &Database, t: TableId) -> i64 {
    (0..N_ACCOUNTS)
        .map(|id| db.table(t).get(id).unwrap().read_row().get_i64(1))
        .sum()
}

fn protocols() -> Vec<Arc<dyn Protocol>> {
    vec![
        Arc::new(LockingProtocol::bamboo()),
        Arc::new(LockingProtocol::bamboo_base()),
        Arc::new(LockingProtocol::wound_wait()),
        Arc::new(LockingProtocol::wait_die()),
        Arc::new(LockingProtocol::no_wait()),
        Arc::new(SiloProtocol::new()),
    ]
}

#[test]
fn money_conservation_under_heavy_hotspot_contention() {
    for proto in protocols() {
        let (db, t) = load();
        let wl: Arc<dyn Workload> = Arc::new(TransferWl { table: t });
        let res = run_bench(
            &db,
            &proto,
            &wl,
            &BenchConfig::quick(4)
                .with_duration(Duration::from_millis(300))
                .with_warmup(Duration::from_millis(30))
                .with_seed(17),
        );
        assert!(res.totals.commits > 0, "{} made no progress", res.protocol);
        // Conservation: fees (+1 per commit into account 0) are balanced by
        // the −1 on `from`, so total stays fixed.
        assert_eq!(
            total(&db, t),
            N_ACCOUNTS as i64 * INITIAL,
            "{} violated conservation",
            res.protocol
        );
        // Fee counter equals at least measured commits (warmup commits
        // also counted): checks lost-update freedom on the hotspot.
        let fees = db.table(t).get(0).unwrap().read_row().get_i64(1) - INITIAL;
        assert!(
            fees >= res.totals.commits as i64,
            "{}: fee counter {fees} < commits {}",
            res.protocol,
            res.totals.commits
        );
    }
}

#[test]
fn read_your_own_writes_and_repeatable_reads() {
    for proto in protocols() {
        let (db, t) = load();
        let session = Session::new(Arc::clone(&db), Arc::clone(&proto));
        let mut txn = session.begin();
        let first = txn.read(t, 5).unwrap().get_i64(1);
        txn.update(t, 5, |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v * 2));
        })
        .unwrap();
        let second = txn.read(t, 5).unwrap().get_i64(1);
        assert_eq!(second, first * 2, "{} broke read-your-writes", proto.name());
        // Re-reading an untouched key yields the same value (local copy).
        let a = txn.read(t, 7).unwrap().get_i64(1);
        let b = txn.read(t, 7).unwrap().get_i64(1);
        assert_eq!(a, b);
        txn.commit().unwrap();
    }
}

#[test]
fn bamboo_dirty_reads_never_surface_aborted_data_to_committers() {
    // W writes 999 and retires; R reads it; W aborts. R must not commit.
    let (db, t) = load();
    let session = Session::new(
        Arc::clone(&db),
        Arc::new(LockingProtocol::bamboo_base()) as Arc<dyn Protocol>,
    );
    for _ in 0..50 {
        let mut w = session.begin();
        w.update(t, 3, |row| row.set(1, Value::I64(999))).unwrap();
        let mut r = session.begin();
        let seen = r.read(t, 3).unwrap().get_i64(1);
        assert_eq!(seen, 999, "dirty read must be visible");
        w.abort();
        assert!(
            r.commit().is_err(),
            "reader of aborted dirty data must not commit"
        );
        assert_eq!(
            db.table(t).get(3).unwrap().read_row().get_i64(1),
            INITIAL,
            "aborted write leaked into the committed image"
        );
    }
}

#[test]
fn commit_point_order_follows_dependency_order() {
    // Writers pipeline through retire; their installs must respect the
    // version order — final value equals the last committer's.
    let (db, t) = load();
    let session = Session::new(
        Arc::clone(&db),
        Arc::new(LockingProtocol::bamboo_base()) as Arc<dyn Protocol>,
    );
    let mut txns = Vec::new();
    for _ in 0..8 {
        let mut c = session.begin();
        c.update(t, 9, |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v + 1));
        })
        .unwrap();
        txns.push(c);
    }
    // All eight stacked dirty versions: every writer except the head holds
    // exactly one pending dependency on this tuple.
    for (i, c) in txns.iter().enumerate() {
        assert_eq!(
            c.shared().semaphore(),
            i64::from(i > 0),
            "writer {i} must depend exactly on its predecessor chain"
        );
    }
    for c in txns {
        c.commit().unwrap();
    }
    assert_eq!(
        db.table(t).get(9).unwrap().read_row().get_i64(1),
        INITIAL + 8
    );
}

#[test]
fn wound_wait_prioritizes_older_transactions() {
    let (db, t) = load();
    let session = Session::new(
        Arc::clone(&db),
        Arc::new(LockingProtocol::wound_wait()) as Arc<dyn Protocol>,
    );
    let old = session.begin();
    let mut young = session.begin();
    // Young takes the lock first.
    young.update(t, 2, |row| row.set(1, Value::I64(1))).unwrap();
    // Old requests it: young must be wounded.
    std::thread::scope(|s| {
        let h = s.spawn(move || {
            let mut old = old;
            old.update(t, 2, |row| row.set(1, Value::I64(2))).unwrap();
            old.commit().unwrap();
        });
        // Give the old transaction time to wound.
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            young.shared().is_aborted(),
            "younger holder must be wounded"
        );
        young.abort();
        h.join().unwrap();
    });
    assert_eq!(db.table(t).get(2).unwrap().read_row().get_i64(1), 2);
}
