//! Cross-protocol serializability tests: invariants that hold under any
//! serializable execution, exercised with real concurrency.

use std::sync::Arc;
use std::time::Duration;

use bamboo_repro::core::executor::{run_bench, BenchConfig, TxnSpec, Workload};
use bamboo_repro::core::protocol::{LockingProtocol, Protocol, SiloProtocol};
use bamboo_repro::core::wal::WalBuffer;
use bamboo_repro::core::{Abort, Database, TxnCtx};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};
use rand::rngs::SmallRng;
use rand::Rng;

const N_ACCOUNTS: u64 = 64;
const INITIAL: i64 = 100;

fn load() -> (Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "acct",
        Schema::build()
            .column("id", DataType::U64)
            .column("bal", DataType::I64),
    );
    let db = b.build();
    for id in 0..N_ACCOUNTS {
        db.table(t)
            .insert(id, Row::from(vec![Value::U64(id), Value::I64(INITIAL)]));
    }
    (db, t)
}

/// Moves money between two accounts plus a fee into the hot account 0.
struct Transfer {
    table: TableId,
    from: u64,
    to: u64,
    amount: i64,
}

impl TxnSpec for Transfer {
    fn planned_ops(&self) -> Option<usize> {
        Some(3)
    }

    fn run_piece(
        &self,
        _piece: usize,
        db: &Database,
        proto: &dyn Protocol,
        ctx: &mut TxnCtx,
    ) -> Result<(), Abort> {
        let amount = self.amount;
        proto.update(db, ctx, self.table, 0, &mut |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v + 1));
        })?;
        proto.update(db, ctx, self.table, self.from, &mut |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v - amount - 1));
        })?;
        proto.update(db, ctx, self.table, self.to, &mut |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v + amount));
        })?;
        Ok(())
    }
}

struct TransferWl {
    table: TableId,
}

impl Workload for TransferWl {
    fn name(&self) -> &str {
        "transfer"
    }

    fn generate(&self, _w: usize, rng: &mut SmallRng) -> Box<dyn TxnSpec> {
        let from = rng.gen_range(1..N_ACCOUNTS);
        let mut to = rng.gen_range(1..N_ACCOUNTS - 1);
        if to >= from {
            to += 1;
        }
        Box::new(Transfer {
            table: self.table,
            from,
            to,
            amount: rng.gen_range(1..10),
        })
    }
}

fn total(db: &Database, t: TableId) -> i64 {
    (0..N_ACCOUNTS)
        .map(|id| db.table(t).get(id).unwrap().read_row().get_i64(1))
        .sum()
}

fn protocols() -> Vec<Arc<dyn Protocol>> {
    vec![
        Arc::new(LockingProtocol::bamboo()),
        Arc::new(LockingProtocol::bamboo_base()),
        Arc::new(LockingProtocol::wound_wait()),
        Arc::new(LockingProtocol::wait_die()),
        Arc::new(LockingProtocol::no_wait()),
        Arc::new(SiloProtocol::new()),
    ]
}

#[test]
fn money_conservation_under_heavy_hotspot_contention() {
    for proto in protocols() {
        let (db, t) = load();
        let wl: Arc<dyn Workload> = Arc::new(TransferWl { table: t });
        let res = run_bench(
            &db,
            &proto,
            &wl,
            &BenchConfig {
                threads: 4,
                duration: Duration::from_millis(300),
                warmup: Duration::from_millis(30),
                seed: 17,
            },
        );
        assert!(res.totals.commits > 0, "{} made no progress", res.protocol);
        // Conservation: fees (+1 per commit into account 0) are balanced by
        // the −1 on `from`, so total stays fixed.
        assert_eq!(
            total(&db, t),
            N_ACCOUNTS as i64 * INITIAL,
            "{} violated conservation",
            res.protocol
        );
        // Fee counter equals at least measured commits (warmup commits
        // also counted): checks lost-update freedom on the hotspot.
        let fees = db.table(t).get(0).unwrap().read_row().get_i64(1) - INITIAL;
        assert!(
            fees >= res.totals.commits as i64,
            "{}: fee counter {fees} < commits {}",
            res.protocol,
            res.totals.commits
        );
    }
}

#[test]
fn read_your_own_writes_and_repeatable_reads() {
    for proto in protocols() {
        let (db, t) = load();
        let mut wal = WalBuffer::for_tests();
        let mut ctx = proto.begin(&db);
        let first = proto.read(&db, &mut ctx, t, 5).unwrap().get_i64(1);
        proto
            .update(&db, &mut ctx, t, 5, &mut |row| {
                let v = row.get_i64(1);
                row.set(1, Value::I64(v * 2));
            })
            .unwrap();
        let second = proto.read(&db, &mut ctx, t, 5).unwrap().get_i64(1);
        assert_eq!(second, first * 2, "{} broke read-your-writes", proto.name());
        // Re-reading an untouched key yields the same value (local copy).
        let a = proto.read(&db, &mut ctx, t, 7).unwrap().get_i64(1);
        let b = proto.read(&db, &mut ctx, t, 7).unwrap().get_i64(1);
        assert_eq!(a, b);
        proto.commit(&db, &mut ctx, &mut wal).unwrap();
    }
}

#[test]
fn bamboo_dirty_reads_never_surface_aborted_data_to_committers() {
    // W writes 999 and retires; R reads it; W aborts. R must not commit.
    let (db, t) = load();
    let proto = LockingProtocol::bamboo_base();
    let mut wal = WalBuffer::for_tests();
    for _ in 0..50 {
        let mut w = proto.begin(&db);
        proto
            .update(&db, &mut w, t, 3, &mut |row| row.set(1, Value::I64(999)))
            .unwrap();
        let mut r = proto.begin(&db);
        let seen = proto.read(&db, &mut r, t, 3).unwrap().get_i64(1);
        assert_eq!(seen, 999, "dirty read must be visible");
        proto.abort(&db, &mut w);
        assert!(
            proto.commit(&db, &mut r, &mut wal).is_err(),
            "reader of aborted dirty data must not commit"
        );
        proto.abort(&db, &mut r);
        assert_eq!(
            db.table(t).get(3).unwrap().read_row().get_i64(1),
            INITIAL,
            "aborted write leaked into the committed image"
        );
    }
}

#[test]
fn commit_point_order_follows_dependency_order() {
    // Writers pipeline through retire; their installs must respect the
    // version order — final value equals the last committer's.
    let (db, t) = load();
    let proto = LockingProtocol::bamboo_base();
    let mut wal = WalBuffer::for_tests();
    let mut ctxs = Vec::new();
    for _ in 0..8 {
        let mut c = proto.begin(&db);
        proto
            .update(&db, &mut c, t, 9, &mut |row| {
                let v = row.get_i64(1);
                row.set(1, Value::I64(v + 1));
            })
            .unwrap();
        ctxs.push(c);
    }
    // All eight stacked dirty versions: every writer except the head holds
    // exactly one pending dependency on this tuple.
    for (i, c) in ctxs.iter().enumerate() {
        assert_eq!(
            c.shared.semaphore(),
            i64::from(i > 0),
            "writer {i} must depend exactly on its predecessor chain"
        );
    }
    for mut c in ctxs {
        proto.commit(&db, &mut c, &mut wal).unwrap();
    }
    assert_eq!(
        db.table(t).get(9).unwrap().read_row().get_i64(1),
        INITIAL + 8
    );
}

#[test]
fn wound_wait_prioritizes_older_transactions() {
    let (db, t) = load();
    let proto = LockingProtocol::wound_wait();
    let old = proto.begin(&db);
    let mut young = proto.begin(&db);
    // Young takes the lock first.
    proto
        .update(&db, &mut young, t, 2, &mut |row| row.set(1, Value::I64(1)))
        .unwrap();
    // Old requests it: young must be wounded.
    let mut old = old;
    let db2 = Arc::clone(&db);
    let proto2 = proto.clone();
    let h = std::thread::spawn(move || {
        let mut wal = WalBuffer::for_tests();
        proto2
            .update(&db2, &mut old, t, 2, &mut |row| row.set(1, Value::I64(2)))
            .unwrap();
        proto2.commit(&db2, &mut old, &mut wal).unwrap();
    });
    // Give the old transaction time to wound.
    std::thread::sleep(Duration::from_millis(50));
    assert!(young.shared.is_aborted(), "younger holder must be wounded");
    proto.abort(&db, &mut young);
    h.join().unwrap();
    assert_eq!(db.table(t).get(2).unwrap().read_row().get_i64(1), 2);
}
