//! Stress and property coverage for the lock-free commit pipeline: the
//! commit clock (atomic `next` + finished-slot ring + cached stable
//! point), the sharded epoch-bin snapshot registry, and the "snapshot too
//! old" lag cap.
//!
//! The lock-free claim is asserted *executably*: the vendored
//! `parking_lot` shim counts every blocking lock acquisition per thread
//! (`bamboo_core::sync::thread_lock_acquisitions`), and the steady-state
//! hot paths must show a delta of exactly zero.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bamboo_repro::core::protocol::{LockingProtocol, Protocol, SiloProtocol};
use bamboo_repro::core::sync::thread_lock_acquisitions;
use bamboo_repro::core::txn::{Abort, AbortReason};
use bamboo_repro::core::{Database, Session, TxnOptions};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};
use proptest::prelude::*;

fn kv_db(keys: u64) -> (Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "kv",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
    );
    let db = b.build();
    for k in 0..keys {
        db.table(t)
            .insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
    }
    (db, t)
}

/// Multi-writer stress: `stable()` must be monotonic and must never cover
/// a commit whose installs have not finished. Writers model the install
/// phase by raising a per-timestamp flag *before* calling `finish`; a
/// checker thread verifies every timestamp newly covered by the stable
/// point has its flag up.
#[test]
fn stable_is_monotonic_and_never_covers_unfinished_commits() {
    const WRITERS: usize = 4;
    const OPS: u64 = 20_000;
    const TOTAL: u64 = WRITERS as u64 * OPS;

    let db = Database::builder().build();
    let installed: Vec<AtomicBool> = (0..=TOTAL).map(|_| AtomicBool::new(false)).collect();

    std::thread::scope(|s| {
        for _ in 0..WRITERS {
            let db = &db;
            let installed = &installed;
            s.spawn(move || {
                for _ in 0..OPS {
                    let ts = db.commit_clock.allocate();
                    // "Install phase": visible strictly before finish.
                    installed[ts as usize].store(true, Ordering::Release);
                    db.commit_clock.finish(ts);
                }
            });
        }
        s.spawn(|| {
            let mut last = 0u64;
            loop {
                let stable = db.commit_clock.stable();
                assert!(stable >= last, "stable went backwards: {last} -> {stable}");
                // Each timestamp is checked exactly once, when the stable
                // point first covers it.
                for ts in last + 1..=stable {
                    assert!(
                        installed[ts as usize].load(Ordering::Acquire),
                        "stable {stable} covers unfinished commit {ts}"
                    );
                }
                last = stable;
                if stable == TOTAL {
                    return;
                }
                std::hint::spin_loop();
            }
        });
    });
    assert_eq!(db.commit_clock.stable(), TOTAL);
}

/// The acceptance check for the tentpole: `allocate`/`finish`/`stable`
/// and snapshot register/release/publish perform **zero** Mutex/RwLock
/// acquisitions in steady state, measured by the shim's lock counter.
#[test]
fn clock_and_registry_steady_state_acquires_zero_locks() {
    let db = Database::builder().build();
    // Reach steady state: first use initializes the thread's registry
    // shard and warms the watermark.
    for _ in 0..8 {
        let ts = db.commit_clock.allocate();
        db.commit_clock.finish(ts);
        let g = db.register_snapshot();
        db.release_snapshot(g);
    }

    let before = thread_lock_acquisitions();
    for _ in 0..1_000 {
        let ts = db.commit_clock.allocate();
        let _ = db.commit_clock.stable();
        db.commit_clock.finish(ts);
        let g = db.register_snapshot();
        let _ = db.gc_watermark();
        db.release_snapshot(g);
        db.publish_watermark();
    }
    assert_eq!(
        thread_lock_acquisitions() - before,
        0,
        "commit clock / snapshot registry hot path acquired a lock"
    );
}

/// The snapshot *session* fast path end to end: in steady state,
/// `Session::snapshot()` + `commit()` must execute without a single mutex
/// acquisition under every protocol family (atomic loads plus one shard
/// refcount CAS only).
#[test]
fn session_snapshot_fast_path_acquires_zero_mutexes() {
    let (db, _t) = kv_db(4);
    let protocols: Vec<Arc<dyn Protocol>> = vec![
        Arc::new(LockingProtocol::bamboo()),
        Arc::new(LockingProtocol::wound_wait()),
        Arc::new(LockingProtocol::wait_die()),
        Arc::new(LockingProtocol::no_wait()),
        Arc::new(SiloProtocol::new()),
    ];
    for proto in protocols {
        let name = proto.name().to_owned();
        let session = Session::new(Arc::clone(&db), proto);
        // Steady state: warm the session and the thread's registry shard.
        for _ in 0..8 {
            session.snapshot().commit().unwrap();
        }
        let before = thread_lock_acquisitions();
        for _ in 0..100 {
            let txn = session.snapshot();
            assert!(txn.snapshot_ts().is_some());
            txn.commit().unwrap();
        }
        assert_eq!(
            thread_lock_acquisitions() - before,
            0,
            "{name}: snapshot begin/commit acquired a mutex"
        );
    }
}

/// Concurrent register/release churn against committing writers: every
/// reader observes the published GC watermark at or below its own live
/// snapshot timestamp for as long as it stays registered.
#[test]
fn watermark_never_passes_a_live_snapshot_under_churn() {
    const READERS: usize = 3;
    const WRITER_OPS: u64 = 30_000;
    let db = Database::builder().build();
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        let (db, done) = (&db, &done);
        s.spawn(move || {
            for _ in 0..WRITER_OPS {
                let ts = db.commit_clock.allocate();
                db.note_commit(ts);
            }
            done.store(true, Ordering::Release);
        });
        for _ in 0..READERS {
            s.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    let g = db.register_snapshot();
                    for _ in 0..16 {
                        let wm = db.gc_watermark();
                        assert!(
                            wm <= g.ts,
                            "watermark {wm} passed live snapshot at {ts}",
                            ts = g.ts
                        );
                    }
                    db.release_snapshot(g);
                }
            });
        }
    });
}

/// A lag-capped long reader aborts with [`AbortReason::SnapshotTooOld`]
/// once the commit clock runs past its cap, while writers keep committing
/// throughout — and an uncapped reader (the default) survives the same
/// write fire.
#[test]
fn capped_long_reader_aborts_snapshot_too_old_while_writers_commit() {
    let (db, t) = kv_db(4);
    let session = Session::new(Arc::clone(&db), Arc::new(LockingProtocol::bamboo()));

    let commit_one = |k: u64| {
        let mut w = session.begin();
        w.update(t, k, |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v + 1));
        })
        .unwrap();
        w.commit().unwrap();
    };

    let mut capped = session.begin_with(TxnOptions::new().snapshot_max_lag(4));
    let mut uncapped = session.snapshot();
    let capped_ts = capped.snapshot_ts().unwrap();
    // Within the cap: reads succeed.
    assert_eq!(capped.read(t, 0).unwrap().get_i64(1), 0);
    for k in 0..8 {
        commit_one(k % 4);
    }
    // The stable point is now 8 > 4 ahead: the capped reader must abort…
    assert_eq!(
        capped.read(t, 1).unwrap_err(),
        Abort(AbortReason::SnapshotTooOld)
    );
    drop(capped);
    // …the uncapped reader still reads its (pre-write) snapshot…
    assert_eq!(uncapped.read(t, 1).unwrap().get_i64(1), 0);
    uncapped.commit().unwrap();
    // …and writers were never impeded: they committed during the reader's
    // lifetime and keep committing after its abort.
    commit_one(0);
    assert!(db.commit_clock.stable() >= 9);
    // With both readers gone the watermark passes the capped snapshot.
    db.publish_watermark();
    assert!(db.gc_watermark() >= capped_ts);
}

proptest! {
    // Default config: CI pins PROPTEST_CASES / PROPTEST_SEED.
    #![proptest_config(ProptestConfig::default())]

    /// Model-based churn: arbitrary interleavings of commits, snapshot
    /// registrations, releases and explicit publishes never push the GC
    /// watermark above the oldest live snapshot.
    #[test]
    fn gc_watermark_never_exceeds_oldest_live_snapshot(
        ops in proptest::collection::vec((0u8..4, 0usize..8), 1..120),
    ) {
        let db = Database::builder().build();
        let mut live = Vec::new();
        for (op, idx) in ops {
            match op {
                // A commit: allocate + finish (epoch ticks publish).
                0 => {
                    let ts = db.commit_clock.allocate();
                    db.note_commit(ts);
                }
                // Register a snapshot.
                1 => live.push(db.register_snapshot()),
                // Release some live snapshot.
                2 => {
                    if !live.is_empty() {
                        let g = live.swap_remove(idx % live.len());
                        db.release_snapshot(g);
                    }
                }
                // Force a publish.
                _ => db.publish_watermark(),
            }
            db.publish_watermark();
            let oldest = live.iter().map(|g| g.ts).min();
            if let Some(oldest) = oldest {
                prop_assert!(
                    db.gc_watermark() <= oldest,
                    "watermark {} exceeds oldest live snapshot {}",
                    db.gc_watermark(),
                    oldest
                );
            }
            // The watermark never exceeds the stable point either.
            prop_assert!(db.gc_watermark() <= db.commit_clock.stable());
        }
    }
}
