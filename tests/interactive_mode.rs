//! Interactive-mode integration: the decorator preserves protocol semantics
//! while charging per-operation round-trips, and reproduces the paper's
//! core interactive-mode finding — waiting-based protocols collapse while
//! Bamboo pipelines through the hotspot.

use std::sync::Arc;
use std::time::Duration;

use bamboo_repro::core::executor::{run_bench, BenchConfig, Workload};
use bamboo_repro::core::protocol::{InteractiveProtocol, LockingProtocol, Protocol};
use bamboo_repro::workload::synthetic::{self, SyntheticConfig, SyntheticWorkload};

#[test]
fn interactive_bamboo_beats_interactive_wound_wait_on_hotspot() {
    // The paper's §5.2 interactive result (7×). Even a short run at 4
    // workers with a 200µs RPC shows a decisive margin, because Wound-Wait
    // holds the hotspot lock across 16 round-trips per transaction.
    let cfg = SyntheticConfig::one_hotspot(0.0).with_rows(4096);
    let (db, t) = synthetic::load(&cfg);
    let wl: Arc<dyn Workload> = Arc::new(SyntheticWorkload::new(cfg, t));
    let bench = BenchConfig::quick(4)
        .with_duration(Duration::from_millis(600))
        .with_warmup(Duration::from_millis(100))
        .with_seed(77);
    let rpc = Duration::from_micros(200);
    let bamboo: Arc<dyn Protocol> =
        Arc::new(InteractiveProtocol::new(LockingProtocol::bamboo(), rpc));
    let ww: Arc<dyn Protocol> =
        Arc::new(InteractiveProtocol::new(LockingProtocol::wound_wait(), rpc));
    let rb = run_bench(&db, &bamboo, &wl, &bench);
    let rw = run_bench(&db, &ww, &wl, &bench);
    assert!(rb.totals.commits > 0 && rw.totals.commits > 0);
    assert!(
        rb.throughput() > rw.throughput() * 2.0,
        "interactive BAMBOO ({:.0}) must clearly beat WOUND_WAIT ({:.0})",
        rb.throughput(),
        rw.throughput()
    );
    // And the mechanism: Wound-Wait's time goes to lock waiting.
    assert!(
        rw.lock_wait_ms_per_commit() > rb.lock_wait_ms_per_commit() * 5.0,
        "WW lock wait {}ms vs BB {}ms",
        rw.lock_wait_ms_per_commit(),
        rb.lock_wait_ms_per_commit()
    );
}

#[test]
fn interactive_mode_counts_are_consistent() {
    // The hot counter equals at least the number of measured commits —
    // the RPC decorator must not double-apply or skip operations.
    let cfg = SyntheticConfig::one_hotspot(0.0).with_rows(512).with_ops(4);
    let (db, t) = synthetic::load(&cfg);
    let wl: Arc<dyn Workload> = Arc::new(SyntheticWorkload::new(cfg, t));
    let proto: Arc<dyn Protocol> = Arc::new(InteractiveProtocol::new(
        LockingProtocol::bamboo(),
        Duration::from_micros(50),
    ));
    let res = run_bench(
        &db,
        &proto,
        &wl,
        &BenchConfig::quick(2)
            .with_duration(Duration::from_millis(300))
            .with_warmup(Duration::from_millis(30))
            .with_seed(3),
    );
    let hot = db.table(t).get(0).unwrap().read_row().get_i64(1);
    assert!(hot >= res.totals.commits as i64);
    assert!(res.totals.commits > 0);
}
