//! Multi-version snapshot reads: the seed's banking invariant restated for
//! lock-free read-only transactions.
//!
//! A snapshot reader scanning a hotspot while writers hammer it must
//! (1) never block — zero lock-manager acquisitions, (2) never abort, and
//! (3) observe a transactionally consistent state: the total balance at
//! its snapshot timestamp equals the invariant, even though writers commit
//! continuously underneath it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bamboo_repro::core::executor::{run_bench, BenchConfig, TxnSpec, Workload};
use bamboo_repro::core::protocol::{LockingProtocol, Protocol, SiloProtocol};
use bamboo_repro::core::wal::WalBuffer;
use bamboo_repro::core::{Abort, Database, TxnCtx};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};
use rand::rngs::SmallRng;
use rand::Rng;

const N_ACCOUNTS: u64 = 32;
const INITIAL: i64 = 100;

fn load() -> (Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "acct",
        Schema::build()
            .column("id", DataType::U64)
            .column("bal", DataType::I64),
    );
    let db = b.build();
    for id in 0..N_ACCOUNTS {
        db.table(t)
            .insert(id, Row::from(vec![Value::U64(id), Value::I64(INITIAL)]));
    }
    (db, t)
}

/// Balance-preserving transfer: account 0 is the hotspot (every transfer
/// routes a fee through it, like the seed's serializability test).
struct Transfer {
    table: TableId,
    from: u64,
    to: u64,
    amount: i64,
}

impl TxnSpec for Transfer {
    fn planned_ops(&self) -> Option<usize> {
        Some(3)
    }

    fn run_piece(
        &self,
        _piece: usize,
        db: &Database,
        proto: &dyn Protocol,
        ctx: &mut TxnCtx,
    ) -> Result<(), Abort> {
        let amount = self.amount;
        proto.update(db, ctx, self.table, 0, &mut |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v + 1));
        })?;
        proto.update(db, ctx, self.table, self.from, &mut |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v - amount - 1));
        })?;
        proto.update(db, ctx, self.table, self.to, &mut |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v + amount));
        })?;
        Ok(())
    }
}

struct TransferWl {
    table: TableId,
}

impl Workload for TransferWl {
    fn name(&self) -> &str {
        "transfer"
    }

    fn generate(&self, _w: usize, rng: &mut SmallRng) -> Box<dyn TxnSpec> {
        let from = rng.gen_range(1..N_ACCOUNTS);
        let mut to = rng.gen_range(1..N_ACCOUNTS - 1);
        if to >= from {
            to += 1;
        }
        Box::new(Transfer {
            table: self.table,
            from,
            to,
            amount: rng.gen_range(1..10),
        })
    }
}

/// Drives `scans` snapshot transactions against a database under active
/// writer fire; returns the number of scans performed. Panics on any
/// inconsistency, lock acquisition, or abort.
fn snapshot_scan_loop(db: &Arc<Database>, proto: &dyn Protocol, t: TableId, scans: usize) {
    let mut wal = WalBuffer::for_tests();
    for _ in 0..scans {
        let mut ctx = proto.begin_snapshot(db);
        let mut sum = 0i64;
        for id in 0..N_ACCOUNTS {
            // Reads can never fail in snapshot mode: no waits, no wounds.
            let row = proto
                .read(db, &mut ctx, t, id)
                .expect("snapshot read must never abort");
            sum += row.get_i64(1);
        }
        assert_eq!(
            sum,
            N_ACCOUNTS as i64 * INITIAL,
            "snapshot observed a torn state (non-transactional view)"
        );
        assert_eq!(
            ctx.locks_acquired, 0,
            "snapshot scan touched the lock manager"
        );
        assert!(!ctx.shared.is_aborted(), "snapshot reader was aborted");
        proto
            .commit(db, &mut ctx, &mut wal)
            .expect("snapshot commit cannot fail");
    }
}

/// Hotspot writers + repeated snapshot scans, per protocol. The reader
/// never blocks on the writers (zero lock interaction) and every scan sums
/// to the invariant.
#[test]
fn snapshot_reader_is_lock_free_and_consistent_under_write_fire() {
    for proto in [
        Arc::new(LockingProtocol::bamboo()) as Arc<dyn Protocol>,
        Arc::new(LockingProtocol::bamboo_base()) as Arc<dyn Protocol>,
        Arc::new(LockingProtocol::wound_wait()) as Arc<dyn Protocol>,
        Arc::new(SiloProtocol::new()) as Arc<dyn Protocol>,
    ] {
        let (db, t) = load();
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..3)
            .map(|w| {
                let db = Arc::clone(&db);
                let proto = Arc::clone(&proto);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    use rand::SeedableRng;
                    let mut rng = SmallRng::seed_from_u64(1000 + w);
                    let wl = TransferWl { table: t };
                    let mut wal = WalBuffer::new();
                    let mut commits = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let spec = wl.generate(w as usize, &mut rng);
                        bamboo_repro::core::executor::execute_to_commit(
                            spec.as_ref(),
                            &db,
                            proto.as_ref(),
                            &mut wal,
                        );
                        commits += 1;
                    }
                    commits
                })
            })
            .collect();
        // Let the writers stack up retired versions before scanning.
        std::thread::sleep(Duration::from_millis(10));
        snapshot_scan_loop(&db, proto.as_ref(), t, 300);
        stop.store(true, Ordering::Relaxed);
        let commits: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(commits > 0, "{}: writers must make progress", proto.name());
        assert_eq!(
            db.snapshots.active_count(),
            0,
            "{}: every snapshot must deregister",
            proto.name()
        );
        // Final state conserved, as in the seed's serializability suite.
        let total: i64 = (0..N_ACCOUNTS)
            .map(|id| db.table(t).get(id).unwrap().read_row().get_i64(1))
            .sum();
        assert_eq!(total, N_ACCOUNTS as i64 * INITIAL);
    }
}

/// Snapshot isolation against inserts: a row committed after the snapshot
/// was taken is invisible to it (no snapshot phantoms), while later
/// snapshots see it.
#[test]
fn snapshot_does_not_see_later_inserts() {
    let (db, t) = load();
    let proto = LockingProtocol::bamboo();
    let mut wal = WalBuffer::for_tests();

    let mut old_snap = proto.begin_snapshot(&db);
    // Writer inserts a new account and commits.
    let mut w = proto.begin(&db);
    proto
        .insert(
            &db,
            &mut w,
            t,
            N_ACCOUNTS + 7,
            Row::from(vec![Value::U64(N_ACCOUNTS + 7), Value::I64(5)]),
            None,
        )
        .unwrap();
    proto.commit(&db, &mut w, &mut wal).unwrap();

    let tuple = db.table(t).get(N_ACCOUNTS + 7).expect("insert applied");
    let snap_ts = old_snap.snapshot.unwrap();
    assert!(
        !tuple.visible_at(snap_ts),
        "row inserted after the snapshot must be invisible at ts {snap_ts}"
    );
    // The pre-existing rows are unaffected.
    assert_eq!(
        proto.read(&db, &mut old_snap, t, 0).unwrap().get_i64(1),
        INITIAL
    );
    proto.commit(&db, &mut old_snap, &mut wal).unwrap();

    // A fresh snapshot sees the committed insert.
    let mut new_snap = proto.begin_snapshot(&db);
    assert_eq!(
        proto
            .read(&db, &mut new_snap, t, N_ACCOUNTS + 7)
            .unwrap()
            .get_i64(1),
        5
    );
    proto.commit(&db, &mut new_snap, &mut wal).unwrap();
}

/// Snapshot repeatability: a snapshot re-reading a key sees the same value
/// even after a writer overwrote and committed in between, and a snapshot
/// taken later sees the new value.
#[test]
fn snapshot_reads_are_repeatable_across_concurrent_commits() {
    let (db, t) = load();
    let proto = LockingProtocol::bamboo();
    let mut wal = WalBuffer::for_tests();

    let mut snap = proto.begin_snapshot(&db);
    let before = proto.read(&db, &mut snap, t, 3).unwrap().get_i64(1);
    assert_eq!(before, INITIAL);

    let mut w = proto.begin(&db);
    proto
        .update(&db, &mut w, t, 3, &mut |row| row.set(1, Value::I64(999)))
        .unwrap();
    proto.commit(&db, &mut w, &mut wal).unwrap();
    assert_eq!(db.table(t).get(3).unwrap().read_row().get_i64(1), 999);

    // The live snapshot still resolves to its version: both through the
    // cached access and through a fresh context at the same timestamp.
    assert_eq!(
        proto.read(&db, &mut snap, t, 3).unwrap().get_i64(1),
        INITIAL
    );
    let ts = snap.snapshot.unwrap();
    assert_eq!(
        db.table(t).get(3).unwrap().read_at(ts).unwrap().get_i64(1),
        INITIAL,
        "version chain must retain the snapshot's image"
    );
    proto.commit(&db, &mut snap, &mut wal).unwrap();

    let mut snap2 = proto.begin_snapshot(&db);
    assert_eq!(proto.read(&db, &mut snap2, t, 3).unwrap().get_i64(1), 999);
    proto.commit(&db, &mut snap2, &mut wal).unwrap();
}

/// The executor-level view: a transfer workload with a snapshot-scanning
/// fraction. Snapshot commits land in their own stats bucket with zero
/// lock acquisitions, and the writers keep committing.
#[test]
fn snapshot_mix_accounted_and_conserves_balance() {
    struct MixWl {
        table: TableId,
    }

    struct ScanAll {
        table: TableId,
    }

    impl TxnSpec for ScanAll {
        fn planned_ops(&self) -> Option<usize> {
            Some(N_ACCOUNTS as usize)
        }

        fn read_only_snapshot(&self) -> bool {
            true
        }

        fn run_piece(
            &self,
            _piece: usize,
            db: &Database,
            proto: &dyn Protocol,
            ctx: &mut TxnCtx,
        ) -> Result<(), Abort> {
            let mut sum = 0i64;
            for id in 0..N_ACCOUNTS {
                sum += proto.read(db, ctx, self.table, id)?.get_i64(1);
            }
            assert_eq!(sum, N_ACCOUNTS as i64 * INITIAL, "torn snapshot scan");
            Ok(())
        }
    }

    impl Workload for MixWl {
        fn name(&self) -> &str {
            "transfer+snapshot-scan"
        }

        fn generate(&self, _w: usize, rng: &mut SmallRng) -> Box<dyn TxnSpec> {
            if rng.gen_bool(0.2) {
                return Box::new(ScanAll { table: self.table });
            }
            let from = rng.gen_range(1..N_ACCOUNTS);
            let mut to = rng.gen_range(1..N_ACCOUNTS - 1);
            if to >= from {
                to += 1;
            }
            Box::new(Transfer {
                table: self.table,
                from,
                to,
                amount: rng.gen_range(1..10),
            })
        }
    }

    for proto in [
        Arc::new(LockingProtocol::bamboo()) as Arc<dyn Protocol>,
        Arc::new(LockingProtocol::wound_wait()) as Arc<dyn Protocol>,
        Arc::new(SiloProtocol::new()) as Arc<dyn Protocol>,
    ] {
        let (db, t) = load();
        let wl: Arc<dyn Workload> = Arc::new(MixWl { table: t });
        let res = run_bench(
            &db,
            &proto,
            &wl,
            &BenchConfig {
                threads: 4,
                duration: Duration::from_millis(250),
                warmup: Duration::from_millis(25),
                seed: 23,
            },
        );
        assert!(res.totals.commits > 0, "{}: writers starved", res.protocol);
        assert!(
            res.totals.snapshot_commits > 0,
            "{}: snapshot scans must commit",
            res.protocol
        );
        assert_eq!(
            res.totals.snapshot_lock_acquisitions, 0,
            "{}: snapshot scans acquired locks",
            res.protocol
        );
        assert_eq!(
            res.totals.snapshot_aborts, 0,
            "{}: snapshot scans aborted",
            res.protocol
        );
        assert!(
            res.totals.lock_acquisitions > 0,
            "{}: writer lock accounting missing",
            res.protocol
        );
        let total: i64 = (0..N_ACCOUNTS)
            .map(|id| db.table(t).get(id).unwrap().read_row().get_i64(1))
            .sum();
        assert_eq!(total, N_ACCOUNTS as i64 * INITIAL, "{}", res.protocol);
        // No snapshot leaked its registration; the watermark can advance
        // and chains drain back toward a single version.
        assert_eq!(db.snapshots.active_count(), 0, "{}", res.protocol);
    }
}
