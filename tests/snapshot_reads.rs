//! Multi-version snapshot reads: the seed's banking invariant restated for
//! lock-free read-only transactions.
//!
//! A snapshot reader scanning a hotspot while writers hammer it must
//! (1) never block — zero lock-manager acquisitions, (2) never abort, and
//! (3) observe a transactionally consistent state: the total balance at
//! its snapshot timestamp equals the invariant, even though writers commit
//! continuously underneath it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bamboo_repro::core::executor::{run_bench, BenchConfig, TxnSpec, Workload};
use bamboo_repro::core::protocol::{LockingProtocol, Protocol, SiloProtocol};
use bamboo_repro::core::{Abort, AbortReason, Database, Session, Txn};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};
use rand::rngs::SmallRng;
use rand::Rng;

const N_ACCOUNTS: u64 = 32;
const INITIAL: i64 = 100;

fn load() -> (Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "acct",
        Schema::build()
            .column("id", DataType::U64)
            .column("bal", DataType::I64),
    );
    let db = b.build();
    for id in 0..N_ACCOUNTS {
        db.table(t)
            .insert(id, Row::from(vec![Value::U64(id), Value::I64(INITIAL)]));
    }
    (db, t)
}

/// Balance-preserving transfer: account 0 is the hotspot (every transfer
/// routes a fee through it, like the seed's serializability test).
struct Transfer {
    table: TableId,
    from: u64,
    to: u64,
    amount: i64,
}

impl TxnSpec for Transfer {
    fn planned_ops(&self) -> Option<usize> {
        Some(3)
    }

    fn run_piece(&self, _piece: usize, txn: &mut Txn<'_>) -> Result<(), Abort> {
        let amount = self.amount;
        txn.update(self.table, 0, |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v + 1));
        })?;
        txn.update(self.table, self.from, |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v - amount - 1));
        })?;
        txn.update(self.table, self.to, |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v + amount));
        })?;
        Ok(())
    }
}

struct TransferWl {
    table: TableId,
}

impl Workload for TransferWl {
    fn name(&self) -> &str {
        "transfer"
    }

    fn generate(&self, _w: usize, rng: &mut SmallRng) -> Box<dyn TxnSpec> {
        let from = rng.gen_range(1..N_ACCOUNTS);
        let mut to = rng.gen_range(1..N_ACCOUNTS - 1);
        if to >= from {
            to += 1;
        }
        Box::new(Transfer {
            table: self.table,
            from,
            to,
            amount: rng.gen_range(1..10),
        })
    }
}

/// Drives `scans` snapshot transactions against a database under active
/// writer fire. Panics on any inconsistency, lock acquisition, or abort.
fn snapshot_scan_loop(session: &Session, t: TableId, scans: usize) {
    for _ in 0..scans {
        let mut txn = session.snapshot();
        let mut sum = 0i64;
        for id in 0..N_ACCOUNTS {
            // Reads can never fail in snapshot mode: no waits, no wounds.
            let row = txn.read(t, id).expect("snapshot read must never abort");
            sum += row.get_i64(1);
        }
        assert_eq!(
            sum,
            N_ACCOUNTS as i64 * INITIAL,
            "snapshot observed a torn state (non-transactional view)"
        );
        assert_eq!(
            txn.locks_acquired(),
            0,
            "snapshot scan touched the lock manager"
        );
        assert!(!txn.shared().is_aborted(), "snapshot reader was aborted");
        txn.commit().expect("snapshot commit cannot fail");
    }
}

/// Hotspot writers + repeated snapshot scans, per protocol. The reader
/// never blocks on the writers (zero lock interaction) and every scan sums
/// to the invariant.
#[test]
fn snapshot_reader_is_lock_free_and_consistent_under_write_fire() {
    for proto in [
        Arc::new(LockingProtocol::bamboo()) as Arc<dyn Protocol>,
        Arc::new(LockingProtocol::bamboo_base()) as Arc<dyn Protocol>,
        Arc::new(LockingProtocol::wound_wait()) as Arc<dyn Protocol>,
        Arc::new(SiloProtocol::new()) as Arc<dyn Protocol>,
    ] {
        let (db, t) = load();
        let stop = Arc::new(AtomicBool::new(false));
        let commits: u64 = std::thread::scope(|s| {
            let writers: Vec<_> = (0..3)
                .map(|w| {
                    let db = Arc::clone(&db);
                    let proto = Arc::clone(&proto);
                    let stop = Arc::clone(&stop);
                    s.spawn(move || {
                        use rand::SeedableRng;
                        let mut rng = SmallRng::seed_from_u64(1000 + w);
                        let wl = TransferWl { table: t };
                        let session = Session::new(db, proto);
                        let mut commits = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let spec = wl.generate(w as usize, &mut rng);
                            session.run(spec.as_ref()).unwrap();
                            commits += 1;
                        }
                        commits
                    })
                })
                .collect();
            // Let the writers stack up retired versions before scanning.
            std::thread::sleep(Duration::from_millis(10));
            let reader_session = Session::new(Arc::clone(&db), Arc::clone(&proto));
            snapshot_scan_loop(&reader_session, t, 300);
            stop.store(true, Ordering::Relaxed);
            writers.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert!(commits > 0, "{}: writers must make progress", proto.name());
        assert_eq!(
            db.snapshots.active_count(),
            0,
            "{}: every snapshot must deregister",
            proto.name()
        );
        // Final state conserved, as in the seed's serializability suite.
        let total: i64 = (0..N_ACCOUNTS)
            .map(|id| db.table(t).get(id).unwrap().read_row().get_i64(1))
            .sum();
        assert_eq!(total, N_ACCOUNTS as i64 * INITIAL);
    }
}

/// Snapshot isolation against inserts: a row committed after the snapshot
/// was taken is invisible to it (no snapshot phantoms), while later
/// snapshots see it. The invisibility now surfaces through the `Txn` read
/// result — `SnapshotNotVisible` from `read`, `Ok(None)` from `read_opt` —
/// instead of a storage-level panic.
#[test]
fn snapshot_does_not_see_later_inserts() {
    let (db, t) = load();
    let session = Session::new(
        Arc::clone(&db),
        Arc::new(LockingProtocol::bamboo()) as Arc<dyn Protocol>,
    );

    let mut old_snap = session.snapshot();
    // Writer inserts a new account and commits.
    let mut w = session.begin();
    w.insert(
        t,
        N_ACCOUNTS + 7,
        Row::from(vec![Value::U64(N_ACCOUNTS + 7), Value::I64(5)]),
        None,
    )
    .unwrap();
    w.commit().unwrap();

    let tuple = db.table(t).get(N_ACCOUNTS + 7).expect("insert applied");
    let snap_ts = old_snap.snapshot_ts().unwrap();
    assert!(
        !tuple.visible_at(snap_ts),
        "row inserted after the snapshot must be invisible at ts {snap_ts}"
    );
    // The session surface agrees with the storage-level check.
    assert_eq!(
        old_snap.read(t, N_ACCOUNTS + 7).unwrap_err(),
        Abort(AbortReason::SnapshotNotVisible),
        "read of a post-snapshot insert surfaces SnapshotNotVisible"
    );
    assert!(
        old_snap.read_opt(t, N_ACCOUNTS + 7).unwrap().is_none(),
        "read_opt treats the phantom as absent"
    );
    // The pre-existing rows are unaffected.
    assert_eq!(old_snap.read(t, 0).unwrap().get_i64(1), INITIAL);
    old_snap.commit().unwrap();

    // A fresh snapshot sees the committed insert.
    let mut new_snap = session.snapshot();
    assert_eq!(new_snap.read(t, N_ACCOUNTS + 7).unwrap().get_i64(1), 5);
    new_snap.commit().unwrap();
}

/// Snapshot repeatability: a snapshot re-reading a key sees the same value
/// even after a writer overwrote and committed in between, and a snapshot
/// taken later sees the new value.
#[test]
fn snapshot_reads_are_repeatable_across_concurrent_commits() {
    let (db, t) = load();
    let session = Session::new(
        Arc::clone(&db),
        Arc::new(LockingProtocol::bamboo()) as Arc<dyn Protocol>,
    );

    let mut snap = session.snapshot();
    let before = snap.read(t, 3).unwrap().get_i64(1);
    assert_eq!(before, INITIAL);

    let mut w = session.begin();
    w.update(t, 3, |row| row.set(1, Value::I64(999))).unwrap();
    w.commit().unwrap();
    assert_eq!(db.table(t).get(3).unwrap().read_row().get_i64(1), 999);

    // The live snapshot still resolves to its version: both through the
    // cached access and through the raw version chain at the same
    // timestamp.
    assert_eq!(snap.read(t, 3).unwrap().get_i64(1), INITIAL);
    let ts = snap.snapshot_ts().unwrap();
    assert_eq!(
        db.table(t).get(3).unwrap().read_at(ts).unwrap().get_i64(1),
        INITIAL,
        "version chain must retain the snapshot's image"
    );
    snap.commit().unwrap();

    let mut snap2 = session.snapshot();
    assert_eq!(snap2.read(t, 3).unwrap().get_i64(1), 999);
    snap2.commit().unwrap();
}

/// The executor-level view: a transfer workload with a snapshot-scanning
/// fraction. Snapshot commits land in their own stats bucket with zero
/// lock acquisitions, and the writers keep committing.
#[test]
fn snapshot_mix_accounted_and_conserves_balance() {
    struct MixWl {
        table: TableId,
    }

    struct ScanAll {
        table: TableId,
    }

    impl TxnSpec for ScanAll {
        fn planned_ops(&self) -> Option<usize> {
            Some(N_ACCOUNTS as usize)
        }

        fn read_only_snapshot(&self) -> bool {
            true
        }

        fn run_piece(&self, _piece: usize, txn: &mut Txn<'_>) -> Result<(), Abort> {
            let mut sum = 0i64;
            for id in 0..N_ACCOUNTS {
                sum += txn.read(self.table, id)?.get_i64(1);
            }
            assert_eq!(sum, N_ACCOUNTS as i64 * INITIAL, "torn snapshot scan");
            Ok(())
        }
    }

    impl Workload for MixWl {
        fn name(&self) -> &str {
            "transfer+snapshot-scan"
        }

        fn generate(&self, _w: usize, rng: &mut SmallRng) -> Box<dyn TxnSpec> {
            if rng.gen_bool(0.2) {
                return Box::new(ScanAll { table: self.table });
            }
            let from = rng.gen_range(1..N_ACCOUNTS);
            let mut to = rng.gen_range(1..N_ACCOUNTS - 1);
            if to >= from {
                to += 1;
            }
            Box::new(Transfer {
                table: self.table,
                from,
                to,
                amount: rng.gen_range(1..10),
            })
        }
    }

    for proto in [
        Arc::new(LockingProtocol::bamboo()) as Arc<dyn Protocol>,
        Arc::new(LockingProtocol::wound_wait()) as Arc<dyn Protocol>,
        Arc::new(SiloProtocol::new()) as Arc<dyn Protocol>,
    ] {
        let (db, t) = load();
        let wl: Arc<dyn Workload> = Arc::new(MixWl { table: t });
        let res = run_bench(
            &db,
            &proto,
            &wl,
            &BenchConfig::quick(4)
                .with_duration(Duration::from_millis(250))
                .with_warmup(Duration::from_millis(25))
                .with_seed(23),
        );
        assert!(res.totals.commits > 0, "{}: writers starved", res.protocol);
        assert!(
            res.totals.snapshot_commits > 0,
            "{}: snapshot scans must commit",
            res.protocol
        );
        assert_eq!(
            res.totals.snapshot_lock_acquisitions, 0,
            "{}: snapshot scans acquired locks",
            res.protocol
        );
        assert_eq!(
            res.totals.snapshot_aborts, 0,
            "{}: snapshot scans aborted",
            res.protocol
        );
        assert!(
            res.totals.lock_acquisitions > 0,
            "{}: writer lock accounting missing",
            res.protocol
        );
        let total: i64 = (0..N_ACCOUNTS)
            .map(|id| db.table(t).get(id).unwrap().read_row().get_i64(1))
            .sum();
        assert_eq!(total, N_ACCOUNTS as i64 * INITIAL, "{}", res.protocol);
        // No snapshot leaked its registration; the watermark can advance
        // and chains drain back toward a single version.
        assert_eq!(db.snapshots.active_count(), 0, "{}", res.protocol);
    }
}
