//! §3.4 phantom protection: next-key locking on the ordered index makes
//! range scans serializable; RepeatableRead gives exactly that protection
//! up.

use std::sync::Arc;
use std::time::Duration;

use bamboo_repro::core::protocol::{IsolationLevel, LockingProtocol, Protocol};
use bamboo_repro::core::wal::WalBuffer;
use bamboo_repro::core::Database;
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};

/// Keys 10,20,30,40 plus a sentinel max key (guards open-ended gaps).
fn load() -> (Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "t",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
    );
    let db = b.build();
    for k in [10u64, 20, 30, 40, u64::MAX] {
        db.table(t)
            .insert(k, Row::from(vec![Value::U64(k), Value::I64(1)]));
    }
    db.table(t).enable_ordered_index();
    (db, t)
}

#[test]
fn scan_returns_range_in_order() {
    let (db, t) = load();
    let proto = LockingProtocol::bamboo();
    let mut ctx = proto.begin(&db);
    let rows = proto.scan(&db, &mut ctx, t, 15..=35).unwrap();
    assert_eq!(
        rows.iter().map(|r| r.get_u64(0)).collect::<Vec<_>>(),
        vec![20, 30]
    );
    let mut wal = WalBuffer::for_tests();
    proto.commit(&db, &mut ctx, &mut wal).unwrap();
}

#[test]
fn serializable_scan_blocks_phantom_insert_until_commit_order() {
    // Scanner reads [15, 35]; a concurrent transaction inserts key 25.
    // Under next-key locking, the inserter orders after the scanner: a
    // re-scan inside the scanner's transaction must not see the phantom.
    let (db, t) = load();
    let proto = LockingProtocol::bamboo();
    let mut scanner = proto.begin(&db);
    let first = proto.scan(&db, &mut scanner, t, 15..=35).unwrap().len();
    assert_eq!(first, 2);

    let db2 = Arc::clone(&db);
    let proto2 = proto.clone();
    let inserter = std::thread::spawn(move || {
        let mut ctx = proto2.begin(&db2);
        let mut wal = WalBuffer::for_tests();
        proto2
            .insert(
                &db2,
                &mut ctx,
                t,
                25,
                Row::from(vec![Value::U64(25), Value::I64(1)]),
                None,
            )
            .unwrap();
        proto2.commit(&db2, &mut ctx, &mut wal).unwrap();
    });
    // Give the inserter time to reach its gap lock (it will queue behind /
    // depend on the scanner's next-key SH lock on key 30... the scan locked
    // 20, 30 and next-key 40).
    std::thread::sleep(Duration::from_millis(30));
    let again = proto.scan(&db, &mut scanner, t, 15..=35).unwrap().len();
    assert_eq!(again, first, "phantom appeared inside a serializable txn");
    let mut wal = WalBuffer::for_tests();
    proto.commit(&db, &mut scanner, &mut wal).unwrap();
    inserter.join().unwrap();
    // After both commit, the phantom is durable.
    assert!(db.table(t).get(25).is_some());
}

#[test]
fn repeatable_read_gives_up_phantom_protection() {
    // "repeatable read is supported by giving up phantom protection": the
    // RR scanner takes no next-key lock, so the inserter proceeds without
    // any ordering against it.
    let (db, t) = load();
    let rr = LockingProtocol::bamboo().with_isolation(IsolationLevel::RepeatableRead);
    let mut scanner = rr.begin(&db);
    assert_eq!(rr.scan(&db, &mut scanner, t, 15..=35).unwrap().len(), 2);

    // The inserter also runs at RR (no gap lock) — it must complete while
    // the scanner is still open.
    let ins = LockingProtocol::bamboo().with_isolation(IsolationLevel::RepeatableRead);
    let mut ctx = ins.begin(&db);
    let mut wal = WalBuffer::for_tests();
    ins.insert(
        &db,
        &mut ctx,
        t,
        25,
        Row::from(vec![Value::U64(25), Value::I64(1)]),
        None,
    )
    .unwrap();
    ins.commit(&db, &mut ctx, &mut wal).unwrap();

    // Fresh keys are now visible mid-transaction: the phantom anomaly.
    let again = rr.scan(&db, &mut scanner, t, 15..=35).unwrap();
    assert_eq!(again.len(), 3, "RR permits the phantom");
    rr.commit(&db, &mut scanner, &mut wal).unwrap();
}

#[test]
fn insert_beyond_max_key_is_guarded_by_sentinel() {
    let (db, t) = load();
    let proto = LockingProtocol::bamboo();
    // Scan to the sentinel: locks it as the next key.
    let mut scanner = proto.begin(&db);
    proto.scan(&db, &mut scanner, t, 35..=100).unwrap();
    // Inserting 50 gap-locks the sentinel — the access sets must overlap.
    let mut ins = proto.begin(&db);
    let mut wal = WalBuffer::for_tests();
    proto
        .insert(
            &db,
            &mut ins,
            t,
            50,
            Row::from(vec![Value::U64(50), Value::I64(1)]),
            None,
        )
        .unwrap();
    // The inserter's EX on the sentinel coexists with the retired SH of the
    // scanner, ordered by the commit semaphore.
    assert!(
        ins.shared.semaphore() >= 1,
        "inserter must order after the scanner via the sentinel gap lock"
    );
    proto.commit(&db, &mut scanner, &mut wal).unwrap();
    proto.commit(&db, &mut ins, &mut wal).unwrap();
    assert!(db.table(t).get(50).is_some());
}

#[test]
fn ordered_index_tracks_commit_time_inserts() {
    let (db, t) = load();
    let proto = LockingProtocol::bamboo();
    let mut ctx = proto.begin(&db);
    let mut wal = WalBuffer::for_tests();
    proto
        .insert(
            &db,
            &mut ctx,
            t,
            33,
            Row::from(vec![Value::U64(33), Value::I64(9)]),
            None,
        )
        .unwrap();
    proto.commit(&db, &mut ctx, &mut wal).unwrap();
    let idx = db.table(t).ordered_index().unwrap();
    assert!(idx.get(33).is_some(), "insert reached the ordered index");
    let mut c2 = proto.begin(&db);
    let rows = proto.scan(&db, &mut c2, t, 30..=35).unwrap();
    assert_eq!(rows.len(), 2); // 30 and 33
    proto.commit(&db, &mut c2, &mut wal).unwrap();
}
