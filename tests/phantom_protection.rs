//! §3.4 phantom protection: next-key locking on the ordered index makes
//! range scans serializable; RepeatableRead gives exactly that protection
//! up.

use std::sync::Arc;
use std::time::Duration;

use bamboo_repro::core::protocol::{IsolationLevel, LockingProtocol, Protocol};
use bamboo_repro::core::{Database, Session};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};

/// Keys 10,20,30,40 plus a sentinel max key (guards open-ended gaps).
fn load() -> (Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "t",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
    );
    let db = b.build();
    for k in [10u64, 20, 30, 40, u64::MAX] {
        db.table(t)
            .insert(k, Row::from(vec![Value::U64(k), Value::I64(1)]));
    }
    db.table(t).enable_ordered_index();
    (db, t)
}

fn session_with(db: &Arc<Database>, proto: LockingProtocol) -> Session {
    Session::new(Arc::clone(db), Arc::new(proto) as Arc<dyn Protocol>)
}

#[test]
fn scan_returns_range_in_order() {
    let (db, t) = load();
    let session = session_with(&db, LockingProtocol::bamboo());
    let mut txn = session.begin();
    let rows = txn.scan(t, 15..=35).unwrap();
    assert_eq!(
        rows.iter().map(|r| r.get_u64(0)).collect::<Vec<_>>(),
        vec![20, 30]
    );
    txn.commit().unwrap();
}

#[test]
fn serializable_scan_blocks_phantom_insert_until_commit_order() {
    // Scanner reads [15, 35]; a concurrent transaction inserts key 25.
    // Under next-key locking, the inserter orders after the scanner: a
    // re-scan inside the scanner's transaction must not see the phantom.
    let (db, t) = load();
    let session = session_with(&db, LockingProtocol::bamboo());
    let mut scanner = session.begin();
    let first = scanner.scan(t, 15..=35).unwrap().len();
    assert_eq!(first, 2);

    std::thread::scope(|s| {
        let inserter = s.spawn(|| {
            let mut txn = session.begin();
            txn.insert(t, 25, Row::from(vec![Value::U64(25), Value::I64(1)]), None)
                .unwrap();
            txn.commit().unwrap();
        });
        // Give the inserter time to reach its gap lock (it will queue
        // behind / depend on the scanner's next-key SH lock on key 30...
        // the scan locked 20, 30 and next-key 40).
        std::thread::sleep(Duration::from_millis(30));
        let again = scanner.scan(t, 15..=35).unwrap().len();
        assert_eq!(again, first, "phantom appeared inside a serializable txn");
        scanner.commit().unwrap();
        inserter.join().unwrap();
    });
    // After both commit, the phantom is durable.
    assert!(db.table(t).get(25).is_some());
}

#[test]
fn repeatable_read_gives_up_phantom_protection() {
    // "repeatable read is supported by giving up phantom protection": the
    // RR scanner takes no next-key lock, so the inserter proceeds without
    // any ordering against it.
    let (db, t) = load();
    let rr = session_with(
        &db,
        LockingProtocol::bamboo().with_isolation(IsolationLevel::RepeatableRead),
    );
    let mut scanner = rr.begin();
    assert_eq!(scanner.scan(t, 15..=35).unwrap().len(), 2);

    // The inserter also runs at RR (no gap lock) — it must complete while
    // the scanner is still open.
    let ins = session_with(
        &db,
        LockingProtocol::bamboo().with_isolation(IsolationLevel::RepeatableRead),
    );
    let mut txn = ins.begin();
    txn.insert(t, 25, Row::from(vec![Value::U64(25), Value::I64(1)]), None)
        .unwrap();
    txn.commit().unwrap();

    // Fresh keys are now visible mid-transaction: the phantom anomaly.
    let again = scanner.scan(t, 15..=35).unwrap();
    assert_eq!(again.len(), 3, "RR permits the phantom");
    scanner.commit().unwrap();
}

#[test]
fn insert_beyond_max_key_is_guarded_by_sentinel() {
    let (db, t) = load();
    let session = session_with(&db, LockingProtocol::bamboo());
    // Scan to the sentinel: locks it as the next key.
    let mut scanner = session.begin();
    scanner.scan(t, 35..=100).unwrap();
    // Inserting 50 gap-locks the sentinel — the access sets must overlap.
    let mut ins = session.begin();
    ins.insert(t, 50, Row::from(vec![Value::U64(50), Value::I64(1)]), None)
        .unwrap();
    // The inserter's EX on the sentinel coexists with the retired SH of the
    // scanner, ordered by the commit semaphore.
    assert!(
        ins.shared().semaphore() >= 1,
        "inserter must order after the scanner via the sentinel gap lock"
    );
    scanner.commit().unwrap();
    ins.commit().unwrap();
    assert!(db.table(t).get(50).is_some());
}

#[test]
fn ordered_index_tracks_commit_time_inserts() {
    let (db, t) = load();
    let session = session_with(&db, LockingProtocol::bamboo());
    let mut txn = session.begin();
    txn.insert(t, 33, Row::from(vec![Value::U64(33), Value::I64(9)]), None)
        .unwrap();
    txn.commit().unwrap();
    let idx = db.table(t).ordered_index().unwrap();
    assert!(idx.get(33).is_some(), "insert reached the ordered index");
    let mut c2 = session.begin();
    let rows = c2.scan(t, 30..=35).unwrap();
    assert_eq!(rows.len(), 2); // 30 and 33
    c2.commit().unwrap();
}
