//! Property tests for the IC3 chopping algorithm and the §3.3 analysis
//! transform:
//!
//! * `chop` must reach a fixpoint with **no crossing C-edges** — the
//!   paper's deadlock-avoidance requirement — for arbitrary templates;
//! * the retire-point transformation must preserve program semantics: the
//!   transformed program leaves the database in exactly the state the
//!   original does.

use bamboo_repro::analysis::ir::{AccessMode, Expr, Program, Stmt};
use bamboo_repro::analysis::{insert_retire_points, run_program};
use bamboo_repro::core::protocol::ic3::{chop, PieceAccess, PieceDecl, TemplateDecl};
use bamboo_repro::core::protocol::{LockingProtocol, Protocol};
use bamboo_repro::core::{Database, Session};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// chop() fixpoint property
// ---------------------------------------------------------------------

fn arb_access() -> impl Strategy<Value = PieceAccess> {
    (0u32..3, 0u64..4, 0u64..4, any::<bool>()).prop_map(|(table, r, w, writes)| {
        let read_cols = 1 << r;
        let write_cols = if writes { 1 << w } else { 0 };
        PieceAccess::write(TableId(table), read_cols | write_cols, write_cols)
    })
}

fn arb_template(idx: usize) -> impl Strategy<Value = TemplateDecl> {
    proptest::collection::vec(
        proptest::collection::vec(arb_access(), 1..3).prop_map(PieceDecl::new),
        1..5,
    )
    .prop_map(move |pieces| TemplateDecl {
        name: format!("t{idx}"),
        pieces,
    })
}

/// Conflict between the merged groups `ga` of template `s` and `gb` of `t`.
fn groups_conflict(
    templates: &[TemplateDecl],
    groups: &[Vec<usize>],
    s: usize,
    ga: usize,
    t: usize,
    gb: usize,
) -> bool {
    let a_accs = templates[s]
        .pieces
        .iter()
        .zip(&groups[s])
        .filter(|(_, g)| **g == ga)
        .flat_map(|(p, _)| p.accesses.iter());
    a_accs.into_iter().any(|a| {
        templates[t]
            .pieces
            .iter()
            .zip(&groups[t])
            .filter(|(_, g)| **g == gb)
            .flat_map(|(p, _)| p.accesses.iter())
            .any(|b| a.conflicts(b))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn chop_fixpoint_has_no_crossing_c_edges(
        t0 in arb_template(0),
        t1 in arb_template(1),
        t2 in arb_template(2),
    ) {
        let templates = vec![t0, t1, t2];
        let c = chop(&templates);
        // Group maps must be non-decreasing and dense.
        for (t, g) in c.groups.iter().enumerate() {
            prop_assert_eq!(g.len(), templates[t].pieces.len());
            for w in g.windows(2) {
                prop_assert!(w[1] == w[0] || w[1] == w[0] + 1, "groups not contiguous");
            }
            prop_assert_eq!(g.last().copied().map(|x| x + 1).unwrap_or(0), c.n_groups[t]);
        }
        // No crossing: for every template pair (incl. self), collect
        // conflicting group pairs and check monotonicity.
        for s in 0..templates.len() {
            for t in 0..templates.len() {
                let mut pairs = Vec::new();
                for ga in 0..c.n_groups[s] {
                    for gb in 0..c.n_groups[t] {
                        if groups_conflict(&templates, &c.groups, s, ga, t, gb) {
                            pairs.push((ga, gb));
                        }
                    }
                }
                for &(a1, b1) in &pairs {
                    for &(a2, b2) in &pairs {
                        prop_assert!(
                            !(a1 < a2 && b1 > b2),
                            "crossing C-edges survive: ({a1},{b1}) x ({a2},{b2}) \
                             between templates {s} and {t}"
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Analysis semantic preservation
// ---------------------------------------------------------------------

fn mk_db() -> std::sync::Arc<Database> {
    let mut b = Database::builder();
    let t = b.add_table(
        "t",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
    );
    assert_eq!(t, TableId(0));
    let db = b.build();
    for k in 0..16u64 {
        db.table(t)
            .insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
    }
    db
}

fn snapshot(db: &Database) -> Vec<i64> {
    (0..16)
        .map(|k| db.table(TableId(0)).get(k).unwrap().read_row().get_i64(1))
        .collect()
}

fn exec(db: &Arc<Database>, program: &Program, params: &[u64]) {
    let proto = LockingProtocol::bamboo();
    let session = Session::new(Arc::clone(db), Arc::new(proto.clone()) as Arc<dyn Protocol>);
    let mut txn = session.begin();
    run_program(&proto, &mut txn, program, params).unwrap();
    txn.commit().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Listing-3-shaped loops with arbitrary key functions: fissioned
    /// programs must produce identical final state to the originals.
    #[test]
    fn loop_fission_preserves_semantics(trip in 1u64..8, modulus in 1u64..8) {
        let program = Program {
            params: 0,
            stmts: vec![Stmt::For {
                var: "i".into(),
                count: Expr::Const(trip),
                body: vec![
                    Stmt::LetArr {
                        arr: "key".into(),
                        idx: Expr::var("i"),
                        expr: Expr::Mod(
                            Box::new(Expr::Mul(
                                Box::new(Expr::var("i")),
                                Box::new(Expr::Const(3)),
                            )),
                            Box::new(Expr::Const(modulus)),
                        ),
                    },
                    Stmt::Access {
                        id: 0,
                        table: TableId(0),
                        key: Expr::index("key", Expr::var("i")),
                        mode: AccessMode::Write,
                    },
                ],
            }],
        };
        let analysed = insert_retire_points(&program);
        let db_orig = mk_db();
        exec(&db_orig, &program, &[]);
        let db_fiss = mk_db();
        exec(&db_fiss, &analysed.program, &[]);
        prop_assert_eq!(snapshot(&db_orig), snapshot(&db_fiss));
    }

    /// Listing-1-shaped conditionals: the transformed program (hoisted key
    /// computation + RetireIf) computes the same final state.
    #[test]
    fn conditional_retire_preserves_semantics(cond in 0u64..2, input in 0u64..32) {
        let program = Program {
            params: 2,
            stmts: vec![
                Stmt::Access {
                    id: 0,
                    table: TableId(0),
                    key: Expr::Const(3),
                    mode: AccessMode::Write,
                },
                Stmt::Let {
                    var: "k2".into(),
                    expr: Expr::Mod(Box::new(Expr::Param(1)), Box::new(Expr::Const(16))),
                },
                Stmt::If {
                    cond: Expr::Param(0),
                    then_branch: vec![Stmt::Access {
                        id: 1,
                        table: TableId(0),
                        key: Expr::var("k2"),
                        mode: AccessMode::Write,
                    }],
                    else_branch: vec![],
                },
            ],
        };
        let analysed = insert_retire_points(&program);
        let db_orig = mk_db();
        exec(&db_orig, &program, &[cond, input]);
        let db_xform = mk_db();
        exec(&db_xform, &analysed.program, &[cond, input]);
        prop_assert_eq!(snapshot(&db_orig), snapshot(&db_xform));
    }
}
