//! Property-based tests for the MVCC version chain and the snapshot read
//! path:
//!
//! * model-based version-chain check: arbitrary interleavings of versioned
//!   installs, snapshot registrations/releases and GC always read exactly
//!   what a full-history reference model reads, and GC never reclaims a
//!   version a live snapshot can still see;
//! * end-to-end prefix consistency: every snapshot taken between committed
//!   transactions observes precisely the state after some prefix of the
//!   commit order.

use std::sync::Arc;

use bamboo_repro::core::protocol::{LockingProtocol, Protocol};
use bamboo_repro::core::{Database, Session};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value, VersionChain};
use proptest::prelude::*;

/// Operations the model test drives against one version chain.
#[derive(Clone, Debug)]
enum ChainOp {
    /// Install a new committed version with this payload.
    Install(i64),
    /// Register a snapshot at the current latest timestamp.
    Snapshot,
    /// Release the `i % live`-th live snapshot.
    Release(usize),
    /// Run GC at the current watermark.
    Gc,
}

fn chain_op_strategy() -> impl Strategy<Value = ChainOp> {
    prop_oneof![
        (0i64..1_000).prop_map(ChainOp::Install),
        (0usize..1).prop_map(|_| ChainOp::Snapshot),
        (0usize..8).prop_map(ChainOp::Release),
        (0usize..1).prop_map(|_| ChainOp::Gc),
    ]
}

fn row(v: i64) -> Row {
    Row::from(vec![Value::I64(v)])
}

/// Reference answer: newest history entry with ts <= snap.
fn model_read(history: &[(u64, i64)], snap: u64) -> Option<i64> {
    history
        .iter()
        .rev()
        .find(|(ts, _)| *ts <= snap)
        .map(|(_, v)| *v)
}

proptest! {
    // Default config: CI pins PROPTEST_CASES=64 / PROPTEST_SEED.
    #![proptest_config(ProptestConfig::default())]

    /// The version chain agrees with a full-history model under arbitrary
    /// install / snapshot / release / GC interleavings, and GC never
    /// reclaims a version some live snapshot still needs.
    #[test]
    fn version_chain_matches_full_history_model(
        ops in proptest::collection::vec(chain_op_strategy(), 1..80),
    ) {
        let mut chain = VersionChain::new(row(0));
        let mut history: Vec<(u64, i64)> = vec![(0, 0)];
        let mut ts = 0u64;
        let mut live: Vec<u64> = Vec::new();
        for op in ops {
            let watermark = live.iter().min().copied().unwrap_or(ts);
            match op {
                ChainOp::Install(v) => {
                    ts += 1;
                    chain.install_at(row(v), ts, watermark);
                    history.push((ts, v));
                }
                ChainOp::Snapshot => {
                    // Snapshots are taken at the stable point = latest ts
                    // in this single-writer model.
                    live.push(ts);
                }
                ChainOp::Release(i) => {
                    if !live.is_empty() {
                        let i = i % live.len();
                        live.swap_remove(i);
                    }
                }
                ChainOp::Gc => {
                    chain.gc(watermark);
                }
            }
            // Every live snapshot (and the current timestamp) reads exactly
            // the model answer — i.e. GC reclaimed nothing still visible.
            for &snap in live.iter().chain(std::iter::once(&ts)) {
                let got = chain.read_at(snap).map(|r| r.get_i64(0));
                prop_assert_eq!(
                    got,
                    model_read(&history, snap),
                    "chain diverged from model at snap {} (latest ts {})",
                    snap,
                    ts
                );
            }
        }
        // Drain: with no live snapshots, one GC at the clock returns the
        // chain to a single version (the eager-GC bound).
        live.clear();
        chain.gc(ts);
        prop_assert_eq!(chain.retained(), 0, "chain must drain without snapshots");
        prop_assert_eq!(chain.read_at(ts).map(|r| r.get_i64(0)), model_read(&history, ts));
    }

    /// End-to-end through the protocol stack: commit a random sequence of
    /// single-key writes, registering snapshots at random points; every
    /// snapshot's table view equals the model state after exactly the
    /// prefix of commits that preceded it.
    #[test]
    fn every_snapshot_reads_a_prefix_of_the_commit_order(
        writes in proptest::collection::vec((0u64..8, 0i64..1_000, any::<bool>()), 1..40),
    ) {
        const KEYS: u64 = 8;
        let mut b = Database::builder();
        let t: TableId = b.add_table(
            "kv",
            Schema::build().column("k", DataType::U64).column("v", DataType::I64),
        );
        let db: Arc<Database> = b.build();
        for k in 0..KEYS {
            db.table(t).insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
        }
        let session = Session::new(
            Arc::clone(&db),
            Arc::new(LockingProtocol::bamboo()) as Arc<dyn Protocol>,
        );

        // Model: the table state after each commit prefix.
        let mut state = [0i64; KEYS as usize];
        let mut prefixes: Vec<[i64; KEYS as usize]> = vec![state];
        // Live snapshots: (txn, commit-prefix length at registration).
        let mut snaps = Vec::new();

        for (key, val, take_snap) in writes {
            if take_snap {
                let txn = session.snapshot();
                // Single-threaded: the stable point is exactly the number
                // of commits so far.
                prop_assert_eq!(txn.snapshot_ts().unwrap() as usize, prefixes.len() - 1);
                snaps.push((txn, prefixes.len() - 1));
            }
            let mut txn = session.begin();
            txn.update(t, key, |row| row.set(1, Value::I64(val))).unwrap();
            txn.commit().unwrap();
            state[key as usize] = val;
            prefixes.push(state);
        }

        // Every snapshot — including ones pinned across many later commits
        // — reads exactly its registration-time prefix.
        for (mut txn, prefix) in snaps {
            for k in 0..KEYS {
                let got = txn.read(t, k).unwrap().get_i64(1);
                prop_assert_eq!(
                    got,
                    prefixes[prefix][k as usize],
                    "snapshot at prefix {} read a non-prefix state for key {}",
                    prefix,
                    k
                );
            }
            prop_assert_eq!(txn.locks_acquired(), 0);
            txn.commit().unwrap();
        }
        prop_assert_eq!(db.snapshots.active_count(), 0);

        // With all snapshots released, the next commit's eager GC can drain
        // chains; verify the committed image matches the final model state.
        for k in 0..KEYS {
            prop_assert_eq!(
                db.table(t).get(k).unwrap().read_row().get_i64(1),
                state[k as usize]
            );
        }
    }
}
