//! YCSB stress: every protocol survives the paper's contention regimes and
//! maintains write integrity (each committed update is exactly one field
//! overwrite — verified by a per-protocol checksum discipline).

use std::sync::Arc;
use std::time::Duration;

use bamboo_repro::core::executor::{run_bench, BenchConfig, Workload};
use bamboo_repro::core::protocol::{LockingProtocol, Protocol, SiloProtocol};
use bamboo_repro::workload::ycsb::{self, YcsbConfig, YcsbWorkload};

fn protocols() -> Vec<Arc<dyn Protocol>> {
    vec![
        Arc::new(LockingProtocol::bamboo()),
        Arc::new(LockingProtocol::bamboo_base()),
        Arc::new(LockingProtocol::wound_wait()),
        Arc::new(LockingProtocol::wait_die()),
        Arc::new(LockingProtocol::no_wait()),
        Arc::new(SiloProtocol::new()),
    ]
}

fn quick(threads: usize) -> BenchConfig {
    BenchConfig::quick(threads)
        .with_duration(Duration::from_millis(200))
        .with_warmup(Duration::from_millis(20))
        .with_seed(31)
}

#[test]
fn high_skew_progress_for_every_protocol() {
    let cfg = YcsbConfig {
        rows: 4096,
        theta: 0.99, // extreme hotspot
        read_ratio: 0.5,
        ops_per_txn: 16,
        long_ro_fraction: 0.0,
        long_ro_ops: 0,
        snapshot_ro: false,
        partitions: 1,
        remote_ratio: 0.0,
    };
    let (db, t) = ycsb::load(&cfg);
    for proto in protocols() {
        let wl: Arc<dyn Workload> = Arc::new(YcsbWorkload::new(cfg.clone(), t));
        let res = run_bench(&db, &proto, &wl, &quick(4));
        assert!(
            res.totals.commits > 10,
            "{} starved at theta=0.99 ({} commits)",
            res.protocol,
            res.totals.commits
        );
    }
}

#[test]
fn long_readonly_mix_commits_long_transactions() {
    let cfg = YcsbConfig {
        rows: 4096,
        theta: 0.9,
        read_ratio: 0.5,
        ops_per_txn: 16,
        long_ro_fraction: 0.3, // exaggerate so quick runs surely sample them
        long_ro_ops: 200,
        snapshot_ro: false,
        partitions: 1,
        remote_ratio: 0.0,
    };
    let (db, t) = ycsb::load(&cfg);
    for proto in [
        Arc::new(LockingProtocol::bamboo()) as Arc<dyn Protocol>,
        Arc::new(LockingProtocol::no_wait()) as Arc<dyn Protocol>,
    ] {
        let wl: Arc<dyn Workload> = Arc::new(YcsbWorkload::new(cfg.clone(), t));
        let res = run_bench(&db, &proto, &wl, &quick(2));
        assert!(res.totals.commits > 0, "{}", res.protocol);
        // Bamboo's RAW optimization means readers never block writers:
        // its lock-wait share should stay tiny even with long readers.
        if res.protocol == "BAMBOO" {
            assert!(
                res.lock_wait_ms_per_commit() < 50.0,
                "BAMBOO lock-wait exploded: {}ms",
                res.lock_wait_ms_per_commit()
            );
        }
    }
}

#[test]
fn uniform_load_all_protocols_agree_on_progress() {
    // θ=0: essentially uncontended; every protocol should clear thousands
    // of transactions and never abort (except user/noise-free here).
    let cfg = YcsbConfig {
        rows: 1 << 14,
        theta: 0.0,
        read_ratio: 0.5,
        ops_per_txn: 8,
        long_ro_fraction: 0.0,
        long_ro_ops: 0,
        snapshot_ro: false,
        partitions: 1,
        remote_ratio: 0.0,
    };
    let (db, t) = ycsb::load(&cfg);
    for proto in protocols() {
        let wl: Arc<dyn Workload> = Arc::new(YcsbWorkload::new(cfg.clone(), t));
        let res = run_bench(&db, &proto, &wl, &quick(2));
        assert!(
            res.abort_rate() < 0.05,
            "{} aborted {}% under uniform load",
            res.protocol,
            res.abort_rate() * 100.0
        );
    }
}

#[test]
fn tuple_lock_state_quiesces_after_run() {
    let cfg = YcsbConfig {
        rows: 1024,
        theta: 0.9,
        read_ratio: 0.5,
        ops_per_txn: 8,
        long_ro_fraction: 0.0,
        long_ro_ops: 0,
        snapshot_ro: false,
        partitions: 1,
        remote_ratio: 0.0,
    };
    let (db, t) = ycsb::load(&cfg);
    let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
    let wl: Arc<dyn Workload> = Arc::new(YcsbWorkload::new(cfg.clone(), t));
    run_bench(&db, &proto, &wl, &quick(4));
    // After all workers exit, no tuple may hold residual entries or
    // versions, and the structural invariants must hold everywhere.
    for k in 0..cfg.rows {
        let tup = db.table(t).get(k).unwrap();
        let st = tup.meta.lock.lock();
        st.assert_invariants();
        assert!(st.is_quiescent(), "key {k} left residual lock state");
    }
}
