//! Property test for the §3.3 retire-point analysis: **soundness**.
//!
//! For random IR programs — straight-line accesses, data-dependent
//! conditionals, fixed-trip loops over computed key arrays —
//! `insert_retire_points` must never retire a lock *before* the access's
//! final write. The interpreter is the oracle: it runs the analysed
//! program under the Bamboo locking protocol in manual-retire mode and
//! counts writes that hit an already-retired access
//! ([`RunStats::reacquires`]); a sound analysis keeps that count at 0 on
//! every execution path. A second oracle re-runs the *original* program
//! on a fresh database and compares final states, so the transformation
//! also preserves semantics on the same inputs.

use bamboo_repro::analysis::ir::{AccessMode, Expr, Program, Stmt};
use bamboo_repro::analysis::{insert_retire_points, run_program, RunStats};
use bamboo_repro::core::protocol::{LockingProtocol, Protocol};
use bamboo_repro::core::{Database, Session};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn mk_db() -> Arc<Database> {
    let mut b = Database::builder();
    let t = b.add_table(
        "t",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
    );
    assert_eq!(t, TableId(0));
    let db = b.build();
    for k in 0..16u64 {
        db.table(t)
            .insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
    }
    db
}

fn snapshot(db: &Database) -> Vec<i64> {
    (0..16)
        .map(|k| db.table(TableId(0)).get(k).unwrap().read_row().get_i64(1))
        .collect()
}

/// Runs `program` as one committed transaction, returning its stats.
/// Manual-retire configuration: the interpreter's writes never
/// auto-retire by construction ([`run_program`] drives `update_manual`),
/// and the protocol's eager read placements are disabled too —
/// `retire_reads` and Optimization 3 (`no_raw_abort`, which slots readers
/// straight into `retired`) both off. The *only* retires left are the
/// synthesized `RetireIf` points, so `RunStats::reacquires` counts
/// exactly the analysis's premature retires — the §3.3 deployment model
/// the soundness property is about.
fn exec(db: &Arc<Database>, program: &Program, params: &[u64]) -> RunStats {
    let mut proto = LockingProtocol::bamboo();
    proto.policy.retire_reads = false;
    proto.policy.no_raw_abort = false;
    let session = Session::new(Arc::clone(db), Arc::new(proto.clone()) as Arc<dyn Protocol>);
    let mut txn = session.begin();
    let stats = run_program(&proto, &mut txn, program, params).unwrap();
    txn.commit().unwrap();
    stats
}

// ---------------------------------------------------------------------
// Random-program strategy. Keys stay in 0..16 (the loaded table); the
// scalars `a` and `b` are defined in a prologue from the two params, so
// every generated expression is closed. Access ids are assigned by a
// renumbering pass after generation (the analysis requires unique sites).
// ---------------------------------------------------------------------

fn key_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0u64..16).prop_map(Expr::Const),
        Just(Expr::var("a")),
        Just(Expr::var("b")),
        (1u64..16).prop_map(|c| Expr::Mod(
            Box::new(Expr::Add(
                Box::new(Expr::var("a")),
                Box::new(Expr::Const(c)),
            )),
            Box::new(Expr::Const(16)),
        )),
    ]
}

fn access() -> impl Strategy<Value = Stmt> {
    let mode = prop_oneof![Just(AccessMode::Read), Just(AccessMode::Write)];
    (key_expr(), mode).prop_map(|(key, mode)| Stmt::Access {
        id: 0, // renumbered below
        table: TableId(0),
        key,
        mode,
    })
}

fn cond_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0u64..2).prop_map(|c| Expr::eq(Expr::Param(0), Expr::Const(c))),
        Just(Expr::Lt(Box::new(Expr::var("a")), Box::new(Expr::var("b")),)),
        Just(Expr::ne(Expr::var("a"), Expr::var("b"))),
    ]
}

fn if_stmt() -> impl Strategy<Value = Stmt> {
    (
        cond_expr(),
        proptest::collection::vec(access(), 1..3),
        proptest::collection::vec(access(), 0..3),
    )
        .prop_map(|(cond, then_branch, else_branch)| Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
}

/// Listing-3-shaped loop: compute `keys[i]` then write it.
fn for_stmt() -> impl Strategy<Value = Stmt> {
    (1u64..4, 1u64..8, 0u64..16).prop_map(|(trip, stride, off)| Stmt::For {
        var: "i".into(),
        count: Expr::Const(trip),
        body: vec![
            Stmt::LetArr {
                arr: "keys".into(),
                idx: Expr::var("i"),
                expr: Expr::Mod(
                    Box::new(Expr::Add(
                        Box::new(Expr::Mul(
                            Box::new(Expr::var("i")),
                            Box::new(Expr::Const(stride)),
                        )),
                        Box::new(Expr::Const(off)),
                    )),
                    Box::new(Expr::Const(16)),
                ),
            },
            Stmt::Access {
                id: 0, // renumbered below
                table: TableId(0),
                key: Expr::index("keys", Expr::var("i")),
                mode: AccessMode::Write,
            },
        ],
    })
}

fn renumber(stmts: &mut [Stmt], next: &mut usize) {
    for s in stmts {
        match s {
            Stmt::Access { id, .. } => {
                *id = *next;
                *next += 1;
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                renumber(then_branch, next);
                renumber(else_branch, next);
            }
            Stmt::For { body, .. } => renumber(body, next),
            _ => {}
        }
    }
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(prop_oneof![access(), access(), if_stmt(), for_stmt()], 1..6)
        .prop_map(|body| {
            let mut stmts = vec![
                Stmt::Let {
                    var: "a".into(),
                    expr: Expr::Mod(Box::new(Expr::Param(0)), Box::new(Expr::Const(16))),
                },
                Stmt::Let {
                    var: "b".into(),
                    expr: Expr::Mod(Box::new(Expr::Param(1)), Box::new(Expr::Const(16))),
                },
            ];
            stmts.extend(body);
            let mut next = 0;
            renumber(&mut stmts, &mut next);
            Program { params: 2, stmts }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn retire_points_never_precede_final_write(
        program in arb_program(),
        p0 in 0u64..32,
        p1 in 0u64..32,
    ) {
        let analysed = insert_retire_points(&program);
        let db = mk_db();
        let stats = exec(&db, &analysed.program, &[p0, p1]);
        prop_assert_eq!(
            stats.reacquires, 0,
            "analysis retired a lock before the site's final write \
             (program: {:?}, report: {:?})",
            program, analysed.report
        );
        // Semantic preservation on the same inputs: the analysed program
        // leaves the database in exactly the state the original does.
        let db_orig = mk_db();
        exec(&db_orig, &program, &[p0, p1]);
        prop_assert_eq!(snapshot(&db_orig), snapshot(&db));
    }
}
