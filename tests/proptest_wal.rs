//! Property-based tests for the WAL record codec and segment framing:
//!
//! * every record round-trips bit-exactly through encode/decode;
//! * any truncation of a segment file yields a clean record prefix on
//!   scan — the checksum catches the torn frame, nothing decodes to
//!   garbage, and nothing before the tear is lost;
//! * flipping any single byte of a frame never yields a *different*
//!   record silently: the scan either still sees the original tail or
//!   stops at the corruption.

use std::path::PathBuf;

use bamboo_repro::storage::log::{
    decode_record, encode_record, scan_partition_log_from, SegmentWriter,
};
use bamboo_repro::storage::{FsyncPolicy, Row, Value, WalRecord};
use proptest::prelude::*;

fn tmp_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bamboo-pwal-{}-{}-{}",
        std::process::id(),
        tag,
        case
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Arbitrary `Value` — floats from a finite range only, so `PartialEq`
/// round-trip comparison is well-defined (NaN never equals itself).
fn value_strategy() -> BoxedStrategy<Value> {
    prop_oneof![
        any::<u64>().prop_map(Value::U64),
        any::<i64>().prop_map(Value::I64),
        (-1.0e18f64..1.0e18).prop_map(Value::F64),
        collection::vec(32u8..127, 0..24)
            .prop_map(|bytes| { Value::from(String::from_utf8(bytes).unwrap().as_str()) }),
    ]
    .boxed()
}

fn row_strategy() -> BoxedStrategy<Row> {
    collection::vec(value_strategy(), 0..6)
        .prop_map(Row::from)
        .boxed()
}

/// `Option<(u32, u64)>` — the shim has no `prop::option`, so model it as
/// a two-arm union.
fn secondary_strategy() -> BoxedStrategy<Option<(u32, u64)>> {
    prop_oneof![Just(None), (any::<u32>(), any::<u64>()).prop_map(Some),].boxed()
}

fn record_strategy() -> BoxedStrategy<WalRecord> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(txn_id, commit_ts, parts_mask)| {
            WalRecord::Begin {
                txn_id,
                commit_ts,
                parts_mask,
            }
        }),
        (any::<u32>(), any::<u64>(), row_strategy())
            .prop_map(|(table, key, row)| WalRecord::Update { table, key, row }),
        (
            any::<u32>(),
            any::<u64>(),
            row_strategy(),
            secondary_strategy()
        )
            .prop_map(|(table, key, row, secondary)| WalRecord::Insert {
                table,
                key,
                row,
                secondary,
            }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(txn_id, commit_ts)| WalRecord::Commit { txn_id, commit_ts }),
        (any::<u64>(), collection::vec(any::<u64>(), 0..8))
            .prop_map(|(stable_ts, cuts)| WalRecord::Checkpoint { stable_ts, cuts }),
    ]
    .boxed()
}

proptest! {
    // Default config: CI pins PROPTEST_CASES / PROPTEST_SEED.
    #![proptest_config(ProptestConfig::default())]

    /// Every record decodes back to itself from its own encoding.
    #[test]
    fn record_codec_round_trips(rec in record_strategy()) {
        let mut buf = Vec::new();
        encode_record(&rec, &mut buf);
        prop_assert_eq!(decode_record(&buf), Some(rec));
    }

    /// Truncating a segment at any byte leaves a scannable record
    /// *prefix*: the scan returns exactly the records whose frames fit
    /// entirely below the cut, and never decodes garbage.
    #[test]
    fn truncated_segment_scans_to_clean_prefix(
        recs in collection::vec(record_strategy(), 1..12),
        cut_frac in 0.0f64..1.0,
        case in any::<u64>(),
    ) {
        let dir = tmp_dir("chop", case);
        let mut w = SegmentWriter::open(&dir, 0, FsyncPolicy::Never, 1 << 20).unwrap();
        let mut frame_ends = Vec::new();
        for r in &recs {
            w.append_record(r).unwrap();
            frame_ends.push(w.lsn());
        }
        w.sync().unwrap();
        drop(w);

        // Chop the single segment file at an arbitrary byte offset.
        let seg = std::fs::read_dir(&dir).unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "seg"))
            .unwrap();
        let total = *frame_ends.last().unwrap();
        let file_len = std::fs::metadata(&seg).unwrap().len();
        let data_start = file_len - total;
        let cut = data_start + (cut_frac * total as f64) as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        let scan = scan_partition_log_from(&dir, 0, 0).unwrap();
        let kept = cut - data_start;
        let expect: Vec<_> = recs.iter()
            .zip(&frame_ends)
            .take_while(|(_, end)| **end <= kept)
            .map(|(r, _)| r.clone())
            .collect();
        let got: Vec<_> = scan.records.into_iter().map(|(_, r)| r).collect();
        prop_assert_eq!(got, expect, "scan after cut at byte {} of {}", kept, total);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping one byte anywhere in the record stream never silently
    /// *changes* a record: every record the scan does return was one of
    /// the originals (the frame checksum stops the scan at the
    /// corruption).
    #[test]
    fn corrupt_byte_never_yields_a_forged_record(
        recs in collection::vec(record_strategy(), 1..8),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
        case in any::<u64>(),
    ) {
        let dir = tmp_dir("flip", case);
        let mut w = SegmentWriter::open(&dir, 0, FsyncPolicy::Never, 1 << 20).unwrap();
        for r in &recs {
            w.append_record(r).unwrap();
        }
        let total = w.lsn();
        w.sync().unwrap();
        drop(w);

        let seg = std::fs::read_dir(&dir).unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "seg"))
            .unwrap();
        let mut bytes = std::fs::read(&seg).unwrap();
        let data_start = bytes.len() - total as usize;
        let pos = data_start + ((pos_frac * total as f64) as usize).min(total as usize - 1);
        bytes[pos] ^= flip;
        std::fs::write(&seg, &bytes).unwrap();

        let scan = scan_partition_log_from(&dir, 0, 0).unwrap();
        for (_, got) in &scan.records {
            prop_assert!(
                recs.iter().any(|r| r == got),
                "scan returned a record that was never written: {:?}",
                got
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

mod fault_schedule {
    use std::sync::Arc;

    use bamboo_repro::core::partition::{PartSession, PartitionedDb};
    use bamboo_repro::core::protocol::{LockingProtocol, Protocol};
    use bamboo_repro::core::DbOptions;
    use bamboo_repro::storage::log::{scan_partition_log_from, FaultInjector};
    use bamboo_repro::storage::{
        DataType, FaultBackend, FaultPlan, FsyncPolicy, PartitionId, RouteStrategy, Row, Schema,
        Value, WalRecord,
    };
    use proptest::prelude::*;

    const ACCOUNTS_PER_PART: u64 = 8;
    const PARTS: u32 = 2;
    const INITIAL: i64 = 1000;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Any prefix of a seeded fault schedule leaves every partition's
        /// log scannable to a clean record-group boundary: the scan
        /// succeeds, every group except (at most) a torn tail is a
        /// contiguous `Begin … Commit`, and full recovery conserves money.
        #[test]
        fn any_fault_schedule_prefix_leaves_clean_group_boundaries(
            seed in any::<u64>(),
            fsync_pm in 0u16..400,
            short_pm in 0u16..400,
            enospc_pm in 0u16..200,
            attempts in 1u64..30,
            case in any::<u64>(),
        ) {
            let dir = super::tmp_dir("fault-sched", case);
            let plan = FaultPlan {
                seed,
                fsync_permille: fsync_pm,
                short_write_permille: short_pm,
                enospc_permille: enospc_pm,
                ..FaultPlan::quiet(seed)
            };
            let injector = FaultInjector::new(plan);
            let backend = Arc::new(FaultBackend::new(Arc::clone(&injector)));
            let mut b = PartitionedDb::builder(PARTS);
            let t = b.add_table(
                "accounts",
                Schema::build()
                    .column("k", DataType::U64)
                    .column("v", DataType::I64),
                RouteStrategy::Range(vec![ACCOUNTS_PER_PART]),
            );
            b.with_options(
                DbOptions::new()
                    .with_wal_dir(dir.clone())
                    .with_fsync_policy(FsyncPolicy::EveryCommit)
                    .with_log_backend(backend),
            );
            let pdb = b.build();
            for a in 0..PARTS as u64 * ACCOUNTS_PER_PART {
                pdb.insert(t, a, Row::from(vec![Value::U64(a), Value::I64(INITIAL)]));
            }
            pdb.checkpoint().expect("genesis checkpoint (disarmed)");

            // `attempts` transfers of the schedule — the "prefix" under
            // test ends wherever the schedule leaves the log when the
            // fire stops (possibly mid-degradation).
            let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
            let session = PartSession::new(Arc::clone(&pdb), proto);
            injector.arm();
            for i in 0..attempts {
                let from = i % ACCOUNTS_PER_PART;
                let to = ACCOUNTS_PER_PART + (i + 1) % ACCOUNTS_PER_PART;
                let mut txn = session.begin_on(PartitionId(0));
                let _ = txn
                    .update(t, from, |r| r.set(1, Value::I64(r.get_i64(1) - 1)))
                    .and_then(|_| txn.update(t, to, |r| r.set(1, Value::I64(r.get_i64(1) + 1))))
                    .and_then(|_| txn.commit());
                // Heal under fire; a failed heal leaves the partition
                // degraded for the next iteration, which is also a valid
                // prefix of the schedule.
                for p in 0..PARTS {
                    if pdb.parts()[p as usize].wal().is_degraded() {
                        let _ = pdb.heal(PartitionId(p));
                    }
                }
            }
            injector.disarm();
            drop(session);
            drop(pdb);

            // The directory now holds whatever the faulted prefix left
            // behind. Scan each partition on the REAL backend: it must
            // parse, and groups must sit on clean boundaries.
            for p in 0..PARTS {
                let scan = scan_partition_log_from(&dir, p, 0)
                    .unwrap_or_else(|e| panic!("partition {p} log unscannable: {e}"));
                let mut in_group = false;
                let mut complete_groups = 0u64;
                for (_, rec) in &scan.records {
                    match rec {
                        WalRecord::Begin { .. } => {
                            prop_assert!(
                                !in_group,
                                "partition {} log: Begin inside an open group — a failed \
                                 group was not rewound/abandoned before the next append",
                                p
                            );
                            in_group = true;
                        }
                        WalRecord::Commit { .. } => {
                            prop_assert!(in_group, "partition {} log: orphan Commit", p);
                            in_group = false;
                            complete_groups += 1;
                        }
                        WalRecord::Update { .. } | WalRecord::Insert { .. } => {
                            prop_assert!(
                                in_group,
                                "partition {} log: write record outside any group",
                                p
                            );
                        }
                        WalRecord::Checkpoint { .. } => {
                            prop_assert!(
                                !in_group,
                                "partition {} log: checkpoint marker inside a group",
                                p
                            );
                        }
                    }
                }
                // An unterminated group is legal only as the torn TAIL —
                // which is exactly what `in_group` still set at EOF means.
                let _ = (in_group, complete_groups);
            }

            // And the ultimate boundary check: recovery accepts the log
            // and conserves money.
            let (rec, _report) = PartitionedDb::recover(
                DbOptions::new()
                    .with_wal_dir(dir.clone())
                    .with_fsync_policy(FsyncPolicy::EveryCommit),
            )
            .unwrap_or_else(|e| panic!("recovery of the faulted prefix failed: {e}"));
            let mut total = 0i64;
            for part in rec.parts() {
                let table = part.db().table(t);
                for r in 0..table.len() as u64 {
                    total += table.get_by_row_id(r).unwrap().read_row().get_i64(1);
                }
            }
            prop_assert_eq!(
                total,
                PARTS as i64 * ACCOUNTS_PER_PART as i64 * INITIAL,
                "faulted log prefix leaked money through recovery"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
