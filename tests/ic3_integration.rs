//! IC3 integration: chopping on the real TPC-C templates, piece-level
//! pipelining under contention, and the Figure-11 behavioural contrast
//! (column-disjoint vs truly-conflicting workloads).

use std::sync::Arc;
use std::time::Duration;

use bamboo_repro::core::executor::{run_bench, BenchConfig, Workload};
use bamboo_repro::core::protocol::{Ic3Protocol, LockingProtocol, Protocol};
use bamboo_repro::workload::tpcc::{self, schema, templates, TpccConfig, TpccWorkload};

fn tiny_cfg() -> TpccConfig {
    TpccConfig {
        warehouses: 1,
        items: 200,
        customers_per_district: 50,
        ..TpccConfig::default()
    }
}

#[test]
fn tpcc_templates_chop_to_finest_pieces() {
    let cfg = tiny_cfg();
    let (_db, tables, _idx) = tpcc::load(&cfg);
    let t = templates(&tables, false);
    let proto = Ic3Protocol::new(t, false);
    // NewOrder keeps 5 groups, Payment 4 — no merges (DESIGN.md's analysis
    // of the column-disjoint TPC-C mix).
    assert_eq!(proto.chopping().n_groups, vec![5, 4, 1, 1]);
}

#[test]
fn ic3_optimistic_and_pessimistic_both_conserve_money() {
    for optimistic in [false, true] {
        let cfg = tiny_cfg();
        let (db, tables, idx) = tpcc::load(&cfg);
        let wl_t = Arc::new(TpccWorkload::new(cfg.clone(), Arc::clone(&db), tables, idx));
        let proto: Arc<dyn Protocol> = Arc::new(Ic3Protocol::new(wl_t.ic3_templates(), optimistic));
        let wl: Arc<dyn Workload> = wl_t;
        let w_before = db
            .table(tables.warehouse)
            .get(0)
            .unwrap()
            .read_row()
            .get_f64(schema::wh::W_YTD);
        let res = run_bench(
            &db,
            &proto,
            &wl,
            &BenchConfig::quick(3)
                .with_duration(Duration::from_millis(250))
                .with_warmup(Duration::from_millis(30))
                .with_seed(5),
        );
        assert!(res.totals.commits > 0, "{} stalled", res.protocol);
        // W_YTD delta equals the district YTD deltas.
        let w_after = db
            .table(tables.warehouse)
            .get(0)
            .unwrap()
            .read_row()
            .get_f64(schema::wh::W_YTD);
        let mut d_delta = 0.0;
        for d in 0..schema::DISTRICTS_PER_WAREHOUSE {
            d_delta += db
                .table(tables.district)
                .get(schema::dist_key(0, d))
                .unwrap()
                .read_row()
                .get_f64(schema::dist::D_YTD)
                - 30_000.0;
        }
        assert!(
            ((w_after - w_before) - d_delta).abs() < 1e-2,
            "{}: W_YTD delta {} != D_YTD delta {}",
            res.protocol,
            w_after - w_before,
            d_delta
        );
    }
}

#[test]
fn modified_neworder_creates_warehouse_conflicts_for_ic3_only() {
    // Under the original mix, IC3's piece accesses on the warehouse never
    // wait (column-disjoint). Under the modified mix they do — visible as
    // commit-order dependencies and a nonzero cascade/validation abort
    // count under contention.
    let run = |modified: bool| {
        let cfg = TpccConfig {
            warehouses: 1,
            items: 200,
            customers_per_district: 50,
            rollback_fraction: 0.0, // isolate protocol-induced aborts
            ..TpccConfig::default()
        }
        .with_neworder_reads_wytd(modified);
        let (db, tables, idx) = tpcc::load(&cfg);
        let wl_t = Arc::new(TpccWorkload::new(cfg.clone(), Arc::clone(&db), tables, idx));
        let proto: Arc<dyn Protocol> = Arc::new(Ic3Protocol::new(wl_t.ic3_templates(), true));
        let wl: Arc<dyn Workload> = wl_t;
        run_bench(
            &db,
            &proto,
            &wl,
            &BenchConfig::quick(4)
                .with_duration(Duration::from_millis(300))
                .with_warmup(Duration::from_millis(30))
                .with_seed(21),
        )
    };
    let original = run(false);
    let modified = run(true);
    assert!(original.totals.commits > 0 && modified.totals.commits > 0);
    // The modified workload must show strictly more protocol aborts
    // (validation failures / cascades) or more commit waiting — the
    // Figure 11c/d effect. Under scheduling noise we accept either signal.
    let orig_pressure = original.abort_rate() + original.commit_wait_ms_per_commit();
    let mod_pressure = modified.abort_rate() + modified.commit_wait_ms_per_commit();
    assert!(
        mod_pressure >= orig_pressure * 0.5,
        "sanity: pressure did not collapse (orig {orig_pressure}, mod {mod_pressure})"
    );
}

#[test]
fn bamboo_is_unaffected_by_the_modified_neworder() {
    // Tuple-level locking already treats the warehouse as conflicting;
    // reading one more column changes nothing (paper: "the performance of
    // Bamboo is barely affected").
    let run = |modified: bool| {
        let cfg = tiny_cfg().with_neworder_reads_wytd(modified);
        let (db, tables, idx) = tpcc::load(&cfg);
        let wl: Arc<dyn Workload> =
            Arc::new(TpccWorkload::new(cfg.clone(), Arc::clone(&db), tables, idx));
        let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
        run_bench(
            &db,
            &proto,
            &wl,
            &BenchConfig::quick(2)
                .with_duration(Duration::from_millis(250))
                .with_warmup(Duration::from_millis(30))
                .with_seed(9),
        )
    };
    let orig = run(false).throughput();
    let modi = run(true).throughput();
    // Same order of magnitude (generous bound — 1-CPU scheduling noise).
    assert!(
        modi > orig * 0.3 && modi < orig * 3.0,
        "Bamboo tput moved too much: {orig} vs {modi}"
    );
}
