//! §3.4 "Weak Isolation" and "Opacity": each level permits exactly the
//! anomalies it should and no more.

use std::sync::Arc;

use bamboo_repro::core::protocol::{IsolationLevel, LockingProtocol, Protocol};
use bamboo_repro::core::{Database, Session, TxnOptions};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};

fn load() -> (Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "t",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
    );
    let db = b.build();
    for k in 0..8u64 {
        db.table(t)
            .insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
    }
    (db, t)
}

fn session_with(db: &Arc<Database>, proto: LockingProtocol) -> Session {
    Session::new(Arc::clone(db), Arc::new(proto) as Arc<dyn Protocol>)
}

fn set_to(v: i64) -> impl FnMut(&mut Row) {
    move |row: &mut Row| row.set(1, Value::I64(v))
}

#[test]
fn serializable_reads_see_dirty_retired_data_with_protection() {
    // Serializable Bamboo *does* read dirty data — protected by the commit
    // semaphore and cascades (that is the whole point of the paper).
    let (db, t) = load();
    let session = session_with(&db, LockingProtocol::bamboo_base());
    let mut w = session.begin();
    w.update(t, 0, set_to(42)).unwrap();
    let mut r = session.begin();
    assert_eq!(r.read(t, 0).unwrap().get_i64(1), 42);
    assert_eq!(
        r.shared().semaphore(),
        1,
        "dirty read is dependency-tracked"
    );
    w.commit().unwrap();
    r.commit().unwrap();
}

#[test]
fn read_committed_never_sees_uncommitted_data() {
    let (db, t) = load();
    let session = session_with(
        &db,
        LockingProtocol::bamboo_base().with_isolation(IsolationLevel::ReadCommitted),
    );
    let mut w = session.begin();
    w.update(t, 0, set_to(42)).unwrap();
    // Writer retired its dirty version; an RC reader must still see 0.
    let mut r = session.begin();
    assert_eq!(
        r.read(t, 0).unwrap().get_i64(1),
        0,
        "read committed must not observe the dirty 42"
    );
    assert_eq!(r.shared().semaphore(), 0, "no dependency was created");
    w.commit().unwrap();
    // After the writer commits, the same reader sees the new value — the
    // non-repeatable read RC permits.
    assert_eq!(
        r.read(t, 0).unwrap().get_i64(1),
        42,
        "non-repeatable read is allowed under RC"
    );
    r.commit().unwrap();
}

#[test]
fn read_committed_still_reads_own_writes() {
    let (db, t) = load();
    let session = session_with(
        &db,
        LockingProtocol::bamboo().with_isolation(IsolationLevel::ReadCommitted),
    );
    let mut c = session.begin();
    c.update(t, 1, set_to(7)).unwrap();
    assert_eq!(c.read(t, 1).unwrap().get_i64(1), 7);
    c.commit().unwrap();
}

#[test]
fn read_uncommitted_sees_dirty_data_without_dependencies() {
    let (db, t) = load();
    let ser = session_with(&db, LockingProtocol::bamboo_base());
    let ru = session_with(
        &db,
        LockingProtocol::bamboo_base().with_isolation(IsolationLevel::ReadUncommitted),
    );
    // A serializable writer retires a dirty version…
    let mut w = ser.begin();
    w.update(t, 0, set_to(99)).unwrap();
    // …an RU reader sees it with no semaphore and no lock entry.
    let mut r = ru.begin();
    assert_eq!(r.read(t, 0).unwrap().get_i64(1), 99);
    assert_eq!(r.shared().semaphore(), 0);
    r.commit().unwrap();
    // The RU reader could commit before the writer: the dirty-read anomaly
    // RU explicitly allows.
    w.abort();
}

#[test]
fn read_uncommitted_retire_becomes_release() {
    // "read uncommitted means each retire becomes a release": the write is
    // installed and the entry gone before commit.
    let (db, t) = load();
    let ru = session_with(
        &db,
        LockingProtocol::bamboo_base().with_isolation(IsolationLevel::ReadUncommitted),
    );
    let mut w = ru.begin();
    w.update(t, 2, set_to(5)).unwrap();
    assert_eq!(
        db.table(t).get(2).unwrap().read_row().get_i64(1),
        5,
        "write installed at retire time"
    );
    assert!(db.table(t).get(2).unwrap().meta.lock.lock().is_quiescent());
    // Abort cannot undo it — the documented RU hazard.
    w.abort();
    assert_eq!(db.table(t).get(2).unwrap().read_row().get_i64(1), 5);
}

#[test]
fn opaque_transactions_wait_out_dirty_state() {
    let (db, t) = load();
    let session = session_with(&db, LockingProtocol::bamboo_base());
    // Writer retires a dirty version.
    let mut w = session.begin();
    w.update(t, 0, set_to(77)).unwrap();
    // An opaque reader must block until the writer resolves.
    let db2 = Arc::clone(&db);
    let h = std::thread::spawn(move || {
        let session = session_with(&db2, LockingProtocol::bamboo_base());
        let mut r = session.begin_with(TxnOptions::new().opaque());
        let v = r.read(t, 0).unwrap().get_i64(1);
        r.commit().unwrap();
        v
    });
    std::thread::sleep(std::time::Duration::from_millis(30));
    assert!(!h.is_finished(), "opaque reader must wait, not read dirty");
    w.commit().unwrap();
    assert_eq!(
        h.join().unwrap(),
        77,
        "after the writer commits, the opaque reader sees committed data"
    );
}

#[test]
fn opaque_transactions_never_retire_their_writes() {
    let (db, t) = load();
    let session = session_with(&db, LockingProtocol::bamboo_base()); // would retire eagerly
    let mut c = session.begin_with(TxnOptions::new().opaque());
    c.update(t, 3, set_to(1)).unwrap();
    let st = db.table(t).get(3).unwrap();
    assert_eq!(st.meta.lock.lock().retired_len(), 0);
    assert_eq!(st.meta.lock.lock().owners_len(), 1, "held like Wound-Wait");
    c.commit().unwrap();
}

#[test]
fn repeatable_read_matches_serializable_on_point_accesses() {
    let (db, t) = load();
    let session = session_with(
        &db,
        LockingProtocol::bamboo().with_isolation(IsolationLevel::RepeatableRead),
    );
    let mut c = session.begin();
    let a = c.read(t, 4).unwrap().get_i64(1);
    let b = c.read(t, 4).unwrap().get_i64(1);
    assert_eq!(a, b, "repeatable within the transaction");
    c.commit().unwrap();
}
