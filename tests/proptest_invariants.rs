//! Property-based tests (proptest) on the core invariants:
//!
//! * lock-entry structural invariants under arbitrary operation sequences;
//! * conservation under random concurrent transfer mixes per protocol;
//! * retire-point analysis safety (never retire before a later same-tuple
//!   write on the executed path);
//! * zipfian sampler bounds.

use std::sync::Arc;

use bamboo_repro::analysis::ir::{AccessMode, Expr, Program, Stmt};
use bamboo_repro::analysis::{insert_retire_points, run_program};
use bamboo_repro::core::lock::{Acquired, LockPolicy};
use bamboo_repro::core::protocol::{LockingProtocol, Protocol, SiloProtocol};
use bamboo_repro::core::ts::TsSource;
use bamboo_repro::core::txn::{LockMode, TxnShared};
use bamboo_repro::core::{Database, TupleCc};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Tuple, Value};
use bamboo_repro::workload::Zipfian;
use proptest::prelude::*;

fn mk_tuple() -> (bamboo_repro::storage::Table<TupleCc>, Arc<Tuple<TupleCc>>) {
    let table = bamboo_repro::storage::Table::new(
        "t",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
    );
    let tup = table.insert(0, Row::from(vec![Value::U64(0), Value::I64(0)]));
    (table, tup)
}

/// Ops the property test drives against a single lock entry.
#[derive(Clone, Debug)]
enum LockOp {
    Acquire { txn: usize, ex: bool },
    Retire { txn: usize },
    Release { txn: usize, commit: bool },
    Wound { txn: usize },
}

fn lock_op_strategy(n_txns: usize) -> impl Strategy<Value = LockOp> {
    prop_oneof![
        (0..n_txns, any::<bool>()).prop_map(|(txn, ex)| LockOp::Acquire { txn, ex }),
        (0..n_txns).prop_map(|txn| LockOp::Retire { txn }),
        (0..n_txns, any::<bool>()).prop_map(|(txn, commit)| LockOp::Release { txn, commit }),
        (0..n_txns).prop_map(|txn| LockOp::Wound { txn }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive a single lock entry through arbitrary acquire/retire/release
    /// sequences; after every step the structural invariants must hold and
    /// semaphores must stay non-negative; after releasing everything the
    /// entry must be quiescent and all semaphores zero.
    #[test]
    fn lock_entry_invariants_hold_under_random_ops(
        ops in proptest::collection::vec(lock_op_strategy(6), 1..60),
    ) {
        let (_table, tup) = mk_tuple();
        let pol = LockPolicy::bamboo();
        let ts = TsSource::new();
        let txns: Vec<Arc<TxnShared>> =
            (0..6).map(|i| TxnShared::new(i as u64 + 1, ts.assign())).collect();
        // Track what each txn currently holds: None | Some(granted).
        let mut state = [0u8; 6]; // 0 none, 1 waiting, 2 granted-owner, 3 granted-retired
        // `ex[t]` records whether t's grant was exclusive (only EX entries
        // may retire); `rows[t]` keeps the granted image so retire can
        // publish it and a committing release can install it.
        let mut ex_mode = [false; 6];
        let mut rows: [Option<bamboo_repro::storage::Row>; 6] = Default::default();
        for op in ops {
            match op {
                LockOp::Acquire { txn, ex } => {
                    if state[txn] != 0 || txns[txn].is_aborted() {
                        continue;
                    }
                    let mode = if ex { LockMode::Ex } else { LockMode::Sh };
                    let mut st = tup.meta.lock.lock();
                    match st.acquire(&tup, &pol, &txns[txn], mode, &ts) {
                        Acquired::Granted { retired, row } => {
                            state[txn] = if retired { 3 } else { 2 };
                            ex_mode[txn] = ex;
                            rows[txn] = Some(row);
                        }
                        Acquired::Wait => state[txn] = 1,
                        Acquired::Die(_) => {}
                    }
                    st.assert_invariants();
                }
                LockOp::Retire { txn } => {
                    // Only exclusive owners retire through LockState::retire;
                    // skip wounded txns like a real worker would.
                    if state[txn] != 2 || !ex_mode[txn] || txns[txn].is_aborted() {
                        continue;
                    }
                    let row = rows[txn].clone().expect("granted txn kept its row");
                    let mut st = tup.meta.lock.lock();
                    st.retire(&txns[txn], row, &pol);
                    st.assert_invariants();
                    state[txn] = 3;
                }
                LockOp::Release { txn, commit } => {
                    if state[txn] == 0 {
                        continue;
                    }
                    let mut st = tup.meta.lock.lock();
                    if state[txn] == 1 {
                        st.cancel_wait(&txns[txn], &pol);
                    } else {
                        let committed = commit && !txns[txn].is_aborted();
                        // Retired EX commits install their published version,
                        // mirroring the protocol's commit path.
                        let install = match (state[txn], committed, ex_mode[txn]) {
                            (3, true, true) => rows[txn]
                                .as_ref()
                                .map(|r| bamboo_repro::core::lock::CommitInstall::untimed(&tup, r)),
                            _ => None,
                        };
                        st.release(&txns[txn], &pol, committed, install);
                    }
                    st.assert_invariants();
                    state[txn] = 0;
                    rows[txn] = None;
                }
                LockOp::Wound { txn } => {
                    txns[txn].set_abort(bamboo_repro::core::AbortReason::Wounded);
                }
            }
            // Semaphores never go negative.
            for t in &txns {
                prop_assert!(t.semaphore() >= 0, "negative semaphore");
            }
        }
        // Drain: release everything still held.
        for (i, t) in txns.iter().enumerate() {
            let mut st = tup.meta.lock.lock();
            if state[i] == 1 {
                st.cancel_wait(t, &pol);
            } else if state[i] != 0 {
                st.release(t, &pol, false, None);
            }
            st.assert_invariants();
        }
        let st = tup.meta.lock.lock();
        prop_assert!(st.is_quiescent(), "entry must drain to quiescence");
        drop(st);
        for t in &txns {
            prop_assert_eq!(t.semaphore(), 0, "semaphore must return to zero");
        }
    }

    /// Random concurrent transfer mixes conserve the total balance under
    /// Bamboo and Silo.
    #[test]
    fn random_transfers_conserve_balance(seed in any::<u64>()) {
        use bamboo_repro::core::executor::{run_bench, BenchConfig, TxnSpec, Workload};
        use bamboo_repro::core::{Abort, Txn};
        use rand::rngs::SmallRng;
        use rand::Rng;

        const N: u64 = 16;
        struct Spec { t: TableId, a: u64, b: u64 }
        impl TxnSpec for Spec {
            fn planned_ops(&self) -> Option<usize> { Some(2) }
            fn run_piece(&self, _p: usize, txn: &mut Txn<'_>) -> Result<(), Abort> {
                txn.update(self.t, self.a, |r| {
                    let v = r.get_i64(1);
                    r.set(1, Value::I64(v - 1));
                })?;
                txn.update(self.t, self.b, |r| {
                    let v = r.get_i64(1);
                    r.set(1, Value::I64(v + 1));
                })
            }
        }
        struct Wl { t: TableId }
        impl Workload for Wl {
            fn name(&self) -> &str { "prop-transfer" }
            fn generate(&self, _w: usize, rng: &mut SmallRng) -> Box<dyn TxnSpec> {
                let a = rng.gen_range(0..N);
                let mut b = rng.gen_range(0..N - 1);
                if b >= a { b += 1; }
                Box::new(Spec { t: self.t, a, b })
            }
        }

        for proto in [
            Arc::new(LockingProtocol::bamboo()) as Arc<dyn Protocol>,
            Arc::new(SiloProtocol::new()) as Arc<dyn Protocol>,
        ] {
            let mut b = Database::builder();
            let t = b.add_table(
                "a",
                Schema::build().column("k", DataType::U64).column("v", DataType::I64),
            );
            let db = b.build();
            for k in 0..N {
                db.table(t).insert(k, Row::from(vec![Value::U64(k), Value::I64(100)]));
            }
            let wl: Arc<dyn Workload> = Arc::new(Wl { t });
            run_bench(
                &db,
                &proto,
                &wl,
                &BenchConfig::quick(2)
                    .with_duration(std::time::Duration::from_millis(50))
                    .with_warmup(std::time::Duration::from_millis(5))
                    .with_seed(seed),
            );
            let total: i64 = (0..N)
                .map(|k| db.table(t).get(k).unwrap().read_row().get_i64(1))
                .sum();
            prop_assert_eq!(total, N as i64 * 100);
        }
    }

    /// Zipfian samples stay in range and rank 0 dominates for skewed θ.
    #[test]
    fn zipfian_bounds(n in 1u64..10_000, theta in 0.0f64..0.99) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let z = Zipfian::new(n, theta);
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// The retire-point analysis never triggers a second write to an
    /// already-retired access on the executed path, for the Listing-1
    /// program shape over arbitrary parameters.
    #[test]
    fn analysis_is_safe_for_conditional_reaccess(cond in 0u64..2, key2 in 0u64..8) {
        let program = Program {
            params: 2,
            stmts: vec![
                Stmt::Access {
                    id: 0,
                    table: TableId(0),
                    key: Expr::Const(5),
                    mode: AccessMode::Write,
                },
                Stmt::Let { var: "k2".into(), expr: Expr::Param(1) },
                Stmt::If {
                    cond: Expr::Param(0),
                    then_branch: vec![Stmt::Access {
                        id: 1,
                        table: TableId(0),
                        key: Expr::var("k2"),
                        mode: AccessMode::Write,
                    }],
                    else_branch: vec![],
                },
            ],
        };
        let analysed = insert_retire_points(&program);
        let mut b = Database::builder();
        let t = b.add_table(
            "t",
            Schema::build().column("k", DataType::U64).column("v", DataType::I64),
        );
        prop_assert_eq!(t, TableId(0));
        let db = b.build();
        for k in 0..8u64 {
            db.table(t).insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
        }
        let proto = LockingProtocol::bamboo();
        let session = bamboo_repro::core::Session::new(
            Arc::clone(&db),
            Arc::new(proto.clone()) as Arc<dyn Protocol>,
        );
        let mut txn = session.begin();
        let stats = run_program(&proto, &mut txn, &analysed.program, &[cond, key2]).unwrap();
        txn.commit().unwrap();
        prop_assert_eq!(stats.reacquires, 0, "retire must never precede a same-tuple write");
        // And the retire must actually fire whenever it is safe.
        if cond == 0 || key2 != 5 {
            prop_assert!(stats.retires >= 1, "safe retire skipped");
        }
    }
}
