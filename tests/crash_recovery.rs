//! The `kill -9` crash harness: a child process loads a durable bank,
//! fires transfers under `FsyncPolicy::EveryCommit` and prints an `ACK`
//! line for every fsync-acknowledged commit; the parent SIGKILLs it in
//! steady state — so the crash lands at an arbitrary point of the commit
//! pipeline, possibly mid-append — then recovers the directory and checks:
//!
//! 1. money is conserved (the sum of all balances is exactly the initial
//!    endowment);
//! 2. every acknowledged commit is present (each transfer also inserts a
//!    unique ledger row in the same transaction; every `ACK`ed ledger row
//!    must exist after recovery with the right payload);
//! 3. atomicity: replaying the *recovered* ledger against the initial
//!    balances reproduces the recovered balances exactly — no transfer is
//!    half-applied.
//!
//! The child is this same test re-executed with `BAMBOO_CRASH_DIR` set.
//!
//! A second variant (`BAMBOO_CRASH_FAULT` = seed) layers a seeded
//! [`FaultBackend`] under the child's WAL, so the SIGKILL lands on a
//! pipeline that is *already* absorbing fsync failures, torn writes and
//! `ENOSPC` — the child heals degraded partitions in place and keeps
//! acking. The same three invariants must hold.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bamboo_repro::core::partition::{PartSession, PartitionedDb};
use bamboo_repro::core::protocol::{LockingProtocol, Protocol};
use bamboo_repro::core::DbOptions;
use bamboo_repro::storage::log::FaultInjector;
use bamboo_repro::storage::{
    DataType, FaultBackend, FaultPlan, FsyncPolicy, LogBackend, PartitionId, RouteStrategy, Row,
    Schema, TableId, Value,
};

const ACCOUNTS_PER_PART: u64 = 8;
const INITIAL: i64 = 1000;
const PARTS: u32 = 2;
const ACCOUNTS: TableId = TableId(0);
const LEDGER: TableId = TableId(1);

/// The coordinator parameters used by the group-commit crash variant.
const GROUP_POLICY: FsyncPolicy = FsyncPolicy::GroupCommit {
    max_batch: 8,
    max_wait_us: 100,
};

fn build_with(
    dir: &Path,
    backend: Option<Arc<dyn LogBackend>>,
    policy: FsyncPolicy,
) -> Arc<PartitionedDb> {
    let mut b = PartitionedDb::builder(PARTS);
    b.add_table(
        "accounts",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
        RouteStrategy::Range(vec![ACCOUNTS_PER_PART]),
    );
    b.add_table(
        "ledger",
        Schema::build()
            .column("seq", DataType::U64)
            .column("from", DataType::U64)
            .column("to", DataType::U64)
            .column("amount", DataType::I64),
        RouteStrategy::Hash,
    );
    let mut opts = DbOptions::new()
        .with_wal_dir(dir.to_path_buf())
        .with_fsync_policy(policy);
    if let Some(backend) = backend {
        opts = opts.with_log_backend(backend);
    }
    b.with_options(opts);
    b.build()
}

/// Child mode: load, genesis-checkpoint, then fire transfers forever,
/// acknowledging each committed one on stdout. Killed by the parent.
///
/// With a fault seed, the WAL runs on a [`FaultBackend`] armed after the
/// genesis checkpoint. Open/read faults are left at zero so a degraded
/// partition can always be healed; the child heals on every
/// durability-failed commit and keeps firing.
fn child_main(dir: PathBuf, fault_seed: Option<u64>) -> ! {
    let injector = fault_seed.map(|seed| {
        FaultInjector::new(FaultPlan {
            seed,
            fsync_permille: 30,
            short_write_permille: 20,
            enospc_permille: 10,
            ..FaultPlan::quiet(seed)
        })
    });
    let backend = injector
        .as_ref()
        .map(|i| Arc::new(FaultBackend::new(Arc::clone(i))) as Arc<dyn LogBackend>);
    let pdb = build_with(&dir, backend, FsyncPolicy::EveryCommit);
    for a in 0..PARTS as u64 * ACCOUNTS_PER_PART {
        pdb.insert(
            ACCOUNTS,
            a,
            Row::from(vec![Value::U64(a), Value::I64(INITIAL)]),
        );
    }
    pdb.checkpoint().expect("genesis checkpoint");
    if let Some(i) = &injector {
        i.arm();
    }

    let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
    let session = PartSession::new(Arc::clone(&pdb), proto);
    let mut rng = 0xB4D5EEDu64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        rng
    };
    let stdout = std::io::stdout();
    for seq in 1u64..1_000_000 {
        let from = next() % ACCOUNTS_PER_PART;
        let to = ACCOUNTS_PER_PART + next() % ACCOUNTS_PER_PART;
        let amount = (next() % 10) as i64 + 1;
        let mut txn = session.begin_on(PartitionId(0));
        let committed = txn
            .update(ACCOUNTS, from, |r| {
                r.set(1, Value::I64(r.get_i64(1) - amount))
            })
            .and_then(|_| {
                txn.update(ACCOUNTS, to, |r| {
                    r.set(1, Value::I64(r.get_i64(1) + amount))
                })
            })
            .and_then(|_| {
                txn.insert(
                    LEDGER,
                    seq,
                    Row::from(vec![
                        Value::U64(seq),
                        Value::U64(from),
                        Value::U64(to),
                        Value::I64(amount),
                    ]),
                    None,
                )
            })
            .and_then(|_| txn.commit());
        if committed.is_ok() {
            // The commit fsynced (EveryCommit): acknowledge it. Flush so
            // the parent sees the ack before any SIGKILL.
            let mut out = stdout.lock();
            writeln!(out, "ACK {seq} {from} {to} {amount}").unwrap();
            out.flush().unwrap();
        } else if injector.is_some() {
            // An injected fault aborted this commit (never acked). Heal
            // any partition the permanent fault poisoned so the fire —
            // and the ack stream the parent is waiting on — continues.
            for p in 0..PARTS {
                if pdb.parts()[p as usize].wal().is_degraded() {
                    let _ = pdb.heal(PartitionId(p));
                }
            }
        }
    }
    std::process::exit(0);
}

/// Group-commit child mode: the same bank, but commits ride the
/// deferred-ack pipeline — a flight of transfers is staged with
/// `commit_deferred` (commit point hit, locks released and versions
/// installed, no fsync yet), then the whole flight is acknowledged; one
/// leader fsync covers it. Only *acked* transfers print `ACK`, so a
/// SIGKILL mid-flight may lose staged-but-unacked commits — never acked
/// ones. That asymmetry is exactly the group-commit contract under test.
fn child_main_group(dir: PathBuf) -> ! {
    let pdb = build_with(&dir, None, GROUP_POLICY);
    for a in 0..PARTS as u64 * ACCOUNTS_PER_PART {
        pdb.insert(
            ACCOUNTS,
            a,
            Row::from(vec![Value::U64(a), Value::I64(INITIAL)]),
        );
    }
    pdb.checkpoint().expect("genesis checkpoint");

    let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
    let session = PartSession::new(Arc::clone(&pdb), proto);
    let mut rng = 0xB4D5EEDu64;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        rng
    };
    let stdout = std::io::stdout();
    let mut seq = 0u64;
    loop {
        let mut flight = Vec::new();
        for _ in 0..8 {
            seq += 1;
            let from = next() % ACCOUNTS_PER_PART;
            let to = ACCOUNTS_PER_PART + next() % ACCOUNTS_PER_PART;
            let amount = (next() % 10) as i64 + 1;
            let mut txn = session.begin_on(PartitionId(0));
            let staged = txn
                .update(ACCOUNTS, from, |r| {
                    r.set(1, Value::I64(r.get_i64(1) - amount))
                })
                .and_then(|_| {
                    txn.update(ACCOUNTS, to, |r| {
                        r.set(1, Value::I64(r.get_i64(1) + amount))
                    })
                })
                .and_then(|_| {
                    txn.insert(
                        LEDGER,
                        seq,
                        Row::from(vec![
                            Value::U64(seq),
                            Value::U64(from),
                            Value::U64(to),
                            Value::I64(amount),
                        ]),
                        None,
                    )
                });
            if staged.is_err() {
                continue; // dropped `txn` runs the abort path
            }
            if let Ok(Some(ticket)) = txn.commit_deferred() {
                flight.push((seq, from, to, amount, ticket));
            }
        }
        for (seq, from, to, amount, ticket) in flight {
            if session.session(PartitionId(0)).ack_ticket(ticket).is_ok() {
                // The durability horizon covers this commit: acknowledge
                // it. Flush so the parent sees the ack before any SIGKILL.
                let mut out = stdout.lock();
                writeln!(out, "ACK {seq} {from} {to} {amount}").unwrap();
                out.flush().unwrap();
            }
        }
    }
}

#[test]
fn kill9_crash_preserves_acked_commits() {
    if let Ok(dir) = std::env::var("BAMBOO_CRASH_DIR") {
        child_main(PathBuf::from(dir), None);
    }
    run_crash_harness(
        "kill9_crash_preserves_acked_commits",
        None,
        FsyncPolicy::EveryCommit,
        "clean",
    );
}

#[test]
fn kill9_crash_group_commit_preserves_acked_commits() {
    if let Ok(dir) = std::env::var("BAMBOO_CRASH_DIR") {
        child_main_group(PathBuf::from(dir));
    }
    run_crash_harness(
        "kill9_crash_group_commit_preserves_acked_commits",
        None,
        GROUP_POLICY,
        "group",
    );
}

#[test]
fn kill9_crash_with_storage_faults_preserves_acked_commits() {
    if let Ok(dir) = std::env::var("BAMBOO_CRASH_DIR") {
        let seed = std::env::var("BAMBOO_CRASH_FAULT")
            .expect("fault child needs BAMBOO_CRASH_FAULT")
            .parse()
            .expect("BAMBOO_CRASH_FAULT must be a u64 seed");
        child_main(PathBuf::from(dir), Some(seed));
    }
    // Reuse the chaos-suite seed knob so the CI sweep exercises this
    // harness under the same five schedules.
    let seed = std::env::var("BAMBOO_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA017);
    println!("crash fault seed: {seed}");
    run_crash_harness(
        "kill9_crash_with_storage_faults_preserves_acked_commits",
        Some(seed),
        FsyncPolicy::EveryCommit,
        "fault",
    );
}

/// Parent mode: re-exec this binary as the crash child (filtered to
/// `test_name`), harvest 50 acks, SIGKILL, recover, verify.
fn run_crash_harness(test_name: &str, fault_seed: Option<u64>, policy: FsyncPolicy, tag: &str) {
    let dir = std::env::temp_dir().join(format!(
        "bamboo-crash-{}-{tag}-{}",
        std::process::id(),
        fault_seed.map_or_else(|| "clean".into(), |s| s.to_string())
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let exe = std::env::current_exe().unwrap();
    let mut cmd = std::process::Command::new(exe);
    cmd.args([test_name, "--exact", "--nocapture", "--test-threads=1"])
        .env("BAMBOO_CRASH_DIR", &dir)
        .stdout(std::process::Stdio::piped());
    if let Some(seed) = fault_seed {
        cmd.env("BAMBOO_CRASH_FAULT", seed.to_string());
    }
    let mut child = cmd.spawn().expect("spawning crash child");

    // Read acks until steady state, then SIGKILL mid-fire.
    let mut acks: Vec<(u64, u64, u64, i64)> = Vec::new();
    {
        let out = BufReader::new(child.stdout.take().unwrap());
        for line in out.lines() {
            let line = line.unwrap();
            if let Some(rest) = line.strip_prefix("ACK ") {
                let f: Vec<u64> = rest
                    .split(' ')
                    .map(|w| w.parse::<i64>().unwrap() as u64)
                    .collect();
                acks.push((f[0], f[1], f[2], f[3] as i64));
            }
            if acks.len() >= 50 {
                break;
            }
        }
    }
    child.kill().expect("SIGKILL");
    let _ = child.wait();
    assert!(
        acks.len() >= 50,
        "child exited after only {} acks — it should run until killed",
        acks.len()
    );

    // Recover the directory the child left behind. The recovery options
    // carry the writer's fsync policy: under `EveryCommit` every acked
    // group was individually fsynced, so groups drop individually; under
    // `GroupCommit` locks released before the batch fsync, so recovery
    // cuts at the durability horizon instead — every ack implies the
    // whole prefix below it is durable either way.
    let (rec, report) = PartitionedDb::recover(
        DbOptions::new()
            .with_wal_dir(dir.clone())
            .with_fsync_policy(policy),
    )
    .expect("recovery after SIGKILL");

    // 1. Money is conserved.
    let balances: BTreeMap<u64, i64> = {
        let mut m = BTreeMap::new();
        for p in rec.parts() {
            let table = p.db().table(ACCOUNTS);
            for r in 0..table.len() as u64 {
                let t = table.get_by_row_id(r).unwrap();
                m.insert(t.key, t.read_row().get_i64(1));
            }
        }
        m
    };
    assert_eq!(
        balances.values().sum::<i64>(),
        PARTS as i64 * ACCOUNTS_PER_PART as i64 * INITIAL,
        "SIGKILL leaked money (report: {report:?})"
    );

    // 2. Every fsync-acknowledged commit survived.
    let ledger: BTreeMap<u64, (u64, u64, i64)> = {
        let mut m = BTreeMap::new();
        for p in rec.parts() {
            let table = p.db().table(LEDGER);
            for r in 0..table.len() as u64 {
                let t = table.get_by_row_id(r).unwrap();
                let row = t.read_row();
                m.insert(t.key, (row.get_u64(1), row.get_u64(2), row.get_i64(3)));
            }
        }
        m
    };
    for (seq, from, to, amount) in &acks {
        assert_eq!(
            ledger.get(seq),
            Some(&(*from, *to, *amount)),
            "acked commit {seq} lost or corrupted by the crash (report: {report:?})"
        );
    }

    // 3. Atomicity: the recovered ledger replayed over the initial
    //    balances reproduces the recovered balances exactly.
    let mut expected: BTreeMap<u64, i64> = (0..PARTS as u64 * ACCOUNTS_PER_PART)
        .map(|a| (a, INITIAL))
        .collect();
    for (from, to, amount) in ledger.values() {
        *expected.get_mut(from).unwrap() -= amount;
        *expected.get_mut(to).unwrap() += amount;
    }
    assert_eq!(
        balances, expected,
        "a transfer was half-applied (report: {report:?})"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
