//! Protocol equivalence: the same deterministic transaction sequence,
//! executed serially, must leave the database in the same final state under
//! every protocol — the protocols differ in concurrency handling, never in
//! single-threaded semantics.

use std::sync::Arc;

use bamboo_repro::core::protocol::{
    Ic3Protocol, LockingProtocol, PieceAccess, PieceDecl, Protocol, SiloProtocol, TemplateDecl,
};
use bamboo_repro::core::{Database, Session, TxnOptions};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ROWS: u64 = 32;

fn load() -> (Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "t",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
    );
    let db = b.build();
    for k in 0..ROWS {
        db.table(t)
            .insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
    }
    (db, t)
}

/// Deterministic op scripts: (key, delta) updates and reads.
fn script(seed: u64) -> Vec<Vec<(u64, Option<i64>)>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..50)
        .map(|_| {
            let n = rng.gen_range(1..6);
            let mut keys: Vec<u64> = Vec::new();
            (0..n)
                .map(|_| {
                    let mut k = rng.gen_range(0..ROWS);
                    while keys.contains(&k) {
                        k = rng.gen_range(0..ROWS);
                    }
                    keys.push(k);
                    let delta = if rng.gen_bool(0.6) {
                        Some(rng.gen_range(-5i64..=5))
                    } else {
                        None
                    };
                    (k, delta)
                })
                .collect()
        })
        .collect()
}

fn run_script(session: &Session, t: TableId, txns: &[Vec<(u64, Option<i64>)>]) {
    for ops in txns {
        let mut txn = session.begin_with(TxnOptions::new().template(0));
        txn.piece_begin(0).unwrap();
        for &(k, delta) in ops {
            match delta {
                Some(d) => txn
                    .update(t, k, |row| {
                        let v = row.get_i64(1);
                        row.set(1, Value::I64(v + d));
                    })
                    .unwrap(),
                None => {
                    txn.read(t, k).unwrap();
                }
            }
        }
        txn.piece_end().unwrap();
        txn.commit().unwrap();
    }
}

fn snapshot(db: &Database, t: TableId) -> Vec<i64> {
    (0..ROWS)
        .map(|k| db.table(t).get(k).unwrap().read_row().get_i64(1))
        .collect()
}

#[test]
fn all_protocols_agree_on_serial_execution() {
    let txns = script(0xFEED);
    let mut reference: Option<Vec<i64>> = None;
    let ic3_template = TemplateDecl {
        name: "generic".into(),
        pieces: vec![PieceDecl::new(vec![PieceAccess::write(
            TableId(0),
            u64::MAX,
            u64::MAX,
        )])],
    };
    let protocols: Vec<(&str, Arc<dyn Protocol>)> = vec![
        ("bamboo", Arc::new(LockingProtocol::bamboo())),
        ("bamboo_base", Arc::new(LockingProtocol::bamboo_base())),
        ("wound_wait", Arc::new(LockingProtocol::wound_wait())),
        ("wait_die", Arc::new(LockingProtocol::wait_die())),
        ("no_wait", Arc::new(LockingProtocol::no_wait())),
        ("silo", Arc::new(SiloProtocol::new())),
        (
            "ic3",
            Arc::new(Ic3Protocol::new(vec![ic3_template.clone()], false)),
        ),
        (
            "ic3_optimistic",
            Arc::new(Ic3Protocol::new(vec![ic3_template], true)),
        ),
    ];
    for (name, proto) in protocols {
        let (db, t) = load();
        let session = Session::new(Arc::clone(&db), proto);
        run_script(&session, t, &txns);
        let snap = snapshot(&db, t);
        match &reference {
            None => reference = Some(snap),
            Some(r) => assert_eq!(&snap, r, "{name} diverged from the reference state"),
        }
        // Every tuple quiescent afterwards.
        for k in 0..ROWS {
            let tup = db.table(t).get(k).unwrap();
            assert!(
                tup.meta.lock.lock().is_quiescent(),
                "{name} leaked lock state on key {k}"
            );
            assert!(
                tup.meta.ic3.lock().is_quiescent(),
                "{name} leaked ic3 state on key {k}"
            );
        }
    }
}

#[test]
fn interactive_wrapper_preserves_semantics() {
    use bamboo_repro::core::protocol::InteractiveProtocol;
    let txns = script(0xBEEF);
    let (db1, t1) = load();
    let plain = Session::new(
        Arc::clone(&db1),
        Arc::new(LockingProtocol::bamboo()) as Arc<dyn Protocol>,
    );
    run_script(&plain, t1, &txns);
    let (db2, t2) = load();
    let wrapped = Session::new(
        Arc::clone(&db2),
        Arc::new(InteractiveProtocol::new(
            LockingProtocol::bamboo(),
            std::time::Duration::from_micros(1),
        )) as Arc<dyn Protocol>,
    );
    run_script(&wrapped, t2, &txns);
    assert_eq!(snapshot(&db1, t1), snapshot(&db2, t2));
}
