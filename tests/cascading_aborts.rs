//! Cascading-abort behaviour (paper §4): chain formation, chain length
//! accounting, the SH-no-cascade rule, and the wait-versus-abort trade-off
//! the δ heuristic navigates.

use std::sync::Arc;

use bamboo_repro::core::protocol::{LockingProtocol, Protocol};
use bamboo_repro::core::txn::AbortReason;
use bamboo_repro::core::wal::WalBuffer;
use bamboo_repro::core::Database;
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};

fn load(rows: u64) -> (Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "t",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
    );
    let db = b.build();
    for k in 0..rows {
        db.table(t)
            .insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
    }
    (db, t)
}

fn bump(row: &mut Row) {
    let v = row.get_i64(1);
    row.set(1, Value::I64(v + 1));
}

#[test]
fn chain_length_equals_number_of_dependents() {
    // The paper: "the number can be as large as the number of concurrent
    // transactions" — build a chain of N writers, abort the head.
    let (db, t) = load(4);
    let proto = LockingProtocol::bamboo_base();
    for n in [1usize, 3, 7] {
        let mut head = proto.begin(&db);
        proto.update(&db, &mut head, t, 0, &mut bump).unwrap();
        let mut deps = Vec::new();
        for _ in 0..n {
            let mut c = proto.begin(&db);
            proto.update(&db, &mut c, t, 0, &mut bump).unwrap();
            deps.push(c);
        }
        let cascaded = proto.abort(&db, &mut head);
        assert_eq!(cascaded, n, "abort chain must cover all {n} dependents");
        for mut c in deps {
            assert!(c.shared.is_aborted());
            assert_eq!(c.shared.abort_reason(), AbortReason::Cascade);
            proto.abort(&db, &mut c);
        }
        assert_eq!(db.table(t).get(0).unwrap().read_row().get_i64(1), 0);
        assert!(db.table(t).get(0).unwrap().meta.lock.lock().is_quiescent());
    }
}

#[test]
fn cascade_aborts_only_downstream_of_the_aborter() {
    let (db, t) = load(4);
    let proto = LockingProtocol::bamboo_base();
    let mut wal = WalBuffer::for_tests();
    let mut w1 = proto.begin(&db);
    proto.update(&db, &mut w1, t, 0, &mut bump).unwrap();
    let mut w2 = proto.begin(&db);
    proto.update(&db, &mut w2, t, 0, &mut bump).unwrap();
    let mut w3 = proto.begin(&db);
    proto.update(&db, &mut w3, t, 0, &mut bump).unwrap();
    // Abort the middle one: w3 dies, w1 survives.
    proto.abort(&db, &mut w2);
    assert!(!w1.shared.is_aborted());
    assert!(w3.shared.is_aborted());
    proto.abort(&db, &mut w3);
    proto.commit(&db, &mut w1, &mut wal).unwrap();
    assert_eq!(db.table(t).get(0).unwrap().read_row().get_i64(1), 1);
}

#[test]
fn shared_access_aborts_do_not_cascade() {
    // "if the aborting transaction locks the tuple with type SH, then
    // cascading aborts are not triggered" (§3.2.2).
    let (db, t) = load(4);
    let proto = LockingProtocol::bamboo();
    let mut wal = WalBuffer::for_tests();
    let mut reader = proto.begin(&db);
    proto.read(&db, &mut reader, t, 0).unwrap();
    let mut writer = proto.begin(&db);
    proto.update(&db, &mut writer, t, 0, &mut bump).unwrap();
    let mut reader2 = proto.begin(&db);
    proto.read(&db, &mut reader2, t, 0).unwrap();
    let cascaded = proto.abort(&db, &mut reader);
    assert_eq!(cascaded, 0);
    assert!(!writer.shared.is_aborted());
    assert!(!reader2.shared.is_aborted());
    proto.commit(&db, &mut writer, &mut wal).unwrap();
    proto.commit(&db, &mut reader2, &mut wal).unwrap();
}

#[test]
fn transitive_cascade_across_tuples() {
    // T1 dirty-writes A; T2 reads A and dirty-writes B; T3 reads B.
    // Aborting T1 must ripple to T3 through T2.
    let (db, t) = load(4);
    let proto = LockingProtocol::bamboo_base();
    let mut t1 = proto.begin(&db);
    proto.update(&db, &mut t1, t, 0, &mut bump).unwrap();
    let mut t2 = proto.begin(&db);
    proto.read(&db, &mut t2, t, 0).unwrap();
    proto.update(&db, &mut t2, t, 1, &mut bump).unwrap();
    let mut t3 = proto.begin(&db);
    proto.read(&db, &mut t3, t, 1).unwrap();
    proto.abort(&db, &mut t1);
    assert!(t2.shared.is_aborted(), "direct dependent aborted");
    // T3 is aborted when T2 releases (the worker-driven ripple).
    proto.abort(&db, &mut t2);
    assert!(t3.shared.is_aborted(), "transitive dependent aborted");
    proto.abort(&db, &mut t3);
    for k in 0..2 {
        assert_eq!(db.table(t).get(k).unwrap().read_row().get_i64(1), 0);
        assert!(db.table(t).get(k).unwrap().meta.lock.lock().is_quiescent());
    }
}

#[test]
fn delta_zero_vs_delta_keeps_last_hotspot_locked() {
    // With δ > 0 and planned ops, the trailing write is not retired, so a
    // dependent cannot read it dirty — it must wait instead.
    let (db, t) = load(8);
    let bamboo = LockingProtocol::bamboo(); // δ = 0.15
    let mut ctx = bamboo.begin(&db);
    ctx.planned_ops = Some(4);
    for k in 0..4u64 {
        bamboo.update(&db, &mut ctx, t, k, &mut bump).unwrap();
    }
    // Last write (op 4 of 4 > 85% boundary) stays owned.
    let st = db.table(t).get(3).unwrap();
    assert_eq!(st.meta.lock.lock().retired_len(), 0, "trailing write held");
    assert_eq!(st.meta.lock.lock().owners_len(), 1);
    // Earlier writes retired.
    assert_eq!(
        db.table(t).get(0).unwrap().meta.lock.lock().retired_len(),
        1
    );
    let mut wal = WalBuffer::for_tests();
    bamboo.commit(&db, &mut ctx, &mut wal).unwrap();
}

#[test]
fn wound_of_waiting_transaction_cleans_up_queue() {
    let (db, t) = load(4);
    let proto = LockingProtocol::wound_wait();
    // Old holder keeps the lock; young waiter queues; an older transaction
    // then wounds the young waiter via a different tuple — the waiter must
    // unblock, clean its queue entry and abort.
    let mut holder = proto.begin(&db);
    proto.update(&db, &mut holder, t, 0, &mut bump).unwrap();
    let db2 = Arc::clone(&db);
    let proto2 = proto.clone();
    let young = proto.begin(&db);
    let young_shared = Arc::clone(&young.shared);
    let h = std::thread::spawn(move || {
        let mut young = young;
        let res = proto2.update(&db2, &mut young, t, 0, &mut bump);
        let failed = res.is_err();
        proto2.abort(&db2, &mut young);
        failed
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    // Wound the waiter directly (as a higher-priority conflict would).
    young_shared.set_abort(AbortReason::Wounded);
    assert!(h.join().unwrap(), "wounded waiter must give up");
    let st = db.table(t).get(0).unwrap();
    assert_eq!(st.meta.lock.lock().waiters_len(), 0, "queue entry removed");
    let mut wal = WalBuffer::for_tests();
    proto.commit(&db, &mut holder, &mut wal).unwrap();
}
