//! Cascading-abort behaviour (paper §4): chain formation, chain length
//! accounting, the SH-no-cascade rule, and the wait-versus-abort trade-off
//! the δ heuristic navigates.

use std::sync::Arc;

use bamboo_repro::core::protocol::{LockingProtocol, Protocol};
use bamboo_repro::core::txn::AbortReason;
use bamboo_repro::core::{Database, Session, TxnOptions};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};

fn load(rows: u64) -> (Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "t",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
    );
    let db = b.build();
    for k in 0..rows {
        db.table(t)
            .insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
    }
    (db, t)
}

fn session_with(db: &Arc<Database>, proto: LockingProtocol) -> Session {
    Session::new(Arc::clone(db), Arc::new(proto) as Arc<dyn Protocol>)
}

fn bump(row: &mut Row) {
    let v = row.get_i64(1);
    row.set(1, Value::I64(v + 1));
}

#[test]
fn chain_length_equals_number_of_dependents() {
    // The paper: "the number can be as large as the number of concurrent
    // transactions" — build a chain of N writers, abort the head.
    let (db, t) = load(4);
    let session = session_with(&db, LockingProtocol::bamboo_base());
    for n in [1usize, 3, 7] {
        let mut head = session.begin();
        head.update(t, 0, bump).unwrap();
        let mut deps = Vec::new();
        for _ in 0..n {
            let mut c = session.begin();
            c.update(t, 0, bump).unwrap();
            deps.push(c);
        }
        let cascaded = head.abort();
        assert_eq!(cascaded, n, "abort chain must cover all {n} dependents");
        for c in deps {
            assert!(c.shared().is_aborted());
            assert_eq!(c.shared().abort_reason(), AbortReason::Cascade);
            c.abort();
        }
        assert_eq!(db.table(t).get(0).unwrap().read_row().get_i64(1), 0);
        assert!(db.table(t).get(0).unwrap().meta.lock.lock().is_quiescent());
    }
}

#[test]
fn cascade_aborts_only_downstream_of_the_aborter() {
    let (db, t) = load(4);
    let session = session_with(&db, LockingProtocol::bamboo_base());
    let mut w1 = session.begin();
    w1.update(t, 0, bump).unwrap();
    let mut w2 = session.begin();
    w2.update(t, 0, bump).unwrap();
    let mut w3 = session.begin();
    w3.update(t, 0, bump).unwrap();
    // Abort the middle one: w3 dies, w1 survives.
    w2.abort();
    assert!(!w1.shared().is_aborted());
    assert!(w3.shared().is_aborted());
    drop(w3); // RAII: the drop aborts the wounded attempt
    w1.commit().unwrap();
    assert_eq!(db.table(t).get(0).unwrap().read_row().get_i64(1), 1);
}

#[test]
fn shared_access_aborts_do_not_cascade() {
    // "if the aborting transaction locks the tuple with type SH, then
    // cascading aborts are not triggered" (§3.2.2).
    let (db, t) = load(4);
    let session = session_with(&db, LockingProtocol::bamboo());
    let mut reader = session.begin();
    reader.read(t, 0).unwrap();
    let mut writer = session.begin();
    writer.update(t, 0, bump).unwrap();
    let mut reader2 = session.begin();
    reader2.read(t, 0).unwrap();
    let cascaded = reader.abort();
    assert_eq!(cascaded, 0);
    assert!(!writer.shared().is_aborted());
    assert!(!reader2.shared().is_aborted());
    writer.commit().unwrap();
    reader2.commit().unwrap();
}

#[test]
fn transitive_cascade_across_tuples() {
    // T1 dirty-writes A; T2 reads A and dirty-writes B; T3 reads B.
    // Aborting T1 must ripple to T3 through T2.
    let (db, t) = load(4);
    let session = session_with(&db, LockingProtocol::bamboo_base());
    let mut t1 = session.begin();
    t1.update(t, 0, bump).unwrap();
    let mut t2 = session.begin();
    t2.read(t, 0).unwrap();
    t2.update(t, 1, bump).unwrap();
    let mut t3 = session.begin();
    t3.read(t, 1).unwrap();
    t1.abort();
    assert!(t2.shared().is_aborted(), "direct dependent aborted");
    // T3 is aborted when T2 releases (the worker-driven ripple).
    t2.abort();
    assert!(t3.shared().is_aborted(), "transitive dependent aborted");
    t3.abort();
    for k in 0..2 {
        assert_eq!(db.table(t).get(k).unwrap().read_row().get_i64(1), 0);
        assert!(db.table(t).get(k).unwrap().meta.lock.lock().is_quiescent());
    }
}

#[test]
fn delta_zero_vs_delta_keeps_last_hotspot_locked() {
    // With δ > 0 and planned ops, the trailing write is not retired, so a
    // dependent cannot read it dirty — it must wait instead.
    let (db, t) = load(8);
    let session = session_with(&db, LockingProtocol::bamboo()); // δ = 0.15
    let mut txn = session.begin_with(TxnOptions::new().planned_ops(4));
    for k in 0..4u64 {
        txn.update(t, k, bump).unwrap();
    }
    // Last write (op 4 of 4 > 85% boundary) stays owned.
    let st = db.table(t).get(3).unwrap();
    assert_eq!(st.meta.lock.lock().retired_len(), 0, "trailing write held");
    assert_eq!(st.meta.lock.lock().owners_len(), 1);
    // Earlier writes retired.
    assert_eq!(
        db.table(t).get(0).unwrap().meta.lock.lock().retired_len(),
        1
    );
    txn.commit().unwrap();
}

#[test]
fn wound_of_waiting_transaction_cleans_up_queue() {
    let (db, t) = load(4);
    let session = session_with(&db, LockingProtocol::wound_wait());
    // Old holder keeps the lock; young waiter queues; an older transaction
    // then wounds the young waiter via a different tuple — the waiter must
    // unblock, clean its queue entry and abort.
    let mut holder = session.begin();
    holder.update(t, 0, bump).unwrap();
    let young = session.begin();
    let young_shared = Arc::clone(young.shared());
    std::thread::scope(|s| {
        let h = s.spawn(move || {
            let mut young = young;
            let res = young.update(t, 0, bump);
            let failed = res.is_err();
            young.abort();
            failed
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Wound the waiter directly (as a higher-priority conflict would).
        young_shared.set_abort(AbortReason::Wounded);
        assert!(h.join().unwrap(), "wounded waiter must give up");
    });
    let st = db.table(t).get(0).unwrap();
    assert_eq!(st.meta.lock.lock().waiters_len(), 0, "queue entry removed");
    holder.commit().unwrap();
}
