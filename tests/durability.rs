//! End-to-end durability tests: checkpoint → crash (drop) → recover round
//! trips, recovery idempotence, checkpoint replay-prefix skipping,
//! crash-during-recovery fallback, incomplete-group and torn-tail
//! handling, and the no-checkpoint failure mode.
//!
//! "Crash" here is dropping the database mid-state and recovering from the
//! directory it left behind — the real `kill -9` variant lives in
//! `tests/crash_recovery.rs`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bamboo_repro::core::partition::{PartSession, PartitionedDb};
use bamboo_repro::core::protocol::{LockingProtocol, Protocol};
use bamboo_repro::core::DbOptions;
use bamboo_repro::storage::log::{SegmentWriter, WalRecord};
use bamboo_repro::storage::{
    DataType, FsyncPolicy, PartitionId, RouteStrategy, Row, Schema, TableId, Value,
};

const ACCOUNTS_PER_PART: u64 = 8;
const INITIAL: i64 = 1000;
const PARTS: u32 = 2;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bamboo-dur-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn kv_schema() -> Schema {
    Schema::build()
        .column("k", DataType::U64)
        .column("v", DataType::I64)
}

/// A range-partitioned durable bank: account `a` lives on partition
/// `a / ACCOUNTS_PER_PART`. Ends with the genesis checkpoint so the
/// loaded rows are recoverable.
fn durable_bank(dir: &Path, policy: FsyncPolicy) -> (Arc<PartitionedDb>, TableId) {
    let bounds = (1..PARTS as u64).map(|i| i * ACCOUNTS_PER_PART).collect();
    let mut b = PartitionedDb::builder(PARTS);
    let t = b.add_table("accounts", kv_schema(), RouteStrategy::Range(bounds));
    b.with_options(
        DbOptions::new()
            .with_wal_dir(dir.to_path_buf())
            .with_fsync_policy(policy),
    );
    let pdb = b.build();
    for a in 0..PARTS as u64 * ACCOUNTS_PER_PART {
        pdb.insert(t, a, Row::from(vec![Value::U64(a), Value::I64(INITIAL)]));
    }
    pdb.checkpoint().expect("genesis checkpoint");
    (pdb, t)
}

/// Runs `n` committed cross-partition transfers (deterministic pattern)
/// through the manual session API and returns how many committed.
fn transfers(pdb: &Arc<PartitionedDb>, t: TableId, n: u64, seed: u64) -> u64 {
    let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
    let session = PartSession::new(Arc::clone(pdb), proto);
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        rng
    };
    let mut done = 0;
    while done < n {
        let from = next() % ACCOUNTS_PER_PART;
        let to = ACCOUNTS_PER_PART + next() % ACCOUNTS_PER_PART;
        let amount = (next() % 10) as i64 + 1;
        let mut txn = session.begin_on(PartitionId(0));
        let moved = txn
            .update(t, from, |r| r.set(1, Value::I64(r.get_i64(1) - amount)))
            .and_then(|_| txn.update(t, to, |r| r.set(1, Value::I64(r.get_i64(1) + amount))))
            .and_then(|_| txn.commit());
        if moved.is_ok() {
            done += 1;
        }
    }
    done
}

/// Full observable state: every account's balance, across all shards.
fn state(pdb: &PartitionedDb, t: TableId) -> BTreeMap<u64, i64> {
    let mut m = BTreeMap::new();
    for p in pdb.parts() {
        let table = p.db().table(t);
        for r in 0..table.len() as u64 {
            let tuple = table.get_by_row_id(r).unwrap();
            m.insert(tuple.key, tuple.read_row().get_i64(1));
        }
    }
    m
}

fn total(pdb: &PartitionedDb, t: TableId) -> i64 {
    state(pdb, t).values().sum()
}

#[test]
fn genesis_checkpoint_then_recover_restores_loaded_rows() {
    let dir = tmp_dir("genesis");
    let (pdb, t) = durable_bank(&dir, FsyncPolicy::EveryCommit);
    let before = state(&pdb, t);
    drop(pdb);

    let (rec, report) = PartitionedDb::recover(DbOptions::new().with_wal_dir(dir.clone())).unwrap();
    assert_eq!(state(&rec, t), before);
    assert_eq!(report.restored_tuples, PARTS as u64 * ACCOUNTS_PER_PART);
    assert_eq!(report.replayed_txns, 0);
    assert_eq!(report.dropped_incomplete, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn committed_transfers_survive_recovery() {
    let dir = tmp_dir("roundtrip");
    let (pdb, t) = durable_bank(&dir, FsyncPolicy::EveryCommit);
    let n = transfers(&pdb, t, 40, 7);
    assert_eq!(n, 40);
    let before = state(&pdb, t);
    assert_eq!(before.values().sum::<i64>(), 16 * INITIAL);
    drop(pdb);

    let (rec, report) = PartitionedDb::recover(DbOptions::new().with_wal_dir(dir.clone())).unwrap();
    assert_eq!(state(&rec, t), before, "recovered state diverged");
    assert_eq!(report.replayed_txns, 40);
    // Two partitions per transfer: one Update each.
    assert_eq!(report.replayed_writes, 80);
    assert_eq!(report.dropped_incomplete, 0);
    assert_eq!(report.dropped_horizon, 0);

    // The recovered database accepts new durable commits.
    transfers(&rec, t, 10, 99);
    assert_eq!(total(&rec, t), 16 * INITIAL);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovery is idempotent: recovering the same directory twice (the second
/// time from the post-recovery checkpoint the first one wrote) converges
/// to the same state, with nothing left to replay.
#[test]
fn recovering_twice_converges() {
    let dir = tmp_dir("idem");
    let (pdb, t) = durable_bank(&dir, FsyncPolicy::EveryCommit);
    transfers(&pdb, t, 25, 3);
    let before = state(&pdb, t);
    drop(pdb);

    let (rec1, r1) = PartitionedDb::recover(DbOptions::new().with_wal_dir(dir.clone())).unwrap();
    assert_eq!(state(&rec1, t), before);
    let ts1 = r1.recovered_ts;
    drop(rec1);

    let (rec2, r2) = PartitionedDb::recover(DbOptions::new().with_wal_dir(dir.clone())).unwrap();
    assert_eq!(state(&rec2, t), before);
    // The second pass starts from the first pass's sealing checkpoint:
    // the whole replayed history is already in the image.
    assert_eq!(r2.checkpoint_ts, ts1);
    assert_eq!(r2.replayed_txns, 0);
    assert_eq!(r2.recovered_ts, ts1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint's cuts skip the log prefix: transactions committed before
/// the checkpoint are restored from the image, not replayed.
#[test]
fn checkpoint_skips_replay_prefix() {
    let dir = tmp_dir("prefix");
    let (pdb, t) = durable_bank(&dir, FsyncPolicy::EveryCommit);
    transfers(&pdb, t, 30, 11);
    let mid_ts = pdb.checkpoint().unwrap();
    transfers(&pdb, t, 5, 13);
    let before = state(&pdb, t);
    drop(pdb);

    let (rec, report) = PartitionedDb::recover(DbOptions::new().with_wal_dir(dir.clone())).unwrap();
    assert_eq!(state(&rec, t), before);
    assert_eq!(report.checkpoint_ts, mid_ts);
    assert_eq!(
        report.replayed_txns, 5,
        "pre-checkpoint transfers must come from the image, not the log"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash *during* recovery: the first recovery's sealing checkpoint wrote
/// its data files but the meta file never landed (simulated by deleting
/// it). The next recovery falls back to the previous complete checkpoint
/// and replays the log again — same final state.
#[test]
fn crash_during_recovery_falls_back_to_previous_checkpoint() {
    let dir = tmp_dir("midcrash");
    let (pdb, t) = durable_bank(&dir, FsyncPolicy::EveryCommit);
    transfers(&pdb, t, 20, 17);
    let before = state(&pdb, t);
    drop(pdb);

    let (rec1, r1) = PartitionedDb::recover(DbOptions::new().with_wal_dir(dir.clone())).unwrap();
    assert_eq!(state(&rec1, t), before);
    drop(rec1);
    // Un-land the sealing checkpoint's meta file: to a later recovery this
    // is indistinguishable from a crash between its data and meta writes.
    let meta = format!("ckpt-{:020}.meta", r1.recovered_ts);
    std::fs::remove_file(dir.join(meta)).unwrap();

    let (rec2, r2) = PartitionedDb::recover(DbOptions::new().with_wal_dir(dir.clone())).unwrap();
    assert_eq!(state(&rec2, t), before);
    assert!(
        r2.checkpoint_ts < r1.recovered_ts,
        "fell back to the old checkpoint"
    );
    assert_eq!(r2.replayed_txns, 20, "replayed the log again");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An unterminated record group at the log tail (crash mid-append) is
/// dropped: it was never acknowledged, and under `EveryCommit` nothing
/// after it exists to depend on it.
#[test]
fn incomplete_tail_group_is_dropped() {
    let dir = tmp_dir("incomplete");
    let (pdb, t) = durable_bank(&dir, FsyncPolicy::EveryCommit);
    transfers(&pdb, t, 10, 23);
    let before = state(&pdb, t);
    let next_ts = before.len() as u64; // any ts above the committed history
    drop(pdb);

    // Forge a crash mid-append: a Begin + Update with no Commit on
    // partition 0's log.
    let mut w = SegmentWriter::open(&dir, 0, FsyncPolicy::EveryCommit, 1 << 20).unwrap();
    w.append_record(&WalRecord::Begin {
        txn_id: u64::MAX,
        commit_ts: 1_000_000 + next_ts,
        parts_mask: 0b01,
    })
    .unwrap();
    w.append_record(&WalRecord::Update {
        table: 0,
        key: 0,
        row: Row::from(vec![Value::U64(0), Value::I64(-999_999)]),
    })
    .unwrap();
    w.sync().unwrap();
    drop(w);

    let (rec, report) = PartitionedDb::recover(DbOptions::new().with_wal_dir(dir.clone())).unwrap();
    assert_eq!(
        state(&rec, t),
        before,
        "the torn transaction must not apply"
    );
    assert_eq!(report.dropped_incomplete, 1);
    assert_eq!(report.replayed_txns, 10);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Garbage bytes at the end of a segment (torn write) are detected by the
/// frame checksum and the tail is discarded; everything before it replays.
#[test]
fn torn_tail_is_detected_and_skipped() {
    let dir = tmp_dir("torn");
    let (pdb, t) = durable_bank(&dir, FsyncPolicy::EveryCommit);
    transfers(&pdb, t, 15, 29);
    let before = state(&pdb, t);
    drop(pdb);

    // Append garbage to partition 0's newest segment: a torn frame.
    let mut segs: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name()?.to_str()?.to_owned();
            (name.starts_with("wal-p000-") && name.ends_with(".seg")).then_some(p)
        })
        .collect();
    segs.sort();
    let newest = segs.pop().expect("partition 0 has segments");
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(newest)
        .unwrap();
    f.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03])
        .unwrap();
    drop(f);

    let (rec, report) = PartitionedDb::recover(DbOptions::new().with_wal_dir(dir.clone())).unwrap();
    assert_eq!(state(&rec, t), before);
    assert_eq!(report.torn_partitions, 1);
    assert_eq!(report.replayed_txns, 15);

    // And the recovered database keeps committing durably past the tear
    // (the fresh writer truncated it).
    transfers(&rec, t, 5, 31);
    assert_eq!(total(&rec, t), 16 * INITIAL);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without a checkpoint there is nothing sound to recover from (loader
/// inserts bypass the WAL): `recover` must fail cleanly, not fabricate an
/// empty database.
#[test]
fn recover_without_checkpoint_fails_cleanly() {
    let dir = tmp_dir("nockpt");
    let bounds = vec![ACCOUNTS_PER_PART];
    let mut b = PartitionedDb::builder(PARTS);
    let t = b.add_table("accounts", kv_schema(), RouteStrategy::Range(bounds));
    b.with_options(DbOptions::new().with_wal_dir(dir.clone()));
    let pdb = b.build();
    pdb.insert(t, 0, Row::from(vec![Value::U64(0), Value::I64(INITIAL)]));
    drop(pdb);

    let err = match PartitionedDb::recover(DbOptions::new().with_wal_dir(dir.clone())) {
        Err(e) => e,
        Ok(_) => panic!("recover without a checkpoint must fail"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Under the weak policies, a complete-looking transaction above the
/// oldest incomplete one is discarded by the horizon cut: a lost log
/// suffix on one partition must not resurrect dependents elsewhere.
/// `Session::run_many` under `GroupCommit`: the whole batch commits with
/// early lock release, acks ride the durability horizon, one leader
/// fsync covers the flight (not one per commit), and recovery replays
/// every acked transfer.
#[test]
fn run_many_batches_acks_under_group_commit() {
    use bamboo_repro::core::executor::TxnSpec;
    use bamboo_repro::core::{Abort, Txn};

    const POLICY: FsyncPolicy = FsyncPolicy::GroupCommit {
        max_batch: 16,
        max_wait_us: 100,
    };

    struct Transfer {
        t: TableId,
        from: u64,
        to: u64,
    }
    impl TxnSpec for Transfer {
        fn run_piece(&self, _p: usize, txn: &mut Txn<'_>) -> Result<(), Abort> {
            txn.update(self.t, self.from, |r| {
                r.set(1, Value::I64(r.get_i64(1) - 5))
            })?;
            txn.update(self.t, self.to, |r| r.set(1, Value::I64(r.get_i64(1) + 5)))
        }
    }

    let dir = tmp_dir("run-many-group");
    let (pdb, t) = durable_bank(&dir, POLICY);
    let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
    let session = PartSession::new(Arc::clone(&pdb), proto);

    // Partition-0-local transfers; consecutive specs conflict (spec i's
    // `to` is spec i+1's `from`), which only works back-to-back because
    // early lock release frees the tuple at the commit point.
    let specs: Vec<Transfer> = (0..8u64)
        .map(|i| Transfer {
            t,
            from: i % ACCOUNTS_PER_PART,
            to: (i + 1) % ACCOUNTS_PER_PART,
        })
        .collect();
    let refs: Vec<&dyn TxnSpec> = specs.iter().map(|s| s as &dyn TxnSpec).collect();
    let results = session.session(PartitionId(0)).run_many(&refs);
    assert_eq!(results.len(), 8);
    for (i, r) in results.iter().enumerate() {
        assert!(r.is_ok(), "batch entry {i} failed: {r:?}");
    }
    assert_eq!(pdb.group_acks(), 8, "every entry acked through the horizon");
    let fsyncs = pdb.group_fsyncs();
    assert!(
        (1..8).contains(&fsyncs),
        "the batch must share leader fsyncs, got {fsyncs} for 8 commits"
    );

    assert_eq!(
        total(&pdb, t),
        PARTS as i64 * ACCOUNTS_PER_PART as i64 * INITIAL
    );
    let before = state(&pdb, t);
    drop(session);
    drop(pdb);
    let (rec, _report) = PartitionedDb::recover(
        DbOptions::new()
            .with_wal_dir(dir.clone())
            .with_fsync_policy(POLICY),
    )
    .expect("recovery after run_many");
    assert_eq!(state(&rec, t), before, "acked batch survives recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn weak_policy_horizon_cut_drops_later_transactions() {
    let dir = tmp_dir("horizon");
    let (pdb, t) = durable_bank(&dir, FsyncPolicy::Never);
    transfers(&pdb, t, 10, 37);
    // Force the buffered appends to disk — FsyncPolicy::Never means the
    // test must sync explicitly to make this deterministic.
    for p in pdb.parts() {
        p.wal().sync().expect("real backend sync");
    }
    let genesis = state(&pdb, t);
    drop(pdb);

    // Forge an incomplete group with a commit timestamp *below* a forged
    // complete one: the horizon must discard both.
    let mut w = SegmentWriter::open(&dir, 0, FsyncPolicy::Never, 1 << 20).unwrap();
    w.append_record(&WalRecord::Begin {
        txn_id: u64::MAX - 1,
        commit_ts: 500_000,
        parts_mask: 0b11, // claims partition 1 too — which has no group
    })
    .unwrap();
    w.append_record(&WalRecord::Commit {
        txn_id: u64::MAX - 1,
        commit_ts: 500_000,
    })
    .unwrap();
    // A complete single-partition group above the incomplete one.
    w.append_record(&WalRecord::Begin {
        txn_id: u64::MAX,
        commit_ts: 500_001,
        parts_mask: 0b01,
    })
    .unwrap();
    w.append_record(&WalRecord::Update {
        table: 0,
        key: 1,
        row: Row::from(vec![Value::U64(1), Value::I64(-777)]),
    })
    .unwrap();
    w.append_record(&WalRecord::Commit {
        txn_id: u64::MAX,
        commit_ts: 500_001,
    })
    .unwrap();
    w.sync().unwrap();
    drop(w);

    let (rec, report) = PartitionedDb::recover(DbOptions::new().with_wal_dir(dir.clone())).unwrap();
    assert_eq!(report.dropped_incomplete, 1);
    assert_eq!(
        report.dropped_horizon, 1,
        "the complete group above the horizon must be discarded"
    );
    assert_eq!(
        state(&rec, t),
        genesis,
        "horizon-dropped writes must not apply"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Log compaction: once a *second* complete checkpoint exists, sealed
/// segments wholly below the previous checkpoint's cuts are retired, and
/// recovery from the retained suffix still reproduces the full state.
/// (Keep-last-two: the newest checkpoint's own cut is deliberately NOT
/// compacted to, so recovery can fall back one checkpoint if the newest
/// meta is lost — see `crash_during_recovery_falls_back_to_previous_checkpoint`.)
#[test]
fn compaction_retires_sealed_segments_and_recovery_survives() {
    let dir = tmp_dir("compact");
    let bounds = (1..PARTS as u64).map(|i| i * ACCOUNTS_PER_PART).collect();
    let mut b = PartitionedDb::builder(PARTS);
    let t = b.add_table("accounts", kv_schema(), RouteStrategy::Range(bounds));
    b.with_options(
        DbOptions::new()
            .with_wal_dir(dir.clone())
            .with_fsync_policy(FsyncPolicy::EveryCommit)
            // Tiny segments so the transfer fire seals many of them.
            .with_segment_bytes(512),
    );
    let pdb = b.build();
    for a in 0..PARTS as u64 * ACCOUNTS_PER_PART {
        pdb.insert(t, a, Row::from(vec![Value::U64(a), Value::I64(INITIAL)]));
    }
    pdb.checkpoint().expect("genesis checkpoint");
    assert_eq!(pdb.segments_retired(), 0, "nothing to retire at genesis");

    let seg_count = |p: u32| {
        std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(&format!("wal-p{:03}-", p))
            })
            .count()
    };

    // Two rounds of fire + checkpoint. The second checkpoint retires the
    // sealed segments below the *first* checkpoint's cuts.
    transfers(&pdb, t, 60, 7);
    pdb.checkpoint().expect("first post-load checkpoint");
    transfers(&pdb, t, 60, 11);
    let before_p0 = seg_count(0);
    pdb.checkpoint().expect("second post-load checkpoint");
    assert!(
        pdb.segments_retired() > 0,
        "two checkpoints over {}+ sealed segments must retire some",
        before_p0
    );
    assert!(
        seg_count(0) < before_p0,
        "retired partition-0 segments must be deleted from disk"
    );

    // More committed work *after* the compacting checkpoint, so recovery
    // must replay from the retained suffix, not just restore the dump.
    transfers(&pdb, t, 20, 13);
    let before = state(&pdb, t);
    drop(pdb);

    let (rec, report) = PartitionedDb::recover(
        DbOptions::new()
            .with_wal_dir(dir.clone())
            .with_fsync_policy(FsyncPolicy::EveryCommit),
    )
    .expect("recovery from the compacted log");
    assert_eq!(
        state(&rec, t),
        before,
        "retained-suffix recovery must reproduce the pre-crash state (report: {report:?})"
    );
    assert_eq!(
        total(&rec, t),
        PARTS as i64 * ACCOUNTS_PER_PART as i64 * INITIAL
    );
    assert!(
        report.replayed_txns >= 20,
        "the post-checkpoint transfers must come from log replay (report: {report:?})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
