//! Executor/stats accounting: the measurement vocabulary the figures rely
//! on must be internally consistent.

use std::sync::Arc;
use std::time::Duration;

use bamboo_repro::core::executor::{run_bench, BenchConfig, TxnSpec, Workload};
use bamboo_repro::core::protocol::{LockingProtocol, Protocol};
use bamboo_repro::core::stats::reason_name;
use bamboo_repro::core::{Abort, AbortReason, Database, Txn};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};
use rand::rngs::SmallRng;
use rand::Rng;

fn load() -> (Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "t",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
    );
    let db = b.build();
    for k in 0..32u64 {
        db.table(t)
            .insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
    }
    (db, t)
}

/// A transaction that user-aborts with probability ~1/4.
struct MaybeAbort {
    t: TableId,
    key: u64,
    fail: bool,
}

impl TxnSpec for MaybeAbort {
    fn planned_ops(&self) -> Option<usize> {
        Some(1)
    }

    fn run_piece(&self, _p: usize, txn: &mut Txn<'_>) -> Result<(), Abort> {
        txn.update(self.t, self.key, |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v + 1));
        })?;
        if self.fail {
            return Err(Abort(AbortReason::User));
        }
        Ok(())
    }
}

struct Wl {
    t: TableId,
}

impl Workload for Wl {
    fn name(&self) -> &str {
        "maybe-abort"
    }

    fn generate(&self, _w: usize, rng: &mut SmallRng) -> Box<dyn TxnSpec> {
        Box::new(MaybeAbort {
            t: self.t,
            key: rng.gen_range(0..32),
            fail: rng.gen_bool(0.25),
        })
    }
}

#[test]
fn user_aborts_counted_and_not_retried() {
    let (db, t) = load();
    let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
    let wl: Arc<dyn Workload> = Arc::new(Wl { t });
    let res = run_bench(
        &db,
        &proto,
        &wl,
        &BenchConfig::quick(2)
            .with_duration(Duration::from_millis(250))
            .with_warmup(Duration::from_millis(25))
            .with_seed(8),
    );
    let user_aborts = res.totals.aborts_by_reason[6];
    assert_eq!(reason_name(6), "user");
    assert!(user_aborts > 0, "the 25% user aborts must be visible");
    // ~1/4 of attempts abort; allow generous noise.
    let rate = res.abort_rate();
    assert!(
        (0.1..0.45).contains(&rate),
        "abort rate {rate} far from the configured 25%"
    );
    // Every committed increment (and none of the user-aborted ones)
    // reached the table: sum >= measured commits, and the aborted writes
    // rolled back so sum can never exceed total successful attempts.
    let sum: i64 = (0..32)
        .map(|k| db.table(t).get(k).unwrap().read_row().get_i64(1))
        .sum();
    assert!(sum >= res.totals.commits as i64);
}

/// A read-only scan over all keys, run in MVCC snapshot mode.
struct SnapScan {
    t: TableId,
}

impl TxnSpec for SnapScan {
    fn planned_ops(&self) -> Option<usize> {
        Some(32)
    }

    fn read_only_snapshot(&self) -> bool {
        true
    }

    fn run_piece(&self, _p: usize, txn: &mut Txn<'_>) -> Result<(), Abort> {
        for k in 0..32u64 {
            std::hint::black_box(txn.read(self.t, k)?.get_i64(1));
        }
        Ok(())
    }
}

struct SnapMixWl {
    t: TableId,
}

impl Workload for SnapMixWl {
    fn name(&self) -> &str {
        "snapshot-mix"
    }

    fn generate(&self, _w: usize, rng: &mut SmallRng) -> Box<dyn TxnSpec> {
        if rng.gen_bool(0.3) {
            return Box::new(SnapScan { t: self.t });
        }
        Box::new(MaybeAbort {
            t: self.t,
            key: rng.gen_range(0..32),
            fail: false,
        })
    }
}

/// Snapshot-mode transactions land in their own stats bucket: commits,
/// latency histogram and lock-acquisition counters are all separated from
/// the locking transactions of the same run.
#[test]
fn snapshot_transactions_counted_in_their_own_bucket() {
    let (db, t) = load();
    let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
    let wl: Arc<dyn Workload> = Arc::new(SnapMixWl { t });
    let res = run_bench(
        &db,
        &proto,
        &wl,
        &BenchConfig::quick(2)
            .with_duration(Duration::from_millis(250))
            .with_warmup(Duration::from_millis(25))
            .with_seed(9),
    );
    // Both buckets populated, independently.
    assert!(res.totals.commits > 0, "locking commits missing");
    assert!(res.totals.snapshot_commits > 0, "snapshot bucket empty");
    // Snapshot latency histogram filled exactly per snapshot commit; the
    // main histogram holds exactly the locking commits.
    let snap_hist: u64 = res.totals.snapshot_latency_us_log2.iter().sum();
    let main_hist: u64 = res.totals.latency_us_log2.iter().sum();
    assert_eq!(snap_hist, res.totals.snapshot_commits);
    assert_eq!(main_hist, res.totals.commits);
    // Lock accounting split: writers acquire locks, snapshots never.
    assert!(res.totals.lock_acquisitions > 0, "writer locks uncounted");
    assert_eq!(
        res.totals.snapshot_lock_acquisitions, 0,
        "snapshot transactions touched the lock manager"
    );
    assert_eq!(res.totals.snapshot_aborts, 0, "snapshot scans cannot abort");
    // Derived metrics are available per bucket.
    assert!(res.snapshot_throughput() > 0.0);
    assert!(res.snapshot_latency_percentile_us(0.5) > 0);
    assert!(res.snapshot_latency_percentile_us(0.99) >= res.snapshot_latency_percentile_us(0.5));
}

#[test]
fn latency_percentiles_are_monotonic() {
    let (db, t) = load();
    let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
    let wl: Arc<dyn Workload> = Arc::new(Wl { t });
    let res = run_bench(&db, &proto, &wl, &BenchConfig::quick(2));
    let p50 = res.latency_percentile_us(0.5);
    let p99 = res.latency_percentile_us(0.99);
    assert!(p50 > 0 && p99 >= p50, "p50={p50} p99={p99}");
}

#[test]
fn wal_bytes_accounted_per_worker() {
    let (db, t) = load();
    let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
    let wl: Arc<dyn Workload> = Arc::new(Wl { t });
    let res = run_bench(&db, &proto, &wl, &BenchConfig::quick(2));
    assert!(
        res.totals.log_bytes > res.totals.commits,
        "every commit writes a redo record"
    );
}
