//! The RAII contract of `Session`/`Txn`: an attempt that is dropped
//! mid-flight — early return, forgotten commit, or a panic in the middle
//! of a piece — aborts and releases its locks *exactly once*, under every
//! protocol. Plus the double-abort regression: explicit abort followed by
//! drop (and failed commit followed by drop) must not release twice.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use bamboo_repro::core::protocol::{
    Ic3Protocol, LockingProtocol, PieceAccess, PieceDecl, Protocol, SiloProtocol, TemplateDecl,
};
use bamboo_repro::core::{Database, Session, TxnOptions};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};

const ROWS: u64 = 8;

fn load() -> (Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "t",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
    );
    let db = b.build();
    for k in 0..ROWS {
        db.table(t)
            .insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
    }
    (db, t)
}

/// One generic single-piece IC3 template covering the whole table, so the
/// chopping protocol can run ad-hoc single-piece transactions.
fn ic3_generic() -> Vec<TemplateDecl> {
    vec![TemplateDecl {
        name: "generic".into(),
        pieces: vec![PieceDecl::new(vec![PieceAccess::write(
            TableId(0),
            u64::MAX,
            u64::MAX,
        )])],
    }]
}

/// The four protocol families the RAII contract must hold under.
fn protocols() -> Vec<(&'static str, Arc<dyn Protocol>)> {
    vec![
        ("bamboo", Arc::new(LockingProtocol::bamboo())),
        ("wound_wait", Arc::new(LockingProtocol::wound_wait())),
        ("silo", Arc::new(SiloProtocol::new())),
        ("ic3", Arc::new(Ic3Protocol::new(ic3_generic(), false))),
    ]
}

/// Runs `mutate` (which updates keys 0 and 1 inside a transaction that is
/// never committed), then proves the locks were released exactly once: the
/// tuples are quiescent, the writes rolled back, and a follow-up
/// transaction on the same keys commits immediately.
fn assert_released_and_reusable(name: &str, db: &Arc<Database>, t: TableId, session: &Session) {
    for k in 0..2u64 {
        let tup = db.table(t).get(k).unwrap();
        assert!(
            tup.meta.lock.lock().is_quiescent(),
            "{name}: key {k} left residual lock state"
        );
        assert!(
            tup.meta.ic3.lock().is_quiescent(),
            "{name}: key {k} left residual ic3 state"
        );
        assert_eq!(
            tup.read_row().get_i64(1),
            0,
            "{name}: aborted write leaked into key {k}"
        );
    }
    // The decisive proof of release: a follow-up transaction on the same
    // keys commits without blocking or aborting.
    let mut txn = session.begin_with(TxnOptions::new().template(0));
    txn.piece_begin(0).unwrap();
    for k in 0..2u64 {
        txn.update(t, k, |row| row.set(1, Value::I64(7))).unwrap();
    }
    txn.piece_end().unwrap();
    txn.commit()
        .unwrap_or_else(|e| panic!("{name}: follow-up txn blocked by a leaked lock: {e}"));
    for k in 0..2u64 {
        assert_eq!(db.table(t).get(k).unwrap().read_row().get_i64(1), 7);
    }
}

#[test]
fn dropped_txn_releases_locks_under_every_protocol() {
    for (name, proto) in protocols() {
        let (db, t) = load();
        let session = Session::new(Arc::clone(&db), proto);
        {
            let mut txn = session.begin_with(TxnOptions::new().template(0));
            txn.piece_begin(0).unwrap();
            for k in 0..2u64 {
                txn.update(t, k, |row| row.set(1, Value::I64(99))).unwrap();
            }
            // Neither piece_end nor commit: the drop below must abort the
            // attempt and release both exclusive entries.
        }
        assert_released_and_reusable(name, &db, t, &session);
    }
}

#[test]
fn mid_piece_panic_releases_locks_under_every_protocol() {
    for (name, proto) in protocols() {
        let (db, t) = load();
        let session = Session::new(Arc::clone(&db), proto);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut txn = session.begin_with(TxnOptions::new().template(0));
            txn.piece_begin(0).unwrap();
            for k in 0..2u64 {
                txn.update(t, k, |row| row.set(1, Value::I64(99))).unwrap();
            }
            panic!("simulated application bug mid-piece");
        }));
        assert!(result.is_err(), "{name}: the panic must propagate");
        // Unwinding dropped the Txn; its Drop ran the abort path.
        assert_released_and_reusable(name, &db, t, &session);
    }
}

#[test]
fn explicit_abort_then_drop_aborts_exactly_once() {
    // Double-abort regression: Txn::abort consumes the guard, and the
    // internal finished flag makes the Drop path a no-op — the release
    // must not run twice (a second release of the same entry would corrupt
    // the lock lists or double-decrement dependents' semaphores).
    for (name, proto) in protocols() {
        let (db, t) = load();
        let session = Session::new(Arc::clone(&db), proto);
        let mut txn = session.begin_with(TxnOptions::new().template(0));
        txn.piece_begin(0).unwrap();
        txn.update(t, 0, |row| row.set(1, Value::I64(5))).unwrap();
        let _cascaded = txn.abort(); // consumes; Drop runs right here
        let tup = db.table(t).get(0).unwrap();
        tup.meta.lock.lock().assert_invariants();
        assert!(
            tup.meta.lock.lock().is_quiescent(),
            "{name}: abort did not release"
        );
        assert_released_and_reusable(name, &db, t, &session);
    }
}

#[test]
fn failed_commit_then_drop_aborts_exactly_once() {
    // A commit that fails aborts internally; the subsequent drop of the
    // (consumed) guard must not release again. Bamboo's cascade machinery
    // provides a deterministic commit failure: the reader of an aborted
    // writer's dirty data cannot commit.
    let (db, t) = load();
    let session = Session::new(
        Arc::clone(&db),
        Arc::new(LockingProtocol::bamboo_base()) as Arc<dyn Protocol>,
    );
    for round in 0..20 {
        let mut w = session.begin();
        w.update(t, 0, |row| row.set(1, Value::I64(999))).unwrap();
        let mut r = session.begin();
        assert_eq!(r.read(t, 0).unwrap().get_i64(1), 999, "round {round}");
        w.abort();
        assert!(
            r.commit().is_err(),
            "round {round}: reader of aborted data must fail to commit"
        );
        let tup = db.table(t).get(0).unwrap();
        tup.meta.lock.lock().assert_invariants();
        assert!(tup.meta.lock.lock().is_quiescent(), "round {round}");
        assert_eq!(tup.read_row().get_i64(1), 0, "round {round}");
    }
    // Dependents' semaphores survived the churn: a fresh pair pipelines
    // normally (a double release would have driven a semaphore negative).
    let mut a = session.begin();
    a.update(t, 0, |row| row.set(1, Value::I64(1))).unwrap();
    let mut b = session.begin();
    b.update(t, 0, |row| {
        let v = row.get_i64(1);
        row.set(1, Value::I64(v + 1));
    })
    .unwrap();
    assert_eq!(b.shared().semaphore(), 1);
    a.commit().unwrap();
    b.commit().unwrap();
    assert_eq!(db.table(t).get(0).unwrap().read_row().get_i64(1), 2);
}

#[test]
fn early_error_return_in_run_piece_aborts_via_drop() {
    // The `?`-operator shape every TxnSpec uses: an Err mid-piece
    // propagates out of a helper that owns the Txn; the guard's drop — not
    // any explicit call — performs the abort.
    fn helper(session: &Session, t: TableId) -> Result<(), bamboo_repro::core::Abort> {
        let mut txn = session.begin();
        txn.update(t, 0, |row| row.set(1, Value::I64(123)))?;
        Err(bamboo_repro::core::Abort(
            bamboo_repro::core::AbortReason::User,
        ))
        // txn dropped here with the attempt unfinished → aborted once.
    }
    let (db, t) = load();
    let session = Session::new(
        Arc::clone(&db),
        Arc::new(LockingProtocol::bamboo()) as Arc<dyn Protocol>,
    );
    assert!(helper(&session, t).is_err());
    let tup = db.table(t).get(0).unwrap();
    assert!(tup.meta.lock.lock().is_quiescent());
    assert_eq!(tup.read_row().get_i64(1), 0);
    assert_released_and_reusable("bamboo-early-return", &db, t, &session);
}
