//! The chaos suite: transfer fire under a *seeded* storage-fault schedule.
//!
//! A [`bamboo_storage::FaultBackend`] sits between the durable commit
//! pipeline and the filesystem, injecting transient fsync failures, short
//! (torn) writes and `ENOSPC` from a reproducible per-seed schedule. The
//! suite asserts the graceful-degradation contract end to end:
//!
//! * no process panic, ever — storage faults surface as
//!   `AbortReason::DurabilityFailed` aborts of the one affected commit;
//! * money is conserved, in memory while the faults fire and on disk after
//!   recovery;
//! * no acked-but-lost commits: every transfer acknowledged under
//!   `FsyncPolicy::EveryCommit` survives recovery;
//! * a poisoned partition serves snapshot reads while degraded and the
//!   other partitions keep committing;
//! * `PartitionedDb::heal` + recovery converge.
//!
//! Every test prints its seed (`chaos seed: N`); export
//! `BAMBOO_CHAOS_SEED=N` to reproduce a failing schedule exactly. The CI
//! `chaos` job sweeps five fixed seeds in debug and release.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bamboo_repro::core::partition::{PartSession, PartitionedDb};
use bamboo_repro::core::protocol::{
    Ic3Protocol, LockingProtocol, PieceAccess, PieceDecl, Protocol, SiloProtocol, TemplateDecl,
};
use bamboo_repro::core::{AbortReason, DbOptions, TxnOptions};
use bamboo_repro::storage::log::FaultInjector;
use bamboo_repro::storage::{
    DataType, FaultBackend, FaultPlan, FsyncPolicy, PartitionId, RouteStrategy, Row, Schema,
    TableId, Value,
};

const ACCOUNTS_PER_PART: u64 = 8;
const INITIAL: i64 = 1000;
const PARTS: u32 = 2;
const ACCOUNTS: TableId = TableId(0);
const LEDGER: TableId = TableId(1);

/// The coordinator parameters used by the group-commit chaos case.
const GROUP_POLICY: FsyncPolicy = FsyncPolicy::GroupCommit {
    max_batch: 8,
    max_wait_us: 100,
};

/// The schedule seed: `BAMBOO_CHAOS_SEED` when set (the CI sweep and the
/// failing-run repro path), a fixed default otherwise.
fn chaos_seed() -> u64 {
    std::env::var("BAMBOO_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bamboo-chaos-{tag}-{}-{}",
        std::process::id(),
        chaos_seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds the two-partition bank (accounts range-routed, ledger hashed)
/// on a fault-injecting backend. The injector starts disarmed, so schema
/// load and the genesis checkpoint run fault-free.
fn build_faulty(
    dir: &Path,
    plan: FaultPlan,
    policy: FsyncPolicy,
) -> (Arc<PartitionedDb>, Arc<FaultInjector>) {
    let injector = FaultInjector::new(plan);
    let backend = Arc::new(FaultBackend::new(Arc::clone(&injector)));
    let mut b = PartitionedDb::builder(PARTS);
    b.add_table(
        "accounts",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
        RouteStrategy::Range(vec![ACCOUNTS_PER_PART]),
    );
    b.add_table(
        "ledger",
        Schema::build()
            .column("seq", DataType::U64)
            .column("from", DataType::U64)
            .column("to", DataType::U64)
            .column("amount", DataType::I64),
        RouteStrategy::Hash,
    );
    b.with_options(
        DbOptions::new()
            .with_wal_dir(dir.to_path_buf())
            .with_fsync_policy(policy)
            .with_log_backend(backend),
    );
    let pdb = b.build();
    for a in 0..PARTS as u64 * ACCOUNTS_PER_PART {
        pdb.insert(
            ACCOUNTS,
            a,
            Row::from(vec![Value::U64(a), Value::I64(INITIAL)]),
        );
    }
    pdb.checkpoint().expect("genesis checkpoint (disarmed)");
    (pdb, injector)
}

fn balances(pdb: &PartitionedDb) -> BTreeMap<u64, i64> {
    let mut m = BTreeMap::new();
    for p in pdb.parts() {
        let table = p.db().table(ACCOUNTS);
        for r in 0..table.len() as u64 {
            let t = table.get_by_row_id(r).unwrap();
            m.insert(t.key, t.read_row().get_i64(1));
        }
    }
    m
}

fn ledger_rows(pdb: &PartitionedDb) -> BTreeMap<u64, (u64, u64, i64)> {
    let mut m = BTreeMap::new();
    for p in pdb.parts() {
        let table = p.db().table(LEDGER);
        for r in 0..table.len() as u64 {
            let t = table.get_by_row_id(r).unwrap();
            let row = t.read_row();
            m.insert(t.key, (row.get_u64(1), row.get_u64(2), row.get_i64(3)));
        }
    }
    m
}

/// One transfer attempt: `from` and `to` debit/credit plus a unique ledger
/// row, all in one transaction. Returns the commit outcome.
fn transfer(
    session: &PartSession,
    seq: u64,
    from: u64,
    to: u64,
    amount: i64,
) -> Result<(), AbortReason> {
    let mut txn = session.begin_on(PartitionId(0));
    txn.update(ACCOUNTS, from, |r| {
        r.set(1, Value::I64(r.get_i64(1) - amount))
    })
    .and_then(|_| {
        txn.update(ACCOUNTS, to, |r| {
            r.set(1, Value::I64(r.get_i64(1) + amount))
        })
    })
    .and_then(|_| {
        txn.insert(
            LEDGER,
            seq,
            Row::from(vec![
                Value::U64(seq),
                Value::U64(from),
                Value::U64(to),
                Value::I64(amount),
            ]),
            None,
        )
    })
    .and_then(|_| txn.commit())
    .map_err(|e| e.0)
}

/// The tentpole chaos run: seeded fsync/short-write/ENOSPC fire during
/// cross-partition transfers. Money conserved, every acked commit durable,
/// heal keeps the fire going after permanent faults, recovery converges.
#[test]
fn seeded_fault_fire_preserves_acked_commits_and_money() {
    let seed = chaos_seed();
    println!("chaos seed: {seed}");
    let dir = tmp_dir("fire");
    let plan = FaultPlan {
        seed,
        fsync_permille: 40,
        short_write_permille: 25,
        enospc_permille: 12,
        ..FaultPlan::quiet(seed)
    };
    let (pdb, injector) = build_faulty(&dir, plan, FsyncPolicy::EveryCommit);
    let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
    let session = PartSession::new(Arc::clone(&pdb), proto);

    injector.arm();
    let mut acks: Vec<(u64, u64, u64, i64)> = Vec::new();
    let mut failed = 0u64;
    for seq in 1u64..=400 {
        // Alternate partition-local and cross-partition transfers so both
        // the single-append and the multi-append (orphan-group) paths see
        // faults.
        let from = seq % ACCOUNTS_PER_PART;
        let to = if seq % 2 == 0 {
            ACCOUNTS_PER_PART + seq % ACCOUNTS_PER_PART
        } else {
            (seq + 3) % ACCOUNTS_PER_PART
        };
        if from == to {
            continue;
        }
        let amount = (seq % 10) as i64 + 1;
        match transfer(&session, seq, from, to, amount) {
            Ok(()) => acks.push((seq, from, to, amount)),
            Err(reason) => {
                assert_eq!(
                    reason,
                    AbortReason::DurabilityFailed,
                    "storage faults must surface as DurabilityFailed (seed {seed})"
                );
                failed += 1;
                // Heal degraded partitions in place — with the injector
                // still armed, so the heal path itself is under fire. A
                // failed heal just leaves the partition degraded for the
                // next attempt.
                for p in 0..PARTS {
                    if pdb.parts()[p as usize].wal().is_degraded() {
                        let _ = pdb.heal(PartitionId(p));
                    }
                }
            }
        }
    }
    injector.disarm();
    assert!(
        injector.injected() > 0,
        "the schedule never fired — permilles too low for seed {seed}"
    );
    assert!(
        !acks.is_empty(),
        "every transfer failed under seed {seed} — fire too hot to test durability"
    );
    println!(
        "chaos seed {seed}: {} acked, {failed} aborted, {} faults injected, {} retries, {} failures",
        acks.len(),
        injector.injected(),
        pdb.wal_io_retries(),
        pdb.wal_io_failures(),
    );

    // In-memory invariant while the wreckage is still live: no transfer
    // was half-applied.
    let live = balances(&pdb);
    assert_eq!(
        live.values().sum::<i64>(),
        PARTS as i64 * ACCOUNTS_PER_PART as i64 * INITIAL,
        "faults leaked money in memory (seed {seed})"
    );

    // Heal any leftover degradation so the directory ends on a clean tail,
    // then recover on the real filesystem.
    for p in 0..PARTS {
        if pdb.parts()[p as usize].wal().is_degraded() {
            pdb.heal(PartitionId(p)).expect("disarmed heal succeeds");
        }
    }
    drop(session);
    drop(pdb);
    // Recovery options must match the writer's fsync policy: under
    // `EveryCommit` every acked group was individually fsynced, so the
    // weak-policy horizon cut does not apply even though orphaned
    // cross-partition groups sit mid-log.
    let (rec, report) = PartitionedDb::recover(
        DbOptions::new()
            .with_wal_dir(dir.clone())
            .with_fsync_policy(FsyncPolicy::EveryCommit),
    )
    .unwrap_or_else(|e| panic!("recovery after chaos fire (seed {seed}): {e}"));

    let recovered = balances(&rec);
    assert_eq!(
        recovered.values().sum::<i64>(),
        PARTS as i64 * ACCOUNTS_PER_PART as i64 * INITIAL,
        "recovery leaked money (seed {seed}, report: {report:?})"
    );
    let ledger = ledger_rows(&rec);
    for (seq, from, to, amount) in &acks {
        assert_eq!(
            ledger.get(seq),
            Some(&(*from, *to, *amount)),
            "acked commit {seq} lost (seed {seed}, report: {report:?})"
        );
    }
    // Atomicity: the recovered ledger replayed over the initial balances
    // reproduces the recovered balances — aborted transfers left nothing.
    let mut expected: BTreeMap<u64, i64> = (0..PARTS as u64 * ACCOUNTS_PER_PART)
        .map(|a| (a, INITIAL))
        .collect();
    for (from, to, amount) in ledger.values() {
        *expected.get_mut(from).unwrap() -= amount;
        *expected.get_mut(to).unwrap() += amount;
    }
    assert_eq!(
        recovered, expected,
        "a transfer was half-applied (seed {seed}, report: {report:?})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A permanent fault poisons exactly its partition: writes there abort
/// fast with `DurabilityFailed`, snapshot reads keep serving, the sibling
/// partition keeps committing, and `heal` re-admits writes. Recovery after
/// heal converges.
#[test]
fn degraded_partition_is_read_only_until_heal() {
    let seed = chaos_seed();
    println!("chaos seed: {seed}");
    let dir = tmp_dir("degrade");
    // Every fsync fails: the first durable commit exhausts its transient
    // retries and escalates to a permanent degrade.
    let plan = FaultPlan {
        seed,
        fsync_permille: 1000,
        ..FaultPlan::quiet(seed)
    };
    let (pdb, injector) = build_faulty(&dir, plan, FsyncPolicy::EveryCommit);
    let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
    let session = PartSession::new(Arc::clone(&pdb), proto);

    injector.arm();
    // Partition-0-local transfer: only wal-p000 sees the fault.
    let err = transfer(&session, 1, 0, 1, 5).unwrap_err();
    assert_eq!(err, AbortReason::DurabilityFailed);
    injector.disarm();

    assert_eq!(pdb.degraded_partitions(), 1, "only partition 0 degrades");
    assert!(pdb.parts()[0].wal().is_degraded());
    assert!(!pdb.parts()[1].wal().is_degraded());
    assert!(
        pdb.wal_io_retries() >= 2,
        "transient fsync faults are retried before escalating"
    );
    assert!(pdb.wal_io_failures() >= 1);

    // Degraded flag persists after the injector stops: writes targeting
    // partition 0 fail fast without touching the filesystem.
    let err = transfer(&session, 2, 2, 3, 5).unwrap_err();
    assert_eq!(err, AbortReason::DurabilityFailed, "degraded fails fast");

    // The failed transfers installed nothing.
    let live = balances(&pdb);
    assert!(live.values().all(|&v| v == INITIAL), "aborts left no trace");

    // Snapshot reads on the degraded partition keep serving.
    let mut snap = session.snapshot_on(PartitionId(0));
    assert_eq!(snap.read(ACCOUNTS, 0).unwrap().get_i64(1), INITIAL);
    snap.commit().unwrap();

    // The sibling partition keeps committing. No ledger row here: the
    // ledger is hash-routed and could land on the degraded partition, and
    // this assertion is about a *strictly* partition-1-local write.
    {
        let mut txn = session.begin_on(PartitionId(1));
        txn.update(ACCOUNTS, ACCOUNTS_PER_PART + 1, |r| {
            r.set(1, Value::I64(r.get_i64(1) - 7))
        })
        .and_then(|_| {
            txn.update(ACCOUNTS, ACCOUNTS_PER_PART + 2, |r| {
                r.set(1, Value::I64(r.get_i64(1) + 7))
            })
        })
        .and_then(|_| txn.commit())
        .expect("healthy partition commits while its sibling is degraded");
    }

    // A cross-partition transfer touching the degraded partition aborts
    // *before* writing an orphan group to the healthy sibling.
    let p1_records = pdb.parts()[1].wal().records();
    let err = transfer(&session, 4, 1, ACCOUNTS_PER_PART + 3, 5).unwrap_err();
    assert_eq!(err, AbortReason::DurabilityFailed);
    assert_eq!(
        pdb.parts()[1].wal().records(),
        p1_records,
        "degraded pre-check must fire before any sibling append"
    );

    // Checkpoints refuse while any partition is degraded.
    assert!(pdb.checkpoint().is_err(), "checkpoint requires health");

    // Heal partition 0 and re-admit writes.
    pdb.heal(PartitionId(0)).expect("heal re-opens the segment");
    assert_eq!(pdb.degraded_partitions(), 0);
    transfer(&session, 5, 0, 1, 9).expect("healed partition commits again");
    pdb.checkpoint().expect("checkpoint after heal");

    // Recovery converges on the healed history.
    let before = balances(&pdb);
    drop(session);
    drop(pdb);
    let (rec, _report) = PartitionedDb::recover(
        DbOptions::new()
            .with_wal_dir(dir.clone())
            .with_fsync_policy(FsyncPolicy::EveryCommit),
    )
    .unwrap();
    assert_eq!(balances(&rec), before, "recovery after heal converges");
    assert_eq!(
        balances(&rec).values().sum::<i64>(),
        PARTS as i64 * ACCOUNTS_PER_PART as i64 * INITIAL,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same seed produces the same schedule: two single-threaded fires
/// over identical workloads commit and abort identically, file for file.
#[test]
fn same_seed_reproduces_the_same_outcomes() {
    let seed = chaos_seed();
    println!("chaos seed: {seed}");
    let run = |tag: &str| -> (Vec<bool>, u64) {
        let dir = tmp_dir(tag);
        let plan = FaultPlan {
            seed,
            fsync_permille: 60,
            short_write_permille: 30,
            enospc_permille: 15,
            ..FaultPlan::quiet(seed)
        };
        let (pdb, injector) = build_faulty(&dir, plan, FsyncPolicy::EveryCommit);
        let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
        let session = PartSession::new(Arc::clone(&pdb), proto);
        injector.arm();
        let mut outcomes = Vec::new();
        for seq in 1u64..=120 {
            let from = seq % ACCOUNTS_PER_PART;
            let to = ACCOUNTS_PER_PART + (seq + 1) % ACCOUNTS_PER_PART;
            outcomes.push(transfer(&session, seq, from, to, 1).is_ok());
            for p in 0..PARTS {
                if pdb.parts()[p as usize].wal().is_degraded() {
                    let _ = pdb.heal(PartitionId(p));
                }
            }
        }
        injector.disarm();
        let injected = injector.injected();
        drop(session);
        drop(pdb);
        let _ = std::fs::remove_dir_all(&dir);
        (outcomes, injected)
    };
    let (a, ia) = run("det-a");
    let (b, ib) = run("det-b");
    assert_eq!(a, b, "same seed, same commit/abort sequence (seed {seed})");
    assert_eq!(ia, ib, "same seed, same injected-fault count (seed {seed})");
    assert!(ia > 0, "schedule fired at least once under seed {seed}");
}

/// Group-commit batch-fsync failure: the whole staged batch surfaces
/// `DurabilityFailed` at *ack* time — the commit points all passed (under
/// `GroupCommit` the commit boundary never syncs), versions installed and
/// locks released, so the batch fsync is the first thing that can fail.
/// The failing partition degrades, the sibling keeps committing, and
/// heal + checkpoint + recovery converge on the installed state.
#[test]
fn group_commit_batch_fsync_failure_fails_whole_batch_and_degrades() {
    let seed = chaos_seed();
    println!("chaos seed: {seed}");
    let dir = tmp_dir("group-batch");
    // Every fsync fails: the leader's batch sync exhausts its transient
    // retries and escalates to a permanent degrade.
    let plan = FaultPlan {
        seed,
        fsync_permille: 1000,
        ..FaultPlan::quiet(seed)
    };
    let (pdb, injector) = build_faulty(&dir, plan, GROUP_POLICY);
    let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
    let session = PartSession::new(Arc::clone(&pdb), proto);

    injector.arm();
    // Stage a batch of partition-0-local transfers through the
    // deferred-ack pipeline (accounts only — the ledger is hash-routed
    // and could drag the healthy sibling's WAL into the ticket).
    let mut tickets = Vec::new();
    for seq in 1u64..=4 {
        let (from, to) = (seq, (seq + 3) % ACCOUNTS_PER_PART);
        let mut txn = session.begin_on(PartitionId(0));
        txn.update(ACCOUNTS, from, |r| r.set(1, Value::I64(r.get_i64(1) - 5)))
            .and_then(|_| txn.update(ACCOUNTS, to, |r| r.set(1, Value::I64(r.get_i64(1) + 5))))
            .expect("fsync faults cannot touch the commit point under GroupCommit");
        let ticket = txn
            .commit_deferred()
            .expect("commit point passes — only the ack can fail")
            .expect("durable GroupCommit commits always carry a ticket");
        tickets.push((seq, ticket));
    }
    // Every member of the batch fails at ack time, not just the leader.
    for (seq, ticket) in tickets {
        let err = session
            .session(PartitionId(0))
            .ack_ticket(ticket)
            .expect_err("the batch fsync failed — no member may ack");
        assert_eq!(
            err.0,
            AbortReason::DurabilityFailed,
            "batch member {seq} must surface DurabilityFailed (seed {seed})"
        );
    }
    injector.disarm();
    assert!(injector.injected() > 0, "the batch fsync never fired");
    assert_eq!(pdb.degraded_partitions(), 1, "only partition 0 degrades");
    assert!(pdb.parts()[0].wal().is_degraded());
    assert!(!pdb.parts()[1].wal().is_degraded());

    // Ack-time failure is post-commit: the batch is installed in memory
    // (that is the documented durability gap until heal + checkpoint),
    // and no transfer was half-applied.
    let live = balances(&pdb);
    assert!(
        live.values().any(|&v| v != INITIAL),
        "batch members must be installed despite the failed ack"
    );
    assert_eq!(
        live.values().sum::<i64>(),
        PARTS as i64 * ACCOUNTS_PER_PART as i64 * INITIAL,
        "the failed batch leaked money in memory (seed {seed})"
    );

    // The sibling partition keeps committing while partition 0 is
    // degraded — its own group-commit coordinator is unaffected.
    {
        let mut txn = session.begin_on(PartitionId(1));
        txn.update(ACCOUNTS, ACCOUNTS_PER_PART + 1, |r| {
            r.set(1, Value::I64(r.get_i64(1) - 7))
        })
        .and_then(|_| {
            txn.update(ACCOUNTS, ACCOUNTS_PER_PART + 2, |r| {
                r.set(1, Value::I64(r.get_i64(1) + 7))
            })
        })
        .and_then(|_| txn.commit())
        .expect("healthy partition commits while its sibling is degraded");
    }

    // Later tickets on the degraded partition fail fast without parking.
    {
        let mut txn = session.begin_on(PartitionId(0));
        txn.update(ACCOUNTS, 6, |r| r.set(1, Value::I64(r.get_i64(1) - 1)))
            .and_then(|_| txn.update(ACCOUNTS, 7, |r| r.set(1, Value::I64(r.get_i64(1) + 1))))
            .and_then(|_| txn.commit())
            .expect_err("degraded partition must refuse new commits");
    }

    // Heal, recommit, seal with a checkpoint; recovery converges on the
    // installed state (including the never-acked batch, which the
    // checkpoint made durable).
    pdb.heal(PartitionId(0)).expect("disarmed heal succeeds");
    assert_eq!(pdb.degraded_partitions(), 0);
    transfer(&session, 100, 0, 1, 3).expect("healed partition commits and acks again");
    pdb.checkpoint().expect("checkpoint after heal");
    let before = balances(&pdb);
    drop(session);
    drop(pdb);
    let (rec, report) = PartitionedDb::recover(
        DbOptions::new()
            .with_wal_dir(dir.clone())
            .with_fsync_policy(GROUP_POLICY),
    )
    .unwrap_or_else(|e| panic!("recovery after batch failure + heal (seed {seed}): {e}"));
    assert_eq!(
        balances(&rec),
        before,
        "recovery diverged from the healed state (seed {seed}, report: {report:?})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `DurabilityFailed` release contract, across every protocol family:
/// a commit that reaches its commit point and is then revoked by a
/// storage fault must release its locks exactly once — the tuples end
/// quiescent, nothing installed, and a follow-up transaction on the same
/// keys commits immediately once the partition is healed.
#[test]
fn durability_failed_abort_releases_locks_under_every_protocol() {
    let ic3_generic = || {
        vec![TemplateDecl {
            name: "generic".into(),
            pieces: vec![PieceDecl::new(vec![PieceAccess::write(
                ACCOUNTS,
                u64::MAX,
                u64::MAX,
            )])],
        }]
    };
    let protocols: Vec<(&str, Arc<dyn Protocol>)> = vec![
        ("bamboo", Arc::new(LockingProtocol::bamboo())),
        ("wound_wait", Arc::new(LockingProtocol::wound_wait())),
        ("wait_die", Arc::new(LockingProtocol::wait_die())),
        ("no_wait", Arc::new(LockingProtocol::no_wait())),
        ("silo", Arc::new(SiloProtocol::new())),
        ("ic3", Arc::new(Ic3Protocol::new(ic3_generic(), false))),
    ];
    for (name, proto) in protocols {
        let dir = tmp_dir(&format!("release-{name}"));
        // Every fsync fails: the first durable commit is revoked.
        let plan = FaultPlan {
            seed: chaos_seed(),
            fsync_permille: 1000,
            ..FaultPlan::quiet(chaos_seed())
        };
        let injector = FaultInjector::new(plan);
        let backend = Arc::new(FaultBackend::new(Arc::clone(&injector)));
        let mut b = PartitionedDb::builder(1);
        let t = b.add_table(
            "accounts",
            Schema::build()
                .column("k", DataType::U64)
                .column("v", DataType::I64),
            RouteStrategy::Hash,
        );
        b.with_options(
            DbOptions::new()
                .with_wal_dir(dir.clone())
                .with_fsync_policy(FsyncPolicy::EveryCommit)
                .with_log_backend(backend),
        );
        let pdb = b.build();
        for k in 0..4u64 {
            pdb.insert(t, k, Row::from(vec![Value::U64(k), Value::I64(0)]));
        }
        pdb.checkpoint().expect("genesis checkpoint (disarmed)");
        let session = PartSession::new(Arc::clone(&pdb), proto);

        injector.arm();
        {
            let mut txn = session.begin_on_with(PartitionId(0), TxnOptions::new().template(0));
            txn.piece_begin(0).unwrap();
            for k in 0..2u64 {
                txn.update(t, k, |r| r.set(1, Value::I64(99))).unwrap();
            }
            txn.piece_end().unwrap();
            let err = txn.commit().unwrap_err();
            assert_eq!(
                err.0,
                AbortReason::DurabilityFailed,
                "{name}: the revoked commit must surface as DurabilityFailed"
            );
            // `commit` consumed the txn and aborted in place; the drop
            // here must NOT release a second time.
        }
        injector.disarm();

        let db0 = pdb.parts()[0].db();
        for k in 0..2u64 {
            let tup = db0.table(t).get(k).unwrap();
            assert!(
                tup.meta.lock.lock().is_quiescent(),
                "{name}: key {k} left residual lock state after DurabilityFailed"
            );
            assert!(
                tup.meta.ic3.lock().is_quiescent(),
                "{name}: key {k} left residual ic3 state after DurabilityFailed"
            );
            assert_eq!(
                tup.read_row().get_i64(1),
                0,
                "{name}: revoked commit installed its write into key {k}"
            );
        }

        pdb.heal(PartitionId(0)).expect("disarmed heal succeeds");
        let mut txn = session.begin_on_with(PartitionId(0), TxnOptions::new().template(0));
        txn.piece_begin(0).unwrap();
        for k in 0..2u64 {
            txn.update(t, k, |r| r.set(1, Value::I64(7))).unwrap();
        }
        txn.piece_end().unwrap();
        txn.commit().unwrap_or_else(|e| {
            panic!("{name}: follow-up txn blocked by a leaked lock or stuck degraded flag: {e}")
        });
        for k in 0..2u64 {
            assert_eq!(db0.table(t).get(k).unwrap().read_row().get_i64(1), 7);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
