//! The partitioned database, end to end.
//!
//! Builds a 4-partition TPC-C (one warehouse per partition), runs the
//! paper's NewOrder/Payment mix through partition-homed sessions, and
//! shows the three things the partitioned architecture guarantees:
//!
//! 1. Single-partition transactions stay on their home shard (local
//!    lock-entry space, home WAL segment).
//! 2. Remote-warehouse payments and remote-stock order lines execute as
//!    genuine cross-partition transactions — one commit timestamp,
//!    per-partition WAL appends in partition-id order — and money is
//!    conserved across partitions.
//! 3. A snapshot taken on *any* partition is globally consistent, because
//!    every partition shares one lock-free commit clock.
//!
//! ```text
//! cargo run --release --example partitioned_demo
//! ```

use std::sync::Arc;

use bamboo_repro::core::executor::{run_part_bench, BenchConfig, Workload};
use bamboo_repro::core::protocol::{LockingProtocol, Protocol};
use bamboo_repro::storage::PartitionId;
use bamboo_repro::workload::tpcc::{self, TpccConfig, TpccWorkload};

fn main() {
    let partitions = 4;
    let cfg = TpccConfig {
        warehouses: partitions,
        items: 500,
        customers_per_district: 100,
        partitions,
        ..TpccConfig::default()
    }
    .with_remote_ratio(0.15);

    let (pdb, tables, lastname) = tpcc::load_partitioned(&cfg);
    println!(
        "loaded TPC-C: {} warehouses over {} partitions, {} physical rows",
        cfg.warehouses,
        pdb.partitions(),
        pdb.total_rows()
    );
    for part in pdb.parts() {
        println!(
            "  partition {}: {} warehouses, {} stock rows, item replica of {} rows",
            part.id().0,
            part.db().table(tables.warehouse).len(),
            part.db().table(tables.stock).len(),
            part.db().table(tables.item).len(),
        );
    }

    let wl: Arc<dyn Workload> = Arc::new(TpccWorkload::new_partitioned(
        cfg.clone(),
        &pdb,
        tables,
        lastname,
    ));
    let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
    let res = run_part_bench(&pdb, &proto, &wl, &BenchConfig::quick(4));

    println!(
        "\n{} committed {} txns ({:.0} txn/s), {:.1}% of commits cross-partition",
        res.protocol,
        res.totals.commits,
        res.throughput(),
        res.cross_partition_share() * 100.0,
    );
    for part in pdb.parts() {
        println!(
            "  partition {}: {} home commits, {} WAL records, {} KiB logged",
            part.id().0,
            part.stats().commits(),
            part.wal().records(),
            part.wal().bytes_logged() / 1024,
        );
    }

    // The money invariant, summed across every partition's shards.
    let mut w_ytd = 0.0;
    let mut d_ytd = 0.0;
    for part in pdb.parts() {
        let db = part.db();
        let wt = db.table(tables.warehouse);
        for r in 0..wt.len() as u64 {
            w_ytd += wt.get_by_row_id(r).unwrap().read_row().get_f64(3);
        }
        let dt = db.table(tables.district);
        for r in 0..dt.len() as u64 {
            d_ytd += dt.get_by_row_id(r).unwrap().read_row().get_f64(3);
        }
    }
    let loaded = cfg.warehouses as f64 * 300_000.0;
    println!(
        "\nΔ(ΣW_YTD) = {:.2}, Δ(ΣD_YTD) = {:.2} (must match: payments land on both)",
        w_ytd - loaded,
        d_ytd - loaded,
    );
    assert!(
        (w_ytd - d_ytd).abs() < 1e-3,
        "money leaked across partitions"
    );

    // Globally consistent snapshot from an arbitrary partition.
    let session = bamboo_repro::core::PartSession::new(Arc::clone(&pdb), proto);
    let mut snap = session.snapshot_on(PartitionId(partitions as u32 - 1));
    let mut snap_w_ytd = 0.0;
    for w in 0..cfg.warehouses {
        snap_w_ytd += snap.read(tables.warehouse, w).unwrap().get_f64(3);
    }
    snap.commit().unwrap();
    println!("snapshot Σ W_YTD = {snap_w_ytd:.2} (consistent across partitions)");
    println!("\nOK: partitioned execution conserved the books.");
}
