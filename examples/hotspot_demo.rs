//! The paper's headline scenario, live: a single read-modify-write hotspot
//! at the beginning of every transaction (paper §5.2 / Figure 1).
//!
//! Runs the synthetic microbenchmark under Bamboo and every baseline and
//! prints the schedule-level difference: Bamboo serializes transactions
//! only for the *duration of the hotspot access*, the 2PL baselines for
//! the duration of whole transactions.
//!
//! ```text
//! cargo run --release --example hotspot_demo
//! ```

use std::sync::Arc;
use std::time::Duration;

use bamboo_repro::core::executor::{run_bench, BenchConfig, Workload};
use bamboo_repro::core::protocol::{LockingProtocol, Protocol, SiloProtocol};
use bamboo_repro::workload::synthetic::{self, SyntheticConfig, SyntheticWorkload};

fn main() {
    // One RMW hotspot at position 0, then 15 random reads (the paper's
    // default transaction length).
    let cfg = SyntheticConfig::one_hotspot(0.0).with_rows(1 << 16);
    let (db, table) = synthetic::load(&cfg);
    let wl: Arc<dyn Workload> = Arc::new(SyntheticWorkload::new(cfg.clone(), table));

    let bench = BenchConfig::quick(8)
        .with_duration(Duration::from_millis(500))
        .with_warmup(Duration::from_millis(100))
        .with_seed(3);

    println!("single hotspot at txn start, 16 ops, 8 workers\n");
    println!(
        "{:<14} {:>12} {:>9} {:>13} {:>11}",
        "protocol", "tput(txn/s)", "abort%", "lock_wait_ms", "commit_wait"
    );
    let mut bamboo_tput = 0.0;
    let mut ww_tput = 0.0;
    for proto in [
        Arc::new(LockingProtocol::bamboo()) as Arc<dyn Protocol>,
        Arc::new(LockingProtocol::wound_wait()) as Arc<dyn Protocol>,
        Arc::new(LockingProtocol::wait_die()) as Arc<dyn Protocol>,
        Arc::new(LockingProtocol::no_wait()) as Arc<dyn Protocol>,
        Arc::new(SiloProtocol::new()) as Arc<dyn Protocol>,
    ] {
        let res = run_bench(&db, &proto, &wl, &bench);
        println!(
            "{:<14} {:>12.0} {:>8.1}% {:>13.4} {:>11.4}",
            res.protocol,
            res.throughput(),
            res.abort_rate() * 100.0,
            res.lock_wait_ms_per_commit(),
            res.commit_wait_ms_per_commit(),
        );
        match res.protocol.as_str() {
            "BAMBOO" => bamboo_tput = res.throughput(),
            "WOUND_WAIT" => ww_tput = res.throughput(),
            _ => {}
        }
    }
    println!(
        "\nBAMBOO / WOUND_WAIT speedup: {:.2}x — the hotspot stops being a\n\
         transaction-length lock; it is held only while being written.",
        bamboo_tput / ww_tput.max(1.0)
    );
    println!(
        "hotspot tuple was committed {} times",
        db.table(table).get(0).unwrap().read_row().get_i64(1)
    );
}
