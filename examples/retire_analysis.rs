//! The §3.3 program analysis, end to end: take the paper's Listing 1 and
//! Listing 3 programs, run the retire-point analysis (synthesized
//! conditions, hoisting, loop fission), and execute the transformed
//! programs against a live database through Bamboo.
//!
//! ```text
//! cargo run --example retire_analysis
//! ```

use std::sync::Arc;

use bamboo_repro::analysis::ir::{AccessMode, Expr, Program, Stmt};
use bamboo_repro::analysis::{insert_retire_points, run_program, Decision};
use bamboo_repro::core::protocol::{LockingProtocol, Protocol};
use bamboo_repro::core::{Database, Session};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};

fn load() -> std::sync::Arc<Database> {
    let mut b = Database::builder();
    let t = b.add_table(
        "table1",
        Schema::build()
            .column("key", DataType::U64)
            .column("value", DataType::I64),
    );
    assert_eq!(t, TableId(0));
    let db = b.build();
    for k in 0..64u64 {
        db.table(t)
            .insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
    }
    db
}

/// Listing 1: `op1(table1, tup1); ...; tup2.key = f(input); if (cond)
/// op2(table1, tup2)`.
fn listing1() -> Program {
    Program {
        params: 2, // params[0] = cond, params[1] = input
        stmts: vec![
            Stmt::Access {
                id: 0,
                table: TableId(0),
                key: Expr::Const(5),
                mode: AccessMode::Write,
            },
            Stmt::Let {
                var: "other_work".into(),
                expr: Expr::Const(0),
            },
            Stmt::Let {
                var: "tup2_key".into(),
                expr: Expr::Mod(Box::new(Expr::Param(1)), Box::new(Expr::Const(64))),
            },
            Stmt::If {
                cond: Expr::Param(0),
                then_branch: vec![Stmt::Access {
                    id: 1,
                    table: TableId(0),
                    key: Expr::var("tup2_key"),
                    mode: AccessMode::Write,
                }],
                else_branch: vec![],
            },
        ],
    }
}

/// Listing 3: `for i { key[i] = f(input2[i]); access(table, key[i]) }` with
/// deliberately colliding keys so the `can_retire` scan matters.
fn listing3() -> Program {
    Program {
        params: 0,
        stmts: vec![Stmt::For {
            var: "i".into(),
            count: Expr::Const(6),
            body: vec![
                Stmt::LetArr {
                    arr: "key".into(),
                    idx: Expr::var("i"),
                    // keys: 0,1,2,0,1,2 — each key written twice.
                    expr: Expr::Mod(Box::new(Expr::var("i")), Box::new(Expr::Const(3))),
                },
                Stmt::Access {
                    id: 0,
                    table: TableId(0),
                    key: Expr::index("key", Expr::var("i")),
                    mode: AccessMode::Write,
                },
            ],
        }],
    }
}

fn main() {
    let db = load();
    // The interpreter drives LockingProtocol's manual-retire knobs, so it
    // takes the concrete protocol config alongside the session's Txn.
    let proto = LockingProtocol::bamboo();
    let session = Session::new(
        Arc::clone(&db),
        Arc::new(proto.clone()) as Arc<dyn Protocol>,
    );

    println!("--- Listing 1 → Listing 2 (synthesized retire condition) ---");
    let a1 = insert_retire_points(&listing1());
    for r in &a1.report {
        println!("site {} → {:?}", r.site, r.decision);
    }
    assert_eq!(a1.report[0].decision, Decision::Conditional);
    // cond = true but keys differ (param1 % 64 = 9 ≠ 5): retire fires.
    let mut txn = session.begin();
    let stats = run_program(&proto, &mut txn, &a1.program, &[1, 9]).unwrap();
    txn.commit().unwrap();
    println!(
        "run(cond=1, key=9): retires={} skipped={}",
        stats.retires, stats.retires_skipped
    );
    assert_eq!(stats.retires, 2); // op1's conditional + op2's immediate
                                  // cond = true and keys EQUAL: retire of op1 must be skipped.
    let mut txn = session.begin();
    let stats = run_program(&proto, &mut txn, &a1.program, &[1, 5]).unwrap();
    txn.commit().unwrap();
    println!(
        "run(cond=1, key=5): retires={} skipped={}",
        stats.retires, stats.retires_skipped
    );
    assert_eq!(stats.retires_skipped, 1);
    assert_eq!(stats.reacquires, 0, "analysis never retires unsafely");

    println!("\n--- Listing 3 → Listing 4 (loop fission + can_retire) ---");
    let a3 = insert_retire_points(&listing3());
    for r in &a3.report {
        println!("site {} → {:?}", r.site, r.decision);
    }
    assert_eq!(a3.report[0].decision, Decision::LoopFission);
    let mut txn = session.begin();
    let stats = run_program(&proto, &mut txn, &a3.program, &[]).unwrap();
    txn.commit().unwrap();
    println!(
        "run: accesses={} retires={} skipped={} reacquires={}",
        stats.accesses, stats.retires, stats.retires_skipped, stats.reacquires
    );
    // Keys 0,1,2 appear at iterations 0..2 (later duplicates exist → skip)
    // and again at iterations 3..5 (last occurrence → retire).
    assert_eq!(stats.retires, 3);
    assert_eq!(stats.retires_skipped, 3);
    assert_eq!(stats.reacquires, 0, "duplicates were held, not retired");
    println!("\nanalysis-guided retiring matched the paper's Listings 2/4 ✓");
}
