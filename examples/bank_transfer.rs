//! Bank transfers: serializability and cascading aborts, visibly.
//!
//! Many concurrent transfer transactions move money between accounts with
//! one *hot* settlement account (every transfer pays a fee into it). The
//! total balance is an invariant every serializable protocol must preserve
//! — run it under Bamboo and all baselines and check the books balance.
//! Also demonstrates a cascading abort chain end to end.
//!
//! ```text
//! cargo run --release --example bank_transfer
//! ```

use std::sync::Arc;

use bamboo_repro::core::executor::{run_bench, BenchConfig, TxnSpec, Workload};
use bamboo_repro::core::protocol::{LockingProtocol, Protocol, SiloProtocol};
use bamboo_repro::core::{Abort, Database, Session, Txn};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};
use rand::rngs::SmallRng;
use rand::Rng;

const ACCOUNTS: u64 = 1000;
const SETTLEMENT: u64 = 0; // the hotspot
const INITIAL: i64 = 1_000;

fn load() -> (Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "accounts",
        Schema::build()
            .column("id", DataType::U64)
            .column("balance", DataType::I64),
    );
    let db = b.build();
    for id in 0..ACCOUNTS {
        db.table(t)
            .insert(id, Row::from(vec![Value::U64(id), Value::I64(INITIAL)]));
    }
    (db, t)
}

struct Transfer {
    table: TableId,
    from: u64,
    to: u64,
    amount: i64,
}

impl TxnSpec for Transfer {
    fn planned_ops(&self) -> Option<usize> {
        Some(3)
    }

    fn run_piece(&self, _piece: usize, txn: &mut Txn<'_>) -> Result<(), Abort> {
        let amount = self.amount;
        // Fee into the settlement hotspot first — the paper's "hotspot at
        // the beginning", where Bamboo's early retire shines.
        txn.update(self.table, SETTLEMENT, |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v + 1)); // 1 unit fee
        })?;
        txn.update(self.table, self.from, |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v - amount - 1));
        })?;
        txn.update(self.table, self.to, |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v + amount));
        })?;
        Ok(())
    }
}

struct Transfers {
    table: TableId,
}

impl Workload for Transfers {
    fn name(&self) -> &str {
        "bank-transfers"
    }

    fn generate(&self, _worker: usize, rng: &mut SmallRng) -> Box<dyn TxnSpec> {
        let from = rng.gen_range(1..ACCOUNTS);
        let mut to = rng.gen_range(1..ACCOUNTS - 1);
        if to >= from {
            to += 1;
        }
        Box::new(Transfer {
            table: self.table,
            from,
            to,
            amount: rng.gen_range(1..50),
        })
    }
}

fn total(db: &Database, t: TableId) -> i64 {
    (0..ACCOUNTS)
        .map(|id| db.table(t).get(id).unwrap().read_row().get_i64(1))
        .sum()
}

fn demo_cascade() {
    println!("--- cascading abort demo ---");
    let (db, t) = load();
    // bamboo_base: retire every write.
    let session = Session::new(
        Arc::clone(&db),
        Arc::new(LockingProtocol::bamboo_base()) as Arc<dyn Protocol>,
    );

    // T1 writes the settlement account and retires.
    let mut t1 = session.begin();
    t1.update(t, SETTLEMENT, |row| {
        row.set(1, Value::I64(999));
    })
    .unwrap();
    // T2 and T3 read T1's dirty write (T3 via T2's position in the chain).
    let mut t2 = session.begin();
    t2.update(t, SETTLEMENT, |row| {
        let v = row.get_i64(1);
        row.set(1, Value::I64(v + 1));
    })
    .unwrap();
    let mut t3 = session.begin();
    let seen = t3.read(t, SETTLEMENT).unwrap().get_i64(1);
    println!("T3 read the chained dirty value: {seen} (999 + 1)");

    // T1 aborts → T2 and T3 must abort cascadingly. `abort` consumes the
    // guard and reports the chain length (§4.2's accounting).
    let chain = t1.abort();
    println!("T1 aborted; cascade chain length = {chain}");
    assert!(t2.shared().is_aborted() && t3.shared().is_aborted());
    // A wounded transaction's commit fails — and cleans up after itself:
    // the failed commit aborts the attempt internally, nothing is owed.
    assert!(t2.commit().is_err());
    assert!(t3.commit().is_err());
    println!(
        "settlement balance untouched: {}\n",
        db.table(t).get(SETTLEMENT).unwrap().read_row().get_i64(1)
    );
}

fn main() {
    demo_cascade();

    println!("--- conservation under concurrency (4 workers, 1 hot account) ---");
    for proto in [
        Arc::new(LockingProtocol::bamboo()) as Arc<dyn Protocol>,
        Arc::new(LockingProtocol::wound_wait()) as Arc<dyn Protocol>,
        Arc::new(LockingProtocol::wait_die()) as Arc<dyn Protocol>,
        Arc::new(LockingProtocol::no_wait()) as Arc<dyn Protocol>,
        Arc::new(SiloProtocol::new()) as Arc<dyn Protocol>,
    ] {
        let (db, t) = load();
        let wl: Arc<dyn Workload> = Arc::new(Transfers { table: t });
        let res = run_bench(
            &db,
            &proto,
            &wl,
            &BenchConfig::quick(4)
                .with_duration(std::time::Duration::from_millis(400))
                .with_warmup(std::time::Duration::from_millis(50))
                .with_seed(1),
        );
        let t_after = total(&db, t);
        println!(
            "{:>12}: {:>8.0} txns/s, abort rate {:>5.1}%, total balance {} ({})",
            res.protocol,
            res.throughput(),
            res.abort_rate() * 100.0,
            t_after,
            if t_after == (ACCOUNTS as i64) * INITIAL {
                "conserved ✓"
            } else {
                "LEAKED ✗"
            }
        );
        assert_eq!(t_after, (ACCOUNTS as i64) * INITIAL);
    }
}
