//! TPC-C end to end: load a warehouse, run the 50/50 NewOrder/Payment mix
//! under Bamboo, and audit the books afterwards (money conservation,
//! order-counter consistency) — the §5.5 workload as a library user would
//! drive it.
//!
//! ```text
//! cargo run --release --example tpcc_demo
//! ```

use std::sync::Arc;
use std::time::Duration;

use bamboo_repro::core::executor::{run_bench, BenchConfig, Workload};
use bamboo_repro::core::protocol::{Ic3Protocol, LockingProtocol, Protocol};
use bamboo_repro::workload::tpcc::{self, schema, TpccConfig, TpccWorkload};

fn main() {
    let cfg = TpccConfig::default().with_warehouses(1);
    println!(
        "loading TPC-C: {} warehouse(s), {} items, {} customers/district ...",
        cfg.warehouses, cfg.items, cfg.customers_per_district
    );
    let (db, tables, idx) = tpcc::load(&cfg);
    let wl_typed = Arc::new(TpccWorkload::new(cfg.clone(), Arc::clone(&db), tables, idx));
    let templates = wl_typed.ic3_templates();
    let wl: Arc<dyn Workload> = wl_typed;

    let w_ytd_before: f64 = db
        .table(tables.warehouse)
        .get(0)
        .unwrap()
        .read_row()
        .get_f64(schema::wh::W_YTD);

    let bench = BenchConfig::quick(4)
        .with_duration(Duration::from_millis(500))
        .with_warmup(Duration::from_millis(100))
        .with_seed(99);

    for proto in [
        Arc::new(LockingProtocol::bamboo()) as Arc<dyn Protocol>,
        Arc::new(LockingProtocol::wound_wait()) as Arc<dyn Protocol>,
        Arc::new(Ic3Protocol::new(templates.clone(), true)) as Arc<dyn Protocol>,
    ] {
        let res = run_bench(&db, &proto, &wl, &bench);
        println!("{}", res.summary());
    }

    // Audit: every order claimed by a district counter exists, with its
    // NEW-ORDER row; districts' YTD sums equal the warehouse YTD delta.
    let mut orders_expected = 0u64;
    let mut d_ytd_sum = 0.0;
    for d in 0..schema::DISTRICTS_PER_WAREHOUSE {
        let row = db
            .table(tables.district)
            .get(schema::dist_key(0, d))
            .unwrap()
            .read_row();
        orders_expected += row.get_u64(schema::dist::D_NEXT_O_ID) - 3001;
        d_ytd_sum += row.get_f64(schema::dist::D_YTD) - 30_000.0;
    }
    let w_ytd_delta = db
        .table(tables.warehouse)
        .get(0)
        .unwrap()
        .read_row()
        .get_f64(schema::wh::W_YTD)
        - w_ytd_before;
    println!("\naudit:");
    println!(
        "  orders inserted = {} (orders table holds {})",
        orders_expected,
        db.table(tables.orders).len()
    );
    println!("  ΣD_YTD delta = {d_ytd_sum:.2}, W_YTD delta = {w_ytd_delta:.2} (must match)");
    assert_eq!(orders_expected, db.table(tables.orders).len() as u64);
    assert!((d_ytd_sum - w_ytd_delta).abs() < 1e-2);
    println!("  books balance ✓");
}
