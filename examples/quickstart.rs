//! Quickstart: open a database, run transactions under Bamboo through the
//! `Session`/`Txn` API, observe a dirty read pipelined through the
//! `retired` list.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! ## The API in one look
//!
//! Before (the raw protocol surface — what protocol *implementors* see):
//!
//! ```text
//! let mut ctx = protocol.begin(&database);          // thread three handles
//! protocol.update(&database, &mut ctx, t, 0, &mut |r| …)?;  // everywhere,
//! protocol.commit(&database, &mut ctx, &wal)?;      // and on any Err you
//! // …must remember: protocol.abort(&database, &mut ctx), exactly once.
//! ```
//!
//! After (the session layer — what users write):
//!
//! ```text
//! let session = Session::new(db, Arc::new(LockingProtocol::bamboo()));
//! let mut txn = session.begin();
//! txn.update(t, 0, |r| …)?;
//! txn.commit()?;            // or drop(txn): aborts exactly once, always
//! ```

use std::sync::Arc;

use bamboo_repro::core::protocol::LockingProtocol;
use bamboo_repro::core::{Database, Session};
use bamboo_repro::storage::{DataType, Row, Schema, Value};

fn main() {
    // 1. Define a table and load some rows.
    let mut builder = Database::builder();
    let accounts = builder.add_table(
        "accounts",
        Schema::build()
            .column("id", DataType::U64)
            .column("balance", DataType::I64),
    );
    let db = builder.build();
    for id in 0..10u64 {
        db.table(accounts)
            .insert(id, Row::from(vec![Value::U64(id), Value::I64(100)]));
    }

    // 2. Open a session: one database + one protocol. `bamboo()` enables
    //    every optimization from the paper; `wound_wait()`, `wait_die()`,
    //    `no_wait()` are the 2PL baselines, `SiloProtocol`/`Ic3Protocol`
    //    the others — the session API is identical for all of them.
    let session = Session::new(Arc::clone(&db), Arc::new(LockingProtocol::bamboo()));

    // 3. A read-modify-write transaction. `Txn` is an RAII guard: if this
    //    function returned early (or panicked) before `commit`, the drop
    //    would abort the attempt and release its locks — exactly once.
    let mut t1 = session.begin();
    t1.update(accounts, 0, |row| {
        let v = row.get_i64(1);
        row.set(1, Value::I64(v - 30));
    })
    .expect("no conflicts yet");

    // T1 has not committed, but its write is already *retired*: a second
    // transaction reads the dirty value instead of blocking — the paper's
    // Figure 1c schedule.
    let mut t2 = session.begin();
    let dirty = t2
        .read(accounts, 0)
        .expect("dirty read via the retired list")
        .get_i64(1);
    println!("T2 sees T1's uncommitted balance: {dirty} (expected 70)");
    println!(
        "T2 commit_semaphore = {} (depends on T1)",
        t2.shared().semaphore()
    );

    // 4. Commits must follow the dependency order: T1 first, then T2.
    //    `commit` consumes the guard; on failure it aborts internally, so
    //    no cleanup is ever owed.
    t1.commit().expect("T1 commits");
    t2.commit().expect("T2 commits after T1");

    let final_balance = db.table(accounts).get(0).unwrap().read_row().get_i64(1);
    println!("final balance of account 0: {final_balance}");
    println!(
        "wal records: {}, bytes: {}",
        session.log_records(),
        session.log_bytes()
    );
    assert_eq!(final_balance, 70);

    // 5. The RAII contract, live: an abandoned transaction aborts on drop
    //    and a follow-up on the same key proceeds immediately.
    {
        let mut abandoned = session.begin();
        abandoned
            .update(accounts, 0, |row| row.set(1, Value::I64(-1)))
            .unwrap();
        // No commit, no abort — the drop below releases the lock.
    }
    let mut t3 = session.begin();
    let clean = t3.read(accounts, 0).unwrap().get_i64(1);
    t3.commit().unwrap();
    println!("after abandoned txn dropped: balance still {clean}");
    assert_eq!(clean, 70, "abandoned write must have rolled back");
}
