//! Quickstart: open a database, run transactions under Bamboo, observe a
//! dirty read pipelined through the `retired` list.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bamboo_repro::core::protocol::{LockingProtocol, Protocol};
use bamboo_repro::core::wal::WalBuffer;
use bamboo_repro::core::Database;
use bamboo_repro::storage::{DataType, Row, Schema, Value};

fn main() {
    // 1. Define a table and load some rows.
    let mut builder = Database::builder();
    let accounts = builder.add_table(
        "accounts",
        Schema::build()
            .column("id", DataType::U64)
            .column("balance", DataType::I64),
    );
    let db = builder.build();
    for id in 0..10u64 {
        db.table(accounts)
            .insert(id, Row::from(vec![Value::U64(id), Value::I64(100)]));
    }

    // 2. Pick a protocol. `bamboo()` enables every optimization from the
    //    paper; `wound_wait()`, `wait_die()`, `no_wait()` are the 2PL
    //    baselines, `SiloProtocol`/`Ic3Protocol` the others.
    let proto = LockingProtocol::bamboo();
    let mut wal = WalBuffer::new();

    // 3. A read-modify-write transaction.
    let mut t1 = proto.begin(&db);
    proto
        .update(&db, &mut t1, accounts, 0, &mut |row| {
            let v = row.get_i64(1);
            row.set(1, Value::I64(v - 30));
        })
        .expect("no conflicts yet");

    // T1 has not committed, but its write is already *retired*: a second
    // transaction reads the dirty value instead of blocking — the paper's
    // Figure 1c schedule.
    let mut t2 = proto.begin(&db);
    let dirty = proto
        .read(&db, &mut t2, accounts, 0)
        .expect("dirty read via the retired list")
        .get_i64(1);
    println!("T2 sees T1's uncommitted balance: {dirty} (expected 70)");
    println!(
        "T2 commit_semaphore = {} (depends on T1)",
        t2.shared.semaphore()
    );

    // 4. Commits must follow the dependency order: T1 first, then T2.
    proto.commit(&db, &mut t1, &mut wal).expect("T1 commits");
    proto
        .commit(&db, &mut t2, &mut wal)
        .expect("T2 commits after T1");

    let final_balance = db.table(accounts).get(0).unwrap().read_row().get_i64(1);
    println!("final balance of account 0: {final_balance}");
    println!(
        "wal records: {}, bytes: {}",
        wal.records(),
        wal.bytes_logged()
    );
    assert_eq!(final_balance, 70);
}
