//! §3.4 in action: the same schedule under four isolation levels plus an
//! opaque transaction, showing exactly which anomalies each level admits.
//!
//! ```text
//! cargo run --example isolation_demo
//! ```

use bamboo_repro::core::protocol::{IsolationLevel, LockingProtocol, Protocol};
use bamboo_repro::core::wal::WalBuffer;
use bamboo_repro::core::Database;
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};

fn load() -> (std::sync::Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "t",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
    );
    let db = b.build();
    db.table(t)
        .insert(0, Row::from(vec![Value::U64(0), Value::I64(100)]));
    (db, t)
}

/// One writer retires a dirty 999; what does a reader at each level see?
fn dirty_read_probe(level: IsolationLevel) -> i64 {
    let (db, t) = load();
    let writer_proto = LockingProtocol::bamboo_base();
    let mut w = writer_proto.begin(&db);
    writer_proto
        .update(&db, &mut w, t, 0, &mut |row| row.set(1, Value::I64(999)))
        .unwrap();
    // Reader at the probed level.
    let reader = LockingProtocol::bamboo_base().with_isolation(level);
    let mut r = reader.begin(&db);
    let seen = reader.read(&db, &mut r, t, 0).unwrap().get_i64(1);
    // Clean up: abort both (serializable readers of dirty data must abort).
    reader.abort(&db, &mut r);
    writer_proto.abort(&db, &mut w);
    seen
}

fn main() {
    let mut wal = WalBuffer::new();

    println!("--- dirty-read visibility by isolation level ---");
    for (level, label) in [
        (IsolationLevel::Serializable, "Serializable"),
        (IsolationLevel::RepeatableRead, "RepeatableRead"),
        (IsolationLevel::ReadCommitted, "ReadCommitted"),
        (IsolationLevel::ReadUncommitted, "ReadUncommitted"),
    ] {
        let seen = dirty_read_probe(level);
        let note = match level {
            IsolationLevel::Serializable | IsolationLevel::RepeatableRead => {
                "sees dirty data, but dependency-tracked (cascade on abort)"
            }
            IsolationLevel::ReadCommitted => "never sees uncommitted data",
            IsolationLevel::ReadUncommitted => "sees dirty data, no tracking at all",
        };
        println!("{label:>16}: read {seen:>4}  — {note}");
    }

    println!("\n--- non-repeatable read under ReadCommitted ---");
    let (db, t) = load();
    let rc = LockingProtocol::bamboo().with_isolation(IsolationLevel::ReadCommitted);
    let ser = LockingProtocol::bamboo();
    let mut reader = rc.begin(&db);
    let first = rc.read(&db, &mut reader, t, 0).unwrap().get_i64(1);
    // A concurrent serializable writer commits between the two reads.
    let mut w = ser.begin(&db);
    ser.update(&db, &mut w, t, 0, &mut |row| row.set(1, Value::I64(777)))
        .unwrap();
    ser.commit(&db, &mut w, &mut wal).unwrap();
    let second = rc.read(&db, &mut reader, t, 0).unwrap().get_i64(1);
    println!(
        "first read: {first}, second read: {second} (changed mid-transaction — allowed under RC)"
    );
    rc.commit(&db, &mut reader, &mut wal).unwrap();
    assert_ne!(first, second);

    println!("\n--- opacity: consistent reads before commit ---");
    let (db, t) = load();
    let proto = LockingProtocol::bamboo_base();
    let mut w = proto.begin(&db);
    proto
        .update(&db, &mut w, t, 0, &mut |row| row.set(1, Value::I64(42)))
        .unwrap();
    let db2 = std::sync::Arc::clone(&db);
    let proto2 = proto.clone();
    let h = std::thread::spawn(move || {
        let mut opaque = proto2.begin_opaque(&db2);
        let v = proto2.read(&db2, &mut opaque, t, 0).unwrap().get_i64(1);
        let mut wal = WalBuffer::for_tests();
        proto2.commit(&db2, &mut opaque, &mut wal).unwrap();
        v
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    println!("opaque reader is blocked while the dirty 42 is pending…");
    proto.commit(&db, &mut w, &mut wal).unwrap();
    let v = h.join().unwrap();
    println!("writer committed; opaque reader saw {v} (committed, never dirty)");
    assert_eq!(v, 42);
}
