//! §3.4 in action: the same schedule under four isolation levels plus an
//! opaque transaction, showing exactly which anomalies each level admits.
//!
//! ```text
//! cargo run --example isolation_demo
//! ```

use std::sync::Arc;

use bamboo_repro::core::protocol::{IsolationLevel, LockingProtocol, Protocol};
use bamboo_repro::core::{Database, Session, TxnOptions};
use bamboo_repro::storage::{DataType, Row, Schema, TableId, Value};

fn load() -> (std::sync::Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "t",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
    );
    let db = b.build();
    db.table(t)
        .insert(0, Row::from(vec![Value::U64(0), Value::I64(100)]));
    (db, t)
}

fn session_with(db: &Arc<Database>, proto: LockingProtocol) -> Session {
    Session::new(Arc::clone(db), Arc::new(proto) as Arc<dyn Protocol>)
}

/// One writer retires a dirty 999; what does a reader at each level see?
fn dirty_read_probe(level: IsolationLevel) -> i64 {
    let (db, t) = load();
    let writer_session = session_with(&db, LockingProtocol::bamboo_base());
    let mut w = writer_session.begin();
    w.update(t, 0, |row| row.set(1, Value::I64(999))).unwrap();
    // Reader at the probed level.
    let reader_session = session_with(&db, LockingProtocol::bamboo_base().with_isolation(level));
    let mut r = reader_session.begin();
    let seen = r.read(t, 0).unwrap().get_i64(1);
    // Clean up: abort both (serializable readers of dirty data must
    // abort). Dropping the guards does it — RAII, no abort calls to
    // forget.
    drop(r);
    drop(w);
    seen
}

fn main() {
    println!("--- dirty-read visibility by isolation level ---");
    for (level, label) in [
        (IsolationLevel::Serializable, "Serializable"),
        (IsolationLevel::RepeatableRead, "RepeatableRead"),
        (IsolationLevel::ReadCommitted, "ReadCommitted"),
        (IsolationLevel::ReadUncommitted, "ReadUncommitted"),
    ] {
        let seen = dirty_read_probe(level);
        let note = match level {
            IsolationLevel::Serializable | IsolationLevel::RepeatableRead => {
                "sees dirty data, but dependency-tracked (cascade on abort)"
            }
            IsolationLevel::ReadCommitted => "never sees uncommitted data",
            IsolationLevel::ReadUncommitted => "sees dirty data, no tracking at all",
        };
        println!("{label:>16}: read {seen:>4}  — {note}");
    }

    println!("\n--- non-repeatable read under ReadCommitted ---");
    let (db, t) = load();
    let rc = session_with(
        &db,
        LockingProtocol::bamboo().with_isolation(IsolationLevel::ReadCommitted),
    );
    let ser = session_with(&db, LockingProtocol::bamboo());
    let mut reader = rc.begin();
    let first = reader.read(t, 0).unwrap().get_i64(1);
    // A concurrent serializable writer commits between the two reads.
    let mut w = ser.begin();
    w.update(t, 0, |row| row.set(1, Value::I64(777))).unwrap();
    w.commit().unwrap();
    let second = reader.read(t, 0).unwrap().get_i64(1);
    println!(
        "first read: {first}, second read: {second} (changed mid-transaction — allowed under RC)"
    );
    reader.commit().unwrap();
    assert_ne!(first, second);

    println!("\n--- opacity: consistent reads before commit ---");
    let (db, t) = load();
    let session = session_with(&db, LockingProtocol::bamboo_base());
    let mut w = session.begin();
    w.update(t, 0, |row| row.set(1, Value::I64(42))).unwrap();
    let db2 = std::sync::Arc::clone(&db);
    let h = std::thread::spawn(move || {
        let session = session_with(&db2, LockingProtocol::bamboo_base());
        let mut opaque = session.begin_with(TxnOptions::new().opaque());
        let v = opaque.read(t, 0).unwrap().get_i64(1);
        opaque.commit().unwrap();
        v
    });
    std::thread::sleep(std::time::Duration::from_millis(20));
    println!("opaque reader is blocked while the dirty 42 is pending…");
    w.commit().unwrap();
    let v = h.join().unwrap();
    println!("writer committed; opaque reader saw {v} (committed, never dirty)");
    assert_eq!(v, 42);
}
