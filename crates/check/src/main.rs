//! `cargo run -p bamboo_check` — walks the workspace source and enforces
//! the concurrency-contract lints (see the library docs). Exits nonzero on
//! any finding, `-D warnings`-style, so CI can gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = workspace_root();
    let findings = bamboo_check::check_workspace(&root);
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("bamboo_check: workspace clean");
        ExitCode::SUCCESS
    } else {
        println!("bamboo_check: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` is `crates/check`, two levels
/// down.
fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}
