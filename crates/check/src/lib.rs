//! Repo-specific contract lints ("bamboo_check").
//!
//! The commit pipeline's safety rests on conventions rustc cannot see:
//! which module owns the atomics, which layer may call the protocol
//! directly, how partitioned lookups must route. This crate enforces them
//! token-level over the workspace source — hand-rolled (no registry deps),
//! masking comments/strings and exempting test code, so the rules bind
//! production code without outlawing test scaffolding.
//!
//! The rules (each has a fixture test below proving it fires):
//!
//! 1. **std-sync** — `std::sync::{Mutex, RwLock, atomic}` appear only in
//!    the `bamboo_core::sync` façade (and `vendor/`, which is not
//!    scanned). Everything else goes through `crate::sync::atomic` /
//!    `parking_lot`, which is what lets `cfg(bamboo_model)` swap in the
//!    model-checker types.
//! 2. **protocol-calls** — no direct `proto*.begin/commit/abort(` calls
//!    outside `session.rs`: the Session/Txn RAII layer is the only entry
//!    to the protocol lifecycle (the PR-3 contract).
//! 3. **table-routing** — protocol-layer code resolves tuples with
//!    `Database::table_for`, never `db.table(`: on a partitioned database
//!    `table(` returns the *local* shard regardless of key ownership (the
//!    exact bug class PR 5 fixed).
//! 4. **ordering-justification** — every `Ordering::SeqCst` and `fence(`
//!    in non-test code carries an adjacent `// ordering:` comment tying it
//!    to the memory-ordering contract in the `db` module docs.
//! 5. **diag-seam** — `parking_lot::diag` is reached only through the
//!    `thread_lock_acquisitions` seam in `bamboo_core::sync`, keeping the
//!    vendored shim swappable (see ROADMAP).
//! 6. **file-io** — `std::fs` appears in `bamboo_core`/`bamboo_storage`
//!    production code only inside the durability module
//!    (`crates/storage/src/log.rs`). Everything else stays in-memory or
//!    goes through the `WalHandle`/checkpoint seams, so a recovery test
//!    can enumerate every byte that could survive a crash. The rule also
//!    bans `unwrap()`/`expect(` in the WAL modules' production code
//!    (`log.rs`, `wal.rs`): a storage error there must flow through the
//!    `IoFailure` taxonomy — transient → retry, permanent → degrade the
//!    partition — never panic the commit pipeline.

use std::fmt;
use std::path::Path;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Rule slug (e.g. `std-sync`).
    pub rule: &'static str,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// Scans every workspace source file under `root` (crates/, src/,
/// examples/ — not vendor/, target/ or tests/, which are exempt from
/// every rule).
pub fn check_workspace(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    for top in ["crates", "src", "examples"] {
        collect_rs(&root.join(top), &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        if let Ok(src) = std::fs::read_to_string(f) {
            findings.extend(scan_source(&rel, &src));
        }
    }
    findings
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" || name == "vendor" {
            continue;
        }
        if p.is_dir() {
            collect_rs(&p, out);
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

/// Applies every rule to one file. `rel_path` selects the per-rule scope;
/// exposed so tests can lint fixture strings under any pretend path.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let masked = Masked::new(source);
    let test_lines = test_regions(&masked);
    let mut findings = Vec::new();
    let is_sync_facade = rel_path == "crates/core/src/sync.rs";
    let in_protocol_layer = rel_path.starts_with("crates/core/src/protocol/")
        || rel_path.starts_with("crates/analysis/src/");

    for (i, line) in masked.code.lines().enumerate() {
        let lineno = i + 1;
        let in_test = test_lines.contains(&i);
        let mut push = |rule: &'static str, msg: String| {
            findings.push(Finding {
                path: rel_path.to_string(),
                line: lineno,
                rule,
                msg,
            });
        };

        // Rule 1: std::sync primitives only inside the façade.
        if !is_sync_facade && !in_test {
            for banned in ["std::sync::Mutex", "std::sync::RwLock", "std::sync::atomic"] {
                if line.contains(banned) {
                    push(
                        "std-sync",
                        format!("`{banned}` outside bamboo_core::sync — use the `crate::sync` façade (model-checker swap point)"),
                    );
                }
            }
        }

        // Rule 2: protocol lifecycle calls only from session.rs.
        if rel_path.starts_with("crates/core/src/")
            && !rel_path.ends_with("/session.rs")
            && !in_test
        {
            for method in ["begin", "commit", "abort"] {
                if has_proto_call(line, method) {
                    push(
                        "protocol-calls",
                        format!("direct `Protocol::{method}` call outside session.rs — go through Session/Txn"),
                    );
                }
            }
        }

        // Rule 3: protocol-layer lookups route through table_for.
        if in_protocol_layer && !in_test && has_db_table_call(line) {
            push(
                "table-routing",
                "`db.table(` in protocol-layer code — use `Database::table_for(table, key)` so partitioned lookups route to the owning shard".to_string(),
            );
        }

        // Rule 4: SeqCst / fence sites carry an `// ordering:` note.
        if !is_sync_facade && !in_test {
            let has_seqcst = line.contains("Ordering::SeqCst");
            let has_fence = find_fence_call(line);
            if (has_seqcst || has_fence) && !ordering_justified(&masked, i) {
                let what = if has_seqcst {
                    "Ordering::SeqCst"
                } else {
                    "fence("
                };
                push(
                    "ordering-justification",
                    format!("`{what}` without an adjacent `// ordering:` justification comment"),
                );
            }
        }

        // Rule 6: file I/O only inside the durability module.
        if (rel_path.starts_with("crates/core/src/") || rel_path.starts_with("crates/storage/src/"))
            && rel_path != "crates/storage/src/log.rs"
            && !in_test
            && line.contains("std::fs")
        {
            push(
                "file-io",
                "`std::fs` outside crates/storage/src/log.rs — all durable bytes go through the WAL/checkpoint seams so recovery can account for them".to_string(),
            );
        }

        // Rule 6 (continued): the WAL modules never panic on an I/O
        // result — every storage error flows through `IoFailure`.
        if (rel_path == "crates/storage/src/log.rs" || rel_path == "crates/core/src/wal.rs")
            && !in_test
            && (line.contains(".unwrap()") || line.contains(".expect("))
        {
            push(
                "file-io",
                "`unwrap()`/`expect(` in a WAL module — classify via `IoFailure` (transient → retry, permanent → degrade); the durable commit pipeline must never panic on I/O".to_string(),
            );
        }

        // Rule 5: parking_lot::diag only behind the seam.
        if !is_sync_facade && line.contains("parking_lot::diag") {
            push(
                "diag-seam",
                "`parking_lot::diag` outside bamboo_core::sync — use `thread_lock_acquisitions()` (the single swappable seam)".to_string(),
            );
        }
    }
    findings
}

/// `proto.begin(` / `protocol.commit(` / `self.proto.abort(` — an
/// identifier beginning with `proto` receiving a lifecycle call.
fn has_proto_call(line: &str, method: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(&format!(".{method}")) {
        let at = from + pos;
        let after = at + 1 + method.len();
        from = at + 1;
        // Must be a call, not a field or a longer identifier.
        if bytes.get(after).copied() != Some(b'(') {
            continue;
        }
        // Receiver: the identifier ending right before the dot.
        let recv_end = at;
        let recv_start = line[..recv_end]
            .rfind(|c: char| !c.is_alphanumeric() && c != '_')
            .map(|p| p + 1)
            .unwrap_or(0);
        if line[recv_start..recv_end].starts_with("proto") {
            return true;
        }
    }
    false
}

/// `db.table(` with any receiver identifier ending in `db` (`db`,
/// `self.db`, `part_db`).
fn has_db_table_call(line: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(".table(") {
        let at = from + pos;
        from = at + 1;
        let recv_start = line[..at]
            .rfind(|c: char| !c.is_alphanumeric() && c != '_')
            .map(|p| p + 1)
            .unwrap_or(0);
        if line[recv_start..at].ends_with("db") {
            return true;
        }
    }
    false
}

/// A `fence(` *call* (standalone or path-qualified), not a definition like
/// `pub fn fence(`.
fn find_fence_call(line: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find("fence(") {
        let at = from + pos;
        from = at + 1;
        // Preceded by start, whitespace, `:` (path) or `(`/`=` etc. — but
        // not by `fn ` (a definition) and not mid-identifier.
        let before = &line[..at];
        if before
            .chars()
            .last()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            continue;
        }
        if before.trim_end().ends_with("fn") {
            continue;
        }
        return true;
    }
    false
}

/// The site line, or the contiguous block of comment-only and attribute
/// lines immediately above it, carries `ordering:` in a
/// comment.
fn ordering_justified(masked: &Masked, line_idx: usize) -> bool {
    let has = |l: usize| {
        masked
            .comments
            .get(l)
            .is_some_and(|c| c.contains("ordering:"))
    };
    if has(line_idx) {
        return true;
    }
    // Walk up through the justification block: comment-only lines (the
    // note routinely runs longer than a couple of lines) and attribute
    // lines (a `#[cfg(...)]` gate may sit between the comment and the
    // operation). Any other line ends the block.
    let code_lines: Vec<&str> = masked.code.lines().collect();
    let mut l = line_idx;
    while l > 0 {
        l -= 1;
        if has(l) {
            return true;
        }
        let code = code_lines.get(l).map_or("", |s| s.trim());
        let comment_only = code.is_empty() && masked.comments.get(l).is_some_and(|c| !c.is_empty());
        let attribute = code.starts_with("#[");
        if !(comment_only || attribute) {
            return false;
        }
    }
    false
}

/// Source with comments and string/char literals blanked out (newlines
/// kept, so line numbers survive), plus the comment text per line.
struct Masked {
    code: String,
    comments: Vec<String>,
}

impl Masked {
    fn new(src: &str) -> Self {
        let n_lines = src.lines().count() + 1;
        let mut comments = vec![String::new(); n_lines];
        let mut code = String::with_capacity(src.len());
        let b: Vec<char> = src.chars().collect();
        let mut i = 0;
        let mut line = 0;
        let emit = |code: &mut String, c: char, line: &mut usize| {
            code.push(c);
            if c == '\n' {
                *line += 1;
            }
        };
        while i < b.len() {
            let c = b[i];
            let next = b.get(i + 1).copied();
            if c == '/' && next == Some('/') {
                // Line comment: record text, blank it.
                let mut j = i;
                while j < b.len() && b[j] != '\n' {
                    comments[line].push(b[j]);
                    code.push(' ');
                    j += 1;
                }
                i = j;
            } else if c == '/' && next == Some('*') {
                let mut depth = 1;
                code.push_str("  ");
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == '/' && b.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 1;
                        code.push(' ');
                    } else if b[j] == '*' && b.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 1;
                        code.push(' ');
                    }
                    if b[j] == '\n' {
                        emit(&mut code, '\n', &mut line);
                    } else {
                        comments[line].push(b[j]);
                        code.push(' ');
                    }
                    j += 1;
                }
                i = j;
            } else if c == '"' || (c == 'r' && matches!(next, Some('"') | Some('#'))) {
                // (Raw) string literal: blank the contents.
                let mut hashes = 0;
                let mut j = i;
                if c == 'r' {
                    j += 1;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) != Some(&'"') {
                        // `r#ident` (raw identifier), not a string.
                        emit(&mut code, c, &mut line);
                        i += 1;
                        continue;
                    }
                    // Blank the `r` and the opening hashes.
                    for _ in 0..=hashes {
                        code.push(' ');
                    }
                }
                code.push(' ');
                j += 1;
                while let Some(&ch) = b.get(j) {
                    if ch == '\\' && hashes == 0 {
                        code.push_str("  ");
                        j += 2;
                        continue;
                    }
                    if ch == '"' {
                        let close = (1..=hashes).all(|k| b.get(j + k) == Some(&'#'));
                        if close {
                            for _ in 0..=hashes {
                                code.push(' ');
                            }
                            j += 1 + hashes;
                            break;
                        }
                    }
                    if ch == '\n' {
                        emit(&mut code, '\n', &mut line);
                    } else {
                        code.push(' ');
                    }
                    j += 1;
                }
                i = j;
            } else if c == '\'' {
                // Char literal vs. lifetime: a literal closes within a few
                // chars (`'x'`, `'\n'`, `'\u{..}'`).
                let mut j = i + 1;
                let mut is_char = false;
                if b.get(j) == Some(&'\\') {
                    while j < b.len() && b[j] != '\'' && b[j] != '\n' {
                        j += 1;
                    }
                    is_char = b.get(j) == Some(&'\'');
                } else if b.get(j + 1) == Some(&'\'') {
                    is_char = true;
                    j += 1;
                }
                if is_char {
                    for _ in i..=j {
                        code.push(' ');
                    }
                    i = j + 1;
                } else {
                    emit(&mut code, c, &mut line);
                    i += 1;
                }
            } else {
                emit(&mut code, c, &mut line);
                i += 1;
            }
        }
        Masked { code, comments }
    }
}

/// 0-based line indexes covered by `#[cfg(test)] mod … { … }` regions (and
/// `#[cfg(all(test, …))]`).
fn test_regions(masked: &Masked) -> std::collections::HashSet<usize> {
    let mut out = std::collections::HashSet::new();
    let code = &masked.code;
    let line_of = |pos: usize| code[..pos].matches('\n').count();
    let mut from = 0;
    while let Some(p) = code[from..].find("#[cfg(") {
        let at = from + p;
        from = at + 1;
        let attr_body = &code[at + 6..];
        let trimmed = attr_body.trim_start();
        if !(trimmed.starts_with("test)") || trimmed.starts_with("all(test")) {
            continue;
        }
        // Find the block the attribute gates: the first `{` after the
        // attribute, brace-matched to its close.
        let Some(open_rel) = code[at..].find('{') else {
            continue;
        };
        let open = at + open_rel;
        let mut depth = 0usize;
        let mut close = code.len();
        for (off, ch) in code[open..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = open + off;
                        break;
                    }
                }
                _ => {}
            }
        }
        for l in line_of(at)..=line_of(close) {
            out.insert(l);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(path: &str, src: &str) -> Vec<&'static str> {
        scan_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    // --- rule 1: std-sync ---------------------------------------------

    #[test]
    fn std_sync_fires_outside_facade() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n";
        assert_eq!(rules("crates/core/src/db.rs", src), vec!["std-sync"]);
        let src = "let m = std::sync::Mutex::new(0);\nlet l = std::sync::RwLock::new(0);\n";
        assert_eq!(
            rules("crates/workload/src/lib.rs", src),
            vec!["std-sync", "std-sync"]
        );
    }

    #[test]
    fn std_sync_exempts_facade_tests_and_arc() {
        let src = "pub use std::sync::atomic::AtomicU64;\n";
        assert!(rules("crates/core/src/sync.rs", src).is_empty());
        let src =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicU64;\n}\n";
        assert!(rules("crates/core/src/db.rs", src).is_empty());
        // Arc and mpsc are not part of the façade contract.
        let src = "use std::sync::Arc;\nuse std::sync::mpsc;\n";
        assert!(rules("crates/core/src/db.rs", src).is_empty());
        // Comments and strings do not count.
        let src = "// std::sync::Mutex is banned here\nlet s = \"std::sync::atomic\";\n";
        assert!(rules("crates/core/src/db.rs", src).is_empty());
    }

    // --- rule 2: protocol-calls ---------------------------------------

    #[test]
    fn protocol_calls_fire_outside_session() {
        let src = "let ctx = proto.begin(&db);\n";
        assert_eq!(
            rules("crates/core/src/executor.rs", src),
            vec!["protocol-calls"]
        );
        let src = "self.protocol.commit(&db, &mut ctx, &wal)?;\n";
        assert_eq!(rules("crates/core/src/txn.rs", src), vec!["protocol-calls"]);
    }

    #[test]
    fn protocol_calls_exempt_session_tests_and_txn_api() {
        let src = "let ctx = self.proto.begin(&self.db);\nproto.abort(&db, &mut ctx);\n";
        assert!(rules("crates/core/src/session.rs", src).is_empty());
        // The Txn RAII API is the *sanctioned* path.
        let src = "txn.commit().unwrap();\nsession.begin();\n";
        assert!(rules("crates/core/src/executor.rs", src).is_empty());
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(proto: &P) { proto.commit(&db, &mut c, &w); }\n}\n";
        assert!(rules("crates/core/src/protocol/locking.rs", src).is_empty());
    }

    // --- rule 3: table-routing ----------------------------------------

    #[test]
    fn table_routing_fires_in_protocol_layer() {
        let src = "let t = db.table(table).get(key);\n";
        assert_eq!(
            rules("crates/core/src/protocol/silo.rs", src),
            vec!["table-routing"]
        );
        assert_eq!(
            rules("crates/analysis/src/interp.rs", src),
            vec!["table-routing"]
        );
    }

    #[test]
    fn table_routing_exempts_table_for_and_other_layers() {
        let src = "let t = db.table_for(table, key).get(key);\n";
        assert!(rules("crates/core/src/protocol/silo.rs", src).is_empty());
        // Outside the protocol layer `table(` is legitimate (loaders etc.).
        let src = "let t = db.table(table).insert(k, row);\n";
        assert!(rules("crates/workload/src/tpcc/mod.rs", src).is_empty());
        // Non-db receivers (catalog.table) are routing-aware call sites.
        let src = "let t = cat.table(table);\n";
        assert!(rules("crates/core/src/protocol/silo.rs", src).is_empty());
    }

    // --- rule 4: ordering-justification -------------------------------

    #[test]
    fn seqcst_requires_justification() {
        let src = "let v = x.load(Ordering::SeqCst);\n";
        assert_eq!(
            rules("crates/core/src/db.rs", src),
            vec!["ordering-justification"]
        );
        let src = "crate::sync::fence(Ordering::SeqCst);\n";
        // Both the fence and the SeqCst token are on the same line: one
        // finding, not two.
        assert_eq!(
            rules("crates/core/src/db.rs", src),
            vec!["ordering-justification"]
        );
    }

    #[test]
    fn justified_seqcst_is_clean() {
        let src = "// ordering: totally orders finishers (see module docs).\nlet v = x.load(Ordering::SeqCst);\ncrate::sync::fence(Ordering::SeqCst); // ordering: drains the store buffer\n";
        assert!(rules("crates/core/src/db.rs", src).is_empty());
        // A definition of a function *named* fence is not a call site.
        let src = "pub fn fence(order: Ordering) {}\n";
        assert!(rules("crates/core/src/sync2.rs", src).is_empty());
        // Relaxed/Acquire/Release need no note.
        let src = "let v = x.load(Ordering::Acquire);\nx.store(1, Ordering::Relaxed);\n";
        assert!(rules("crates/core/src/db.rs", src).is_empty());
    }

    #[test]
    fn justification_block_spans_comments_and_attributes() {
        // A long justification plus a `#[cfg]` gate between the comment
        // and the operation: the whole contiguous block counts.
        let src = "// ordering: SeqCst fence — totally orders finishers.\n// Second line of the note.\n// Third line of the note.\n// Fourth line of the note.\n// Fifth line of the note.\n// Sixth line of the note.\n// Seventh line of the note.\n#[cfg(not(bamboo_model_no_fence))]\ncrate::sync::fence(Ordering::SeqCst);\n";
        assert!(rules("crates/core/src/db.rs", src).is_empty());
        // Code between the comment and the site ends the block.
        let src = "// ordering: justifies only the line below.\nlet a = 1;\nlet v = x.load(Ordering::SeqCst);\n";
        assert_eq!(
            rules("crates/core/src/db.rs", src),
            vec!["ordering-justification"]
        );
    }

    // --- rule 5: diag-seam --------------------------------------------

    #[test]
    fn diag_seam_fires_outside_sync() {
        let src = "let n = parking_lot::diag::thread_acquisitions();\n";
        assert_eq!(rules("crates/core/src/executor.rs", src), vec!["diag-seam"]);
        assert!(rules("crates/core/src/sync.rs", src).is_empty());
    }

    // --- rule 6: file-io ----------------------------------------------

    #[test]
    fn file_io_fires_outside_the_durability_module() {
        let src = "let bytes = std::fs::read(path)?;\n";
        assert_eq!(rules("crates/core/src/db.rs", src), vec!["file-io"]);
        assert_eq!(rules("crates/storage/src/table.rs", src), vec!["file-io"]);
        let src = "use std::fs::File;\n";
        assert_eq!(rules("crates/core/src/wal.rs", src), vec!["file-io"]);
    }

    #[test]
    fn file_io_allowed_in_log_rs_tests_and_other_crates() {
        let src = "let f = std::fs::File::create(&path)?;\n";
        assert!(rules("crates/storage/src/log.rs", src).is_empty());
        // Bench/workload crates are out of scope (they write result files).
        assert!(rules("crates/bench/src/bin/durability.rs", src).is_empty());
        // Test scaffolding may touch the filesystem.
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { std::fs::remove_dir_all(&d).unwrap(); }\n}\n";
        assert!(rules("crates/core/src/durability.rs", src).is_empty());
    }

    #[test]
    fn unwrap_on_io_fires_in_the_wal_modules() {
        let src = "let len = file.metadata().unwrap().len();\n";
        assert_eq!(rules("crates/storage/src/log.rs", src), vec!["file-io"]);
        let src = "writer.sync().expect(\"fsync\");\n";
        assert_eq!(rules("crates/core/src/wal.rs", src), vec!["file-io"]);
    }

    #[test]
    fn unwrap_allowed_in_wal_tests_and_elsewhere() {
        // Test scaffolding in the WAL modules may unwrap freely.
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { w.sync().unwrap(); }\n}\n";
        assert!(rules("crates/storage/src/log.rs", src).is_empty());
        assert!(rules("crates/core/src/wal.rs", src).is_empty());
        // Other modules are out of this rule's scope.
        let src = "let v = map.get(&k).unwrap();\n";
        assert!(rules("crates/core/src/db.rs", src).is_empty());
        // Comments and strings do not count.
        let src = "// never .unwrap() an io::Result here\n";
        assert!(rules("crates/core/src/wal.rs", src).is_empty());
    }

    // --- masking / regions machinery ----------------------------------

    #[test]
    fn masking_preserves_line_numbers() {
        let src = "let a = 1; /* std::sync::Mutex\nstd::sync::Mutex */ let b = std::sync::Mutex::new(0);\n";
        let fs = scan_source("crates/core/src/db.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].line, 2);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod real {\n    use std::sync::atomic::AtomicU64;\n}\n";
        assert_eq!(rules("crates/core/src/db.rs", src), vec!["std-sync"]);
    }

    #[test]
    fn cfg_all_test_is_a_test_region() {
        let src = "#[cfg(all(test, bamboo_model))]\nmod model_check {\n    use std::sync::atomic::AtomicU64;\n}\n";
        assert!(rules("crates/core/src/db.rs", src).is_empty());
    }

    #[test]
    fn char_literals_and_lifetimes_survive_masking() {
        let src = "fn f<'a>(x: &'a str) -> char { let c = '\"'; let d = '\\n'; c }\nlet m = std::sync::Mutex::new(0);\n";
        let fs = scan_source("crates/core/src/db.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].line, 2);
    }
}
