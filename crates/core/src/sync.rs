//! Concurrency utilities shared by the commit pipeline — and the **single
//! atomics façade** for the whole workspace.
//!
//! [`CachePadded`] keeps hot atomics on private cache lines: the commit
//! clock's ring slots, the timestamp/TID sources, and the executor's
//! per-worker stats slots are all written from different threads at high
//! rates, and two of them sharing a line turns independent writes into
//! coherence ping-pong (false sharing).
//!
//! # The atomics façade
//!
//! All non-test code in this workspace imports its atomic types from
//! [`atomic`] and its fences from [`fence`], never from `std::sync`
//! directly (`bamboo_check` rule `std-sync` enforces this). Normally the
//! module simply re-exports `std::sync::atomic`; compiled with
//! `--cfg bamboo_model` it re-exports the `interleave` model checker's
//! types instead, so the `cfg(bamboo_model)` test suite can exhaustively
//! explore thread interleavings (with TSO store-buffer semantics) of the
//! commit clock, the snapshot registry and the cross-partition commit
//! path. See CONCURRENCY.md at the workspace root.

use std::ops::{Deref, DerefMut};

/// Atomic types: `std::sync::atomic` normally, the `interleave` model
/// checker's equivalents under `cfg(bamboo_model)`. [`atomic::Ordering`]
/// is always the real `std` enum.
pub mod atomic {
    #[cfg(not(bamboo_model))]
    pub use std::sync::atomic::{
        AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };

    #[cfg(bamboo_model)]
    pub use interleave::sync::atomic::{
        AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

/// Memory fence: `std::sync::atomic::fence` normally, the model checker's
/// store-buffer-draining fence under `cfg(bamboo_model)`.
#[inline]
pub fn fence(order: atomic::Ordering) {
    #[cfg(not(bamboo_model))]
    std::sync::atomic::fence(order);
    #[cfg(bamboo_model)]
    interleave::sync::fence(order);
}

/// Pads and aligns `T` to 128 bytes — two 64-byte lines, covering the
/// spatial prefetcher's adjacent-line pulls on x86 (the same sizing
/// crossbeam's `CachePadded` uses on that family).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value`.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

/// Blocking lock acquisitions (`Mutex::lock`, `RwLock::read`/`write`,
/// successful `try_lock`s) performed by the *calling thread* since it
/// started.
///
/// The counter lives in the vendored `parking_lot` shim, so it observes
/// every lock in the workspace (`bamboo_storage`'s tuple latches included).
/// The commit-pipeline tests assert a delta of **zero** across the
/// steady-state hot paths (`CommitClock::allocate`/`finish`/`stable`,
/// snapshot register/release, `Session::snapshot` begin/commit) — the
/// lock-free claim as an executable check rather than a comment.
///
/// If the vendored shim is ever swapped for the real registry crate, this
/// function is the single seam to stub (return 0 and relax the `== 0`
/// assertions to "not asserted"); see ROADMAP "Vendored dependency shims".
#[inline]
pub fn thread_lock_acquisitions() -> u64 {
    parking_lot::diag::thread_acquisitions()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_line_aligned() {
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
        let mut p = CachePadded::new(7u64);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
    }

    #[test]
    fn lock_counter_counts_this_thread_only() {
        let before = thread_lock_acquisitions();
        let m = parking_lot::Mutex::new(0u64);
        *m.lock() += 1;
        drop(m.lock());
        let l = parking_lot::RwLock::new(0u64);
        drop(l.read());
        drop(l.write());
        assert_eq!(thread_lock_acquisitions() - before, 4);
        // Another thread's locks do not land on our counter.
        let t_before = thread_lock_acquisitions();
        std::thread::spawn(|| {
            let m = parking_lot::Mutex::new(());
            drop(m.lock());
        })
        .join()
        .unwrap();
        assert_eq!(thread_lock_acquisitions(), t_before);
    }
}
