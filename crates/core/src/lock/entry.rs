//! The per-tuple lock entry state machine (Algorithms 1–3 of the paper).
//!
//! # Invariants
//!
//! The conceptual list is `concat(retired, owners)`; `waiters` are not yet
//! in it. The invariants maintained under the tuple latch:
//!
//! 1. `retired` is sorted by priority `(ts, id)` — the paper's "sorted
//!    based on the timestamps of transactions in it".
//! 2. `owners` never contains two conflicting *live* entries (wounded
//!    leftovers may conflict until their owner thread releases them).
//! 3. Dirty versions are sorted by writer priority; a transaction with
//!    priority `p` reads the latest version with priority `< p`, falling
//!    back to the committed row. Combined with (1) this makes every
//!    dirty-read dependency point from an older to a younger transaction,
//!    which is why the commit-semaphore graph cannot deadlock.
//! 4. `counted` pairing: an entry's flag is true iff the tuple currently
//!    contributes +1 to its transaction's `commit_semaphore`, and it is
//!    true iff a *conflicting predecessor* exists in the conceptual list.
//!    Every mutation (insert, retire-move, removal) re-establishes this
//!    locally, so increments and decrements always pair up exactly.
//!
//! Invariant 4 generalizes the head-departure rule of Algorithm 2 (lines
//! 19–21): for departures of the head it reduces to "notify the leading
//! non-conflicting transactions", and it also covers mid-list departures
//! (wounded readers, cancelled waiters) that the pseudocode leaves
//! implicit.

use std::sync::Arc;

use bamboo_storage::{Row, Tuple};

use crate::meta::TupleCc;
use crate::ts::TsSource;
use crate::txn::{AbortReason, LockMode, TxnShared, TxnStatus};

/// Which deadlock-handling flavour of 2PL the lock table runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockVariant {
    /// Wound-Wait: requesters abort younger conflicting holders and wait
    /// for older ones. Bamboo is built on this variant (§2.1, §3.2).
    WoundWait,
    /// Wait-Die: requesters older than every conflicting holder wait;
    /// younger requesters self-abort.
    WaitDie,
    /// No-Wait: any conflict self-aborts the requester.
    NoWait,
}

/// Lock-table behaviour knobs (the protocol layer owns the δ heuristic of
/// Optimization 2; everything list-structural lives here).
#[derive(Clone, Copy, Debug)]
pub struct LockPolicy {
    /// Deadlock-handling variant.
    pub variant: LockVariant,
    /// Optimization 1: granted shared locks go straight to `retired`
    /// ("read operations retire automatically in LockAcquire()").
    pub retire_reads: bool,
    /// Optimization 3: shared requests never wound; when no conflicting
    /// exclusive entry with a *smaller* priority sits in `owners`/`waiters`,
    /// the reader slots directly into `retired` and reads the latest dirty
    /// version older than itself.
    pub no_raw_abort: bool,
    /// Optimization 4: assign timestamps on first conflict (Algorithm 3).
    pub dynamic_ts: bool,
}

impl LockPolicy {
    /// Full Bamboo: Wound-Wait + all list-level optimizations.
    pub fn bamboo() -> Self {
        LockPolicy {
            variant: LockVariant::WoundWait,
            retire_reads: true,
            no_raw_abort: true,
            dynamic_ts: true,
        }
    }

    /// Plain Wound-Wait (the paper's WOUND_WAIT baseline): no retiring at
    /// any level; reads hold shared ownership until release.
    pub fn wound_wait() -> Self {
        LockPolicy {
            variant: LockVariant::WoundWait,
            retire_reads: false,
            no_raw_abort: false,
            dynamic_ts: false,
        }
    }

    /// Wait-Die baseline.
    pub fn wait_die() -> Self {
        LockPolicy {
            variant: LockVariant::WaitDie,
            retire_reads: false,
            no_raw_abort: false,
            dynamic_ts: false,
        }
    }

    /// No-Wait baseline.
    pub fn no_wait() -> Self {
        LockPolicy {
            variant: LockVariant::NoWait,
            retire_reads: false,
            no_raw_abort: false,
            dynamic_ts: false,
        }
    }
}

/// One entry in `owners` or `retired`.
struct Ent {
    txn: Arc<TxnShared>,
    mode: LockMode,
    /// Invariant 4: whether this tuple holds +1 in `txn.commit_semaphore`.
    counted: bool,
}

impl Ent {
    #[inline]
    fn prio(&self) -> (u64, u64) {
        self.txn.prio()
    }
}

/// One entry in `waiters`.
struct Waiter {
    txn: Arc<TxnShared>,
    mode: LockMode,
}

impl Waiter {
    #[inline]
    fn prio(&self) -> (u64, u64) {
        self.txn.prio()
    }
}

/// A published uncommitted row version (the dirty data other transactions
/// may read). Priority is computed live from the writer handle because
/// dynamic timestamp assignment (Optimization 4) may assign the writer's
/// timestamp *after* it retired.
struct Version {
    txn: Arc<TxnShared>,
    row: Row,
}

impl Version {
    #[inline]
    fn prio(&self) -> (u64, u64) {
        self.txn.prio()
    }
}

/// Result of [`LockState::acquire`].
pub enum Acquired {
    /// Lock granted; `row` is the image this transaction should operate on
    /// (latest visible dirty version or the committed row), and `retired`
    /// says whether the entry went straight into the retired list
    /// (Optimizations 1/3).
    Granted {
        /// Image to copy into the transaction's local working set.
        row: Row,
        /// True when the entry was placed in `retired` rather than `owners`.
        retired: bool,
    },
    /// Enqueued in `waiters`; park on the transaction condvar and poll
    /// [`LockState::check_granted`].
    Wait,
    /// The policy says the requester must self-abort (Wait-Die / No-Wait).
    Die(AbortReason),
}

/// The commit-time install a releasing writer hands to
/// [`LockState::release`]: the final row image becomes a new committed
/// version on the tuple's [`bamboo_storage::VersionChain`], tagged with the
/// transaction's commit timestamp, with versions below `watermark` eagerly
/// reclaimed.
pub struct CommitInstall<'a> {
    /// The tuple being written.
    pub tuple: &'a Tuple<TupleCc>,
    /// The final committed image.
    pub row: &'a Row,
    /// The writer's commit timestamp. 0 means "no MVCC context": the image
    /// overwrites the newest committed version in place instead of pushing
    /// a new chain entry (read-uncommitted early installs, tests) — pushing
    /// entries that no watermark will ever collect would leak versions.
    pub commit_ts: u64,
    /// GC watermark for the eager version-chain collection.
    pub watermark: u64,
    /// Version-chain trim threshold (the database's
    /// `DbOptions::trim_threshold`; the amortization knob of the chain
    /// GC).
    pub trim_threshold: usize,
}

impl<'a> CommitInstall<'a> {
    /// An install without MVCC context (tests and the read-uncommitted
    /// early-install path): overwrites in place, creating no version.
    pub fn untimed(tuple: &'a Tuple<TupleCc>, row: &'a Row) -> Self {
        CommitInstall {
            tuple,
            row,
            commit_ts: 0,
            watermark: 0,
            trim_threshold: bamboo_storage::DEFAULT_TRIM_THRESHOLD,
        }
    }
}

/// Result of [`LockState::release`].
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ReleaseOutcome {
    /// Number of transactions newly marked aborted by cascading (paper
    /// §4.2's "length of abort chain" metric counts these).
    pub cascaded: usize,
}

/// Result of [`LockState::cancel_wait`].
#[derive(Debug, PartialEq, Eq)]
pub enum CancelOutcome {
    /// Entry removed from `waiters` (or was already gone).
    WasWaiting,
    /// The wait had actually been granted concurrently; the entry has been
    /// fully released instead.
    WasGranted,
}

/// Per-tuple lock state — Figure 2 of the paper.
#[derive(Default)]
pub struct LockState {
    owners: Vec<Ent>,
    waiters: Vec<Waiter>,
    retired: Vec<Ent>,
    versions: Vec<Version>,
}

impl LockState {
    // ------------------------------------------------------------------
    // Introspection helpers (tests, assertions, stats).
    // ------------------------------------------------------------------

    /// Number of entries in `owners`.
    pub fn owners_len(&self) -> usize {
        self.owners.len()
    }

    /// Number of entries in `waiters`.
    pub fn waiters_len(&self) -> usize {
        self.waiters.len()
    }

    /// Number of entries in `retired`.
    pub fn retired_len(&self) -> usize {
        self.retired.len()
    }

    /// Number of published uncommitted versions.
    pub fn versions_len(&self) -> usize {
        self.versions.len()
    }

    /// True when a non-aborted retired entry conflicts with `mode` (used
    /// by opaque transactions, §3.4: they wait until the retired list has
    /// no conflicting entries so they never observe uncommitted data).
    pub fn has_conflicting_retired(&self, mode: LockMode) -> bool {
        self.retired
            .iter()
            .any(|e| e.mode.conflicts(mode) && !e.txn.is_aborted())
    }

    /// Snapshot of the newest dirty version regardless of priority (read
    /// uncommitted, §3.4), falling back to the committed image.
    pub fn dirty_snapshot(&self, tuple: &Tuple<TupleCc>) -> Row {
        self.versions
            .last()
            .map(|v| v.row.clone())
            .unwrap_or_else(|| tuple.read_row())
    }

    /// True when every list is empty (quiescent tuple).
    pub fn is_quiescent(&self) -> bool {
        self.owners.is_empty()
            && self.waiters.is_empty()
            && self.retired.is_empty()
            && self.versions.is_empty()
    }

    /// Debug-check of the structural invariants; used by tests and
    /// property tests.
    pub fn assert_invariants(&self) {
        // retired sorted by priority.
        for w in self.retired.windows(2) {
            assert!(w[0].prio() <= w[1].prio(), "retired list unsorted");
        }
        // versions sorted by priority.
        for w in self.versions.windows(2) {
            assert!(w[0].prio() <= w[1].prio(), "version chain unsorted");
        }
        // counted pairing: counted == exists conflicting predecessor.
        let list: Vec<&Ent> = self.retired.iter().chain(self.owners.iter()).collect();
        for (i, e) in list.iter().enumerate() {
            let has_pred = list[..i].iter().any(|p| p.mode.conflicts(e.mode));
            assert_eq!(
                e.counted, has_pred,
                "counted flag mismatch at position {i} (txn {})",
                e.txn.id
            );
        }
        // live owners mutually compatible.
        for (i, a) in self.owners.iter().enumerate() {
            for b in &self.owners[i + 1..] {
                if !a.txn.is_aborted() && !b.txn.is_aborted() {
                    assert!(
                        !a.mode.conflicts(b.mode),
                        "live conflicting owners {} and {}",
                        a.txn.id,
                        b.txn.id
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Internal helpers.
    // ------------------------------------------------------------------

    /// Latest dirty version with priority `< prio`, else the committed row.
    fn visible_row(&self, tuple: &Tuple<TupleCc>, prio: (u64, u64)) -> Row {
        self.versions
            .iter()
            .rev()
            .find(|v| v.prio() < prio)
            .map(|v| v.row.clone())
            .unwrap_or_else(|| tuple.read_row())
    }

    /// Position of `txn_id` in `retired`/`owners` as an index into the
    /// conceptual list (retired positions first, then owners).
    fn find_entry(&self, txn_id: u64) -> Option<(bool, usize)> {
        if let Some(i) = self.retired.iter().position(|e| e.txn.id == txn_id) {
            return Some((true, i));
        }
        self.owners
            .iter()
            .position(|e| e.txn.id == txn_id)
            .map(|i| (false, i))
    }

    /// True when any entry before conceptual position `pos` conflicts with
    /// `mode` (predecessor scan over `concat(retired, owners)`).
    fn has_conflicting_pred(&self, pos: usize, mode: LockMode) -> bool {
        self.retired
            .iter()
            .chain(self.owners.iter())
            .take(pos)
            .any(|e| e.mode.conflicts(mode))
    }

    /// Re-establishes invariant 4 for every entry at conceptual position
    /// `>= from` after an insertion or removal before them.
    fn recount_from(&mut self, from: usize) {
        let rlen = self.retired.len();
        let total = rlen + self.owners.len();
        for pos in from..total {
            let (mode, counted) = {
                let e = self.ent_at(pos);
                (e.mode, e.counted)
            };
            let has_pred = self.has_conflicting_pred(pos, mode);
            if has_pred != counted {
                let e = self.ent_at_mut(pos);
                e.counted = has_pred;
                if has_pred {
                    e.txn.semaphore_inc();
                } else {
                    e.txn.semaphore_dec();
                }
            }
        }
    }

    fn ent_at(&self, pos: usize) -> &Ent {
        if pos < self.retired.len() {
            &self.retired[pos]
        } else {
            &self.owners[pos - self.retired.len()]
        }
    }

    fn ent_at_mut(&mut self, pos: usize) -> &mut Ent {
        let rlen = self.retired.len();
        if pos < rlen {
            &mut self.retired[pos]
        } else {
            &mut self.owners[pos - rlen]
        }
    }

    /// Inserts an entry into `retired` at its priority-sorted position and
    /// settles `counted` for it and its successors. Returns the insert
    /// position.
    fn insert_retired(&mut self, txn: Arc<TxnShared>, mode: LockMode) -> usize {
        let prio = txn.prio();
        let pos = self.retired.partition_point(|e| e.prio() <= prio);
        let counted = self.has_conflicting_pred(pos, mode);
        if counted {
            txn.semaphore_inc();
        }
        self.retired.insert(pos, Ent { txn, mode, counted });
        self.recount_from(pos + 1);
        pos
    }

    /// Removes the entry at conceptual position `pos` and re-settles
    /// successors' `counted` flags. The departing entry's own outstanding
    /// contribution is returned to its transaction's semaphore so pairing
    /// stays exact (only aborting transactions can still be counted here —
    /// a committing one must have drained to zero before its commit point).
    fn remove_entry(&mut self, pos: usize) -> Ent {
        let rlen = self.retired.len();
        let ent = if pos < rlen {
            self.retired.remove(pos)
        } else {
            self.owners.remove(pos - rlen)
        };
        if ent.counted {
            ent.txn.semaphore_dec();
        }
        self.recount_from(pos);
        ent
    }

    /// Removes this transaction's published version, if any.
    fn remove_version(&mut self, txn_id: u64) {
        self.versions.retain(|v| v.txn.id != txn_id);
    }

    /// True when a conflicting retired entry is *committed but not yet
    /// released* and younger than `prio`. Such an entry's version is
    /// invisible to an older transaction under the timestamp rule, yet its
    /// commit is final — an older transaction slipping past it would base
    /// its work on a stale image (a lost update). It must wait out the
    /// (microseconds-long) release window instead. Wounding cannot help:
    /// the commit point already won the status CAS.
    fn committed_unreleased_blocks(&self, mode: LockMode, prio: (u64, u64)) -> bool {
        self.retired.iter().any(|e| {
            e.mode.conflicts(mode) && e.prio() > prio && e.txn.status() == TxnStatus::Committed
        })
    }

    /// Algorithm 2 `PromoteWaiters`: grant waiters in priority order until
    /// the first one that conflicts with current owners. Shared grants go
    /// straight to `retired` under Optimization 1.
    fn promote_waiters(&mut self, pol: &LockPolicy) {
        loop {
            // Drop waiters that were aborted while queued so they cannot
            // block the queue behind them; their worker's cancel_wait will
            // find nothing, which is fine.
            while let Some(w) = self.waiters.first() {
                if w.txn.is_aborted() {
                    let w = self.waiters.remove(0);
                    w.txn.notify();
                } else {
                    break;
                }
            }
            let Some(w) = self.waiters.first() else {
                return;
            };
            if self.owners.iter().any(|o| o.mode.conflicts(w.mode)) {
                return;
            }
            if self.committed_unreleased_blocks(w.mode, w.prio()) {
                return;
            }
            let w = self.waiters.remove(0);
            if w.mode == LockMode::Sh && pol.retire_reads {
                self.insert_retired(Arc::clone(&w.txn), LockMode::Sh);
            } else {
                let counted = self.retired.iter().any(|e| e.mode.conflicts(w.mode));
                if counted {
                    w.txn.semaphore_inc();
                }
                self.owners.push(Ent {
                    txn: Arc::clone(&w.txn),
                    mode: w.mode,
                    counted,
                });
            }
            w.txn.notify();
        }
    }

    fn sort_waiters(&mut self) {
        self.waiters.sort_by_key(|w| w.prio());
    }

    /// Algorithm 3: on conflict, assign timestamps to every queued
    /// transaction in list order, then to the requester.
    fn dynamic_assign(&mut self, txn: &Arc<TxnShared>, mode: LockMode, ts: &TsSource) {
        let conflict = self
            .retired
            .iter()
            .chain(self.owners.iter())
            .map(|e| e.mode)
            .chain(self.waiters.iter().map(|w| w.mode))
            .any(|m| m.conflicts(mode));
        if !conflict {
            return;
        }
        for e in self.retired.iter().chain(self.owners.iter()) {
            e.txn.assign_ts_if_unassigned(ts);
        }
        for w in &self.waiters {
            w.txn.assign_ts_if_unassigned(ts);
        }
        txn.assign_ts_if_unassigned(ts);
        self.sort_waiters();
    }

    // ------------------------------------------------------------------
    // Public protocol surface.
    // ------------------------------------------------------------------

    /// Algorithm 2 `LockAcquire`.
    pub fn acquire(
        &mut self,
        tuple: &Tuple<TupleCc>,
        pol: &LockPolicy,
        txn: &Arc<TxnShared>,
        mode: LockMode,
        ts: &TsSource,
    ) -> Acquired {
        debug_assert!(
            self.find_entry(txn.id).is_none(),
            "re-acquire must go through upgrade/write paths"
        );
        if pol.dynamic_ts {
            self.dynamic_assign(txn, mode, ts);
        }
        match pol.variant {
            LockVariant::WoundWait => self.acquire_wound_wait(tuple, pol, txn, mode),
            LockVariant::WaitDie => self.acquire_wait_die(tuple, txn, mode, pol),
            LockVariant::NoWait => self.acquire_no_wait(tuple, txn, mode, pol),
        }
    }

    fn acquire_wound_wait(
        &mut self,
        tuple: &Tuple<TupleCc>,
        pol: &LockPolicy,
        txn: &Arc<TxnShared>,
        mode: LockMode,
    ) -> Acquired {
        let prio = txn.prio();
        // Optimization 3: a reader slots directly into `retired` (reading
        // the newest dirty version older than itself) unless a conflicting
        // exclusive entry with *higher priority* is in owners or waiters —
        // in that case skipping ahead would let that older writer retire a
        // version "before" us that we did not read.
        if mode == LockMode::Sh && pol.no_raw_abort {
            let blocked = self
                .owners
                .iter()
                .map(|e| (e.mode, e.prio(), e.txn.is_aborted()))
                .chain(
                    self.waiters
                        .iter()
                        .map(|w| (w.mode, w.prio(), w.txn.is_aborted())),
                )
                .any(|(m, p, dead)| m == LockMode::Ex && p < prio && !dead)
                || self.committed_unreleased_blocks(mode, prio);
            if !blocked {
                let row = self.visible_row(tuple, prio);
                self.insert_retired(Arc::clone(txn), LockMode::Sh);
                return Acquired::Granted { row, retired: true };
            }
            // Blocked by an older writer: queue without wounding (readers
            // never wound under Optimization 3).
        } else {
            // Algorithm 2 lines 2–7: scan concat(retired, owners); once a
            // conflict has been seen, wound every younger transaction.
            let mut has_conflicts = false;
            for e in self.retired.iter().chain(self.owners.iter()) {
                if mode.conflicts(e.mode) {
                    has_conflicts = true;
                }
                if has_conflicts && prio < e.prio() {
                    e.txn.set_abort(AbortReason::Wounded);
                }
            }
        }
        let pos = self.waiters.partition_point(|w| w.prio() <= prio);
        self.waiters.insert(
            pos,
            Waiter {
                txn: Arc::clone(txn),
                mode,
            },
        );
        self.promote_waiters(pol);
        match self.check_granted(tuple, txn) {
            Some((row, retired)) => Acquired::Granted { row, retired },
            None => Acquired::Wait,
        }
    }

    fn acquire_wait_die(
        &mut self,
        tuple: &Tuple<TupleCc>,
        txn: &Arc<TxnShared>,
        mode: LockMode,
        pol: &LockPolicy,
    ) -> Acquired {
        let prio = txn.prio();
        let must_die = self
            .owners
            .iter()
            .any(|e| mode.conflicts(e.mode) && e.prio() < prio);
        if must_die {
            return Acquired::Die(AbortReason::WaitDie);
        }
        let pos = self.waiters.partition_point(|w| w.prio() <= prio);
        self.waiters.insert(
            pos,
            Waiter {
                txn: Arc::clone(txn),
                mode,
            },
        );
        self.promote_waiters(pol);
        match self.check_granted(tuple, txn) {
            Some((row, retired)) => Acquired::Granted { row, retired },
            None => Acquired::Wait,
        }
    }

    fn acquire_no_wait(
        &mut self,
        tuple: &Tuple<TupleCc>,
        txn: &Arc<TxnShared>,
        mode: LockMode,
        pol: &LockPolicy,
    ) -> Acquired {
        if self.owners.iter().any(|e| mode.conflicts(e.mode)) {
            return Acquired::Die(AbortReason::NoWait);
        }
        self.owners.push(Ent {
            txn: Arc::clone(txn),
            mode,
            counted: false,
        });
        let _ = pol;
        Acquired::Granted {
            row: tuple.read_row(),
            retired: false,
        }
    }

    /// Polled by a parked waiter: returns the working image once granted.
    /// (`retired` mirrors [`Acquired::Granted::retired`].)
    pub fn check_granted(
        &self,
        tuple: &Tuple<TupleCc>,
        txn: &Arc<TxnShared>,
    ) -> Option<(Row, bool)> {
        let (in_retired, _) = self.find_entry(txn.id)?;
        Some((self.visible_row(tuple, txn.prio()), in_retired))
    }

    /// Aborted while waiting: remove the queue entry. If a concurrent
    /// promotion had already granted the lock, fully release it instead.
    pub fn cancel_wait(&mut self, txn: &Arc<TxnShared>, pol: &LockPolicy) -> CancelOutcome {
        if let Some(i) = self.waiters.iter().position(|w| w.txn.id == txn.id) {
            self.waiters.remove(i);
            self.promote_waiters(pol);
            return CancelOutcome::WasWaiting;
        }
        if self.find_entry(txn.id).is_some() {
            // Granted concurrently with the wound: release as an abort
            // (no version could have been published — the worker never ran
            // with the lock).
            self.release(txn, pol, false, None);
            return CancelOutcome::WasGranted;
        }
        CancelOutcome::WasWaiting
    }

    /// Algorithm 2 `LockRetire`: publish the dirty row and move this
    /// exclusive owner to `retired`, making the version visible.
    pub fn retire(&mut self, txn: &Arc<TxnShared>, row: Row, pol: &LockPolicy) {
        let Some(i) = self.owners.iter().position(|e| e.txn.id == txn.id) else {
            panic!("retire: txn {} is not an owner", txn.id);
        };
        debug_assert_eq!(self.owners[i].mode, LockMode::Ex, "only writes retire here");
        let ent = self.owners.remove(i);
        let prio = ent.prio();
        let vpos = self.versions.partition_point(|v| v.prio() <= prio);
        self.versions.insert(
            vpos,
            Version {
                txn: Arc::clone(&ent.txn),
                row,
            },
        );
        let pos = self.retired.partition_point(|e| e.prio() <= prio);
        self.retired.insert(pos, ent);
        // The entry's predecessor set changed (it may gain readers that
        // slotted in while it owned, or lose wounded younger leftovers that
        // now sit after it), and entries between its new and old positions
        // gained it as a predecessor — recount settles all of them,
        // including the moved entry itself.
        self.recount_from(pos);
        self.promote_waiters(pol);
    }

    /// Second write after retiring (paper §3.3: *"If a transaction writes a
    /// tuple for a second time after retiring the lock, it can still ensure
    /// serializability by simply aborting all transactions that have seen
    /// its first write"*), also used for SH→EX upgrades of a retired read.
    ///
    /// Aborts every successor, removes the published version, and moves the
    /// entry back to `owners` in exclusive mode. Returns the number of
    /// cascaded aborts.
    pub fn reacquire_ex(&mut self, txn: &Arc<TxnShared>, _pol: &LockPolicy) -> usize {
        let Some((in_retired, i)) = self.find_entry(txn.id) else {
            panic!("reacquire: txn {} has no entry", txn.id);
        };
        assert!(in_retired, "reacquire only applies to retired entries");
        let mut cascaded = 0;
        for e in self.retired[i + 1..].iter().chain(self.owners.iter()) {
            if e.txn.set_abort(AbortReason::Cascade) {
                cascaded += 1;
            }
        }
        self.remove_version(txn.id);
        let ent = self.retired.remove(i);
        self.owners.push(Ent {
            txn: ent.txn,
            mode: LockMode::Ex,
            counted: ent.counted,
        });
        // The entry moved to the back of the conceptual list (and possibly
        // changed mode for SH→EX upgrades); recount settles its own flag
        // and those of the successors that lost it as a predecessor.
        self.recount_from(i);
        cascaded
    }

    /// SH→EX upgrade of a *shared owner* (baselines without Optimization 1,
    /// where reads hold ownership). Wound-Wait wounds younger co-owners and
    /// waits for older ones to release; Wait-Die dies when an older
    /// co-owner exists; No-Wait dies on any co-owner. Returns:
    ///
    /// * `Granted` once this transaction is the sole owner (mode flipped);
    /// * `Wait` while co-owners remain (poll again after parking);
    /// * `Die` per the policy.
    pub fn try_upgrade(&mut self, txn: &Arc<TxnShared>, pol: &LockPolicy) -> Acquired {
        let Some((in_retired, i)) = self.find_entry(txn.id) else {
            panic!("upgrade: txn {} has no entry", txn.id);
        };
        assert!(!in_retired, "retired upgrades go through reacquire_ex");
        let prio = txn.prio();
        let mut others = false;
        match pol.variant {
            LockVariant::WoundWait => {
                for e in &self.owners {
                    if e.txn.id == txn.id {
                        continue;
                    }
                    others = true;
                    if prio < e.prio() {
                        e.txn.set_abort(AbortReason::Wounded);
                    }
                }
            }
            LockVariant::WaitDie => {
                for e in &self.owners {
                    if e.txn.id == txn.id {
                        continue;
                    }
                    others = true;
                    if e.prio() < prio {
                        return Acquired::Die(AbortReason::WaitDie);
                    }
                }
            }
            LockVariant::NoWait => {
                if self.owners.len() > 1 {
                    return Acquired::Die(AbortReason::NoWait);
                }
            }
        }
        if others {
            return Acquired::Wait;
        }
        let pos = self.retired.len() + i;
        self.owners[i].mode = LockMode::Ex;
        self.recount_from(pos);
        Acquired::Granted {
            row: Row::default(),
            retired: false,
        }
    }

    /// Algorithm 2 `LockRelease`.
    ///
    /// * On commit of a write, `install` carries the final row image, which
    ///   becomes the new committed version (the *dirty* version-chain entry
    ///   is dropped; the old committed image moves onto the tuple's MVCC
    ///   chain for live snapshots).
    /// * On abort of a write, every successor is cascade-aborted (line 17)
    ///   and the published version is discarded.
    pub fn release(
        &mut self,
        txn: &Arc<TxnShared>,
        pol: &LockPolicy,
        committed: bool,
        install: Option<CommitInstall<'_>>,
    ) -> ReleaseOutcome {
        let Some((in_retired, i)) = self.find_entry(txn.id) else {
            // Already gone (e.g. cancel_wait raced); nothing to do.
            return ReleaseOutcome::default();
        };
        let pos = if in_retired {
            i
        } else {
            self.retired.len() + i
        };
        let mode = self.ent_at(pos).mode;
        let mut cascaded = 0;
        if !committed && mode == LockMode::Ex {
            // Cascading aborts: everyone after us may have observed our
            // dirty version (or a version derived from it).
            let rlen = self.retired.len();
            let total = rlen + self.owners.len();
            for p in pos + 1..total {
                if self.ent_at(p).txn.set_abort(AbortReason::Cascade) {
                    cascaded += 1;
                }
            }
        }
        if mode == LockMode::Ex {
            self.remove_version(txn.id);
            if committed {
                if let Some(ci) = install {
                    if ci.commit_ts == 0 {
                        // Untimed (non-MVCC) install: overwrite in place —
                        // a pushed version would never be collected.
                        ci.tuple.install(ci.row.clone());
                    } else {
                        ci.tuple.install_versioned_with(
                            ci.row.clone(),
                            ci.commit_ts,
                            ci.watermark,
                            ci.trim_threshold,
                        );
                    }
                }
            }
        }
        self.remove_entry(pos);
        self.promote_waiters(pol);
        ReleaseOutcome { cascaded }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_storage::{DataType, Schema, Table, Value};

    fn mk_table() -> Table<TupleCc> {
        Table::new(
            "t",
            Schema::build()
                .column("k", DataType::U64)
                .column("v", DataType::I64),
        )
    }

    fn mk_tuple(table: &Table<TupleCc>, k: u64, v: i64) -> Arc<Tuple<TupleCc>> {
        table.insert(k, Row::from(vec![Value::U64(k), Value::I64(v)]))
    }

    fn txn(id: u64, ts: u64) -> Arc<TxnShared> {
        TxnShared::new(id, ts)
    }

    fn ts_src() -> TsSource {
        TsSource::new()
    }

    /// Convenience: acquire and unwrap a grant.
    fn grant(
        st: &mut LockState,
        tuple: &Tuple<TupleCc>,
        pol: &LockPolicy,
        t: &Arc<TxnShared>,
        mode: LockMode,
        ts: &TsSource,
    ) -> Row {
        match st.acquire(tuple, pol, t, mode, ts) {
            Acquired::Granted { row, .. } => row,
            _ => panic!("expected grant"),
        }
    }

    #[test]
    fn exclusive_grant_then_conflicting_wait() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 10);
        let pol = LockPolicy::bamboo();
        let ts = ts_src();
        let mut st = LockState::default();
        let t1 = txn(1, 1);
        let t2 = txn(2, 2);
        grant(&mut st, &tup, &pol, &t1, LockMode::Ex, &ts);
        // Younger writer must wait (t1 older, not wounded).
        match st.acquire(&tup, &pol, &t2, LockMode::Ex, &ts) {
            Acquired::Wait => {}
            _ => panic!("expected wait"),
        }
        assert!(!t1.is_aborted());
        st.assert_invariants();
    }

    #[test]
    fn older_writer_wounds_younger_owner() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 10);
        let pol = LockPolicy::bamboo();
        let ts = ts_src();
        let mut st = LockState::default();
        let young = txn(2, 20);
        let old = txn(1, 10);
        grant(&mut st, &tup, &pol, &young, LockMode::Ex, &ts);
        match st.acquire(&tup, &pol, &old, LockMode::Ex, &ts) {
            Acquired::Wait => {}
            _ => panic!("old must queue behind the unreleased young owner"),
        }
        assert!(young.is_aborted(), "young owner must be wounded");
        // Young releases (abort): old gets promoted.
        st.release(&young, &pol, false, None);
        assert!(st.check_granted(&tup, &old).is_some());
        st.assert_invariants();
    }

    #[test]
    fn retire_publishes_version_and_next_writer_reads_it() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 10);
        let pol = LockPolicy::bamboo();
        let ts = ts_src();
        let mut st = LockState::default();
        let t1 = txn(1, 1);
        let t2 = txn(2, 2);
        let mut r1 = grant(&mut st, &tup, &pol, &t1, LockMode::Ex, &ts);
        assert_eq!(r1.get_i64(1), 10);
        r1.set(1, Value::I64(11));
        st.retire(&t1, r1.clone(), &pol);
        assert_eq!(st.versions_len(), 1);
        // t2 now acquires EX and must see t1's dirty version.
        let r2 = grant(&mut st, &tup, &pol, &t2, LockMode::Ex, &ts);
        assert_eq!(r2.get_i64(1), 11, "dirty read of retired version");
        // t2 depends on t1: semaphore incremented exactly once.
        assert_eq!(t2.semaphore(), 1);
        assert_eq!(t1.semaphore(), 0);
        st.assert_invariants();
    }

    #[test]
    fn commit_release_clears_dependency_and_installs() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 10);
        let pol = LockPolicy::bamboo();
        let ts = ts_src();
        let mut st = LockState::default();
        let t1 = txn(1, 1);
        let t2 = txn(2, 2);
        let mut r1 = grant(&mut st, &tup, &pol, &t1, LockMode::Ex, &ts);
        r1.set(1, Value::I64(11));
        st.retire(&t1, r1.clone(), &pol);
        let mut r2 = grant(&mut st, &tup, &pol, &t2, LockMode::Ex, &ts);
        r2.set(1, Value::I64(12));
        st.retire(&t2, r2.clone(), &pol);
        assert_eq!(t2.semaphore(), 1);
        // t1 commits: install and wake t2's dependency.
        st.release(&t1, &pol, true, Some(CommitInstall::untimed(&tup, &r1)));
        assert_eq!(t2.semaphore(), 0);
        assert_eq!(tup.read_row().get_i64(1), 11);
        st.release(&t2, &pol, true, Some(CommitInstall::untimed(&tup, &r2)));
        assert_eq!(tup.read_row().get_i64(1), 12);
        assert!(st.is_quiescent());
    }

    #[test]
    fn abort_cascades_to_dependents() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 10);
        let pol = LockPolicy::bamboo();
        let ts = ts_src();
        let mut st = LockState::default();
        let t1 = txn(1, 1);
        let t2 = txn(2, 2);
        let t3 = txn(3, 3);
        let mut r1 = grant(&mut st, &tup, &pol, &t1, LockMode::Ex, &ts);
        r1.set(1, Value::I64(11));
        st.retire(&t1, r1, &pol);
        let mut r2 = grant(&mut st, &tup, &pol, &t2, LockMode::Ex, &ts);
        r2.set(1, Value::I64(12));
        st.retire(&t2, r2, &pol);
        let r3 = grant(&mut st, &tup, &pol, &t3, LockMode::Sh, &ts);
        assert_eq!(r3.get_i64(1), 12);
        // t1 aborts: t2 and t3 read (transitively) dirty data → cascade.
        let out = st.release(&t1, &pol, false, None);
        assert_eq!(out.cascaded, 2);
        assert!(t2.is_aborted());
        assert!(t3.is_aborted());
        assert_eq!(t2.abort_reason(), AbortReason::Cascade);
        // Committed row untouched.
        assert_eq!(tup.read_row().get_i64(1), 10);
        // Dependents release themselves.
        st.release(&t2, &pol, false, None);
        st.release(&t3, &pol, false, None);
        assert!(st.is_quiescent());
    }

    #[test]
    fn shared_abort_does_not_cascade() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 10);
        let pol = LockPolicy::bamboo();
        let ts = ts_src();
        let mut st = LockState::default();
        let r = txn(1, 1);
        let w = txn(2, 2);
        grant(&mut st, &tup, &pol, &r, LockMode::Sh, &ts);
        grant(&mut st, &tup, &pol, &w, LockMode::Ex, &ts);
        assert_eq!(w.semaphore(), 1, "WAR dependency on the reader");
        let out = st.release(&r, &pol, false, None);
        assert_eq!(out.cascaded, 0, "SH abort has no cascading effect");
        assert!(!w.is_aborted());
        assert_eq!(w.semaphore(), 0, "reader's departure clears the WAR dep");
        st.assert_invariants();
    }

    #[test]
    fn opt3_reader_slots_before_younger_writer_without_wounding() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 10);
        let pol = LockPolicy::bamboo();
        let ts = ts_src();
        let mut st = LockState::default();
        let young_w = txn(2, 20);
        let old_r = txn(1, 10);
        let mut rw = grant(&mut st, &tup, &pol, &young_w, LockMode::Ex, &ts);
        rw.set(1, Value::I64(99));
        st.retire(&young_w, rw, &pol);
        // Old reader arrives: must NOT wound, must NOT see the younger
        // writer's version.
        let row = grant(&mut st, &tup, &pol, &old_r, LockMode::Sh, &ts);
        assert!(!young_w.is_aborted(), "opt3: reads do not wound");
        assert_eq!(row.get_i64(1), 10, "reader sees pre-writer image");
        // Younger writer now depends on the reader (WAR in list order).
        assert_eq!(young_w.semaphore(), 1);
        assert_eq!(old_r.semaphore(), 0);
        st.assert_invariants();
    }

    #[test]
    fn opt3_reader_behind_older_writer_waits() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 10);
        let pol = LockPolicy::bamboo();
        let ts = ts_src();
        let mut st = LockState::default();
        let old_w = txn(1, 10);
        let young_r = txn(2, 20);
        grant(&mut st, &tup, &pol, &old_w, LockMode::Ex, &ts);
        match st.acquire(&tup, &pol, &young_r, LockMode::Sh, &ts) {
            Acquired::Wait => {}
            _ => panic!("reader must wait for the older exclusive owner"),
        }
        // Writer retires → reader is promoted straight into retired and
        // sees the dirty version.
        let mut r = tup.read_row();
        r.set(1, Value::I64(42));
        st.retire(&old_w, r, &pol);
        let (row, retired) = st.check_granted(&tup, &young_r).unwrap();
        assert!(retired);
        assert_eq!(row.get_i64(1), 42);
        assert_eq!(young_r.semaphore(), 1);
        st.assert_invariants();
    }

    #[test]
    fn wound_wait_baseline_readers_hold_ownership() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 10);
        let pol = LockPolicy::wound_wait();
        let ts = ts_src();
        let mut st = LockState::default();
        let r1 = txn(1, 1);
        let r2 = txn(2, 2);
        let w = txn(3, 3);
        grant(&mut st, &tup, &pol, &r1, LockMode::Sh, &ts);
        grant(&mut st, &tup, &pol, &r2, LockMode::Sh, &ts);
        assert_eq!(st.owners_len(), 2);
        assert_eq!(st.retired_len(), 0, "no retiring in plain Wound-Wait");
        match st.acquire(&tup, &pol, &w, LockMode::Ex, &ts) {
            Acquired::Wait => {}
            _ => panic!("writer must wait for shared owners"),
        }
        st.release(&r1, &pol, true, None);
        assert!(st.check_granted(&tup, &w).is_none());
        st.release(&r2, &pol, true, None);
        assert!(st.check_granted(&tup, &w).is_some());
        st.assert_invariants();
    }

    #[test]
    fn wait_die_younger_dies_older_waits() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 10);
        let pol = LockPolicy::wait_die();
        let ts = ts_src();
        let mut st = LockState::default();
        let mid = txn(2, 20);
        let young = txn(3, 30);
        let old = txn(1, 10);
        grant(&mut st, &tup, &pol, &mid, LockMode::Ex, &ts);
        match st.acquire(&tup, &pol, &young, LockMode::Ex, &ts) {
            Acquired::Die(AbortReason::WaitDie) => {}
            _ => panic!("younger requester must die"),
        }
        match st.acquire(&tup, &pol, &old, LockMode::Ex, &ts) {
            Acquired::Wait => {}
            _ => panic!("older requester must wait"),
        }
        assert!(!mid.is_aborted(), "wait-die never wounds");
        st.assert_invariants();
    }

    #[test]
    fn no_wait_any_conflict_dies() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 10);
        let pol = LockPolicy::no_wait();
        let ts = ts_src();
        let mut st = LockState::default();
        let a = txn(1, 1);
        let b = txn(2, 2);
        grant(&mut st, &tup, &pol, &a, LockMode::Sh, &ts);
        match st.acquire(&tup, &pol, &b, LockMode::Ex, &ts) {
            Acquired::Die(AbortReason::NoWait) => {}
            _ => panic!("conflicting no-wait request must die"),
        }
        // Compatible request is granted.
        grant(&mut st, &tup, &pol, &b, LockMode::Sh, &ts);
        st.assert_invariants();
    }

    #[test]
    fn reacquire_aborts_observers_of_first_write() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 10);
        let pol = LockPolicy::bamboo();
        let ts = ts_src();
        let mut st = LockState::default();
        let w = txn(1, 1);
        let r = txn(2, 2);
        let mut img = grant(&mut st, &tup, &pol, &w, LockMode::Ex, &ts);
        img.set(1, Value::I64(50));
        st.retire(&w, img.clone(), &pol);
        let seen = grant(&mut st, &tup, &pol, &r, LockMode::Sh, &ts);
        assert_eq!(seen.get_i64(1), 50);
        // Second write: the reader of v1 must die.
        let cascaded = st.reacquire_ex(&w, &pol);
        assert_eq!(cascaded, 1);
        assert!(r.is_aborted());
        assert_eq!(st.versions_len(), 0, "first version withdrawn");
        // w can retire again with the second image.
        img.set(1, Value::I64(60));
        st.retire(&w, img.clone(), &pol);
        st.release(&r, &pol, false, None);
        st.release(&w, &pol, true, Some(CommitInstall::untimed(&tup, &img)));
        assert_eq!(tup.read_row().get_i64(1), 60);
        assert!(st.is_quiescent());
    }

    #[test]
    fn promote_waiters_preserves_priority_order() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 10);
        let pol = LockPolicy::wound_wait();
        let ts = ts_src();
        let mut st = LockState::default();
        let holder = txn(1, 1);
        let w_old = txn(2, 5);
        let w_young = txn(3, 9);
        grant(&mut st, &tup, &pol, &holder, LockMode::Ex, &ts);
        // Queue the younger first — priority sorting must reorder.
        assert!(matches!(
            st.acquire(&tup, &pol, &w_young, LockMode::Ex, &ts),
            Acquired::Wait
        ));
        assert!(matches!(
            st.acquire(&tup, &pol, &w_old, LockMode::Ex, &ts),
            Acquired::Wait
        ));
        // (w_old wounds w_young? No: w_young is a waiter, not an owner;
        // wounds only hit retired/owners. holder is older → no wound.)
        st.release(&holder, &pol, true, None);
        assert!(
            st.check_granted(&tup, &w_old).is_some(),
            "older waiter promoted first"
        );
        assert!(st.check_granted(&tup, &w_young).is_none());
        st.assert_invariants();
    }

    #[test]
    fn cancel_wait_removes_waiter_and_unblocks_queue() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 10);
        let pol = LockPolicy::wound_wait();
        let ts = ts_src();
        let mut st = LockState::default();
        let holder = txn(1, 1);
        let w1 = txn(2, 2);
        grant(&mut st, &tup, &pol, &holder, LockMode::Ex, &ts);
        assert!(matches!(
            st.acquire(&tup, &pol, &w1, LockMode::Ex, &ts),
            Acquired::Wait
        ));
        assert_eq!(st.waiters_len(), 1);
        assert_eq!(st.cancel_wait(&w1, &pol), CancelOutcome::WasWaiting);
        assert_eq!(st.waiters_len(), 0);
        st.assert_invariants();
    }

    #[test]
    fn aborted_waiter_is_skipped_by_promotion() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 10);
        let pol = LockPolicy::wound_wait();
        let ts = ts_src();
        let mut st = LockState::default();
        let holder = txn(1, 1);
        let dead = txn(2, 2);
        let live = txn(3, 3);
        grant(&mut st, &tup, &pol, &holder, LockMode::Ex, &ts);
        assert!(matches!(
            st.acquire(&tup, &pol, &dead, LockMode::Ex, &ts),
            Acquired::Wait
        ));
        assert!(matches!(
            st.acquire(&tup, &pol, &live, LockMode::Ex, &ts),
            Acquired::Wait
        ));
        dead.set_abort(AbortReason::User);
        st.release(&holder, &pol, true, None);
        assert!(
            st.check_granted(&tup, &live).is_some(),
            "aborted waiter must not block the queue"
        );
        st.assert_invariants();
    }

    #[test]
    fn dynamic_ts_assigned_on_first_conflict_only() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 10);
        let tup2 = mk_tuple(&table, 2, 20);
        let pol = LockPolicy::bamboo();
        let ts = ts_src();
        let mut st1 = LockState::default();
        let mut st2 = LockState::default();
        let a = txn(1, crate::ts::UNASSIGNED);
        let b = txn(2, crate::ts::UNASSIGNED);
        // Non-conflicting accesses: no assignment (Algorithm 3 guard).
        grant(&mut st1, &tup, &pol, &a, LockMode::Sh, &ts);
        grant(&mut st1, &tup, &pol, &b, LockMode::Sh, &ts);
        assert_eq!(a.ts(), crate::ts::UNASSIGNED);
        assert_eq!(b.ts(), crate::ts::UNASSIGNED);
        // Conflict on another tuple: both sides get timestamps, list first.
        grant(&mut st2, &tup2, &pol, &a, LockMode::Ex, &ts);
        let _ = st2.acquire(&tup2, &pol, &b, LockMode::Ex, &ts);
        assert_ne!(a.ts(), crate::ts::UNASSIGNED);
        assert_ne!(b.ts(), crate::ts::UNASSIGNED);
        assert!(a.ts() < b.ts(), "list entries assigned before requester");
        st1.assert_invariants();
        st2.assert_invariants();
    }

    #[test]
    fn semaphore_counts_once_per_tuple_with_multiple_predecessors() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 0);
        let pol = LockPolicy::bamboo();
        let ts = ts_src();
        let mut st = LockState::default();
        let w1 = txn(1, 1);
        let w2 = txn(2, 2);
        let w3 = txn(3, 3);
        for (t, v) in [(&w1, 1i64), (&w2, 2), (&w3, 3)] {
            let mut r = grant(&mut st, &tup, &pol, t, LockMode::Ex, &ts);
            r.set(1, Value::I64(v));
            st.retire(t, r, &pol);
        }
        // w3 has two conflicting predecessors but exactly one increment.
        assert_eq!(w2.semaphore(), 1);
        assert_eq!(w3.semaphore(), 1);
        // w1 commits: w2 clears, w3 still depends on w2.
        let r1 = tup.read_row();
        st.release(&w1, &pol, true, Some(CommitInstall::untimed(&tup, &r1)));
        assert_eq!(w2.semaphore(), 0);
        assert_eq!(w3.semaphore(), 1);
        let r2 = tup.read_row();
        st.release(&w2, &pol, true, Some(CommitInstall::untimed(&tup, &r2)));
        assert_eq!(w3.semaphore(), 0);
        st.assert_invariants();
    }

    #[test]
    fn mid_chain_abort_cascades_only_downstream() {
        let table = mk_table();
        let tup = mk_tuple(&table, 1, 0);
        let pol = LockPolicy::bamboo();
        let ts = ts_src();
        let mut st = LockState::default();
        let w1 = txn(1, 1);
        let w2 = txn(2, 2);
        let w3 = txn(3, 3);
        for (t, v) in [(&w1, 1i64), (&w2, 2), (&w3, 3)] {
            let mut r = grant(&mut st, &tup, &pol, t, LockMode::Ex, &ts);
            r.set(1, Value::I64(v));
            st.retire(t, r, &pol);
        }
        let out = st.release(&w2, &pol, false, None);
        assert_eq!(out.cascaded, 1);
        assert!(!w1.is_aborted(), "upstream unaffected");
        assert!(w3.is_aborted(), "downstream cascaded");
        st.release(&w3, &pol, false, None);
        // w1 can still commit.
        let r1 = tup.read_row();
        st.release(&w1, &pol, true, Some(CommitInstall::untimed(&tup, &r1)));
        assert!(st.is_quiescent());
    }
}

#[cfg(test)]
mod upgrade_and_edge_tests {
    use super::*;
    use bamboo_storage::{DataType, Schema, Table, Value};

    fn mk() -> (Table<TupleCc>, Arc<Tuple<TupleCc>>, TsSource) {
        let table = Table::new(
            "t",
            Schema::build()
                .column("k", DataType::U64)
                .column("v", DataType::I64),
        );
        let tup = table.insert(0, Row::from(vec![Value::U64(0), Value::I64(0)]));
        (table, tup, TsSource::new())
    }

    fn grant(
        st: &mut LockState,
        tup: &Tuple<TupleCc>,
        pol: &LockPolicy,
        t: &Arc<TxnShared>,
        mode: LockMode,
        ts: &TsSource,
    ) {
        match st.acquire(tup, pol, t, mode, ts) {
            Acquired::Granted { .. } => {}
            _ => panic!("expected grant"),
        }
    }

    #[test]
    fn sole_shared_owner_upgrades_in_place() {
        let (_tb, tup, ts) = mk();
        let pol = LockPolicy::wound_wait();
        let mut st = LockState::default();
        let t1 = TxnShared::new(1, ts.assign());
        grant(&mut st, &tup, &pol, &t1, LockMode::Sh, &ts);
        match st.try_upgrade(&t1, &pol) {
            Acquired::Granted { .. } => {}
            _ => panic!("sole owner upgrades immediately"),
        }
        st.assert_invariants();
        // Now exclusive: another SH request must wait.
        let t2 = TxnShared::new(2, ts.assign());
        assert!(matches!(
            st.acquire(&tup, &pol, &t2, LockMode::Sh, &ts),
            Acquired::Wait
        ));
        st.release(&t1, &pol, true, None);
        st.assert_invariants();
    }

    #[test]
    fn upgrade_wounds_younger_co_owner_and_waits() {
        let (_tb, tup, ts) = mk();
        let pol = LockPolicy::wound_wait();
        let mut st = LockState::default();
        let old = TxnShared::new(1, ts.assign());
        let young = TxnShared::new(2, ts.assign());
        grant(&mut st, &tup, &pol, &old, LockMode::Sh, &ts);
        grant(&mut st, &tup, &pol, &young, LockMode::Sh, &ts);
        assert!(matches!(st.try_upgrade(&old, &pol), Acquired::Wait));
        assert!(young.is_aborted(), "younger co-owner wounded");
        st.release(&young, &pol, false, None);
        assert!(matches!(
            st.try_upgrade(&old, &pol),
            Acquired::Granted { .. }
        ));
        st.release(&old, &pol, true, None);
        st.assert_invariants();
    }

    #[test]
    fn upgrade_dies_under_wait_die_with_older_co_owner() {
        let (_tb, tup, ts) = mk();
        let pol = LockPolicy::wait_die();
        let mut st = LockState::default();
        let old = TxnShared::new(1, ts.assign());
        let young = TxnShared::new(2, ts.assign());
        grant(&mut st, &tup, &pol, &old, LockMode::Sh, &ts);
        grant(&mut st, &tup, &pol, &young, LockMode::Sh, &ts);
        assert!(matches!(
            st.try_upgrade(&young, &pol),
            Acquired::Die(AbortReason::WaitDie)
        ));
        assert!(!old.is_aborted());
    }

    #[test]
    fn cancel_wait_on_granted_entry_releases_it() {
        let (_tb, tup, ts) = mk();
        let pol = LockPolicy::wound_wait();
        let mut st = LockState::default();
        let t1 = TxnShared::new(1, ts.assign());
        grant(&mut st, &tup, &pol, &t1, LockMode::Ex, &ts);
        // Simulate the wound-vs-grant race: the worker thinks it is still
        // waiting, but the entry was granted; cancel_wait must fully
        // release.
        assert_eq!(st.cancel_wait(&t1, &pol), CancelOutcome::WasGranted);
        assert!(st.is_quiescent());
    }

    #[test]
    fn has_conflicting_retired_ignores_aborted_entries() {
        let (_tb, tup, ts) = mk();
        let pol = LockPolicy::bamboo();
        let mut st = LockState::default();
        let w = TxnShared::new(1, ts.assign());
        grant(&mut st, &tup, &pol, &w, LockMode::Ex, &ts);
        let mut row = tup.read_row();
        row.set(1, Value::I64(5));
        st.retire(&w, row, &pol);
        assert!(st.has_conflicting_retired(LockMode::Sh));
        w.set_abort(AbortReason::User);
        assert!(
            !st.has_conflicting_retired(LockMode::Sh),
            "aborted retired entries do not count"
        );
        st.release(&w, &pol, false, None);
    }

    #[test]
    fn dirty_snapshot_returns_newest_version_or_base() {
        let (_tb, tup, ts) = mk();
        let pol = LockPolicy::bamboo();
        let mut st = LockState::default();
        assert_eq!(st.dirty_snapshot(&tup).get_i64(1), 0);
        let w = TxnShared::new(1, ts.assign());
        grant(&mut st, &tup, &pol, &w, LockMode::Ex, &ts);
        let mut row = tup.read_row();
        row.set(1, Value::I64(42));
        st.retire(&w, row.clone(), &pol);
        assert_eq!(st.dirty_snapshot(&tup).get_i64(1), 42);
        st.release(&w, &pol, true, Some(CommitInstall::untimed(&tup, &row)));
        assert_eq!(st.dirty_snapshot(&tup).get_i64(1), 42);
    }

    #[test]
    fn wait_die_allows_shared_coexistence() {
        let (_tb, tup, ts) = mk();
        let pol = LockPolicy::wait_die();
        let mut st = LockState::default();
        let a = TxnShared::new(1, ts.assign());
        let b = TxnShared::new(2, ts.assign());
        grant(&mut st, &tup, &pol, &a, LockMode::Sh, &ts);
        grant(&mut st, &tup, &pol, &b, LockMode::Sh, &ts);
        assert_eq!(st.owners_len(), 2);
        st.release(&a, &pol, true, None);
        st.release(&b, &pol, true, None);
        assert!(st.is_quiescent());
    }

    #[test]
    fn dynamic_ts_versions_stay_visible_after_assignment() {
        // A writer retires while UNASSIGNED; a later conflicting acquire
        // assigns both sides. The version must remain visible to the
        // (younger) second transaction — regression test for snapshotting
        // priorities at retire time.
        let (_tb, tup, ts) = mk();
        let pol = LockPolicy::bamboo(); // dynamic_ts on
        let mut st = LockState::default();
        let w = TxnShared::new(1, crate::ts::UNASSIGNED);
        grant(&mut st, &tup, &pol, &w, LockMode::Ex, &ts);
        let mut row = tup.read_row();
        row.set(1, Value::I64(7));
        st.retire(&w, row, &pol);
        let r = TxnShared::new(2, crate::ts::UNASSIGNED);
        match st.acquire(&tup, &pol, &r, LockMode::Ex, &ts) {
            Acquired::Granted { row, .. } => {
                assert_eq!(row.get_i64(1), 7, "dirty version visible post-assignment");
            }
            _ => panic!("expected grant"),
        }
        assert!(w.ts() < r.ts(), "list entry assigned before requester");
        st.release(&r, &pol, false, None);
        st.release(&w, &pol, false, None);
        assert!(st.is_quiescent());
    }

    #[test]
    fn release_of_unknown_txn_is_noop() {
        let (_tb, tup, ts) = mk();
        let pol = LockPolicy::bamboo();
        let mut st = LockState::default();
        let ghost = TxnShared::new(99, ts.assign());
        let out = st.release(&ghost, &pol, false, None);
        assert_eq!(out.cascaded, 0);
        let _ = tup;
    }
}

#[cfg(test)]
mod committed_unreleased_tests {
    use super::*;
    use bamboo_storage::{DataType, Schema, Table, Value};

    /// Regression test for the lost-update hole: an older transaction must
    /// not slip past a *committed but unreleased* younger writer whose
    /// version the timestamp rule hides.
    #[test]
    fn older_writer_waits_for_committed_unreleased_younger() {
        let table = Table::new(
            "t",
            Schema::build()
                .column("k", DataType::U64)
                .column("v", DataType::I64),
        );
        let tup = table.insert(0, Row::from(vec![Value::U64(0), Value::I64(100)]));
        let pol = LockPolicy::bamboo();
        let ts = TsSource::new();
        let mut st = LockState::default();
        let young = TxnShared::new(2, 20);
        let old = TxnShared::new(1, 10);
        // Young writes 101 and retires, then passes its commit point.
        let mut row = match st.acquire(&tup, &pol, &young, LockMode::Ex, &ts) {
            Acquired::Granted { row, .. } => row,
            _ => panic!("grant"),
        };
        row.set(1, Value::I64(101));
        st.retire(&young, row.clone(), &pol);
        assert!(young.try_commit_point());
        // Old arrives: the wound must fail (committed) and the old one
        // must NOT be granted — the hidden version would hand it a stale
        // base image.
        match st.acquire(&tup, &pol, &old, LockMode::Ex, &ts) {
            Acquired::Wait => {}
            Acquired::Granted { .. } => panic!("older writer slipped past a committed write"),
            Acquired::Die(_) => panic!("wound-wait never dies"),
        }
        assert_eq!(young.status(), TxnStatus::Committed);
        // Young releases (installs): old is promoted and sees 101.
        st.release(&young, &pol, true, Some(CommitInstall::untimed(&tup, &row)));
        let (granted_row, _) = st
            .check_granted(&tup, &old)
            .expect("promoted after release");
        assert_eq!(granted_row.get_i64(1), 101, "must see the committed write");
        st.release(&old, &pol, false, None);
        assert!(st.is_quiescent());
    }

    /// The same hole through the Optimization-3 reader bypass.
    #[test]
    fn older_reader_waits_for_committed_unreleased_younger() {
        let table = Table::new(
            "t",
            Schema::build()
                .column("k", DataType::U64)
                .column("v", DataType::I64),
        );
        let tup = table.insert(0, Row::from(vec![Value::U64(0), Value::I64(100)]));
        let pol = LockPolicy::bamboo();
        let ts = TsSource::new();
        let mut st = LockState::default();
        let young = TxnShared::new(2, 20);
        let old = TxnShared::new(1, 10);
        let mut row = match st.acquire(&tup, &pol, &young, LockMode::Ex, &ts) {
            Acquired::Granted { row, .. } => row,
            _ => panic!("grant"),
        };
        row.set(1, Value::I64(101));
        st.retire(&young, row.clone(), &pol);
        assert!(young.try_commit_point());
        match st.acquire(&tup, &pol, &old, LockMode::Sh, &ts) {
            Acquired::Wait => {}
            Acquired::Granted { row, .. } => {
                panic!(
                    "bypass returned stale {} for a committed write",
                    row.get_i64(1)
                )
            }
            Acquired::Die(_) => unreachable!(),
        }
        st.release(&young, &pol, true, Some(CommitInstall::untimed(&tup, &row)));
        let (granted_row, _) = st.check_granted(&tup, &old).expect("promoted");
        assert_eq!(granted_row.get_i64(1), 101);
        st.release(&old, &pol, true, None);
        assert!(st.is_quiescent());
    }
}
