//! The Bamboo lock table (paper §3.2, Figure 2 and Algorithm 2).
//!
//! Each tuple owns one [`LockState`] with three lists —
//! `owners`, `waiters` and Bamboo's new `retired` list — plus the chain of
//! uncommitted ("dirty") row versions published by retired writers. The
//! whole 2PL family (Bamboo, Wound-Wait, Wait-Die, No-Wait) is implemented
//! here behind a [`LockPolicy`], because the paper frames them as one lock
//! manager with features toggled: *"If \[LockRetire\] is never called for all
//! transactions, then Bamboo degenerates to Wound-Wait"* (§3.2.2).

mod entry;

pub use entry::{
    Acquired, CancelOutcome, CommitInstall, LockPolicy, LockState, LockVariant, ReleaseOutcome,
};
