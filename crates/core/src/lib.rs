#![deny(missing_docs)]
//! # bamboo-core
//!
//! A faithful Rust implementation of **Bamboo** — the concurrency-control
//! protocol of *"Releasing Locks As Early As You Can: Reducing Contention of
//! Hotspots by Violating Two-Phase Locking"* (SIGMOD 2021) — together with
//! the paper's baselines (Wound-Wait, Wait-Die, No-Wait 2PL, Silo, IC3)
//! behind one pluggable [`protocol::Protocol`] interface, mirroring the
//! DBx1000 architecture the paper evaluates in.
//!
//! The protocol stack:
//!
//! * [`lock`] — the per-tuple lock table with Bamboo's `retired` list and
//!   dirty-version chain (Algorithm 2, Figure 2).
//! * [`protocol`] — the *internal* plug: the 2PL family (including Bamboo
//!   and its four optimizations from §3.5), Silo, and IC3.
//! * [`session`] — the *public* transaction API: [`Session`] binds a
//!   database to a protocol, the RAII [`Txn`] guard owns one attempt's
//!   lifecycle.
//! * [`executor`] — a worker-per-thread benchmark harness with the paper's
//!   runtime breakdown (lock wait / commit wait / abort time, §4.2).
//! * [`model`] — the analytic waits-vs-aborts model of §4.2.
//!
//! ## Transactions: `Session` and the RAII `Txn` guard
//!
//! A transaction is started from a [`Session`] and driven through the
//! [`Txn`] handle — no database/protocol/context threading, and no abort
//! obligation: dropping an uncommitted `Txn` (early return, `?`, panic)
//! aborts the attempt exactly once.
//!
//! Before (the raw protocol surface — still available to protocol
//! implementors, no longer needed by users):
//!
//! ```text
//! let mut ctx = proto.begin(&db);
//! proto.update(&db, &mut ctx, t, 1, &mut |row| { /* … */ })?;   // on Err:
//! proto.commit(&db, &mut ctx, &mut wal)?;                       // caller MUST
//! // … proto.abort(&db, &mut ctx) exactly once, by convention   // remember
//! ```
//!
//! After:
//!
//! ```
//! use bamboo_core::{Database, Session, protocol::LockingProtocol};
//! use bamboo_storage::{Schema, DataType, Value, Row};
//! use std::sync::Arc;
//!
//! let mut b = Database::builder();
//! let t = b.add_table("kv", Schema::build()
//!     .column("k", DataType::U64)
//!     .column("v", DataType::I64));
//! let db = b.build();
//! db.table(t).insert(1, Row::from(vec![Value::U64(1), Value::I64(0)]));
//!
//! let session = Session::new(db, Arc::new(LockingProtocol::bamboo()));
//! let mut txn = session.begin();
//! txn.update(t, 1, |row| {
//!     let v = row.get_i64(1);
//!     row.set(1, Value::I64(v + 40));
//! }).unwrap();
//! txn.commit().unwrap();   // or: drop(txn) → aborts, exactly once
//! assert_eq!(session.db().table(t).get(1).unwrap().read_row().get_i64(1), 40);
//! ```
//!
//! [`session::TxnOptions`] selects snapshot mode, opacity, planned
//! operations (Optimization 2's δ) and the IC3 template;
//! [`Session::run`] executes a whole [`executor::TxnSpec`] with the
//! session's [`session::RetryPolicy`] governing restarts.
//!
//! ## Multi-version snapshot reads
//!
//! Long read-only transactions are the worst case for every lock-based
//! scheme (Figure 7): a scan holding shared locks pins writers behind it,
//! and retiring cannot help readers. The MVCC subsystem removes that cliff:
//!
//! * Every committing writer installs its after-images as new *committed
//!   versions* on the tuples' [`bamboo_storage::VersionChain`], tagged with
//!   a commit timestamp from [`db::CommitClock`]; the clock's *stable*
//!   point (all smaller timestamps fully installed) is the only timestamp
//!   snapshots are taken at.
//! * [`Session::snapshot`] (over
//!   [`protocol::Protocol::begin_snapshot`]) registers a snapshot in the
//!   [`db::SnapshotRegistry`] and returns a [`Txn`] whose reads resolve
//!   against the version chains with **zero lock-manager interaction** —
//!   the reader can neither block nor be wounded, and writers never wait
//!   for it. A row invisible at the snapshot surfaces as
//!   [`AbortReason::SnapshotNotVisible`] (or `Ok(None)` through
//!   [`Txn::read_opt`]), never as a panic.
//! * The registry's floor is published as the GC watermark
//!   ([`db::Database::gc_watermark`]); installs trim versions no live
//!   snapshot can still see — amortized (on chain growth or watermark
//!   advance), with the Silo-style epoch tick
//!   ([`db::Database::advance_epoch`], fired every N commits) doubling as
//!   the watermark publisher so chains drain even without snapshot churn.
//!
//! The commit clock, snapshot registry and watermark are all lock-free:
//! no `Mutex`/`RwLock` sits on the commit or snapshot-begin path (see
//! [`db`]'s module docs for the design and its memory-ordering contract).
//! Hostile long readers can be bounded with
//! [`session::TxnOptions::snapshot_max_lag`], which aborts a lagging
//! snapshot with [`AbortReason::SnapshotTooOld`] instead of letting it
//! pin version chains forever.
//!
//! ## Partitioned databases
//!
//! [`partition::PartitionedDb`] splits the storage into N partitions —
//! each its own catalog shard (tuple slabs, indexes, version chains,
//! per-tuple lock entries), WAL segment and stats slab — while the commit
//! clock, snapshot registry and watermark stay shared, so commit
//! timestamps remain globally ordered and snapshots globally consistent.
//! [`partition::PartSession`] extends the `Session` seam with a
//! partition-local fast path ([`partition::PartSession::begin_on`]);
//! cross-partition transactions route per-key through
//! [`Database::table_for`] and commit with per-partition WAL appends in
//! partition-id order under **one** commit timestamp (the commit-ordering
//! contract — see [`partition`]'s module docs). Build-time tuning knobs
//! (epoch-tick period, version-chain trim threshold) live in
//! [`db::DbOptions`].

pub mod db;
pub mod durability;
pub mod executor;
pub mod lock;
pub mod meta;
pub mod model;
#[cfg(all(test, bamboo_model))]
mod model_check;
pub mod partition;
pub mod protocol;
pub mod session;
pub mod stats;
pub mod sync;
pub mod ts;
pub mod txn;
pub mod wal;

pub use db::{Database, DatabaseBuilder, DbOptions};
pub use durability::RecoveryReport;
pub use meta::TupleCc;
pub use partition::{PartSession, Partition, PartitionedDb};
pub use session::{RetryPolicy, Session, Txn, TxnOptions};
pub use txn::{Abort, AbortReason, LockMode, TxnCtx, TxnShared};
