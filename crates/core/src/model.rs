//! The analytic waits-versus-aborts model of paper §4.2.
//!
//! With `K` lock requests per transaction, `N` concurrent transactions,
//! `D` data items and `t` the mean time between lock requests, throughput
//! is proportional to
//!
//! ```text
//!   N / ((K+1)·t) · (1 − A·P_conflict − B·P_abort)
//! ```
//!
//! where `A` is the fraction of execution a conflicting transaction spends
//! waiting and `B` the fraction spent on doomed execution. Bamboo shrinks
//! `A·P_conflict` (early retire ⇒ `A ≈ 1/(K+1)` instead of Wound-Wait's
//! `1/2`) while adding a cascading-abort term bounded by
//! `N·P_conflict·P_deadlock`. The closed forms below are the paper's; the
//! executor's measured breakdowns corroborate them (EXPERIMENTS.md).

/// `P_conflict ≈ N·K² / (2·D)`: probability a transaction hits at least one
/// conflict during its lifetime (uniform access assumption).
pub fn p_conflict(n: f64, k: f64, d: f64) -> f64 {
    (n * k * k / (2.0 * d)).min(1.0)
}

/// `P_deadlock ≈ N·K⁴ / (4·D²)`: probability of a deadlock, approximated by
/// the probability of conflicting with a transaction already conflicting
/// with you.
pub fn p_deadlock(n: f64, k: f64, d: f64) -> f64 {
    (n * k.powi(4) / (4.0 * d * d)).min(1.0)
}

/// Wound-Wait's wait fraction: a conflicting transaction waits on average
/// half of the holder's execution.
pub fn a_wound_wait(_k: f64) -> f64 {
    0.5
}

/// Bamboo's wait fraction: wait only for the duration of one access,
/// `≈ 1/(K+1)`.
pub fn a_bamboo(k: f64) -> f64 {
    1.0 / (k + 1.0)
}

/// Upper bound on Bamboo's cascading-abort cost `B·P_cas_abort ≤
/// N·P_conflict·P_deadlock` (B bounded by 1).
pub fn cascade_cost_bound(n: f64, k: f64, d: f64) -> f64 {
    (n * p_conflict(n, k, d) * p_deadlock(n, k, d)).min(1.0)
}

/// The paper's gain condition: Bamboo beats Wound-Wait when
/// `(A_ww − A_bb)·P_conflict > B·P_cas_abort`, which reduces to
/// `N²K⁴ / (2D²) < (K−1)/(K+1)`.
pub fn bamboo_wins(n: f64, k: f64, d: f64) -> bool {
    n * n * k.powi(4) / (2.0 * d * d) < (k - 1.0) / (k + 1.0)
}

/// Estimated relative throughput gain of Bamboo over Wound-Wait:
/// `(A_ww − A_bb)·P_conflict − B·P_cas_abort` (the improvement in the
/// useful-work fraction; negative when cascading aborts dominate).
pub fn estimated_gain(n: f64, k: f64, d: f64) -> f64 {
    (a_wound_wait(k) - a_bamboo(k)) * p_conflict(n, k, d) - cascade_cost_bound(n, k, d)
}

/// Throughput proportionality `N / ((K+1)·t) · (1 − A·Pc − B·Pa)` with all
/// terms supplied explicitly; used by the `repro model` experiment to chart
/// both protocols under one parameterization.
pub fn throughput_model(n: f64, k: f64, t: f64, a: f64, p_conf: f64, b: f64, p_abort: f64) -> f64 {
    (n / ((k + 1.0) * t)) * (1.0 - a * p_conf - b * p_abort).max(0.0)
}

/// Wound-Wait throughput estimate under the model (aborts only from
/// deadlock prevention, negligible B term).
pub fn ww_throughput(n: f64, k: f64, d: f64, t: f64) -> f64 {
    throughput_model(
        n,
        k,
        t,
        a_wound_wait(k),
        p_conflict(n, k, d),
        1.0,
        p_deadlock(n, k, d),
    )
}

/// Bamboo throughput estimate under the model.
pub fn bb_throughput(n: f64, k: f64, d: f64, t: f64) -> f64 {
    throughput_model(
        n,
        k,
        t,
        a_bamboo(k),
        p_conflict(n, k, d),
        1.0,
        p_deadlock(n, k, d) + cascade_cost_bound(n, k, d),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_scale_as_documented() {
        // Doubling D halves P_conflict and quarters P_deadlock.
        let (n, k, d) = (32.0, 16.0, 1e6);
        assert!((p_conflict(n, k, d) / p_conflict(n, k, 2.0 * d) - 2.0).abs() < 1e-9);
        assert!((p_deadlock(n, k, d) / p_deadlock(n, k, 2.0 * d) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn probabilities_clamped_to_one() {
        assert_eq!(p_conflict(1e9, 64.0, 10.0), 1.0);
        assert_eq!(p_deadlock(1e9, 64.0, 10.0), 1.0);
    }

    #[test]
    fn gain_condition_holds_for_database_scale() {
        // "For most databases, the data size D is orders of magnitude
        // larger than N and K; so the equation will hold."
        assert!(bamboo_wins(32.0, 16.0, 1e8));
        assert!(bamboo_wins(120.0, 64.0, 1e8));
        // Tiny database with huge transactions: condition can fail.
        assert!(!bamboo_wins(1000.0, 64.0, 1000.0));
    }

    #[test]
    fn k_one_never_wins() {
        // (K−1)/(K+1) = 0 at K=1: a single-access transaction cannot
        // benefit from early retire.
        assert!(!bamboo_wins(2.0, 1.0, 1e8));
    }

    #[test]
    fn wait_fractions_ordered() {
        for k in [2.0, 4.0, 16.0, 64.0] {
            assert!(a_bamboo(k) < a_wound_wait(k));
        }
    }

    #[test]
    fn model_predicts_bamboo_ahead_at_scale() {
        let (n, k, d, t) = (32.0, 16.0, 1e6, 1.0);
        assert!(bb_throughput(n, k, d, t) > ww_throughput(n, k, d, t));
    }

    #[test]
    fn estimated_gain_positive_at_paper_scale() {
        assert!(estimated_gain(32.0, 16.0, 1e6) > 0.0);
    }

    #[test]
    fn throughput_model_floor_at_zero() {
        assert_eq!(throughput_model(1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0), 0.0);
    }
}
