//! Execution statistics — the paper's measurement vocabulary.
//!
//! §4.2 evaluates cascading aborts through three metrics: *length of abort
//! chain*, *abort rate*, and *abort time*, alongside *wait time* (lock
//! waits) and commit-semaphore waits. The runtime-analysis figures
//! (4b, 5b, 6b, 7b, 8b, 11b, 11d) plot amortized per-committed-transaction
//! time split into `lock wait / abort / commit wait`; [`BenchResult`]
//! reproduces exactly those series.

use std::time::Duration;

use crate::txn::AbortReason;

/// Number of distinct abort reasons (array-indexed counters).
pub const REASONS: usize = 11;

fn reason_idx(r: AbortReason) -> usize {
    match r {
        AbortReason::Wounded => 0,
        AbortReason::Cascade => 1,
        AbortReason::WaitDie => 2,
        AbortReason::NoWait => 3,
        AbortReason::SiloValidation => 4,
        AbortReason::SiloLockFail => 5,
        AbortReason::User => 6,
        AbortReason::Ic3Validation => 7,
        AbortReason::SnapshotNotVisible => 8,
        AbortReason::SnapshotTooOld => 9,
        AbortReason::DurabilityFailed => 10,
    }
}

/// Label for the reason at array index `i` (report printing).
pub fn reason_name(i: usize) -> &'static str {
    match i {
        0 => "wounded",
        1 => "cascade",
        2 => "wait_die",
        3 => "no_wait",
        4 => "silo_validation",
        5 => "silo_lock_fail",
        6 => "user",
        7 => "ic3_validation",
        8 => "snapshot_not_visible",
        9 => "snapshot_too_old",
        _ => "durability_failed",
    }
}

/// Per-worker counters, merged after the run.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// Aborted attempts by reason.
    pub aborts_by_reason: [u64; REASONS],
    /// Wall time of committed attempts.
    pub committed_wall: Duration,
    /// Wall time of aborted attempts (the paper's *abort time*: "total CPU
    /// time wasted on executing transactions that aborted in the end").
    pub aborted_wall: Duration,
    /// Time parked waiting for locks, across all attempts.
    pub lock_wait: Duration,
    /// Time parked waiting for the commit semaphore, across all attempts.
    pub commit_wait: Duration,
    /// Number of cascade events this worker *initiated* (its abort wounded
    /// dependents).
    pub cascade_events: u64,
    /// Total transactions aborted across those cascades.
    pub cascade_victims: u64,
    /// Longest single abort chain seen.
    pub max_chain: u64,
    /// Redo-log bytes written.
    pub log_bytes: u64,
    /// Commit-latency histogram: bucket i counts commits with latency in
    /// [2^i, 2^{i+1}) microseconds (32 buckets ≈ up to ~1 hour).
    pub latency_us_log2: [u64; 32],
    /// Lock-manager acquisitions across all non-snapshot attempts (lock
    /// table requests, upgrades, Silo write-set locks).
    pub lock_acquisitions: u64,
    /// Committed read-only snapshot transactions (own bucket — not
    /// included in [`WorkerStats::commits`]).
    pub snapshot_commits: u64,
    /// Aborted snapshot attempts (should stay 0: snapshot mode can neither
    /// block nor be wounded; also counted in [`WorkerStats::aborts`]).
    pub snapshot_aborts: u64,
    /// Lock-manager acquisitions by snapshot-mode attempts. The snapshot
    /// read path bypasses the lock manager entirely, so this must be 0 —
    /// benches assert it.
    pub snapshot_lock_acquisitions: u64,
    /// Latency histogram of snapshot commits, same bucketing as
    /// [`WorkerStats::latency_us_log2`] (own bucket so 1000-tuple scans do
    /// not pollute the short-transaction percentiles).
    pub snapshot_latency_us_log2: [u64; 32],
    /// Committed transactions whose access set spanned more than one
    /// partition (0 on a monolithic database; also counted in
    /// [`WorkerStats::commits`]). The partition-scaling benches report the
    /// cross-partition share from this.
    pub cross_partition_commits: u64,
    /// WAL transient-fault retries (snapshot of the handles'
    /// [`crate::wal::WalHandle::io_retries`] counters, taken once per run —
    /// not additive across workers; the executor fills it on the merged
    /// totals).
    pub wal_io_retries: u64,
    /// WAL permanent failures that degraded a partition (snapshot of
    /// [`crate::wal::WalHandle::io_failures`], same convention).
    pub wal_io_failures: u64,
    /// Partitions degraded (read-only) at the end of the run.
    pub degraded_partitions: u64,
    /// Batch fsyncs issued by group-commit leaders (snapshot of the
    /// handles' [`crate::wal::WalHandle::group_fsyncs`] counters, same
    /// run-level convention as [`WorkerStats::wal_io_retries`]).
    pub group_commit_fsyncs: u64,
    /// Commits acknowledged through the global durability horizon
    /// (snapshot of [`crate::wal::DurabilityHorizon::acked`], same
    /// convention). `group_commit_acks / group_commit_fsyncs` is the mean
    /// batch size the coordinator achieved.
    pub group_commit_acks: u64,
}

impl WorkerStats {
    /// Records one aborted attempt.
    pub fn record_abort(&mut self, reason: AbortReason, wall: Duration, cascaded: usize) {
        self.aborts += 1;
        self.aborts_by_reason[reason_idx(reason)] += 1;
        self.aborted_wall += wall;
        if cascaded > 0 {
            self.cascade_events += 1;
            self.cascade_victims += cascaded as u64;
            self.max_chain = self.max_chain.max(cascaded as u64 + 1);
        }
    }

    /// Records one committed attempt.
    pub fn record_commit(&mut self, wall: Duration) {
        self.commits += 1;
        self.committed_wall += wall;
        self.latency_us_log2[Self::latency_bucket(wall)] += 1;
    }

    /// Records one committed read-only snapshot attempt (own bucket).
    pub fn record_snapshot_commit(&mut self, wall: Duration) {
        self.snapshot_commits += 1;
        self.snapshot_latency_us_log2[Self::latency_bucket(wall)] += 1;
    }

    #[inline]
    fn latency_bucket(wall: Duration) -> usize {
        let us = wall.as_micros().max(1) as u64;
        (63 - us.leading_zeros() as usize).min(31)
    }

    /// Accumulates another worker's counters into this one.
    pub fn merge(&mut self, other: &WorkerStats) {
        self.commits += other.commits;
        self.aborts += other.aborts;
        for i in 0..REASONS {
            self.aborts_by_reason[i] += other.aborts_by_reason[i];
        }
        self.committed_wall += other.committed_wall;
        self.aborted_wall += other.aborted_wall;
        self.lock_wait += other.lock_wait;
        self.commit_wait += other.commit_wait;
        self.cascade_events += other.cascade_events;
        self.cascade_victims += other.cascade_victims;
        self.max_chain = self.max_chain.max(other.max_chain);
        self.log_bytes += other.log_bytes;
        self.lock_acquisitions += other.lock_acquisitions;
        self.snapshot_commits += other.snapshot_commits;
        self.snapshot_aborts += other.snapshot_aborts;
        self.snapshot_lock_acquisitions += other.snapshot_lock_acquisitions;
        self.cross_partition_commits += other.cross_partition_commits;
        // Run-level snapshots, not per-worker counters: merging takes the
        // max so a value stamped on one side survives without double
        // counting when both sides were stamped from the same handles.
        self.wal_io_retries = self.wal_io_retries.max(other.wal_io_retries);
        self.wal_io_failures = self.wal_io_failures.max(other.wal_io_failures);
        self.degraded_partitions = self.degraded_partitions.max(other.degraded_partitions);
        self.group_commit_fsyncs = self.group_commit_fsyncs.max(other.group_commit_fsyncs);
        self.group_commit_acks = self.group_commit_acks.max(other.group_commit_acks);
        for i in 0..32 {
            self.latency_us_log2[i] += other.latency_us_log2[i];
            self.snapshot_latency_us_log2[i] += other.snapshot_latency_us_log2[i];
        }
    }
}

/// Aggregated result of one benchmark run.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Protocol name.
    pub protocol: String,
    /// Worker threads.
    pub threads: usize,
    /// Measured wall-clock duration.
    pub elapsed: Duration,
    /// Merged counters.
    pub totals: WorkerStats,
}

impl BenchResult {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        self.totals.commits as f64 / self.elapsed.as_secs_f64()
    }

    /// Fraction of attempts that aborted.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.totals.commits + self.totals.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.totals.aborts as f64 / attempts as f64
        }
    }

    /// Amortized *lock wait* per committed transaction, in milliseconds —
    /// the paper's runtime-analysis bar.
    pub fn lock_wait_ms_per_commit(&self) -> f64 {
        self.per_commit_ms(self.totals.lock_wait)
    }

    /// Amortized *commit wait* (semaphore) per committed transaction, ms.
    pub fn commit_wait_ms_per_commit(&self) -> f64 {
        self.per_commit_ms(self.totals.commit_wait)
    }

    /// Amortized *abort time* per committed transaction, ms.
    pub fn abort_ms_per_commit(&self) -> f64 {
        self.per_commit_ms(self.totals.aborted_wall)
    }

    /// Mean abort-chain length over cascade events.
    pub fn mean_chain(&self) -> f64 {
        if self.totals.cascade_events == 0 {
            0.0
        } else {
            self.totals.cascade_victims as f64 / self.totals.cascade_events as f64
        }
    }

    /// Approximate latency percentile in microseconds (upper bucket bound),
    /// e.g. `latency_percentile_us(0.99)` for p99.
    pub fn latency_percentile_us(&self, q: f64) -> u64 {
        Self::percentile_of(&self.totals.latency_us_log2, q)
    }

    /// Commits per second of the read-only snapshot bucket.
    pub fn snapshot_throughput(&self) -> f64 {
        self.totals.snapshot_commits as f64 / self.elapsed.as_secs_f64()
    }

    /// Commits per second across *both* buckets (locking + snapshot).
    /// Use this when comparing runs whose read-only transactions land in
    /// different buckets (e.g. fig7's locking vs snapshot series) — the
    /// per-bucket rates have mismatched denominators.
    pub fn total_throughput(&self) -> f64 {
        (self.totals.commits + self.totals.snapshot_commits) as f64 / self.elapsed.as_secs_f64()
    }

    /// Approximate latency percentile of the snapshot-commit bucket.
    pub fn snapshot_latency_percentile_us(&self, q: f64) -> u64 {
        Self::percentile_of(&self.totals.snapshot_latency_us_log2, q)
    }

    /// Fraction of commits whose access set spanned more than one
    /// partition (0.0 on a monolithic database).
    pub fn cross_partition_share(&self) -> f64 {
        if self.totals.commits == 0 {
            0.0
        } else {
            self.totals.cross_partition_commits as f64 / self.totals.commits as f64
        }
    }

    fn percentile_of(hist: &[u64; 32], q: f64) -> u64 {
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = (total as f64 * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in hist.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        u64::MAX
    }

    fn per_commit_ms(&self, d: Duration) -> f64 {
        if self.totals.commits == 0 {
            0.0
        } else {
            d.as_secs_f64() * 1e3 / self.totals.commits as f64
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{:>12} thr={:<3} tput={:>10.0} txn/s abort_rate={:>5.1}% lock_wait={:.4}ms abort={:.4}ms commit_wait={:.4}ms chain(max={} mean={:.1}) lat(p50={}us p99={}us p999={}us)",
            self.protocol,
            self.threads,
            self.throughput(),
            self.abort_rate() * 100.0,
            self.lock_wait_ms_per_commit(),
            self.abort_ms_per_commit(),
            self.commit_wait_ms_per_commit(),
            self.totals.max_chain,
            self.mean_chain(),
            self.latency_percentile_us(0.50),
            self.latency_percentile_us(0.99),
            self.latency_percentile_us(0.999),
        );
        // Fault observability: printed only when something actually
        // happened, so fault-free runs keep the historical line format.
        if self.totals.wal_io_retries > 0
            || self.totals.wal_io_failures > 0
            || self.totals.degraded_partitions > 0
        {
            s.push_str(&format!(
                " wal_io(retries={} failures={} degraded={})",
                self.totals.wal_io_retries,
                self.totals.wal_io_failures,
                self.totals.degraded_partitions,
            ));
        }
        if self.totals.group_commit_fsyncs > 0 {
            s.push_str(&format!(
                " group_commit(fsyncs={} acks={})",
                self.totals.group_commit_fsyncs, self.totals.group_commit_acks,
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = WorkerStats::default();
        a.record_commit(Duration::from_millis(10));
        a.record_abort(AbortReason::Wounded, Duration::from_millis(5), 0);
        let mut b = WorkerStats::default();
        b.record_commit(Duration::from_millis(20));
        b.record_abort(AbortReason::Cascade, Duration::from_millis(5), 3);
        a.merge(&b);
        assert_eq!(a.commits, 2);
        assert_eq!(a.aborts, 2);
        assert_eq!(a.aborts_by_reason[0], 1);
        assert_eq!(a.aborts_by_reason[1], 1);
        assert_eq!(a.cascade_victims, 3);
        assert_eq!(a.max_chain, 4);
    }

    #[test]
    fn derived_metrics() {
        let mut t = WorkerStats::default();
        t.record_commit(Duration::from_millis(10));
        t.record_abort(AbortReason::NoWait, Duration::from_millis(30), 0);
        t.lock_wait = Duration::from_millis(4);
        let r = BenchResult {
            protocol: "TEST".into(),
            threads: 1,
            elapsed: Duration::from_secs(1),
            totals: t,
        };
        assert_eq!(r.throughput(), 1.0);
        assert_eq!(r.abort_rate(), 0.5);
        assert!((r.lock_wait_ms_per_commit() - 4.0).abs() < 1e-9);
        assert!((r.abort_ms_per_commit() - 30.0).abs() < 1e-9);
        assert_eq!(r.mean_chain(), 0.0);
        assert!(!r.summary().is_empty());
    }

    #[test]
    fn reason_names_cover_all_indices() {
        for i in 0..REASONS {
            assert!(!reason_name(i).is_empty());
        }
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    #[test]
    fn latency_histogram_buckets_by_log2_micros() {
        let mut s = WorkerStats::default();
        s.record_commit(Duration::from_micros(3)); // bucket 1 ([2,4))
        s.record_commit(Duration::from_micros(1000)); // bucket 9 ([512,1024))
        assert_eq!(s.latency_us_log2[1], 1);
        assert_eq!(s.latency_us_log2[9], 1);
    }

    #[test]
    fn percentile_walks_cumulative_counts() {
        let mut t = WorkerStats::default();
        for _ in 0..99 {
            t.record_commit(Duration::from_micros(3));
        }
        t.record_commit(Duration::from_millis(100));
        let r = BenchResult {
            protocol: "T".into(),
            threads: 1,
            elapsed: Duration::from_secs(1),
            totals: t,
        };
        assert!(r.latency_percentile_us(0.5) <= 4);
        assert!(r.latency_percentile_us(0.999) >= 100_000 / 2);
    }

    #[test]
    fn empty_percentile_is_zero() {
        let r = BenchResult {
            protocol: "T".into(),
            threads: 1,
            elapsed: Duration::from_secs(1),
            totals: WorkerStats::default(),
        };
        assert_eq!(r.latency_percentile_us(0.99), 0);
    }
}
