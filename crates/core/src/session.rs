//! The transaction-facing session layer: [`Session`] + the RAII [`Txn`]
//! guard.
//!
//! The [`Protocol`] trait is the paper's
//! pluggable concurrency-control seam, but driving it raw forces every
//! call site to thread three handles (`&Database`, `&dyn Protocol`,
//! `&mut TxnCtx`) through each operation *and* to uphold the lifecycle
//! contract — "on `Err(Abort)` call `Protocol::abort` exactly once" —
//! purely by convention. This module owns that contract instead:
//!
//! * [`Session`] binds an [`Arc<Database>`] + [`Arc<dyn Protocol>`] pair
//!   (plus a [`RetryPolicy`] and a per-session WAL ring) and is the only
//!   thing that starts transactions.
//! * [`Txn`] is an RAII attempt guard: `read`/`update`/`insert`/`scan`
//!   without handle-threading, `commit`/`abort` consume the guard, and
//!   `Drop` aborts an unfinished attempt **exactly once** — leaking a lock
//!   by forgetting the abort call is unrepresentable.
//! * [`TxnOptions`] replaces the scattered attempt setup
//!   (`ctx.planned_ops = …; ctx.ic3.template = …; begin` vs
//!   `begin_snapshot`) with one builder.
//! * [`Session::run`] / [`Session::run_reporting`] subsume the executor's
//!   attempt/retry loop, with the backoff constants carried by the
//!   session's [`RetryPolicy`] instead of hard-coded in the executor.
//!
//! ```
//! use std::sync::Arc;
//! use bamboo_core::protocol::LockingProtocol;
//! use bamboo_core::Session;
//! use bamboo_storage::{Schema, DataType, Value, Row};
//!
//! let mut b = bamboo_core::Database::builder();
//! let t = b.add_table("kv", Schema::build()
//!     .column("k", DataType::U64)
//!     .column("v", DataType::I64));
//! let db = b.build();
//! db.table(t).insert(1, Row::from(vec![Value::U64(1), Value::I64(2)]));
//!
//! let session = Session::new(db, Arc::new(LockingProtocol::bamboo()));
//! let mut txn = session.begin();
//! txn.update(t, 1, |row| {
//!     let v = row.get_i64(1);
//!     row.set(1, Value::I64(v + 40));
//! }).unwrap();
//! txn.commit().unwrap();
//! assert_eq!(session.db().table(t).get(1).unwrap().read_row().get_i64(1), 42);
//! ```

use crate::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::db::Database;
use crate::executor::TxnSpec;
use crate::protocol::Protocol;
use crate::stats::WorkerStats;
use crate::txn::{Abort, AbortReason, TxnCtx, TxnShared, TxnTimers};
use crate::wal::{DurabilityTicket, WalBuffer, WalHandle};
use bamboo_storage::{Row, TableId};

/// Retry rules for [`Session::run`]: when an aborted attempt is retried
/// and how long to back off between attempts.
///
/// The defaults reproduce DBx1000's restart penalty (previously hard-coded
/// in the executor): the first failure yields the CPU, later failures
/// sleep `base << min(attempt, max_shift)` microseconds — exponential
/// backoff that lets conflicting transactions drain instead of re-colliding
/// immediately, which is vital for cascade storms.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Failures up to this count only yield the CPU (no sleep).
    pub yield_attempts: u32,
    /// Backoff base in microseconds (DBx1000's restart penalty: 5).
    pub backoff_base_us: u64,
    /// The exponential shift saturates at this many doublings.
    pub backoff_max_shift: u32,
    /// Whether user-initiated aborts are retried. `false` by default:
    /// a user abort (e.g. TPC-C's invalid-item NewOrder) is a logical
    /// rollback — the transaction is *done*, and re-running it would abort
    /// identically forever.
    pub retry_user_aborts: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            yield_attempts: 1,
            backoff_base_us: 5,
            backoff_max_shift: 6,
            retry_user_aborts: false,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based count of failures so
    /// far): `None` means yield the CPU, `Some(d)` means sleep `d`.
    pub fn backoff(&self, attempt: u32) -> Option<Duration> {
        if attempt <= self.yield_attempts {
            None
        } else {
            // Saturate rather than shift-overflow: a misconfigured
            // `backoff_max_shift` must degrade to "very long backoff",
            // never to a debug-build panic or a silently truncated sleep.
            let shift = attempt.min(self.backoff_max_shift).min(63);
            let us = self.backoff_base_us.saturating_mul(1u64 << shift);
            Some(Duration::from_micros(us))
        }
    }

    /// Whether an abort for `reason` should be retried at all.
    ///
    /// [`AbortReason::SnapshotNotVisible`] is never retried: it means the
    /// spec issued a hard [`Txn::read`] on a key that is absent at the
    /// snapshot — retrying with a fresh snapshot would loop forever when
    /// the key simply does not exist. Specs walking volatile key spaces
    /// use [`Txn::read_opt`], which absorbs the reason as `Ok(None)`.
    ///
    /// [`AbortReason::DurabilityFailed`] is never retried either: the WAL
    /// already exhausted its own transient-retry budget before surfacing
    /// it, so the partition is degraded and a blind re-run would fail fast
    /// in a hot loop. The caller must observe the failure (and possibly
    /// [`crate::partition::PartitionedDb::heal`] the partition) instead.
    pub fn retryable(&self, reason: AbortReason) -> bool {
        match reason {
            AbortReason::User => self.retry_user_aborts,
            AbortReason::SnapshotNotVisible => false,
            AbortReason::DurabilityFailed => false,
            _ => true,
        }
    }
}

/// Per-attempt options: the builder replacing the scattered
/// `ctx.planned_ops = …; ctx.ic3.template = …; begin` vs `begin_snapshot`
/// setup. Construct with [`TxnOptions::new`], consume with
/// [`Session::begin_with`].
#[derive(Clone, Debug, Default)]
pub struct TxnOptions {
    snapshot: bool,
    snapshot_max_lag: Option<u64>,
    opaque: bool,
    planned_ops: Option<usize>,
    template: usize,
}

impl TxnOptions {
    /// Default options: a plain read-write attempt.
    pub fn new() -> Self {
        TxnOptions::default()
    }

    /// Read-only MVCC snapshot mode
    /// ([`Protocol::begin_snapshot`]):
    /// reads resolve against the committed version chains with zero
    /// lock-manager interaction; writes are forbidden.
    pub fn snapshot(mut self) -> Self {
        self.snapshot = true;
        self
    }

    /// Caps how far a snapshot transaction may fall behind the commit
    /// clock: once the stable point runs more than `lag` commit
    /// timestamps ahead of the snapshot, the next read aborts with
    /// [`AbortReason::SnapshotTooOld`] so the reader stops pinning
    /// version chains (writers are never blocked either way — the cap
    /// just bounds how much superseded history they must retain). Off by
    /// default; implies [`TxnOptions::snapshot`]. Retrying the
    /// transaction takes a fresh snapshot.
    pub fn snapshot_max_lag(mut self, lag: u64) -> Self {
        self.snapshot = true;
        self.snapshot_max_lag = Some(lag);
        self
    }

    /// Opacity (§3.4): accesses wait out dirty state and never read
    /// uncommitted versions — the transaction effectively runs under plain
    /// Wound-Wait. Only meaningful for the 2PL family; other protocols
    /// ignore the flag.
    pub fn opaque(mut self) -> Self {
        self.opaque = true;
        self
    }

    /// Declares the total operation count (stored-procedure mode), driving
    /// Optimization 2's δ heuristic. Unset means interactive mode: every
    /// write is treated as potentially the last and retires immediately.
    pub fn planned_ops(mut self, n: usize) -> Self {
        self.planned_ops = Some(n);
        self
    }

    /// Selects the IC3 template this attempt executes. Ignored by the
    /// non-chopping protocols.
    pub fn template(mut self, i: usize) -> Self {
        self.template = i;
        self
    }

    /// Options matching a [`TxnSpec`]'s declarations (snapshot mode,
    /// planned operations, IC3 template).
    pub fn for_spec(spec: &dyn TxnSpec) -> Self {
        TxnOptions {
            snapshot: spec.read_only_snapshot(),
            snapshot_max_lag: None,
            opaque: false,
            planned_ops: spec.planned_ops(),
            template: spec.template(),
        }
    }
}

/// A transaction session: one database + one protocol + the retry rules,
/// plus a per-session WAL ring (the paper's in-memory redo log; §5.1 logs
/// "to main memory").
///
/// Sessions are cheap to construct (two `Arc` clones + the WAL allocation)
/// and `Sync`; the benchmark executor gives each worker thread its own so
/// the WAL ring stays thread-local in practice, while tests freely share
/// one session across scoped threads.
pub struct Session {
    db: Arc<Database>,
    proto: Arc<dyn Protocol>,
    retry: RetryPolicy,
    wal: Arc<WalHandle>,
}

impl Session {
    /// Binds a database and a protocol with the default [`RetryPolicy`]
    /// and a default-sized WAL ring.
    pub fn new(db: Arc<Database>, proto: Arc<dyn Protocol>) -> Self {
        Session {
            db,
            proto,
            retry: RetryPolicy::default(),
            wal: Arc::new(WalHandle::new()),
        }
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Shrinks (or grows) the WAL ring — tests use small rings.
    pub fn with_wal_capacity(mut self, bytes: usize) -> Self {
        self.wal = Arc::new(WalHandle::from_buffer(WalBuffer::with_capacity(bytes)));
        self
    }

    /// Binds the session to an existing (possibly shared) WAL handle —
    /// partition-aware sessions point every worker of one partition at
    /// that partition's WAL segment.
    pub fn with_wal_handle(mut self, wal: Arc<WalHandle>) -> Self {
        self.wal = wal;
        self
    }

    /// The bound database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The bound protocol.
    pub fn protocol(&self) -> &Arc<dyn Protocol> {
        &self.proto
    }

    /// The session's retry policy.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Total redo-log bytes appended by this session's commits.
    pub fn log_bytes(&self) -> u64 {
        self.wal.bytes_logged()
    }

    /// Number of commit records this session has logged.
    pub fn log_records(&self) -> u64 {
        self.wal.records()
    }

    /// Starts a plain read-write transaction.
    pub fn begin(&self) -> Txn<'_> {
        self.begin_with(TxnOptions::new())
    }

    /// Starts a read-only MVCC snapshot transaction (shorthand for
    /// [`TxnOptions::snapshot`]).
    pub fn snapshot(&self) -> Txn<'_> {
        self.begin_with(TxnOptions::new().snapshot())
    }

    /// Starts a transaction with explicit [`TxnOptions`].
    pub fn begin_with(&self, opts: TxnOptions) -> Txn<'_> {
        let mut ctx = if opts.snapshot {
            self.proto.begin_snapshot(&self.db)
        } else {
            self.proto.begin(&self.db)
        };
        if let Some(snap) = ctx.snapshot.as_mut() {
            snap.max_lag = opts.snapshot_max_lag;
        }
        ctx.opaque = opts.opaque;
        ctx.planned_ops = opts.planned_ops;
        ctx.ic3.template = opts.template;
        Txn {
            session: self,
            ctx,
            finished: false,
            defer_ack: false,
        }
    }

    /// Waits out a group-commit [`DurabilityTicket`]: parks until every
    /// partition the commit logged to has fsynced past its group
    /// ([`WalHandle::wait_covered`]), then until the global durability
    /// horizon reaches the commit's timestamp — the point at which *every*
    /// commit the acknowledged state could depend on is durable, which is
    /// what makes the acknowledgment crash-safe under early lock release.
    ///
    /// Every ticket returned by [`Txn::commit_deferred`] **must** be passed
    /// here exactly once: an unacked ticket leaves its horizon registration
    /// pending forever, wedging every later commit's acknowledgment behind
    /// it. ([`Session::run`] and [`Session::run_many`] uphold this
    /// internally.)
    ///
    /// Returns `Err(Abort(DurabilityFailed))` when a batch fsync failed
    /// after this commit installed: the partition is degraded, the commit
    /// stands in memory but was never acknowledged, and crash recovery may
    /// drop it (the post-heal sealing checkpoint closes the gap — see
    /// `DURABILITY.md` "Group commit").
    pub fn ack_ticket(&self, ticket: DurabilityTicket) -> Result<(), Abort> {
        let horizon = self.db.durability_horizon();
        let mut covered = true;
        for &(p, lsn) in &ticket.parts {
            let handle: &WalHandle = match self.db.topology() {
                Some(t) => &t.wals[p as usize],
                None => &self.wal,
            };
            if handle.wait_covered(lsn).is_err() {
                covered = false;
                break;
            }
        }
        let stable = self.db.commit_clock.stable();
        if !covered {
            // Withdraw the registration so sibling acknowledgments are not
            // wedged behind a hole that will never fill.
            horizon.resolve(ticket.commit_ts, false, stable);
            return Err(Abort(AbortReason::DurabilityFailed));
        }
        horizon.resolve(ticket.commit_ts, true, stable);
        horizon.wait_acked(ticket.commit_ts, || self.db.commit_clock.stable());
        Ok(())
    }

    /// Runs a batch of specs with every group-commit acknowledgment
    /// deferred to the end of the batch: each transaction executes,
    /// commits and releases its locks immediately — its writes overlap the
    /// *next* spec's execution instead of an fsync wait — and the
    /// durability waits run once at the end, in commit-timestamp order, so
    /// the whole batch shares a handful of leader fsyncs instead of
    /// parking once per transaction. Under every other fsync policy this
    /// is equivalent to calling [`Session::run`] in a loop.
    ///
    /// Returns one result per spec, in order. An entry is
    /// `Err(Abort(DurabilityFailed))` when its batch fsync failed after
    /// install: the commit stands in memory but was never acknowledged
    /// (see [`Session::ack_ticket`]).
    pub fn run_many(&self, specs: &[&dyn TxnSpec]) -> Vec<Result<(), Abort>> {
        let mut results: Vec<Result<(), Abort>> = Vec::with_capacity(specs.len());
        let mut tickets: Vec<(usize, DurabilityTicket)> = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            // The retry loop of `run_inner`, without instrumentation: a
            // deferred attempt that aborts retries like any other.
            let mut attempt = 0u32;
            let res = loop {
                match self.attempt_deferred(*spec) {
                    Ok(ticket) => {
                        if let Some(t) = ticket {
                            tickets.push((i, t));
                        }
                        break Ok(());
                    }
                    Err(e) if self.retry.retryable(e.0) => {
                        attempt += 1;
                        match self.retry.backoff(attempt) {
                            None => std::thread::yield_now(),
                            Some(d) => std::thread::sleep(d),
                        }
                    }
                    Err(e) => break Err(e),
                }
            };
            results.push(res);
        }
        // Acknowledge in commit-timestamp order: the horizon advances in
        // that order, so earlier commits never park behind later ones.
        tickets.sort_by_key(|(_, t)| t.commit_ts);
        for (i, ticket) in tickets {
            if let Err(e) = self.ack_ticket(ticket) {
                results[i] = Err(e);
            }
        }
        results
    }

    /// One attempt with the acknowledgment deferred: on commit success
    /// returns the durability ticket (if any) instead of waiting it out.
    fn attempt_deferred(&self, spec: &dyn TxnSpec) -> Result<Option<DurabilityTicket>, Abort> {
        let mut txn = self.begin_with(TxnOptions::for_spec(spec));
        txn.defer_ack = true;
        let res = (|| -> Result<(), Abort> {
            for p in 0..spec.pieces() {
                txn.piece_begin(p)?;
                spec.run_piece(p, &mut txn)?;
                txn.piece_end()?;
            }
            txn.commit_in_place()
        })();
        match res {
            Ok(()) => Ok(txn.ctx.durability.take()),
            Err(e) => {
                txn.abort_in_place();
                Err(e)
            }
        }
    }

    /// Runs `spec` to commit, retrying aborted attempts per the session's
    /// [`RetryPolicy`]. Returns the terminal [`Abort`] only when the
    /// policy declines to retry it (by default: user-initiated aborts,
    /// which are logical rollbacks, not failures).
    pub fn run(&self, spec: &dyn TxnSpec) -> Result<(), Abort> {
        match self.run_inner(spec, None, None, None) {
            RunOutcome::Committed => Ok(()),
            RunOutcome::Abandoned(e) => Err(e),
        }
    }

    /// [`Session::run`] with benchmark instrumentation: per-attempt
    /// timers/locks/latency land in `stats` (snapshot-mode attempts in
    /// their own bucket), and retrying stops once `stop` rises or
    /// `deadline` passes. Returns whether the transaction committed.
    pub fn run_reporting(
        &self,
        spec: &dyn TxnSpec,
        stats: &mut WorkerStats,
        stop: &AtomicBool,
        deadline: Instant,
    ) -> bool {
        matches!(
            self.run_inner(spec, Some(stats), Some(stop), Some(deadline)),
            RunOutcome::Committed
        )
    }

    /// The attempt/retry loop shared by [`Session::run`] and
    /// [`Session::run_reporting`].
    fn run_inner(
        &self,
        spec: &dyn TxnSpec,
        mut stats: Option<&mut WorkerStats>,
        stop: Option<&AtomicBool>,
        deadline: Option<Instant>,
    ) -> RunOutcome {
        let snapshot = spec.read_only_snapshot();
        let mut attempt = 0u32;
        loop {
            let t0 = Instant::now();
            let (res, cascaded, timers, locks, spanned) = self.attempt(spec);
            if let Some(stats) = stats.as_deref_mut() {
                stats.lock_wait += timers.lock_wait;
                stats.commit_wait += timers.commit_wait;
                if snapshot {
                    stats.snapshot_lock_acquisitions += locks;
                } else {
                    stats.lock_acquisitions += locks;
                }
                match res {
                    Ok(()) => {
                        if spanned > 1 {
                            stats.cross_partition_commits += 1;
                        }
                        if snapshot {
                            stats.record_snapshot_commit(t0.elapsed());
                        } else {
                            stats.record_commit(t0.elapsed());
                        }
                    }
                    Err(e) => {
                        stats.record_abort(e.0, t0.elapsed(), cascaded);
                        if snapshot {
                            stats.snapshot_aborts += 1;
                        }
                    }
                }
            }
            let e = match res {
                Ok(()) => return RunOutcome::Committed,
                Err(e) => e,
            };
            if !self.retry.retryable(e.0) {
                return RunOutcome::Abandoned(e);
            }
            if stop.is_some_and(|s| s.load(Ordering::Relaxed))
                || deadline.is_some_and(|d| Instant::now() >= d)
            {
                return RunOutcome::Abandoned(e);
            }
            attempt += 1;
            match self.retry.backoff(attempt) {
                None => std::thread::yield_now(),
                Some(d) => std::thread::sleep(d),
            }
        }
    }

    /// One attempt: begin per the spec's options, run the pieces in order,
    /// commit — aborting the attempt on any failure. Returns the result,
    /// the abort-cascade count, the attempt's timers/lock counters, and
    /// the number of partitions the access set spanned (always 1 on a
    /// monolithic database).
    fn attempt(&self, spec: &dyn TxnSpec) -> (Result<(), Abort>, usize, TxnTimers, u64, u32) {
        let mut txn = self.begin_with(TxnOptions::for_spec(spec));
        let mut spanned = 1;
        let res = (|| -> Result<(), Abort> {
            for p in 0..spec.pieces() {
                txn.piece_begin(p)?;
                spec.run_piece(p, &mut txn)?;
                txn.piece_end()?;
            }
            // Before the commit: apply_inserts drains the buffered inserts,
            // which count toward the partition span.
            spanned = txn.partitions_spanned();
            txn.commit_in_place()
        })();
        let timers = txn.ctx.timers;
        let locks = txn.ctx.locks_acquired;
        let cascaded = if res.is_err() {
            txn.abort_in_place()
        } else {
            0
        };
        (res, cascaded, timers, locks, spanned)
    }
}

/// What [`Session::run_inner`] resolved to.
enum RunOutcome {
    Committed,
    Abandoned(Abort),
}

/// One transaction attempt, RAII-style.
///
/// Operations mirror the protocol surface without handle-threading.
/// [`Txn::commit`] and [`Txn::abort`] consume the guard; a `Txn` dropped
/// without either — an early `?` return, a panic mid-piece, a forgotten
/// call — aborts the attempt in `Drop`, releasing all its lock entries
/// **exactly once**. The abort obligation of the protocol contract is
/// thereby unviolable by construction.
pub struct Txn<'s> {
    session: &'s Session,
    ctx: TxnCtx,
    finished: bool,
    /// Group-commit acknowledgments are *not* waited in `commit_in_place`;
    /// the ticket stays in the context for the caller to batch
    /// ([`Session::run_many`], [`Txn::commit_deferred`]).
    defer_ack: bool,
}

impl<'s> Txn<'s> {
    /// Reads a row (shared access); returns the transaction-local copy.
    ///
    /// In snapshot mode a missing or not-yet-visible row surfaces as
    /// [`AbortReason::SnapshotNotVisible`]; use [`Txn::read_opt`] when the
    /// key's existence is not guaranteed.
    pub fn read(&mut self, table: TableId, key: u64) -> Result<&Row, Abort> {
        self.session
            .proto
            .read(&self.session.db, &mut self.ctx, table, key)
    }

    /// Reads a row that may not exist: `Ok(None)` when the key is absent —
    /// including, in snapshot mode, a row that exists but is invisible at
    /// the snapshot timestamp (a phantom to this transaction). A key this
    /// transaction has *itself* inserted (still buffered until commit)
    /// reads back as present. The TPC-C read-only transactions walk
    /// volatile order keys through this.
    pub fn read_opt(&mut self, table: TableId, key: u64) -> Result<Option<&Row>, Abort> {
        // Read-your-own-buffered-insert: a key this transaction inserted
        // exists from its own point of view even though the insert is only
        // applied at commit (latest buffered image wins).
        if let Some(i) = self
            .ctx
            .inserts
            .iter()
            .rposition(|ins| ins.table == table && ins.key == key)
        {
            return Ok(Some(&self.ctx.inserts[i].row));
        }
        if self.session.db.table_for(table, key).get(key).is_none() {
            return Ok(None);
        }
        let in_snapshot = self.ctx.snapshot.is_some();
        match self
            .session
            .proto
            .read(&self.session.db, &mut self.ctx, table, key)
        {
            Ok(_) => {}
            Err(Abort(AbortReason::SnapshotNotVisible)) if in_snapshot => return Ok(None),
            Err(e) => return Err(e),
        }
        // Re-borrow through the access cache: the match above cannot
        // return the row directly without extending the mutable borrow
        // over the error arms (NLL limitation).
        let i = self
            .ctx
            .find_access(table, key)
            .expect("successful read recorded an access");
        Ok(Some(&self.ctx.accesses[i].local))
    }

    /// Read-modify-write (exclusive access): `f` mutates the local copy;
    /// visibility of the dirty result is protocol-specific (Bamboo retires
    /// the lock per Optimization 2's δ heuristic).
    pub fn update(
        &mut self,
        table: TableId,
        key: u64,
        mut f: impl FnMut(&mut Row),
    ) -> Result<(), Abort> {
        self.forbid_replicated_write(table, "update");
        self.session
            .proto
            .update(&self.session.db, &mut self.ctx, table, key, &mut f)
    }

    /// Buffers an insert; applied atomically at commit. `secondary` is an
    /// optional `(secondary index slot, secondary key)` to maintain.
    pub fn insert(
        &mut self,
        table: TableId,
        key: u64,
        row: Row,
        secondary: Option<(usize, u64)>,
    ) -> Result<(), Abort> {
        self.forbid_replicated_write(table, "insert");
        self.session
            .proto
            .insert(&self.session.db, &mut self.ctx, table, key, row, secondary)
    }

    /// A write to a replicated table would only touch the *local* replica
    /// and silently diverge the copies — replicated tables are read-only
    /// reference data by contract, enforced here at the one user-facing
    /// write chokepoint.
    #[inline]
    fn forbid_replicated_write(&self, _table: TableId, _op: &str) {
        debug_assert!(
            !self.session.db.is_table_replicated(_table),
            "cannot {_op} replicated table {}: writes only reach the local \
             replica and would diverge the copies (replicated tables are \
             read-only reference data)",
            _table.0
        );
    }

    /// Range scan over the table's ordered index (phantom-protected under
    /// the 2PL family's Serializable level; see
    /// [`Protocol::scan`]).
    pub fn scan(
        &mut self,
        table: TableId,
        range: std::ops::RangeInclusive<u64>,
    ) -> Result<Vec<Row>, Abort> {
        self.session
            .proto
            .scan(&self.session.db, &mut self.ctx, table, range)
    }

    /// IC3 hook: a new piece begins. No-op under other protocols.
    pub fn piece_begin(&mut self, piece: usize) -> Result<(), Abort> {
        self.session
            .proto
            .piece_begin(&self.session.db, &mut self.ctx, piece)
    }

    /// IC3 hook: the current piece ended (publish piece writes). No-op
    /// under other protocols.
    pub fn piece_end(&mut self) -> Result<(), Abort> {
        self.session
            .proto
            .piece_end(&self.session.db, &mut self.ctx)
    }

    /// Commits the transaction, consuming the guard. On failure the
    /// attempt is aborted internally (exactly once) before the error is
    /// returned — no cleanup is owed by the caller either way.
    ///
    /// Under `FsyncPolicy::GroupCommit` this blocks until the commit is
    /// covered by a leader fsync *and* the global durability horizon
    /// reaches its timestamp — `Ok` means durable, under every policy that
    /// promises durable acknowledgments.
    pub fn commit(mut self) -> Result<(), Abort> {
        let res = self.commit_in_place();
        if res.is_err() {
            self.abort_in_place();
        }
        res
    }

    /// Commits the transaction but defers the group-commit acknowledgment:
    /// on success returns the [`DurabilityTicket`] the caller must later
    /// pass to [`Session::ack_ticket`] (exactly once — see there), letting
    /// a batch of transactions share the durability wait. `Ok(None)` means
    /// the commit needed no deferred acknowledgment (any non-group-commit
    /// policy). On failure the attempt is aborted internally, like
    /// [`Txn::commit`].
    pub fn commit_deferred(mut self) -> Result<Option<DurabilityTicket>, Abort> {
        self.defer_ack = true;
        match self.commit_in_place() {
            Ok(()) => Ok(self.ctx.durability.take()),
            Err(e) => {
                self.abort_in_place();
                Err(e)
            }
        }
    }

    /// Aborts the transaction, consuming the guard. Returns the number of
    /// transactions cascadingly aborted by the release (the abort-chain
    /// accounting of §4.2).
    pub fn abort(mut self) -> usize {
        self.abort_in_place()
    }

    /// The shared transaction handle (status word, timestamp, commit
    /// semaphore) — what concurrent transactions see of this attempt.
    pub fn shared(&self) -> &Arc<TxnShared> {
        &self.ctx.shared
    }

    /// The snapshot timestamp, when running in snapshot mode.
    pub fn snapshot_ts(&self) -> Option<u64> {
        self.ctx.snapshot.map(|s| s.ts())
    }

    /// Lock-manager acquisitions by this attempt (0 in snapshot mode —
    /// asserted by the stats layer).
    pub fn locks_acquired(&self) -> u64 {
        self.ctx.locks_acquired
    }

    /// Number of distinct partitions this attempt's access set (reads,
    /// writes, buffered inserts) touches — always 1 on a monolithic
    /// database, and 1 for the partition-local fast path of a
    /// partitioned one.
    pub fn partitions_spanned(&self) -> u32 {
        self.session.db.partitions_spanned(
            self.ctx
                .accesses
                .iter()
                .map(|a| (a.table, a.tuple.key))
                .chain(self.ctx.inserts.iter().map(|i| (i.table, i.key))),
        )
    }

    /// Read-only view of the execution context (assertions, diagnostics).
    pub fn ctx(&self) -> &TxnCtx {
        &self.ctx
    }

    /// The bound database.
    pub fn db(&self) -> &Database {
        &self.session.db
    }

    /// Low-level escape hatch for instrumentation layers that drive
    /// protocol internals directly (the §3.3 retire-point interpreter in
    /// `bamboo-analysis` calls `LockingProtocol::update_manual` /
    /// `retire_now`, which need the raw context). The `Txn` remains the
    /// lifecycle owner: do **not** commit or abort through the returned
    /// context — use [`Txn::commit`] / [`Txn::abort`].
    pub fn raw_parts(&mut self) -> (&Database, &mut TxnCtx) {
        (&self.session.db, &mut self.ctx)
    }

    /// Commit without consuming `self` (shared by the public consuming
    /// `commit` and the session's attempt loop, which still needs the
    /// context's timers afterwards). Marks the attempt finished on
    /// success.
    fn commit_in_place(&mut self) -> Result<(), Abort> {
        debug_assert!(!self.finished, "commit on a finished attempt");
        self.session
            .proto
            .commit(&self.session.db, &mut self.ctx, &self.session.wal)?;
        self.finished = true;
        // Group commit: the commit point passed, versions are installed
        // and every lock is released (early lock release) — but the client
        // must not hear `Ok` until the durability horizon covers this
        // commit. A failed acknowledgment surfaces as an `Err` on an
        // attempt already marked finished, so the abort paths (consuming
        // `commit`, the session retry loop, `Drop`) are all no-ops: the
        // installed state stands, only the acknowledgment is withheld.
        if !self.defer_ack {
            if let Some(ticket) = self.ctx.durability.take() {
                self.session.ack_ticket(ticket)?;
            }
        }
        Ok(())
    }

    /// Abort without consuming `self`; idempotence guard included so the
    /// `Drop` path can never double-release.
    fn abort_in_place(&mut self) -> usize {
        if self.finished {
            return 0;
        }
        self.finished = true;
        self.session.proto.abort(&self.session.db, &mut self.ctx)
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        // An attempt neither committed nor aborted is aborted here —
        // early returns, `?` propagation and panics all release their
        // locks exactly once.
        self.abort_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LockingProtocol;
    use bamboo_storage::{DataType, Schema, Value};

    fn setup() -> (Arc<Database>, TableId) {
        let mut b = Database::builder();
        let t = b.add_table(
            "kv",
            Schema::build()
                .column("k", DataType::U64)
                .column("v", DataType::I64),
        );
        let db = b.build();
        for k in 0..8u64 {
            db.table(t)
                .insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
        }
        (db, t)
    }

    fn bamboo_session(db: &Arc<Database>) -> Session {
        Session::new(Arc::clone(db), Arc::new(LockingProtocol::bamboo()))
            .with_wal_capacity(64 << 10)
    }

    #[test]
    fn read_update_commit_round_trip() {
        let (db, t) = setup();
        let session = bamboo_session(&db);
        let mut txn = session.begin();
        assert_eq!(txn.read(t, 3).unwrap().get_i64(1), 0);
        txn.update(t, 3, |row| row.set(1, Value::I64(7))).unwrap();
        assert_eq!(txn.read(t, 3).unwrap().get_i64(1), 7);
        txn.commit().unwrap();
        assert_eq!(db.table(t).get(3).unwrap().read_row().get_i64(1), 7);
        assert_eq!(session.log_records(), 1);
        assert!(session.log_bytes() > 0);
    }

    #[test]
    fn drop_without_commit_aborts_exactly_once() {
        let (db, t) = setup();
        let session = bamboo_session(&db);
        {
            let mut txn = session.begin();
            txn.update(t, 0, |row| row.set(1, Value::I64(99))).unwrap();
            // Dropped here: the exclusive lock must be released.
        }
        let tuple = db.table(t).get(0).unwrap();
        assert!(tuple.meta.lock.lock().is_quiescent());
        assert_eq!(tuple.read_row().get_i64(1), 0, "aborted write discarded");
        // A follow-up transaction on the same key commits unobstructed.
        let mut txn = session.begin();
        txn.update(t, 0, |row| row.set(1, Value::I64(1))).unwrap();
        txn.commit().unwrap();
        assert_eq!(tuple.read_row().get_i64(1), 1);
    }

    #[test]
    fn explicit_abort_then_drop_does_not_double_release() {
        let (db, t) = setup();
        let session = bamboo_session(&db);
        let mut txn = session.begin();
        txn.update(t, 1, |row| row.set(1, Value::I64(5))).unwrap();
        assert_eq!(txn.abort(), 0); // consumes the guard; Drop is a no-op
        assert!(db.table(t).get(1).unwrap().meta.lock.lock().is_quiescent());
    }

    #[test]
    fn snapshot_txn_reads_lock_free() {
        let (db, t) = setup();
        let session = bamboo_session(&db);
        let mut snap = session.snapshot();
        assert!(snap.snapshot_ts().is_some());
        assert_eq!(snap.read(t, 2).unwrap().get_i64(1), 0);
        assert_eq!(snap.locks_acquired(), 0);
        snap.commit().unwrap();
        assert_eq!(db.snapshots.active_count(), 0);
    }

    #[test]
    fn read_opt_distinguishes_absent_from_present() {
        let (db, t) = setup();
        let session = bamboo_session(&db);
        let mut txn = session.begin();
        assert!(txn.read_opt(t, 999).unwrap().is_none());
        assert_eq!(txn.read_opt(t, 4).unwrap().unwrap().get_i64(1), 0);
        // Own buffered inserts read back as present before commit.
        txn.insert(t, 77, Row::from(vec![Value::U64(77), Value::I64(9)]), None)
            .unwrap();
        assert_eq!(txn.read_opt(t, 77).unwrap().unwrap().get_i64(1), 9);
        txn.commit().unwrap();
        // Snapshot mode: a row inserted after the snapshot is Ok(None).
        let snap = session.snapshot();
        let mut w = session.begin();
        w.insert(t, 50, Row::from(vec![Value::U64(50), Value::I64(1)]), None)
            .unwrap();
        w.commit().unwrap();
        let mut snap = snap;
        assert!(
            snap.read_opt(t, 50).unwrap().is_none(),
            "post-snapshot insert must be invisible"
        );
        assert_eq!(
            snap.read(t, 50).unwrap_err(),
            Abort(AbortReason::SnapshotNotVisible)
        );
        snap.commit().unwrap();
    }

    #[test]
    fn retry_policy_backoff_matches_executor_constants() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), None); // first failure: yield
        assert_eq!(p.backoff(2), Some(Duration::from_micros(5 << 2)));
        assert_eq!(p.backoff(6), Some(Duration::from_micros(5 << 6)));
        assert_eq!(p.backoff(60), Some(Duration::from_micros(5 << 6)));
        assert!(!p.retryable(AbortReason::User));
        assert!(p.retryable(AbortReason::Wounded));
        // A hard snapshot read of an absent key must surface, not respin:
        // retrying with a fresh snapshot loops forever when the key simply
        // never exists.
        assert!(!p.retryable(AbortReason::SnapshotNotVisible));
        // Misconfigured shifts saturate instead of overflowing.
        let wild = RetryPolicy {
            backoff_max_shift: 64,
            ..RetryPolicy::default()
        };
        assert_eq!(
            wild.backoff(64),
            Some(Duration::from_micros(5u64.saturating_mul(1 << 63)))
        );
    }

    #[test]
    fn txn_options_apply_to_context() {
        let (db, _t) = setup();
        let session = bamboo_session(&db);
        let txn = session.begin_with(TxnOptions::new().planned_ops(7).template(3).opaque());
        assert_eq!(txn.ctx().planned_ops, Some(7));
        assert_eq!(txn.ctx().ic3.template, 3);
        assert!(txn.ctx().opaque);
        drop(txn);
    }
}
