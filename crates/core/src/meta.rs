//! Per-tuple concurrency-control metadata.
//!
//! Every [`bamboo_storage::Tuple`] in a [`crate::Database`] carries one
//! [`TupleCc`]: the 2PL-family lock entry (with Bamboo's `retired` list and
//! dirty-version chain), Silo's TID word, and IC3's accessor list. Keeping
//! all three in one struct lets every protocol run against the same loaded
//! database, which is how DBx1000's "pluggable lock manager" comparison
//! works (paper §5.1).

use crate::sync::atomic::AtomicU64;

use parking_lot::Mutex;

use crate::lock::LockState;
use crate::protocol::ic3::Ic3TupleState;

/// Concurrency-control state attached to each tuple.
pub struct TupleCc {
    /// 2PL-family lock entry (owners / waiters / retired / dirty versions).
    pub lock: Mutex<LockState>,
    /// Silo TID word: bit 0 = lock bit, bits 1.. = version number.
    pub tid: AtomicU64,
    /// IC3 accessor list.
    pub ic3: Mutex<Ic3TupleState>,
}

impl Default for TupleCc {
    fn default() -> Self {
        TupleCc {
            lock: Mutex::new(LockState::default()),
            tid: AtomicU64::new(0),
            ic3: Mutex::new(Ic3TupleState::default()),
        }
    }
}
