//! Exhaustive interleaving tests for the lock-free commit pipeline,
//! driven by the vendored `interleave` model checker.
//!
//! Compiled only under `--cfg bamboo_model`, which swaps the
//! [`crate::sync`] façade to `interleave`'s model atomics (TSO store-buffer
//! semantics, one scheduling point per atomic operation) so every test
//! here explores **all** thread interleavings up to the configured
//! preemption bound instead of the few an OS scheduler happens to produce.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS='--cfg bamboo_model' cargo test -p bamboo_core --lib model_
//! ```
//!
//! The mutation-validation run additionally passes
//! `--cfg bamboo_model_no_fence`, which removes the `SeqCst` fence in
//! [`CommitClock::finish`]; the regular clock tests are compiled out and
//! [`model_mutation_missing_fence_strands_stable`] asserts the checker
//! *finds* the stranded-stable interleaving the fence prevents:
//!
//! ```text
//! RUSTFLAGS='--cfg bamboo_model --cfg bamboo_model_no_fence' \
//!     cargo test -p bamboo_core --lib model_
//! ```
//!
//! See CONCURRENCY.md at the workspace root for the invariant catalogue.
//!
//! [`model_mutation_missing_fence_strands_stable`]:
//!     self::model_mutation_missing_fence_strands_stable

use std::sync::Arc;

use interleave::{model, thread};
#[cfg(not(bamboo_model_no_fence))]
use interleave::{model_with, Config};

use crate::db::CommitClock;
#[cfg(not(bamboo_model_no_fence))]
use crate::db::Database;

/// Spawns `n` model threads that each allocate a commit timestamp,
/// assert the stable point has not covered their still-in-flight commit,
/// and finish; then asserts every finished commit ended up covered.
///
/// This is the invariant [`CommitClock`] exists to provide: `stable()`
/// never covers an unfinished timestamp (snapshots taken at `stable`
/// would otherwise miss in-flight installs), and no finished commit is
/// stranded below it forever.
fn clock_scenario(n: u64) {
    let clock = Arc::new(CommitClock::new());
    let handles: Vec<_> = (0..n)
        .map(|_| {
            let clock = Arc::clone(&clock);
            thread::spawn(move || {
                let ts = clock.allocate();
                // In flight: stable must be strictly below us until finish.
                let s = clock.stable();
                assert!(s < ts, "stable {s} covers unfinished commit {ts}");
                clock.finish(ts);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Every allocated timestamp finished, so the stable point must have
    // caught up — a shortfall here is exactly the stranded-stable schedule
    // the SeqCst fence in `finish` exists to exclude.
    let s = clock.stable();
    assert_eq!(s, n, "finished commit stranded: stable {s}, expected {n}");
}

#[cfg(not(bamboo_model_no_fence))]
#[test]
fn model_clock_two_finishers_never_strand_stable() {
    let report = model(|| clock_scenario(2));
    assert!(report.complete, "schedule space not exhausted");
}

#[cfg(not(bamboo_model_no_fence))]
#[test]
fn model_clock_three_finishers_never_strand_stable() {
    // Three finishers at preemption bound 1: enough to interleave a
    // gap-filling finisher between two already-scanning successors while
    // keeping the exhaustive run in the hundreds of thousands of steps.
    let report = model_with(
        Config {
            preemption_bound: Some(1),
            ..Config::default()
        },
        || clock_scenario(3),
    );
    assert!(report.complete, "schedule space not exhausted");
}

/// The seeded-mutation validation: with the `SeqCst` fence in
/// [`CommitClock::finish`] compiled out (`--cfg bamboo_model_no_fence`),
/// the checker must FIND a schedule where a finished commit is stranded
/// below `stable` forever — each finisher's slot store sits in its store
/// buffer while it scans past the other's slot (store-buffering reorder),
/// so neither advances over both. If this test fails, the checker could
/// not see the very bug class the fence exists to prevent, and the green
/// runs above prove nothing.
#[cfg(bamboo_model_no_fence)]
#[test]
fn model_mutation_missing_fence_strands_stable() {
    let caught = std::panic::catch_unwind(|| model(|| clock_scenario(2)));
    assert!(
        caught.is_err(),
        "fence removed but no stranded-stable schedule found: the model \
         checker missed the store-buffering reorder it exists to catch"
    );
}

#[cfg(not(bamboo_model_no_fence))]
#[test]
fn model_watermark_never_passes_live_snapshot() {
    let report = model(|| {
        let db = Database::builder().build();
        // Reader: register a snapshot, then observe the watermark while
        // the registration is live. The invariant under test: no publisher
        // schedule ever moves the watermark past a live snapshot's
        // timestamp (GC would reclaim versions the snapshot still reads).
        let reader = {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let grant = db.register_snapshot();
                let w = db.gc_watermark();
                assert!(
                    w <= grant.ts,
                    "watermark {w} passed live snapshot at {}",
                    grant.ts
                );
                db.release_snapshot(grant);
            })
        };
        // Writer: finish a commit (advancing stable) and publish the
        // watermark — racing the reader's register/observe/release.
        let writer = {
            let db = Arc::clone(&db);
            thread::spawn(move || {
                let ts = db.commit_clock.allocate();
                db.note_commit(ts);
                db.publish_watermark();
            })
        };
        reader.join().unwrap();
        writer.join().unwrap();
        assert_eq!(db.snapshots.active_count(), 0, "registration leaked");
        // With no live snapshots the floor is capped by stable only.
        db.publish_watermark();
        let (w, s) = (db.gc_watermark(), db.commit_clock.stable());
        assert!(w <= s, "watermark {w} beyond stable {s}");
    });
    assert!(report.complete, "schedule space not exhausted");
}

#[cfg(not(bamboo_model_no_fence))]
#[test]
fn model_cross_partition_commit_is_atomic_at_one_timestamp() {
    use crate::partition::{PartSession, PartitionedDb};
    use crate::protocol::LockingProtocol;
    use bamboo_storage::{DataType, PartitionId, RouteStrategy, Row, Schema, Value};

    // Two cross-partition writers over disjoint key pairs, each touching
    // both partitions. Disjointness matters for more than the scenario:
    // the tuple-lock `parking_lot` mutexes are real locks even under the
    // model, and the no-yield-inside-a-shared-critical-section rule
    // (CONCURRENCY.md) holds because only the WAL mutex is shared — and
    // its critical section performs no atomic operations.
    let report = model_with(
        Config {
            preemption_bound: Some(1),
            ..Config::default()
        },
        || {
            let mut b = PartitionedDb::builder(2);
            let t = b.add_table(
                "kv",
                Schema::build()
                    .column("k", DataType::U64)
                    .column("v", DataType::I64),
                RouteStrategy::Range(vec![100]),
            );
            let pdb = b.build();
            for k in [1u64, 2, 150, 151] {
                pdb.insert(t, k, Row::from(vec![Value::U64(k), Value::I64(0)]));
            }
            let s = Arc::new(PartSession::new(
                Arc::clone(&pdb),
                Arc::new(LockingProtocol::bamboo()),
            ));
            // Writer A: keys 1 (partition 0) and 151 (partition 1).
            let a = {
                let s = Arc::clone(&s);
                thread::spawn(move || {
                    let mut txn = s.begin_on(PartitionId(0));
                    txn.update(t, 1, |r| r.set(1, Value::I64(-7))).unwrap();
                    txn.update(t, 151, |r| r.set(1, Value::I64(7))).unwrap();
                    txn.commit().unwrap();
                })
            };
            // Writer B: keys 2 (partition 0) and 150 (partition 1).
            let b = {
                let s = Arc::clone(&s);
                thread::spawn(move || {
                    let mut txn = s.begin_on(PartitionId(1));
                    txn.update(t, 2, |r| r.set(1, Value::I64(-9))).unwrap();
                    txn.update(t, 150, |r| r.set(1, Value::I64(9))).unwrap();
                    txn.commit().unwrap();
                })
            };
            a.join().unwrap();
            b.join().unwrap();
            // The commit-ordering contract: every install of one commit
            // carries ONE timestamp, on both partitions.
            let ts_a0 = pdb.table(PartitionId(0), t).get(1).unwrap().commit_ts();
            let ts_a1 = pdb.table(PartitionId(1), t).get(151).unwrap().commit_ts();
            let ts_b0 = pdb.table(PartitionId(0), t).get(2).unwrap().commit_ts();
            let ts_b1 = pdb.table(PartitionId(1), t).get(150).unwrap().commit_ts();
            assert_eq!(ts_a0, ts_a1, "cross-partition commit split timestamps");
            assert_eq!(ts_b0, ts_b1, "cross-partition commit split timestamps");
            assert_ne!(ts_a0, ts_b0, "distinct commits share a timestamp");
            // Both commits finished, so stable covers both: no snapshot —
            // on any partition — can observe either half-applied.
            let stable = pdb.db(PartitionId(0)).commit_clock.stable();
            assert!(
                stable >= ts_a0.max(ts_b0),
                "stable {stable} below finished cross-partition commits \
                 ({ts_a0}, {ts_b0})"
            );
            // Each writer appended to both partitions' WAL segments, in
            // ascending partition order (the debug_assert in log_commit
            // fires under the model too if the order ever regresses).
            assert_eq!(pdb.part(PartitionId(0)).wal().records(), 2);
            assert_eq!(pdb.part(PartitionId(1)).wal().records(), 2);
        },
    );
    assert!(report.complete, "schedule space not exhausted");
}
