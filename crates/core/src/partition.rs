//! The partitioned database: N partitions, one commit clock.
//!
//! [`PartitionedDb`] splits the storage and execution state that *can* be
//! split — catalog (tuple slabs, hash/ordered indexes, version chains,
//! per-tuple lock entries), WAL segment, stats slab — into per-partition
//! shards, while the state that defines transactional consistency — the
//! commit clock, snapshot registry, GC watermark, timestamp and
//! transaction-id sources — stays **shared** across partitions (one `Arc`
//! each, see [`crate::db::Database`]). A snapshot taken on any partition
//! is therefore consistent across all of them, and commit timestamps
//! remain globally unique and totally ordered.
//!
//! Every partition is a full [`Database`] holding its own catalog shard
//! plus a topology view of its siblings, so the *existing* `Session` /
//! `Txn` / `Protocol` machinery executes partitioned transactions without
//! new plumbing at call sites:
//!
//! * **Single-partition fast path.** [`PartSession::begin_on`] starts a
//!   plain [`Txn`] against the home partition's `Database`. Every lookup
//!   routes to the local shard (one arithmetic route per operation, no
//!   locks), the commit appends to the home partition's WAL segment, and
//!   the attempt performs *no more lock acquisitions* than the same
//!   transaction on a monolithic database — asserted by the partitioning
//!   test suite against the lock-counter shim.
//! * **Cross-partition transactions.** Operations whose keys route to
//!   another partition transparently resolve to that partition's shard
//!   through [`Database::table_for`]; locks, dirty-version chains and
//!   installs all live on the remote tuple itself, so the protocols'
//!   conflict handling (wounds, cascades, Silo validation, IC3 piece
//!   waits) works across partitions unchanged.
//!
//! # Commit-ordering contract (cross-partition commits)
//!
//! A cross-partition commit is **not** a two-phase commit — all partitions
//! share one in-memory commit pipeline — but it must leave every
//! partition's WAL segment in a consistent replayable order:
//!
//! 1. The protocol runs its normal commit protocol (semaphore wait /
//!    validation) once, over the whole access set.
//! 2. **One commit timestamp** is allocated from the shared clock and the
//!    commit point passes *before* anything is logged or installed, so a
//!    wounded transaction never reaches any WAL segment (with durable
//!    segments that is what makes recovery redo-only). The clock holds
//!    the timestamp in flight until all installs land, so no snapshot —
//!    on any partition — can observe a cross-partition commit
//!    half-applied.
//! 3. The redo group is split by partition and appended to each written
//!    partition's WAL segment **in ascending partition-id order** (see
//!    `log_commit` in `protocol`), every append carrying the same commit
//!    timestamp and the full written-partition mask (what crash recovery
//!    checks cross-partition completeness against). Appends never nest —
//!    each WAL lock is held for exactly one append — and the fixed
//!    acquisition order keeps the discipline deadlock-free if segment
//!    locks are ever held across appends (e.g. future group commit).
//!    Installs run only after every partition's append, so anything a
//!    dependent transaction can read was logged first.
//!
//! ```
//! use std::sync::Arc;
//! use bamboo_core::partition::{PartSession, PartitionedDb};
//! use bamboo_core::protocol::LockingProtocol;
//! use bamboo_storage::{DataType, PartitionId, Row, RouteStrategy, Schema, Value};
//!
//! // Two partitions; keys 0..50 live on partition 0, the rest on 1.
//! let mut b = PartitionedDb::builder(2);
//! let t = b.add_table(
//!     "accounts",
//!     Schema::build().column("id", DataType::U64).column("bal", DataType::I64),
//!     RouteStrategy::Range(vec![50]),
//! );
//! let pdb = b.build();
//! for k in [1u64, 99] {
//!     pdb.insert(t, k, Row::from(vec![Value::U64(k), Value::I64(100)]));
//! }
//! let s = PartSession::new(Arc::clone(&pdb), Arc::new(LockingProtocol::bamboo()));
//! // A cross-partition transfer through the partition-0 session.
//! let mut txn = s.begin_on(PartitionId(0));
//! txn.update(t, 1, |r| r.set(1, Value::I64(r.get_i64(1) - 10))).unwrap();
//! txn.update(t, 99, |r| r.set(1, Value::I64(r.get_i64(1) + 10))).unwrap();
//! txn.commit().unwrap();
//! assert_eq!(pdb.db(PartitionId(1)).table_for(t, 99).get(99).unwrap().read_row().get_i64(1), 110);
//! ```

use crate::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bamboo_storage::{Catalog, PartitionId, RouteStrategy, Router, Row, Schema, Table, TableId};

use crate::db::{CommitClock, Database, DbOptions, SnapshotRegistry, Topology};
use crate::meta::TupleCc;
use crate::protocol::Protocol;
use crate::session::{RetryPolicy, Session, Txn, TxnOptions};
use crate::sync::CachePadded;
use crate::ts::TsSource;
use crate::wal::WalHandle;

/// Per-partition counters, each slab cache-padded so partitions never
/// share a line. Commit counts are *home-attributed*: a cross-partition
/// commit bumps the counter of the partition whose session ran it.
#[derive(Debug, Default)]
pub struct PartitionStats {
    /// Committed transactions whose commit bookkeeping ran on this
    /// partition.
    pub commits: AtomicU64,
}

impl PartitionStats {
    /// Committed-transaction count.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }
}

/// One partition: its `Database` view (catalog shard + shared globals +
/// topology) and its WAL segment.
pub struct Partition {
    id: PartitionId,
    db: Arc<Database>,
    wal: Arc<WalHandle>,
}

impl Partition {
    /// This partition's id.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// The partition's `Database` view. Transactions begun against it run
    /// partition-locally until they touch a remote key.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The partition's WAL segment.
    pub fn wal(&self) -> &Arc<WalHandle> {
        &self.wal
    }

    /// The partition's stats slab.
    pub fn stats(&self) -> &PartitionStats {
        &self
            .db
            .topology()
            .expect("a partition always has a topology")
            .stats[self.id.idx()]
    }
}

/// A database split into N partitions sharing one commit clock and
/// snapshot registry. See the module docs for the architecture and the
/// cross-partition commit-ordering contract.
pub struct PartitionedDb {
    router: Arc<Router>,
    parts: Vec<Partition>,
    stats: Arc<[CachePadded<PartitionStats>]>,
    /// Sealed WAL segments deleted by checkpoint-time log compaction.
    segments_retired: AtomicU64,
}

impl PartitionedDb {
    /// Starts building a partitioned database with `partitions` partitions
    /// (at least 1).
    pub fn builder(partitions: u32) -> PartitionedDbBuilder {
        assert!(partitions >= 1, "a database has at least one partition");
        PartitionedDbBuilder {
            catalogs: (0..partitions).map(|_| Catalog::new()).collect(),
            strategies: Vec::new(),
            options: DbOptions::default(),
            partitions,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> u32 {
        self.router.partitions()
    }

    /// The router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// All partitions, in id order.
    pub fn parts(&self) -> &[Partition] {
        &self.parts
    }

    /// One partition.
    pub fn part(&self, p: PartitionId) -> &Partition {
        &self.parts[p.idx()]
    }

    /// One partition's `Database` view.
    pub fn db(&self, p: PartitionId) -> &Arc<Database> {
        &self.parts[p.idx()].db
    }

    /// Routes `(table, key)` to its owning partition (replicated tables
    /// resolve to partition 0; use [`Database::table_for`] from inside a
    /// partition for local resolution).
    pub fn route(&self, table: TableId, key: u64) -> PartitionId {
        self.router.route(table, key)
    }

    /// The table shard of `table` on partition `p`.
    pub fn table(&self, p: PartitionId, table: TableId) -> &Arc<Table<TupleCc>> {
        self.parts[p.idx()].db.table(table)
    }

    /// Loader-path insert: routes `key` to its partition's shard. Panics
    /// on replicated tables — use [`PartitionedDb::insert_replicated`].
    pub fn insert(
        &self,
        table: TableId,
        key: u64,
        row: Row,
    ) -> Arc<bamboo_storage::Tuple<TupleCc>> {
        assert!(
            !self.router.is_replicated(table),
            "replicated tables load through insert_replicated"
        );
        let p = self.router.route(table, key);
        self.parts[p.idx()].db.table(table).insert(key, row)
    }

    /// Loader-path insert into *every* partition's replica of a
    /// replicated table.
    pub fn insert_replicated(&self, table: TableId, key: u64, row: Row) {
        assert!(
            self.router.is_replicated(table),
            "insert_replicated requires a Replicated table"
        );
        for part in &self.parts {
            part.db.table(table).insert(key, row.clone());
        }
    }

    /// Enables the ordered primary-key index on every shard of `table`
    /// (range scans and next-key phantom protection need it on all
    /// shards).
    pub fn enable_ordered_index(&self, table: TableId) {
        for part in &self.parts {
            part.db.table(table).enable_ordered_index();
        }
    }

    /// Total physical rows across all shards (replicated tables count
    /// once per replica).
    pub fn total_rows(&self) -> usize {
        self.parts.iter().map(|p| p.db.total_rows()).sum()
    }

    /// Sum of the per-partition commit counters.
    pub fn total_commits(&self) -> u64 {
        self.stats.iter().map(|s| s.commits()).sum()
    }

    /// Total redo-log bytes across every partition's WAL segment.
    pub fn log_bytes(&self) -> u64 {
        self.parts.iter().map(|p| p.wal.bytes_logged()).sum()
    }

    /// Total redo records across every partition's WAL segment.
    pub fn log_records(&self) -> u64 {
        self.parts.iter().map(|p| p.wal.records()).sum()
    }

    /// Sealed WAL segments deleted by checkpoint-time log compaction over
    /// this database's lifetime.
    pub fn segments_retired(&self) -> u64 {
        self.segments_retired.load(Ordering::Relaxed)
    }

    /// Adds to the compaction counter (called by
    /// [`PartitionedDb::checkpoint`]).
    pub(crate) fn note_segments_retired(&self, n: u64) {
        self.segments_retired.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of partitions currently degraded (WAL writes fail fast with
    /// [`crate::txn::AbortReason::DurabilityFailed`]; snapshot reads and
    /// the other partitions are unaffected).
    pub fn degraded_partitions(&self) -> u64 {
        self.parts.iter().filter(|p| p.wal.is_degraded()).count() as u64
    }

    /// Total WAL transient-fault retries across every partition's handle.
    pub fn wal_io_retries(&self) -> u64 {
        self.parts.iter().map(|p| p.wal.io_retries()).sum()
    }

    /// Total WAL permanent failures across every partition's handle.
    pub fn wal_io_failures(&self) -> u64 {
        self.parts.iter().map(|p| p.wal.io_failures()).sum()
    }

    /// Total batch fsyncs issued by group-commit leaders across all
    /// partitions. Zero unless the database runs under
    /// [`bamboo_storage::FsyncPolicy::GroupCommit`].
    pub fn group_fsyncs(&self) -> u64 {
        self.parts.iter().map(|p| p.wal.group_fsyncs()).sum()
    }

    /// Commits acknowledged through the shared durability horizon. The
    /// horizon is one object shared by every partition, so this reads it
    /// from partition 0 rather than summing.
    pub fn group_acks(&self) -> u64 {
        self.parts[0].db.durability_horizon().acked()
    }

    /// Heals a degraded partition: re-opens its durable segment writer
    /// (scanning the existing segments and truncating any torn tail, so
    /// writing resumes on a clean frame boundary) and re-admits writes.
    ///
    /// Safe to call while the rest of the database keeps committing — the
    /// swap serializes behind the partition's WAL lock. Calling it on a
    /// healthy partition is a no-op refresh of the writer. Fails (leaving
    /// the partition degraded) when the segment still cannot be opened —
    /// e.g. the underlying fault persists — or when the database has no
    /// durable WAL configured.
    pub fn heal(&self, p: PartitionId) -> std::io::Result<()> {
        let opts = self.parts[p.idx()].db.options();
        let dir = opts.wal_dir.clone().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "heal requires a durable WAL (DbOptions::with_wal_dir)",
            )
        })?;
        let writer = bamboo_storage::SegmentWriter::open_with(
            opts.backend(),
            &dir,
            p.0,
            opts.fsync_policy,
            opts.segment_bytes,
        )?;
        self.parts[p.idx()].wal.replace_writer(writer);
        Ok(())
    }
}

/// Builder for [`PartitionedDb`]: registers every table in every
/// partition's catalog shard (same dense [`TableId`] everywhere) together
/// with its routing strategy.
pub struct PartitionedDbBuilder {
    catalogs: Vec<Catalog<TupleCc>>,
    strategies: Vec<RouteStrategy>,
    options: DbOptions,
    partitions: u32,
}

impl PartitionedDbBuilder {
    /// Registers a table on every partition with its routing strategy.
    pub fn add_table(&mut self, name: &str, schema: Schema, strategy: RouteStrategy) -> TableId {
        self.add_table_with_capacity(name, schema, 0, strategy)
    }

    /// Registers a table pre-sized for `cap` tuples *in total*: replicated
    /// shards reserve the full capacity each, a pinned table's owning
    /// shard takes it all (the others none), and every other strategy
    /// splits it evenly.
    pub fn add_table_with_capacity(
        &mut self,
        name: &str,
        schema: Schema,
        cap: usize,
        strategy: RouteStrategy,
    ) -> TableId {
        let n = self.partitions;
        let mut id = None;
        for (i, cat) in self.catalogs.iter_mut().enumerate() {
            let shard_cap = match &strategy {
                RouteStrategy::Replicated => cap,
                RouteStrategy::Pin(p) => {
                    if i as u32 == *p % n {
                        cap
                    } else {
                        0
                    }
                }
                _ if cap == 0 => 0,
                _ => cap / n as usize + 1,
            };
            let t = cat.add_table_with_capacity(name, schema.clone(), shard_cap);
            debug_assert!(id.is_none() || id == Some(t), "shards assign identical ids");
            id = Some(t);
        }
        let id = id.expect("at least one partition");
        debug_assert_eq!(id.0 as usize, self.strategies.len());
        self.strategies.push(strategy);
        id
    }

    /// Replaces the tuning knobs shared by every partition.
    pub fn with_options(&mut self, options: DbOptions) -> &mut Self {
        self.options = options;
        self
    }

    /// Finalizes the partitioned database: builds the router, the shared
    /// commit pipeline, and one `Database` view per partition.
    ///
    /// When [`DbOptions::with_wal_dir`] is set, every partition opens a
    /// durable WAL segment writer rooted in that directory (resuming after
    /// any existing log, with the torn tail truncated away — see
    /// [`bamboo_storage::log`]); otherwise each partition gets the
    /// in-memory ring. Durable databases cap the partition count at 64:
    /// the cross-partition completeness mask is a `u64` bitmask.
    pub fn build(self) -> Arc<PartitionedDb> {
        let mut router = Router::new(self.partitions, RouteStrategy::Hash);
        for (i, s) in self.strategies.into_iter().enumerate() {
            router = router.with_table(TableId(i as u32), s);
        }
        let router = Arc::new(router);
        let catalogs: Arc<[Arc<Catalog<TupleCc>>]> =
            self.catalogs.into_iter().map(Arc::new).collect();
        let wals: Arc<[Arc<WalHandle>]> = match &self.options.wal_dir {
            Some(dir) => {
                assert!(
                    self.partitions <= 64,
                    "durable WALs support at most 64 partitions \
                     (the completeness mask is a u64 bitmask)"
                );
                let backend = self.options.backend();
                (0..self.partitions)
                    .map(|p| {
                        // An unopenable segment no longer aborts the build:
                        // that partition comes up degraded (writes fail fast
                        // with DurabilityFailed, snapshot reads keep serving)
                        // and `PartitionedDb::heal` can re-open it later.
                        let handle = match bamboo_storage::SegmentWriter::open_with(
                            Arc::clone(&backend),
                            dir,
                            p,
                            self.options.fsync_policy,
                            self.options.segment_bytes,
                        ) {
                            Ok(w) => WalHandle::durable(w),
                            Err(_) => WalHandle::poisoned(),
                        };
                        Arc::new(handle)
                    })
                    .collect()
            }
            None => (0..self.partitions)
                .map(|_| Arc::new(WalHandle::new()))
                .collect(),
        };
        let stats: Arc<[CachePadded<PartitionStats>]> = (0..self.partitions)
            .map(|_| CachePadded::new(PartitionStats::default()))
            .collect();
        // The shared commit pipeline: one of each, cloned into every
        // partition's Database so commit timestamps and snapshots stay
        // globally consistent.
        let ts_source = Arc::new(TsSource::new());
        let epoch = Arc::new(CachePadded::new(AtomicU64::new(1)));
        let commit_clock = Arc::new(CommitClock::new());
        let snapshots = Arc::new(SnapshotRegistry::new());
        let watermark = Arc::new(CachePadded::new(AtomicU64::new(0)));
        let txn_ids = Arc::new(CachePadded::new(AtomicU64::new(1)));
        let horizon = Arc::new(crate::wal::DurabilityHorizon::new());
        let options = DbOptions {
            epoch_commits: self.options.epoch_commits.max(1),
            ..self.options
        };
        let parts = (0..self.partitions)
            .map(|p| {
                let me = PartitionId(p);
                Partition {
                    id: me,
                    db: Arc::new(Database {
                        catalog: Arc::clone(&catalogs[me.idx()]),
                        ts_source: Arc::clone(&ts_source),
                        epoch: Arc::clone(&epoch),
                        commit_clock: Arc::clone(&commit_clock),
                        snapshots: Arc::clone(&snapshots),
                        watermark: Arc::clone(&watermark),
                        txn_ids: Arc::clone(&txn_ids),
                        horizon: Arc::clone(&horizon),
                        options: options.clone(),
                        topology: Some(Topology {
                            router: Arc::clone(&router),
                            catalogs: Arc::clone(&catalogs),
                            wals: Arc::clone(&wals),
                            stats: Arc::clone(&stats),
                            me,
                        }),
                    }),
                    wal: Arc::clone(&wals[p as usize]),
                }
            })
            .collect();
        Arc::new(PartitionedDb {
            router,
            parts,
            stats,
            segments_retired: AtomicU64::new(0),
        })
    }
}

/// A partition-aware session: one inner [`Session`] per partition, all
/// bound to the same protocol and sharing each partition's WAL segment.
///
/// [`PartSession::begin_on`] is the routing entry point: a transaction
/// begun on its home partition runs the partition-local fast path for
/// local keys and transparently reaches across partitions for remote ones
/// (see the module docs). This extends the `Session` seam from the
/// ROADMAP — no call site drives `Protocol` directly.
pub struct PartSession {
    pdb: Arc<PartitionedDb>,
    sessions: Vec<Session>,
}

impl PartSession {
    /// Binds every partition of `pdb` to `proto` with the default
    /// [`RetryPolicy`].
    pub fn new(pdb: Arc<PartitionedDb>, proto: Arc<dyn Protocol>) -> Self {
        let sessions = pdb
            .parts()
            .iter()
            .map(|p| {
                Session::new(Arc::clone(p.db()), Arc::clone(&proto))
                    .with_wal_handle(Arc::clone(p.wal()))
            })
            .collect();
        PartSession { pdb, sessions }
    }

    /// Replaces the retry policy on every partition's session.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.sessions = self
            .sessions
            .into_iter()
            .map(|s| s.with_retry(retry.clone()))
            .collect();
        self
    }

    /// The partitioned database.
    pub fn db(&self) -> &Arc<PartitionedDb> {
        &self.pdb
    }

    /// The session bound to partition `p`.
    pub fn session(&self, p: PartitionId) -> &Session {
        &self.sessions[p.idx()]
    }

    /// The session of the partition owning `(table, key)` — the home
    /// session a single-partition transaction on that key should use.
    pub fn session_for(&self, table: TableId, key: u64) -> &Session {
        self.session(self.pdb.route(table, key))
    }

    /// Starts a read-write transaction homed on partition `p` (the
    /// single-partition fast path when the transaction only touches `p`'s
    /// keys; cross-partition accesses route transparently).
    pub fn begin_on(&self, p: PartitionId) -> Txn<'_> {
        self.session(p).begin()
    }

    /// Starts a transaction homed on `p` with explicit options.
    pub fn begin_on_with(&self, p: PartitionId, opts: TxnOptions) -> Txn<'_> {
        self.session(p).begin_with(opts)
    }

    /// Starts a read-only snapshot transaction homed on partition `p`.
    /// The snapshot is globally consistent: all partitions share one
    /// commit clock, so reads on *any* partition resolve at the same
    /// stable timestamp.
    pub fn snapshot_on(&self, p: PartitionId) -> Txn<'_> {
        self.session(p).snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LockingProtocol;
    use bamboo_storage::{DataType, Value};

    fn two_part_db() -> (Arc<PartitionedDb>, TableId) {
        let mut b = PartitionedDb::builder(2);
        let t = b.add_table(
            "kv",
            Schema::build()
                .column("k", DataType::U64)
                .column("v", DataType::I64),
            RouteStrategy::Range(vec![100]),
        );
        let pdb = b.build();
        for k in [1u64, 2, 150, 151] {
            pdb.insert(t, k, Row::from(vec![Value::U64(k), Value::I64(0)]));
        }
        (pdb, t)
    }

    #[test]
    fn shards_hold_only_their_keys() {
        let (pdb, t) = two_part_db();
        assert_eq!(pdb.table(PartitionId(0), t).len(), 2);
        assert_eq!(pdb.table(PartitionId(1), t).len(), 2);
        assert!(pdb.table(PartitionId(0), t).get(1).is_some());
        assert!(pdb.table(PartitionId(0), t).get(150).is_none());
        assert!(pdb.table(PartitionId(1), t).get(150).is_some());
        assert_eq!(pdb.total_rows(), 4);
    }

    #[test]
    fn table_for_resolves_remote_keys_from_any_partition() {
        let (pdb, t) = two_part_db();
        for p in [PartitionId(0), PartitionId(1)] {
            let db = pdb.db(p);
            assert_eq!(db.partition_id(), Some(p));
            assert!(db.table_for(t, 1).get(1).is_some());
            assert!(db.table_for(t, 150).get(150).is_some());
        }
    }

    #[test]
    fn partitions_share_the_commit_clock_and_txn_ids() {
        let (pdb, _t) = two_part_db();
        let a = pdb.db(PartitionId(0));
        let b = pdb.db(PartitionId(1));
        let id_a = a.next_txn_id();
        let id_b = b.next_txn_id();
        assert_ne!(id_a, id_b, "txn ids come from one shared source");
        let ts = a.commit_clock.allocate();
        a.note_commit(ts);
        assert_eq!(b.commit_clock.stable(), ts, "one clock across partitions");
    }

    #[test]
    fn single_partition_txn_commits_on_home_wal() {
        let (pdb, t) = two_part_db();
        let s = PartSession::new(Arc::clone(&pdb), Arc::new(LockingProtocol::bamboo()));
        let mut txn = s.begin_on(PartitionId(1));
        txn.update(t, 150, |r| r.set(1, Value::I64(7))).unwrap();
        txn.commit().unwrap();
        assert_eq!(pdb.part(PartitionId(1)).wal().records(), 1);
        assert_eq!(pdb.part(PartitionId(0)).wal().records(), 0);
        assert_eq!(pdb.part(PartitionId(1)).stats().commits(), 1);
    }

    #[test]
    fn cross_partition_txn_logs_to_both_wals_with_one_commit_ts() {
        let (pdb, t) = two_part_db();
        let s = PartSession::new(Arc::clone(&pdb), Arc::new(LockingProtocol::bamboo()));
        let mut txn = s.begin_on(PartitionId(0));
        txn.update(t, 1, |r| r.set(1, Value::I64(-5))).unwrap();
        txn.update(t, 151, |r| r.set(1, Value::I64(5))).unwrap();
        txn.commit().unwrap();
        assert_eq!(pdb.part(PartitionId(0)).wal().records(), 1);
        assert_eq!(pdb.part(PartitionId(1)).wal().records(), 1);
        // One commit timestamp: both installs carry the same tag.
        let ts0 = pdb.table(PartitionId(0), t).get(1).unwrap().commit_ts();
        let ts1 = pdb.table(PartitionId(1), t).get(151).unwrap().commit_ts();
        assert_eq!(ts0, ts1, "cross-partition commit uses one timestamp");
    }

    #[test]
    fn snapshot_on_any_partition_is_globally_consistent() {
        let (pdb, t) = two_part_db();
        let s = PartSession::new(Arc::clone(&pdb), Arc::new(LockingProtocol::bamboo()));
        // Transfer 10 from key 1 (p0) to key 151 (p1), twice.
        for _ in 0..2 {
            let mut txn = s.begin_on(PartitionId(0));
            txn.update(t, 1, |r| r.set(1, Value::I64(r.get_i64(1) - 10)))
                .unwrap();
            txn.update(t, 151, |r| r.set(1, Value::I64(r.get_i64(1) + 10)))
                .unwrap();
            txn.commit().unwrap();
        }
        // A snapshot homed on partition 1 must see a balanced total.
        let mut snap = s.snapshot_on(PartitionId(1));
        let a = snap.read(t, 1).unwrap().get_i64(1);
        let b = snap.read(t, 151).unwrap().get_i64(1);
        assert_eq!(a + b, 0, "snapshot must never observe a torn transfer");
        snap.commit().unwrap();
    }

    #[test]
    fn replicated_tables_resolve_locally() {
        let mut b = PartitionedDb::builder(2);
        let t = b.add_table(
            "ref",
            Schema::build()
                .column("k", DataType::U64)
                .column("v", DataType::I64),
            RouteStrategy::Replicated,
        );
        let pdb = b.build();
        pdb.insert_replicated(t, 5, Row::from(vec![Value::U64(5), Value::I64(9)]));
        for p in [PartitionId(0), PartitionId(1)] {
            let db = pdb.db(p);
            let local = db.table_for(t, 5);
            assert!(Arc::ptr_eq(local, db.table(t)), "replicated stays local");
            assert_eq!(local.get(5).unwrap().read_row().get_i64(1), 9);
        }
    }

    #[test]
    fn options_flow_into_every_partition() {
        let mut b = PartitionedDb::builder(2);
        b.add_table(
            "kv",
            Schema::build().column("k", DataType::U64),
            RouteStrategy::Hash,
        );
        b.with_options(
            DbOptions::new()
                .with_epoch_commits(8)
                .with_trim_threshold(2),
        );
        let pdb = b.build();
        for p in [PartitionId(0), PartitionId(1)] {
            assert_eq!(pdb.db(p).options().epoch_commits, 8);
            assert_eq!(pdb.db(p).trim_threshold(), 2);
        }
        // The epoch tick fires on the shared clock at the configured period.
        let db = pdb.db(PartitionId(0));
        let e0 = db.epoch.load(Ordering::Acquire);
        for _ in 0..8 {
            let ts = db.commit_clock.allocate();
            db.note_commit(ts);
        }
        assert_eq!(db.epoch.load(Ordering::Acquire), e0 + 1);
    }
}
