//! The write-ahead log.
//!
//! The paper logs commit records "to main memory — modern non-volatile
//! memory would offer similar performance" (§5.1). [`WalBuffer`] reproduces
//! that cost profile: each commit serializes its redo record (transaction
//! id + after-images) into a per-worker ring buffer, so committing pays a
//! realistic memcpy without any I/O syscalls. Algorithm 1 line 6 — the log
//! write happens after the commit-semaphore wait and defines the commit
//! point together with the status CAS.

use bamboo_storage::{Row, RowId, TableId, Value};

/// Default per-worker ring capacity (16 MiB, comfortably larger than any
/// single record).
const DEFAULT_CAP: usize = 16 << 20;

/// A per-worker in-memory redo log ring.
pub struct WalBuffer {
    buf: Vec<u8>,
    pos: usize,
    /// Total bytes ever appended (wraps the ring, never resets).
    bytes_logged: u64,
    /// Number of commit records appended.
    records: u64,
    /// Reusable encode buffer: each commit record is serialized here and
    /// copied into the ring with a single `put`, so the append allocates
    /// nothing once the buffer warmed up to the session's largest record
    /// (and the ring's wrap-seam branching runs once per record instead
    /// of once per field).
    scratch: Vec<u8>,
}

impl WalBuffer {
    /// Creates a ring of `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        WalBuffer {
            buf: vec![0u8; cap],
            pos: 0,
            bytes_logged: 0,
            records: 0,
            scratch: Vec::with_capacity(256),
        }
    }

    /// Default-sized ring.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAP)
    }

    /// Small ring for unit tests and doctests.
    pub fn for_tests() -> Self {
        Self::with_capacity(64 << 10)
    }

    #[inline]
    fn put(&mut self, bytes: &[u8]) {
        // Ring semantics: wrap on overflow. Records may straddle the seam;
        // nothing ever reads the ring back (it models NVM write cost), so
        // only the copy matters.
        let cap = self.buf.len();
        let mut off = self.pos;
        for chunk in bytes.chunks(cap) {
            if off + chunk.len() <= cap {
                self.buf[off..off + chunk.len()].copy_from_slice(chunk);
                off += chunk.len();
            } else {
                let first = cap - off;
                self.buf[off..].copy_from_slice(&chunk[..first]);
                let rest = chunk.len() - first;
                self.buf[..rest].copy_from_slice(&chunk[first..]);
                off = rest;
            }
            if off == cap {
                off = 0;
            }
        }
        self.pos = off;
        self.bytes_logged += bytes.len() as u64;
    }

    /// Appends one commit record: txn id plus the after-image of every
    /// write `(table, row, image)`. Encoded into the reusable scratch
    /// buffer, then copied into the ring in one `put` — no per-record
    /// allocation.
    pub fn append_commit<'a>(
        &mut self,
        txn_id: u64,
        writes: impl Iterator<Item = (TableId, RowId, &'a Row)>,
    ) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_from_slice(b"CMT!");
        enc_u64(&mut scratch, txn_id);
        let mut n = 0u64;
        for (table, row_id, row) in writes {
            enc_u64(&mut scratch, table.0 as u64);
            enc_u64(&mut scratch, row_id);
            enc_u64(&mut scratch, row.len() as u64);
            for v in row.values() {
                enc_value(&mut scratch, v);
            }
            n += 1;
        }
        enc_u64(&mut scratch, n);
        self.put(&scratch);
        self.scratch = scratch;
        self.records += 1;
    }

    /// Total bytes appended over the buffer's lifetime.
    pub fn bytes_logged(&self) -> u64 {
        self.bytes_logged
    }

    /// Number of commit records appended.
    pub fn records(&self) -> u64 {
        self.records
    }
}

#[inline]
fn enc_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn enc_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::U64(x) => {
            buf.push(0);
            enc_u64(buf, *x);
        }
        Value::I64(x) => {
            buf.push(1);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::F64(x) => {
            buf.push(2);
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(3);
            enc_u64(buf, s.len() as u64);
            buf.extend_from_slice(s.as_bytes());
        }
    }
}

impl Default for WalBuffer {
    fn default() -> Self {
        Self::new()
    }
}

/// A shareable handle to a WAL ring: a [`WalBuffer`] behind a mutex that
/// is taken **only for the duration of one append**.
///
/// [`Protocol::commit`](crate::protocol::Protocol::commit) receives this
/// instead of `&mut WalBuffer` so that a commit which *waits* (the
/// commit-semaphore wait of Algorithm 1 lines 4–5) never holds the log:
/// with an exclusive borrow, a dependent transaction pinned at its commit
/// wait would block its own predecessor's log append on the same session —
/// a deadlock the type system would otherwise force on every caller
/// sharing a ring. One handle per [`Session`](crate::session::Session)
/// keeps the ring per-worker in the benchmark executor, so the lock is
/// uncontended on the hot path.
pub struct WalHandle(parking_lot::Mutex<WalBuffer>);

impl WalHandle {
    /// Wraps an existing ring.
    pub fn from_buffer(buf: WalBuffer) -> Self {
        WalHandle(parking_lot::Mutex::new(buf))
    }

    /// Default-sized ring.
    pub fn new() -> Self {
        Self::from_buffer(WalBuffer::new())
    }

    /// Small ring for unit tests and doctests.
    pub fn for_tests() -> Self {
        Self::from_buffer(WalBuffer::for_tests())
    }

    /// Appends one commit record (see [`WalBuffer::append_commit`]),
    /// locking the ring for exactly the append.
    pub fn append_commit<'a>(
        &self,
        txn_id: u64,
        writes: impl Iterator<Item = (TableId, RowId, &'a Row)>,
    ) {
        self.0.lock().append_commit(txn_id, writes);
    }

    /// Total bytes appended over the ring's lifetime.
    pub fn bytes_logged(&self) -> u64 {
        self.0.lock().bytes_logged()
    }

    /// Number of commit records appended.
    pub fn records(&self) -> u64 {
        self.0.lock().records()
    }
}

impl Default for WalHandle {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row::from(vec![Value::U64(7), Value::I64(-3), Value::from("hi")])
    }

    #[test]
    fn append_accounts_bytes_and_records() {
        let mut w = WalBuffer::for_tests();
        let r = row();
        w.append_commit(1, [(TableId(0), 5u64, &r)].into_iter());
        assert_eq!(w.records(), 1);
        // 4 magic + 8 txn + 8 table + 8 row + 8 len + (1+8)*2 values +
        // (1+8+2) string + 8 count.
        assert!(w.bytes_logged() > 40);
    }

    #[test]
    fn ring_wraps_without_panicking() {
        let mut w = WalBuffer::with_capacity(64);
        let r = row();
        for i in 0..100 {
            w.append_commit(i, [(TableId(0), i, &r)].into_iter());
        }
        assert_eq!(w.records(), 100);
        assert!(w.bytes_logged() > 64 * 10);
    }

    #[test]
    fn empty_write_set_still_logs_header() {
        let mut w = WalBuffer::for_tests();
        w.append_commit(9, std::iter::empty());
        assert_eq!(w.records(), 1);
        assert_eq!(w.bytes_logged(), 4 + 8 + 8);
    }

    #[test]
    fn scratch_encoding_preserves_record_format() {
        // Byte-exact format lock for the scratch-encoded record: magic +
        // txn id + per-write (table + row id + len + tagged values) +
        // write count. Guards the single-put rewrite of the append path.
        let mut w = WalBuffer::for_tests();
        let r = row(); // [U64, I64, Str("hi")]
        w.append_commit(1, [(TableId(0), 5u64, &r)].into_iter());
        let per_write = 8 + 8 + 8 + (1 + 8) + (1 + 8) + (1 + 8 + 2);
        assert_eq!(w.bytes_logged(), 4 + 8 + per_write + 8);
        // The scratch buffer is reused: a second identical append adds
        // exactly the same byte count (no header drift, no realloc-driven
        // size change).
        let before = w.bytes_logged();
        w.append_commit(2, [(TableId(0), 5u64, &r)].into_iter());
        assert_eq!(w.bytes_logged() - before, before);
        assert_eq!(w.records(), 2);
    }
}
