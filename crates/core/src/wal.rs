//! The write-ahead log.
//!
//! The paper logs commit records "to main memory — modern non-volatile
//! memory would offer similar performance" (§5.1). [`WalBuffer`] reproduces
//! that cost profile: each commit serializes its redo record (transaction
//! id + after-images) into a per-worker ring buffer, so committing pays a
//! realistic memcpy without any I/O syscalls. Algorithm 1 line 6 — the log
//! write happens after the commit-semaphore wait and defines the commit
//! point together with the status CAS.
//!
//! [`WalHandle`] is the seam the commit path logs through, and it fronts
//! one of two sinks:
//!
//! * the historical in-memory **ring** ([`WalBuffer`]) — the default, and
//!   what every monolithic [`crate::Database`] uses;
//! * a **durable** per-partition segment writer
//!   ([`bamboo_storage::log::SegmentWriter`]) when
//!   [`crate::DbOptions::with_wal_dir`] is set on a partitioned database —
//!   checksummed `Begin`/`Update`/`Insert`/`Commit` records that
//!   [`crate::durability`] replays after a crash.
//!
//! Either way the protocol code calls [`WalHandle::append_txn`] exactly
//! once per written partition, after the commit point succeeded — so only
//! committed work ever reaches a durable sink, which is what makes
//! recovery redo-only.
//!
//! # Group commit
//!
//! Under [`FsyncPolicy::GroupCommit`] the append itself never fsyncs.
//! Committers log, install, and release their locks immediately (early
//! lock release — sound because the log-before-install ordering means a
//! dependent's group always lands at a higher LSN than its writer's), then
//! park on [`WalHandle::wait_covered`]: the first parked committer becomes
//! the **leader**, waits a short accumulation window for more committers
//! to join, and issues one `fsync` covering every group staged so far,
//! advancing the per-partition `durable_lsn` watermark. The acknowledgment
//! additionally waits on the process-wide [`DurabilityHorizon`] so that
//! *every* commit with a lower timestamp is durable before the client
//! hears `Ok` — that is what lets crash recovery's horizon cut keep every
//! acknowledged commit (see `DURABILITY.md` "Group commit").

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io;
use std::time::{Duration, Instant};

use bamboo_storage::log::{
    frame_insert, frame_record, frame_update, IoClass, IoFailure, Lsn, SegmentWriter, WalRecord,
};
use bamboo_storage::{FsyncPolicy, Row, RowId, TableId, Value};
use parking_lot::{Condvar, Mutex};

/// Default per-worker ring capacity (16 MiB, comfortably larger than any
/// single record).
const DEFAULT_CAP: usize = 16 << 20;

/// A per-worker in-memory redo log ring.
pub struct WalBuffer {
    buf: Vec<u8>,
    pos: usize,
    /// Total bytes ever appended (wraps the ring, never resets).
    bytes_logged: u64,
    /// Number of commit records appended.
    records: u64,
    /// Reusable encode buffer: each commit record is serialized here and
    /// copied into the ring with a single `put`, so the append allocates
    /// nothing once the buffer warmed up to the session's largest record
    /// (and the ring's wrap-seam branching runs once per record instead
    /// of once per field).
    scratch: Vec<u8>,
}

impl WalBuffer {
    /// Creates a ring of `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        WalBuffer {
            buf: vec![0u8; cap],
            pos: 0,
            bytes_logged: 0,
            records: 0,
            scratch: Vec::with_capacity(256),
        }
    }

    /// Default-sized ring.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAP)
    }

    /// Small ring for unit tests and doctests.
    pub fn for_tests() -> Self {
        Self::with_capacity(64 << 10)
    }

    #[inline]
    fn put(&mut self, bytes: &[u8]) {
        // Ring semantics: wrap on overflow. Records may straddle the seam;
        // nothing ever reads the ring back (it models NVM write cost), so
        // only the copy matters.
        let cap = self.buf.len();
        let mut off = self.pos;
        for chunk in bytes.chunks(cap) {
            if off + chunk.len() <= cap {
                self.buf[off..off + chunk.len()].copy_from_slice(chunk);
                off += chunk.len();
            } else {
                let first = cap - off;
                self.buf[off..].copy_from_slice(&chunk[..first]);
                let rest = chunk.len() - first;
                self.buf[..rest].copy_from_slice(&chunk[first..]);
                off = rest;
            }
            if off == cap {
                off = 0;
            }
        }
        self.pos = off;
        self.bytes_logged += bytes.len() as u64;
    }

    /// Appends one commit record: txn id plus the after-image of every
    /// write `(table, row, image)`. Encoded into the reusable scratch
    /// buffer, then copied into the ring in one `put` — no per-record
    /// allocation.
    pub fn append_commit<'a>(
        &mut self,
        txn_id: u64,
        writes: impl Iterator<Item = (TableId, RowId, &'a Row)>,
    ) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_from_slice(b"CMT!");
        enc_u64(&mut scratch, txn_id);
        let mut n = 0u64;
        for (table, row_id, row) in writes {
            enc_u64(&mut scratch, table.0 as u64);
            enc_u64(&mut scratch, row_id);
            enc_u64(&mut scratch, row.len() as u64);
            for v in row.values() {
                enc_value(&mut scratch, v);
            }
            n += 1;
        }
        enc_u64(&mut scratch, n);
        self.put(&scratch);
        self.scratch = scratch;
        self.records += 1;
    }

    /// Total bytes appended over the buffer's lifetime.
    pub fn bytes_logged(&self) -> u64 {
        self.bytes_logged
    }

    /// Number of commit records appended.
    pub fn records(&self) -> u64 {
        self.records
    }
}

#[inline]
fn enc_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn enc_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::U64(x) => {
            buf.push(0);
            enc_u64(buf, *x);
        }
        Value::I64(x) => {
            buf.push(1);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::F64(x) => {
            buf.push(2);
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(3);
            enc_u64(buf, s.len() as u64);
            buf.extend_from_slice(s.as_bytes());
        }
    }
}

impl Default for WalBuffer {
    fn default() -> Self {
        Self::new()
    }
}

/// One write inside a commit's redo group, as handed to
/// [`WalHandle::append_txn`]. Borrowed from the transaction context — the
/// log append clones nothing on the ring path and encodes borrowed bytes
/// on the durable path.
pub enum WalWrite<'a> {
    /// After-image of an updated row.
    Update {
        /// Owning table.
        table: TableId,
        /// Dense row id (what the ring's historical record format carries).
        row_id: RowId,
        /// Primary key (what the durable format carries — keys are stable
        /// across recoveries by construction, row ids only per shard).
        key: u64,
        /// The full after-image.
        after: &'a Row,
    },
    /// A freshly inserted row.
    Insert {
        /// Owning table.
        table: TableId,
        /// Primary key.
        key: u64,
        /// The inserted row.
        row: &'a Row,
        /// Optional `(secondary index slot, secondary key)` maintained with
        /// the insert.
        secondary: Option<(usize, u64)>,
    },
}

/// The sink behind a [`WalHandle`].
enum WalSink {
    /// The in-memory ring (default; models NVM logging cost).
    Ring(WalBuffer),
    /// A durable per-partition segment writer plus its commit-group count.
    Durable {
        writer: Box<SegmentWriter>,
        records: u64,
    },
    /// A durable sink whose writer could not be opened (or was torn down by
    /// a permanent failure): every append fails fast until
    /// [`WalHandle::replace_writer`] heals it.
    Poisoned,
}

/// Total write/fsync attempts per operation before a transient fault is
/// escalated to a permanent one (1 initial try + 2 retries).
const WAL_IO_ATTEMPTS: u32 = 3;

/// Bound on one park in the group-commit coordinator and on the
/// durability horizon: lost wakeups, concurrent degrades, and a moving
/// stable timestamp are re-checked at least this often.
const GROUP_PARK: Duration = Duration::from_micros(100);

/// Backoff before retry `attempt` (1-based): 100µs, then 1ms.
fn retry_backoff(attempt: u32) {
    let us = 100u64.saturating_mul(10u64.saturating_pow(attempt.saturating_sub(1)));
    std::thread::sleep(Duration::from_micros(us));
}

fn degraded_error(op: &'static str) -> IoFailure {
    IoFailure::with_class(
        IoClass::Permanent,
        op,
        io::Error::other("partition WAL is degraded (read-only until healed)"),
    )
}

/// Outcome of one [`WalHandle::append_txn`].
#[derive(Clone, Copy, Debug)]
pub struct GroupAppend {
    /// True when every byte of the group is durable on return (always true
    /// for the ring, which has no crash story to promise).
    pub durable: bool,
    /// LSN just past the group on this partition's log — the coverage
    /// target a group-commit acknowledgment waits for. Zero on the ring.
    pub end_lsn: Lsn,
}

/// Group-commit coordinator state: who is leading the current batch fsync
/// and how many committers are parked waiting to be covered by it.
#[derive(Default)]
struct GroupState {
    /// A leader is currently accumulating or syncing.
    leader_active: bool,
    /// Committers parked on the condvar (followers + window joiners).
    waiting: u32,
}

thread_local! {
    /// Per-thread encode buffers for the durable append path: the whole
    /// framed record group is built here *before* the partition sink lock
    /// is taken, so the lock covers only the file write. `(framed group,
    /// per-record payload scratch)`.
    static GROUP_ENCODE: RefCell<(Vec<u8>, Vec<u8>)> =
        RefCell::new((Vec::with_capacity(512), Vec::with_capacity(256)));
}

/// A shareable handle to a WAL sink: an in-memory ring or a durable
/// segment writer behind a mutex that is taken **only for the duration of
/// one append**.
///
/// [`Protocol::commit`](crate::protocol::Protocol::commit) receives this
/// instead of `&mut WalBuffer` so that a commit which *waits* (the
/// commit-semaphore wait of Algorithm 1 lines 4–5) never holds the log:
/// with an exclusive borrow, a dependent transaction pinned at its commit
/// wait would block its own predecessor's log append on the same session —
/// a deadlock the type system would otherwise force on every caller
/// sharing a ring. One handle per [`Session`](crate::session::Session)
/// keeps the ring per-worker in the benchmark executor, so the lock is
/// uncontended on the hot path. Durable handles are per *partition* (the
/// segment file is the serialization point anyway), shared by every
/// session of the partitioned database.
///
/// Durable sinks surface storage faults as [`IoFailure`] instead of
/// panicking: transient faults are retried in place with bounded backoff,
/// permanent ones (or an exhausted retry budget) poison the handle into a
/// **degraded** mode where every further append fails fast until
/// [`WalHandle::replace_writer`] installs a freshly opened writer.
pub struct WalHandle {
    sink: parking_lot::Mutex<WalSink>,
    /// Set on permanent failure; checked (fail-fast) before every append.
    degraded: AtomicBool,
    /// Cached sink kind so the append path can pre-encode its group
    /// without taking the sink lock. Flips ring → durable only through
    /// [`WalHandle::replace_writer`].
    durable_kind: AtomicBool,
    /// Transient faults retried successfully or not (observability).
    io_retries: AtomicU64,
    /// Permanent failures that degraded the handle.
    io_failures: AtomicU64,
    /// LSN up to which this partition's log is known durable. Written only
    /// under the sink lock (leader syncs and strong-policy appends), so
    /// plain stores stay monotone.
    durable_lsn: AtomicU64,
    /// Batch fsyncs issued by group-commit leaders.
    group_fsyncs: AtomicU64,
    /// Group-commit coordinator state, guarded separately from the sink so
    /// followers can park without blocking the appenders.
    group: Mutex<GroupState>,
    group_cond: Condvar,
}

impl WalHandle {
    fn from_sink(sink: WalSink, degraded: bool) -> Self {
        let durable_kind = matches!(sink, WalSink::Durable { .. } | WalSink::Poisoned);
        let durable_lsn = match &sink {
            WalSink::Durable { writer, .. } => writer.synced_lsn(),
            _ => 0,
        };
        WalHandle {
            sink: parking_lot::Mutex::new(sink),
            degraded: AtomicBool::new(degraded),
            durable_kind: AtomicBool::new(durable_kind),
            io_retries: AtomicU64::new(0),
            io_failures: AtomicU64::new(0),
            durable_lsn: AtomicU64::new(durable_lsn),
            group_fsyncs: AtomicU64::new(0),
            group: Mutex::new(GroupState::default()),
            group_cond: Condvar::new(),
        }
    }

    /// Wraps an existing ring.
    pub fn from_buffer(buf: WalBuffer) -> Self {
        Self::from_sink(WalSink::Ring(buf), false)
    }

    /// Default-sized ring.
    pub fn new() -> Self {
        Self::from_buffer(WalBuffer::new())
    }

    /// Small ring for unit tests and doctests.
    pub fn for_tests() -> Self {
        Self::from_buffer(WalBuffer::for_tests())
    }

    /// Wraps a durable segment writer (one per partition; see
    /// [`crate::DbOptions::with_wal_dir`]).
    pub fn durable(writer: SegmentWriter) -> Self {
        Self::from_sink(
            WalSink::Durable {
                writer: Box::new(writer),
                records: 0,
            },
            false,
        )
    }

    /// A durable handle whose writer failed to open: born degraded, every
    /// append fails fast with [`IoFailure`] until healed. Lets a
    /// partitioned database come up (serving snapshot reads and the other
    /// partitions' writes) even when one partition's log is unopenable.
    pub fn poisoned() -> Self {
        Self::from_sink(WalSink::Poisoned, true)
    }

    /// True when this handle logs to durable segment files (including a
    /// degraded handle whose writer is torn down: the *intent* is durable).
    pub fn is_durable(&self) -> bool {
        matches!(
            &*self.sink.lock(),
            WalSink::Durable { .. } | WalSink::Poisoned
        )
    }

    /// True when the handle is degraded (writes fail fast; see
    /// [`WalHandle::replace_writer`]).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Transient-fault retries performed (successful or not).
    pub fn io_retries(&self) -> u64 {
        self.io_retries.load(Ordering::Relaxed)
    }

    /// Permanent failures that degraded this handle.
    pub fn io_failures(&self) -> u64 {
        self.io_failures.load(Ordering::Relaxed)
    }

    /// Heals a degraded durable handle: installs `writer` (freshly opened —
    /// [`SegmentWriter::open`] already truncated any torn tail) and
    /// re-admits writes. The commit-group count carries over. Ring handles
    /// ignore the call.
    pub fn replace_writer(&self, writer: SegmentWriter) {
        let mut sink = self.sink.lock();
        let records = match &*sink {
            WalSink::Durable { records, .. } => *records,
            _ => 0,
        };
        // The fresh writer resumes past the truncated tail; anything it
        // scanned over is on disk, so the durability watermark restarts
        // there. (It can move *backwards* across a heal: commits beyond the
        // old watermark were never acknowledged, so nothing is retracted.)
        self.durable_lsn
            .store(writer.synced_lsn(), Ordering::Release);
        *sink = WalSink::Durable {
            writer: Box::new(writer),
            records,
        };
        self.durable_kind.store(true, Ordering::Release);
        // Clear the flag only after the sink is swapped: an append racing
        // the heal either fails fast on the flag or serializes behind the
        // sink mutex and lands in the new writer.
        self.degraded.store(false, Ordering::Release);
    }

    /// Records a permanent failure: counts it, degrades the handle, and
    /// forces the failure's class to permanent for the caller. Parked
    /// group-commit waiters observe the degrade within one bounded park
    /// tick (`GROUP_PARK`) — no explicit wakeup is needed.
    fn fail(&self, f: IoFailure) -> IoFailure {
        self.io_failures.fetch_add(1, Ordering::Relaxed);
        self.degraded.store(true, Ordering::Release);
        IoFailure::with_class(IoClass::Permanent, f.op, f.error)
    }

    /// LSN up to which this partition's log is known durable (advanced by
    /// group-commit leader fsyncs and strong-policy commit boundaries).
    pub fn durable_lsn(&self) -> Lsn {
        self.durable_lsn.load(Ordering::Acquire)
    }

    /// Batch fsyncs issued by group-commit leaders on this handle.
    pub fn group_fsyncs(&self) -> u64 {
        self.group_fsyncs.load(Ordering::Relaxed)
    }

    /// Parks until the partition's durability watermark covers `lsn` —
    /// the group-commit coordinator.
    ///
    /// The fast path is one atomic load (a previous leader's fsync already
    /// covered us). Otherwise the caller joins the parked queue; the first
    /// to find no active leader **becomes** the leader: it waits up to the
    /// policy's `max_wait_us` for more committers to join (cut short once
    /// `max_batch` are parked, or as soon as arrivals stall — parked
    /// committers' groups are already staged, so waiting longer only adds
    /// latency), then issues ONE fsync covering every group staged so far
    /// and publishes the new watermark. Followers re-check
    /// the watermark on bounded parks, so a lost wakeup or a concurrent
    /// degrade costs at most one `GROUP_PARK` tick.
    ///
    /// Returns [`IoFailure`] when the handle degrades before the caller's
    /// group is covered: the caller's commit is installed but not durable,
    /// and must surface `DurabilityFailed` instead of acknowledging.
    pub fn wait_covered(&self, lsn: Lsn) -> Result<(), IoFailure> {
        // ordering: Acquire pairs with the watermark's Release store after
        // a leader fsync — a covered reader must also observe the sink
        // state that made it durable.
        if self.durable_lsn.load(Ordering::Acquire) >= lsn {
            return Ok(());
        }
        let (max_batch, max_wait) = match self.fsync_policy() {
            Some(FsyncPolicy::GroupCommit {
                max_batch,
                max_wait_us,
            }) => (max_batch.max(1), Duration::from_micros(max_wait_us)),
            _ => (1, Duration::ZERO),
        };
        let mut announced = false;
        let mut state = self.group.lock();
        loop {
            if self.durable_lsn.load(Ordering::Acquire) >= lsn {
                return Ok(());
            }
            if self.is_degraded() {
                return Err(degraded_error("group fsync"));
            }
            if state.leader_active {
                // Follower: park until the leader publishes (bounded, so a
                // missed notify or a degrade is re-checked promptly). The
                // first park announces our arrival so an accumulating
                // leader can count us without waiting out its window.
                state.waiting += 1;
                if !announced {
                    announced = true;
                    self.group_cond.notify_all();
                }
                self.group_cond.wait_for(&mut state, GROUP_PARK);
                state.waiting -= 1;
                continue;
            }
            // Leader: accumulate joiners while the group keeps growing, up
            // to the policy window, then sync once for everyone staged so
            // far. The short park quantum doubles as a stall detector: a
            // timeout with no new arrival means waiting longer only adds
            // latency (every parked committer's group is already staged,
            // so the sync covers them regardless).
            state.leader_active = true;
            if !max_wait.is_zero() {
                let deadline = Instant::now() + max_wait;
                let quantum = (max_wait / 4).max(Duration::from_micros(1));
                while state.waiting + 1 < max_batch {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let before = state.waiting;
                    self.group_cond
                        .wait_for(&mut state, quantum.min(deadline - now));
                    if state.waiting <= before {
                        break;
                    }
                }
            }
            drop(state); // never hold the queue lock across the sink lock
            let synced = self.sync_batch();
            state = self.group.lock();
            state.leader_active = false;
            if synced.is_ok() {
                self.group_fsyncs.fetch_add(1, Ordering::Relaxed);
            }
            self.group_cond.notify_all();
            match synced {
                // Loop back: the watermark check decides our own fate (it
                // covers us unless our group raced in after the sync).
                Ok(()) => continue,
                Err(f) => return Err(f),
            }
        }
    }

    /// One batch fsync on behalf of every parked committer: syncs the
    /// durable sink (transient faults retried in place) and publishes the
    /// new durability watermark. Permanent failure degrades the handle.
    fn sync_batch(&self) -> Result<(), IoFailure> {
        match &mut *self.sink.lock() {
            WalSink::Ring(_) => Ok(()),
            WalSink::Poisoned => Err(degraded_error("group fsync")),
            WalSink::Durable { writer, .. } => {
                let mut attempt = 1;
                loop {
                    match writer.sync() {
                        Ok(()) => {
                            // ordering: Release publishes the watermark to
                            // `wait_covered`'s fast-path Acquire load; the
                            // store happens under the sink lock, so it is
                            // monotone.
                            self.durable_lsn
                                .store(writer.synced_lsn(), Ordering::Release);
                            return Ok(());
                        }
                        Err(e) => {
                            let f = IoFailure::new("group fsync", e);
                            if f.is_transient() && attempt < WAL_IO_ATTEMPTS {
                                self.io_retries.fetch_add(1, Ordering::Relaxed);
                                retry_backoff(attempt);
                                attempt += 1;
                                continue;
                            }
                            return Err(self.fail(f));
                        }
                    }
                }
            }
        }
    }

    /// Appends one commit record in the historical ring format, locking
    /// the sink for exactly the append. Ring-backed handles only — the
    /// durable format needs the commit timestamp and partition mask that
    /// [`WalHandle::append_txn`] carries.
    pub fn append_commit<'a>(
        &self,
        txn_id: u64,
        writes: impl Iterator<Item = (TableId, RowId, &'a Row)>,
    ) {
        match &mut *self.sink.lock() {
            WalSink::Ring(buf) => buf.append_commit(txn_id, writes),
            WalSink::Durable { .. } | WalSink::Poisoned => {
                panic!("append_commit is the ring-only legacy path; use append_txn")
            }
        }
    }

    /// Appends one transaction's redo group — its share on this handle's
    /// partition — after the commit point succeeded.
    ///
    /// * Ring sink: one historical-format record (updates use the row id,
    ///   inserts the key; the ring is never read back).
    /// * Durable sink: a `Begin` / writes / `Commit` record group carrying
    ///   `commit_ts` and `parts_mask`, then the fsync policy runs at the
    ///   commit boundary.
    ///
    /// Returns a [`GroupAppend`]: `durable: true` when every byte of the
    /// group is durable on return (always so for the ring, which has no
    /// crash story to promise), `durable: false` when the group is written
    /// but the fsync policy deferred the barrier — under
    /// [`FsyncPolicy::GroupCommit`] the caller later parks on
    /// [`WalHandle::wait_covered`] with the returned `end_lsn`.
    ///
    /// On a durable sink the whole framed group is encoded into a
    /// per-thread buffer *before* the sink lock is taken, so the lock
    /// covers only the file write every committer serializes on.
    ///
    /// Durable I/O errors surface as [`IoFailure`] instead of a panic:
    /// transient faults are retried up to `WAL_IO_ATTEMPTS` times with
    /// backoff (the whole record group is staged up front, so a retry
    /// rewrites identical bytes without re-consuming `writes`); a permanent
    /// fault, an exhausted budget, or a failed rewind degrades the handle
    /// and returns an `IoClass::Permanent` failure — the caller must abort
    /// the transaction (`AbortReason::DurabilityFailed`) without acking.
    pub fn append_txn<'a>(
        &self,
        txn_id: u64,
        commit_ts: u64,
        parts_mask: u64,
        writes: impl Iterator<Item = WalWrite<'a>>,
    ) -> Result<GroupAppend, IoFailure> {
        if self.is_degraded() {
            return Err(degraded_error("wal append"));
        }
        if !self.durable_kind.load(Ordering::Acquire) {
            return match &mut *self.sink.lock() {
                WalSink::Ring(buf) => {
                    buf.append_commit(
                        txn_id,
                        writes.map(|w| match w {
                            WalWrite::Update {
                                table,
                                row_id,
                                after,
                                ..
                            } => (table, row_id, after),
                            WalWrite::Insert {
                                table, key, row, ..
                            } => (table, key, row),
                        }),
                    );
                    Ok(GroupAppend {
                        durable: true,
                        end_lsn: 0,
                    })
                }
                WalSink::Poisoned => Err(degraded_error("wal append")),
                WalSink::Durable { writer, records } => {
                    // A heal flipped the sink durable between the kind load
                    // and the lock: stage under the lock like the historical
                    // path did (cold — only the append racing the heal).
                    writer.stage_record(&WalRecord::Begin {
                        txn_id,
                        commit_ts,
                        parts_mask,
                    });
                    for w in writes {
                        match w {
                            WalWrite::Update {
                                table, key, after, ..
                            } => writer.stage_update(table.0, key, after),
                            WalWrite::Insert {
                                table,
                                key,
                                row,
                                secondary,
                            } => writer.stage_insert(
                                table.0,
                                key,
                                row,
                                secondary.map(|(i, k)| (i as u32, k)),
                            ),
                        }
                    }
                    writer.stage_record(&WalRecord::Commit { txn_id, commit_ts });
                    self.land_group(writer, records)
                }
            };
        }
        // Durable fast path: frame the whole Begin / writes / Commit group
        // into the per-thread buffer before taking the sink lock. The
        // iterator is consumed exactly once, and retries rewrite the staged
        // bytes verbatim.
        GROUP_ENCODE.with(|cell| {
            let (framed, scratch) = &mut *cell.borrow_mut();
            framed.clear();
            frame_record(
                framed,
                scratch,
                &WalRecord::Begin {
                    txn_id,
                    commit_ts,
                    parts_mask,
                },
            );
            for w in writes {
                match w {
                    WalWrite::Update {
                        table, key, after, ..
                    } => frame_update(framed, scratch, table.0, key, after),
                    WalWrite::Insert {
                        table,
                        key,
                        row,
                        secondary,
                    } => frame_insert(
                        framed,
                        scratch,
                        table.0,
                        key,
                        row,
                        secondary.map(|(i, k)| (i as u32, k)),
                    ),
                }
            }
            frame_record(framed, scratch, &WalRecord::Commit { txn_id, commit_ts });
            match &mut *self.sink.lock() {
                WalSink::Ring(buf) => {
                    // Unreachable in practice (the cached kind never flips
                    // back to ring); keep the cost model honest anyway.
                    buf.put(framed);
                    buf.records += 1;
                    Ok(GroupAppend {
                        durable: true,
                        end_lsn: 0,
                    })
                }
                WalSink::Poisoned => Err(degraded_error("wal append")),
                WalSink::Durable { writer, records } => {
                    writer.stage_framed(framed);
                    self.land_group(writer, records)
                }
            }
        })
    }

    /// Lands the staged record group and runs the policy's durability
    /// barrier. Called with the sink lock held (`writer` borrows from it).
    fn land_group(
        &self,
        writer: &mut SegmentWriter,
        records: &mut u64,
    ) -> Result<GroupAppend, IoFailure> {
        // Phase 1: land the group, retrying transients after cutting any
        // torn prefix back out.
        let mut attempt = 1;
        loop {
            match writer.flush_group() {
                Ok(_) => break,
                Err(e) => {
                    let f = IoFailure::new("wal append", e);
                    if let Err(re) = writer.rewind_partial() {
                        // The segment tail is in an unknown state: nothing
                        // more can be written safely.
                        writer.clear_group();
                        return Err(self.fail(IoFailure::new("wal rewind", re)));
                    }
                    if f.is_transient() && attempt < WAL_IO_ATTEMPTS {
                        self.io_retries.fetch_add(1, Ordering::Relaxed);
                        retry_backoff(attempt);
                        attempt += 1;
                        continue;
                    }
                    writer.clear_group();
                    return Err(self.fail(f));
                }
            }
        }

        // Phase 2: the durability barrier (per fsync policy). GroupCommit
        // never syncs here — its barrier is the leader fsync in
        // `wait_covered` — so under that policy phase 2 cannot fail and
        // every append error stays phase-1 (nothing installed yet).
        let mut attempt = 1;
        loop {
            match writer.commit_boundary() {
                Ok(durable) => {
                    *records += 1;
                    if durable {
                        // ordering: Release pairs with `wait_covered`'s
                        // Acquire fast path; written under the sink lock,
                        // so the plain store stays monotone.
                        self.durable_lsn
                            .store(writer.synced_lsn(), Ordering::Release);
                    }
                    return Ok(GroupAppend {
                        durable,
                        end_lsn: writer.lsn(),
                    });
                }
                Err(e) => {
                    let f = IoFailure::new("wal fsync", e);
                    if f.is_transient() && attempt < WAL_IO_ATTEMPTS {
                        self.io_retries.fetch_add(1, Ordering::Relaxed);
                        retry_backoff(attempt);
                        attempt += 1;
                        continue;
                    }
                    // The group is written but cannot be promised durable,
                    // and the commit is about to abort: remove it so
                    // recovery never replays an aborted transaction. If
                    // even that fails the group's fate is ambiguous —
                    // degrade either way and let heal + recovery
                    // re-establish a clean tail.
                    let _ = writer.abandon_group();
                    return Err(self.fail(f));
                }
            }
        }
    }

    /// Appends a checkpoint marker (durable sinks; a no-op on the ring)
    /// and returns the sink's current end LSN.
    pub fn append_checkpoint(&self, stable_ts: u64, cuts: &[Lsn]) -> Result<Lsn, IoFailure> {
        if self.is_degraded() {
            return Err(degraded_error("checkpoint append"));
        }
        match &mut *self.sink.lock() {
            WalSink::Ring(buf) => Ok(buf.bytes_logged()),
            WalSink::Poisoned => Err(degraded_error("checkpoint append")),
            WalSink::Durable { writer, .. } => {
                let mut attempt = 1;
                let at = loop {
                    writer.stage_record(&WalRecord::Checkpoint {
                        stable_ts,
                        cuts: cuts.to_vec(),
                    });
                    match writer.flush_group() {
                        Ok(at) => break at,
                        Err(e) => {
                            let f = IoFailure::new("checkpoint append", e);
                            writer.clear_group();
                            if let Err(re) = writer.rewind_partial() {
                                return Err(self.fail(IoFailure::new("wal rewind", re)));
                            }
                            if f.is_transient() && attempt < WAL_IO_ATTEMPTS {
                                self.io_retries.fetch_add(1, Ordering::Relaxed);
                                retry_backoff(attempt);
                                attempt += 1;
                                continue;
                            }
                            return Err(self.fail(f));
                        }
                    }
                };
                let mut attempt = 1;
                loop {
                    match writer.sync() {
                        Ok(()) => {
                            self.durable_lsn
                                .store(writer.synced_lsn(), Ordering::Release);
                            break;
                        }
                        Err(e) => {
                            let f = IoFailure::new("checkpoint fsync", e);
                            if f.is_transient() && attempt < WAL_IO_ATTEMPTS {
                                self.io_retries.fetch_add(1, Ordering::Relaxed);
                                retry_backoff(attempt);
                                attempt += 1;
                                continue;
                            }
                            let _ = writer.abandon_group();
                            return Err(self.fail(f));
                        }
                    }
                }
                debug_assert!(at < writer.lsn());
                Ok(writer.lsn())
            }
        }
    }

    /// Forces buffered bytes to disk (durable sinks; a no-op on the ring).
    pub fn sync(&self) -> Result<(), IoFailure> {
        if self.is_degraded() {
            return Err(degraded_error("wal fsync"));
        }
        match &mut *self.sink.lock() {
            WalSink::Ring(_) => Ok(()),
            WalSink::Poisoned => Err(degraded_error("wal fsync")),
            WalSink::Durable { writer, .. } => {
                let mut attempt = 1;
                loop {
                    match writer.sync() {
                        Ok(()) => {
                            self.durable_lsn
                                .store(writer.synced_lsn(), Ordering::Release);
                            return Ok(());
                        }
                        Err(e) => {
                            let f = IoFailure::new("wal fsync", e);
                            if f.is_transient() && attempt < WAL_IO_ATTEMPTS {
                                self.io_retries.fetch_add(1, Ordering::Relaxed);
                                retry_backoff(attempt);
                                attempt += 1;
                                continue;
                            }
                            return Err(self.fail(f));
                        }
                    }
                }
            }
        }
    }

    /// The sink's current end position: the next LSN on a durable sink,
    /// total bytes appended on a ring.
    pub fn current_lsn(&self) -> Lsn {
        match &*self.sink.lock() {
            WalSink::Ring(buf) => buf.bytes_logged(),
            WalSink::Durable { writer, .. } => writer.lsn(),
            WalSink::Poisoned => 0,
        }
    }

    /// The durable sink's fsync policy (`None` on a ring or a poisoned
    /// handle).
    pub fn fsync_policy(&self) -> Option<FsyncPolicy> {
        match &*self.sink.lock() {
            WalSink::Ring(_) => None,
            WalSink::Durable { writer, .. } => Some(writer.policy()),
            WalSink::Poisoned => None,
        }
    }

    /// Total bytes appended over the sink's lifetime.
    pub fn bytes_logged(&self) -> u64 {
        match &*self.sink.lock() {
            WalSink::Ring(buf) => buf.bytes_logged(),
            WalSink::Durable { writer, .. } => writer.lsn(),
            WalSink::Poisoned => 0,
        }
    }

    /// Number of commit records (ring) / commit groups (durable) appended.
    pub fn records(&self) -> u64 {
        match &*self.sink.lock() {
            WalSink::Ring(buf) => buf.records(),
            WalSink::Durable { records, .. } => *records,
            WalSink::Poisoned => 0,
        }
    }
}

impl Default for WalHandle {
    fn default() -> Self {
        Self::new()
    }
}

/// What a group-commit acknowledgment must wait for: the commit's
/// timestamp on the process-wide [`DurabilityHorizon`], plus — per
/// partition the commit logged to — the LSN its redo group ends at.
/// Created by the commit path under [`FsyncPolicy::GroupCommit`] and
/// consumed by the session before acknowledging the client.
#[derive(Clone, Debug)]
pub struct DurabilityTicket {
    /// The commit timestamp registered on the horizon.
    pub(crate) commit_ts: u64,
    /// `(partition index, end LSN)` for every partition the commit's redo
    /// groups landed on, in the order they were appended.
    pub(crate) parts: Vec<(u32, Lsn)>,
}

/// The process-wide durability horizon: the highest timestamp `t` such
/// that every committed transaction with `commit_ts <= t` is durable on
/// every partition it touched.
///
/// Group commit installs versions and releases locks *before* the batch
/// fsync (early lock release), so crash recovery keeps a timestamp-prefix
/// of the commit order — the horizon cut in [`crate::durability`]. An
/// acknowledgment is therefore safe exactly when the commit's timestamp
/// is at or below this horizon: everything the kept prefix could depend
/// on is durable too, so the recovered state always contains every
/// acknowledged commit.
///
/// The invariant that makes `min(stable, first_pending - 1)` sound:
/// committers register their timestamp *after* their last log append
/// succeeds and *before* installing (and before the commit clock marks
/// the allocation finished) — so the clock's stable timestamp can never
/// pass a committed transaction that has not yet registered here.
pub struct DurabilityHorizon {
    /// The horizon itself. Written only under `pending`'s lock, so plain
    /// stores stay monotone.
    durable_ts: AtomicU64,
    /// Commits acknowledged through `DurabilityHorizon::wait_acked`
    /// (observability).
    acked: AtomicU64,
    /// Registered commits not yet known durable: `commit_ts -> covered`.
    /// An entry flips to `true` once every partition the commit touched
    /// reports coverage; the horizon advances past leading covered
    /// entries.
    pending: Mutex<BTreeMap<u64, bool>>,
    cond: Condvar,
}

impl DurabilityHorizon {
    /// An empty horizon (no commit registered, horizon at 0).
    pub(crate) fn new() -> Self {
        DurabilityHorizon {
            durable_ts: AtomicU64::new(0),
            acked: AtomicU64::new(0),
            pending: Mutex::new(BTreeMap::new()),
            cond: Condvar::new(),
        }
    }

    /// The current horizon: every committed transaction with a timestamp
    /// at or below this is durable on every partition it touched.
    pub fn durable_ts(&self) -> u64 {
        self.durable_ts.load(Ordering::Acquire)
    }

    /// Commits acknowledged through `DurabilityHorizon::wait_acked`.
    pub fn acked(&self) -> u64 {
        self.acked.load(Ordering::Relaxed)
    }

    /// Registers a committed transaction on the horizon. Must be called
    /// after its last log append succeeded and before it installs (see the
    /// type-level invariant).
    pub(crate) fn register(&self, commit_ts: u64) {
        self.pending.lock().insert(commit_ts, false);
    }

    /// Resolves a registered commit: `durable` marks it covered (every
    /// partition it touched fsynced past its group), `!durable` withdraws
    /// it — the acknowledgment is failing with `DurabilityFailed`, and
    /// leaving the entry would wedge every later commit's acknowledgment
    /// behind a hole that will never fill (the durability gap is
    /// documented: it closes at the post-heal sealing checkpoint). Either
    /// way the horizon advances as far as `stable` (the commit clock's
    /// stable timestamp) allows.
    pub(crate) fn resolve(&self, commit_ts: u64, durable: bool, stable: u64) {
        let mut pending = self.pending.lock();
        if durable {
            if let Some(covered) = pending.get_mut(&commit_ts) {
                *covered = true;
            }
        } else {
            pending.remove(&commit_ts);
        }
        self.advance_locked(&mut pending, stable);
    }

    /// Parks until the horizon reaches `commit_ts`. `stable` is re-sampled
    /// every bounded park so a horizon capped by the commit clock (a
    /// concurrent committer between its allocation and its finish) makes
    /// progress without a dedicated wakeup.
    pub(crate) fn wait_acked(&self, commit_ts: u64, stable: impl Fn() -> u64) {
        loop {
            if self.durable_ts.load(Ordering::Acquire) >= commit_ts {
                self.acked.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let mut pending = self.pending.lock();
            self.advance_locked(&mut pending, stable());
            if self.durable_ts.load(Ordering::Acquire) >= commit_ts {
                drop(pending);
                self.acked.fetch_add(1, Ordering::Relaxed);
                return;
            }
            self.cond.wait_for(&mut pending, GROUP_PARK);
        }
    }

    /// Pops leading covered entries and publishes the new horizon:
    /// `min(stable, first still-pending timestamp - 1)` — or `stable`
    /// alone when nothing is pending. Caller holds the `pending` lock.
    fn advance_locked(&self, pending: &mut BTreeMap<u64, bool>, stable: u64) {
        while pending
            .first_key_value()
            .is_some_and(|(_, covered)| *covered)
        {
            pending.pop_first();
        }
        let limit = pending
            .keys()
            .next()
            .map_or(u64::MAX, |ts| ts.saturating_sub(1));
        let horizon = stable.min(limit);
        if horizon > self.durable_ts.load(Ordering::Acquire) {
            // ordering: Release pairs with the Acquire loads in
            // `wait_acked` / `durable_ts`; only written under the
            // `pending` lock, so the plain store stays monotone.
            self.durable_ts.store(horizon, Ordering::Release);
            self.cond.notify_all();
        }
    }
}

impl Default for DurabilityHorizon {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row::from(vec![Value::U64(7), Value::I64(-3), Value::from("hi")])
    }

    #[test]
    fn append_accounts_bytes_and_records() {
        let mut w = WalBuffer::for_tests();
        let r = row();
        w.append_commit(1, [(TableId(0), 5u64, &r)].into_iter());
        assert_eq!(w.records(), 1);
        // 4 magic + 8 txn + 8 table + 8 row + 8 len + (1+8)*2 values +
        // (1+8+2) string + 8 count.
        assert!(w.bytes_logged() > 40);
    }

    #[test]
    fn ring_wraps_without_panicking() {
        let mut w = WalBuffer::with_capacity(64);
        let r = row();
        for i in 0..100 {
            w.append_commit(i, [(TableId(0), i, &r)].into_iter());
        }
        assert_eq!(w.records(), 100);
        assert!(w.bytes_logged() > 64 * 10);
    }

    #[test]
    fn empty_write_set_still_logs_header() {
        let mut w = WalBuffer::for_tests();
        w.append_commit(9, std::iter::empty());
        assert_eq!(w.records(), 1);
        assert_eq!(w.bytes_logged(), 4 + 8 + 8);
    }

    #[test]
    fn scratch_encoding_preserves_record_format() {
        // Byte-exact format lock for the scratch-encoded record: magic +
        // txn id + per-write (table + row id + len + tagged values) +
        // write count. Guards the single-put rewrite of the append path.
        let mut w = WalBuffer::for_tests();
        let r = row(); // [U64, I64, Str("hi")]
        w.append_commit(1, [(TableId(0), 5u64, &r)].into_iter());
        let per_write = 8 + 8 + 8 + (1 + 8) + (1 + 8) + (1 + 8 + 2);
        assert_eq!(w.bytes_logged(), 4 + 8 + per_write + 8);
        // The scratch buffer is reused: a second identical append adds
        // exactly the same byte count (no header drift, no realloc-driven
        // size change).
        let before = w.bytes_logged();
        w.append_commit(2, [(TableId(0), 5u64, &r)].into_iter());
        assert_eq!(w.bytes_logged() - before, before);
        assert_eq!(w.records(), 2);
    }
}
