//! The write-ahead log.
//!
//! The paper logs commit records "to main memory — modern non-volatile
//! memory would offer similar performance" (§5.1). [`WalBuffer`] reproduces
//! that cost profile: each commit serializes its redo record (transaction
//! id + after-images) into a per-worker ring buffer, so committing pays a
//! realistic memcpy without any I/O syscalls. Algorithm 1 line 6 — the log
//! write happens after the commit-semaphore wait and defines the commit
//! point together with the status CAS.
//!
//! [`WalHandle`] is the seam the commit path logs through, and it fronts
//! one of two sinks:
//!
//! * the historical in-memory **ring** ([`WalBuffer`]) — the default, and
//!   what every monolithic [`crate::Database`] uses;
//! * a **durable** per-partition segment writer
//!   ([`bamboo_storage::log::SegmentWriter`]) when
//!   [`crate::DbOptions::with_wal_dir`] is set on a partitioned database —
//!   checksummed `Begin`/`Update`/`Insert`/`Commit` records that
//!   [`crate::durability`] replays after a crash.
//!
//! Either way the protocol code calls [`WalHandle::append_txn`] exactly
//! once per written partition, after the commit point succeeded — so only
//! committed work ever reaches a durable sink, which is what makes
//! recovery redo-only.

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::io;
use std::time::Duration;

use bamboo_storage::log::{IoClass, IoFailure, Lsn, SegmentWriter, WalRecord};
use bamboo_storage::{FsyncPolicy, Row, RowId, TableId, Value};

/// Default per-worker ring capacity (16 MiB, comfortably larger than any
/// single record).
const DEFAULT_CAP: usize = 16 << 20;

/// A per-worker in-memory redo log ring.
pub struct WalBuffer {
    buf: Vec<u8>,
    pos: usize,
    /// Total bytes ever appended (wraps the ring, never resets).
    bytes_logged: u64,
    /// Number of commit records appended.
    records: u64,
    /// Reusable encode buffer: each commit record is serialized here and
    /// copied into the ring with a single `put`, so the append allocates
    /// nothing once the buffer warmed up to the session's largest record
    /// (and the ring's wrap-seam branching runs once per record instead
    /// of once per field).
    scratch: Vec<u8>,
}

impl WalBuffer {
    /// Creates a ring of `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        WalBuffer {
            buf: vec![0u8; cap],
            pos: 0,
            bytes_logged: 0,
            records: 0,
            scratch: Vec::with_capacity(256),
        }
    }

    /// Default-sized ring.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAP)
    }

    /// Small ring for unit tests and doctests.
    pub fn for_tests() -> Self {
        Self::with_capacity(64 << 10)
    }

    #[inline]
    fn put(&mut self, bytes: &[u8]) {
        // Ring semantics: wrap on overflow. Records may straddle the seam;
        // nothing ever reads the ring back (it models NVM write cost), so
        // only the copy matters.
        let cap = self.buf.len();
        let mut off = self.pos;
        for chunk in bytes.chunks(cap) {
            if off + chunk.len() <= cap {
                self.buf[off..off + chunk.len()].copy_from_slice(chunk);
                off += chunk.len();
            } else {
                let first = cap - off;
                self.buf[off..].copy_from_slice(&chunk[..first]);
                let rest = chunk.len() - first;
                self.buf[..rest].copy_from_slice(&chunk[first..]);
                off = rest;
            }
            if off == cap {
                off = 0;
            }
        }
        self.pos = off;
        self.bytes_logged += bytes.len() as u64;
    }

    /// Appends one commit record: txn id plus the after-image of every
    /// write `(table, row, image)`. Encoded into the reusable scratch
    /// buffer, then copied into the ring in one `put` — no per-record
    /// allocation.
    pub fn append_commit<'a>(
        &mut self,
        txn_id: u64,
        writes: impl Iterator<Item = (TableId, RowId, &'a Row)>,
    ) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend_from_slice(b"CMT!");
        enc_u64(&mut scratch, txn_id);
        let mut n = 0u64;
        for (table, row_id, row) in writes {
            enc_u64(&mut scratch, table.0 as u64);
            enc_u64(&mut scratch, row_id);
            enc_u64(&mut scratch, row.len() as u64);
            for v in row.values() {
                enc_value(&mut scratch, v);
            }
            n += 1;
        }
        enc_u64(&mut scratch, n);
        self.put(&scratch);
        self.scratch = scratch;
        self.records += 1;
    }

    /// Total bytes appended over the buffer's lifetime.
    pub fn bytes_logged(&self) -> u64 {
        self.bytes_logged
    }

    /// Number of commit records appended.
    pub fn records(&self) -> u64 {
        self.records
    }
}

#[inline]
fn enc_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn enc_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::U64(x) => {
            buf.push(0);
            enc_u64(buf, *x);
        }
        Value::I64(x) => {
            buf.push(1);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::F64(x) => {
            buf.push(2);
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(3);
            enc_u64(buf, s.len() as u64);
            buf.extend_from_slice(s.as_bytes());
        }
    }
}

impl Default for WalBuffer {
    fn default() -> Self {
        Self::new()
    }
}

/// One write inside a commit's redo group, as handed to
/// [`WalHandle::append_txn`]. Borrowed from the transaction context — the
/// log append clones nothing on the ring path and encodes borrowed bytes
/// on the durable path.
pub enum WalWrite<'a> {
    /// After-image of an updated row.
    Update {
        /// Owning table.
        table: TableId,
        /// Dense row id (what the ring's historical record format carries).
        row_id: RowId,
        /// Primary key (what the durable format carries — keys are stable
        /// across recoveries by construction, row ids only per shard).
        key: u64,
        /// The full after-image.
        after: &'a Row,
    },
    /// A freshly inserted row.
    Insert {
        /// Owning table.
        table: TableId,
        /// Primary key.
        key: u64,
        /// The inserted row.
        row: &'a Row,
        /// Optional `(secondary index slot, secondary key)` maintained with
        /// the insert.
        secondary: Option<(usize, u64)>,
    },
}

/// The sink behind a [`WalHandle`].
enum WalSink {
    /// The in-memory ring (default; models NVM logging cost).
    Ring(WalBuffer),
    /// A durable per-partition segment writer plus its commit-group count.
    Durable {
        writer: Box<SegmentWriter>,
        records: u64,
    },
    /// A durable sink whose writer could not be opened (or was torn down by
    /// a permanent failure): every append fails fast until
    /// [`WalHandle::replace_writer`] heals it.
    Poisoned,
}

/// Total write/fsync attempts per operation before a transient fault is
/// escalated to a permanent one (1 initial try + 2 retries).
const WAL_IO_ATTEMPTS: u32 = 3;

/// Backoff before retry `attempt` (1-based): 100µs, then 1ms.
fn retry_backoff(attempt: u32) {
    let us = 100u64.saturating_mul(10u64.saturating_pow(attempt.saturating_sub(1)));
    std::thread::sleep(Duration::from_micros(us));
}

fn degraded_error(op: &'static str) -> IoFailure {
    IoFailure::with_class(
        IoClass::Permanent,
        op,
        io::Error::other("partition WAL is degraded (read-only until healed)"),
    )
}

/// A shareable handle to a WAL sink: an in-memory ring or a durable
/// segment writer behind a mutex that is taken **only for the duration of
/// one append**.
///
/// [`Protocol::commit`](crate::protocol::Protocol::commit) receives this
/// instead of `&mut WalBuffer` so that a commit which *waits* (the
/// commit-semaphore wait of Algorithm 1 lines 4–5) never holds the log:
/// with an exclusive borrow, a dependent transaction pinned at its commit
/// wait would block its own predecessor's log append on the same session —
/// a deadlock the type system would otherwise force on every caller
/// sharing a ring. One handle per [`Session`](crate::session::Session)
/// keeps the ring per-worker in the benchmark executor, so the lock is
/// uncontended on the hot path. Durable handles are per *partition* (the
/// segment file is the serialization point anyway), shared by every
/// session of the partitioned database.
///
/// Durable sinks surface storage faults as [`IoFailure`] instead of
/// panicking: transient faults are retried in place with bounded backoff,
/// permanent ones (or an exhausted retry budget) poison the handle into a
/// **degraded** mode where every further append fails fast until
/// [`WalHandle::replace_writer`] installs a freshly opened writer.
pub struct WalHandle {
    sink: parking_lot::Mutex<WalSink>,
    /// Set on permanent failure; checked (fail-fast) before every append.
    degraded: AtomicBool,
    /// Transient faults retried successfully or not (observability).
    io_retries: AtomicU64,
    /// Permanent failures that degraded the handle.
    io_failures: AtomicU64,
}

impl WalHandle {
    fn from_sink(sink: WalSink, degraded: bool) -> Self {
        WalHandle {
            sink: parking_lot::Mutex::new(sink),
            degraded: AtomicBool::new(degraded),
            io_retries: AtomicU64::new(0),
            io_failures: AtomicU64::new(0),
        }
    }

    /// Wraps an existing ring.
    pub fn from_buffer(buf: WalBuffer) -> Self {
        Self::from_sink(WalSink::Ring(buf), false)
    }

    /// Default-sized ring.
    pub fn new() -> Self {
        Self::from_buffer(WalBuffer::new())
    }

    /// Small ring for unit tests and doctests.
    pub fn for_tests() -> Self {
        Self::from_buffer(WalBuffer::for_tests())
    }

    /// Wraps a durable segment writer (one per partition; see
    /// [`crate::DbOptions::with_wal_dir`]).
    pub fn durable(writer: SegmentWriter) -> Self {
        Self::from_sink(
            WalSink::Durable {
                writer: Box::new(writer),
                records: 0,
            },
            false,
        )
    }

    /// A durable handle whose writer failed to open: born degraded, every
    /// append fails fast with [`IoFailure`] until healed. Lets a
    /// partitioned database come up (serving snapshot reads and the other
    /// partitions' writes) even when one partition's log is unopenable.
    pub fn poisoned() -> Self {
        Self::from_sink(WalSink::Poisoned, true)
    }

    /// True when this handle logs to durable segment files (including a
    /// degraded handle whose writer is torn down: the *intent* is durable).
    pub fn is_durable(&self) -> bool {
        matches!(
            &*self.sink.lock(),
            WalSink::Durable { .. } | WalSink::Poisoned
        )
    }

    /// True when the handle is degraded (writes fail fast; see
    /// [`WalHandle::replace_writer`]).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Transient-fault retries performed (successful or not).
    pub fn io_retries(&self) -> u64 {
        self.io_retries.load(Ordering::Relaxed)
    }

    /// Permanent failures that degraded this handle.
    pub fn io_failures(&self) -> u64 {
        self.io_failures.load(Ordering::Relaxed)
    }

    /// Heals a degraded durable handle: installs `writer` (freshly opened —
    /// [`SegmentWriter::open`] already truncated any torn tail) and
    /// re-admits writes. The commit-group count carries over. Ring handles
    /// ignore the call.
    pub fn replace_writer(&self, writer: SegmentWriter) {
        let mut sink = self.sink.lock();
        let records = match &*sink {
            WalSink::Durable { records, .. } => *records,
            _ => 0,
        };
        *sink = WalSink::Durable {
            writer: Box::new(writer),
            records,
        };
        // Clear the flag only after the sink is swapped: an append racing
        // the heal either fails fast on the flag or serializes behind the
        // sink mutex and lands in the new writer.
        self.degraded.store(false, Ordering::Release);
    }

    /// Records a permanent failure: counts it, degrades the handle, and
    /// forces the failure's class to permanent for the caller.
    fn fail(&self, f: IoFailure) -> IoFailure {
        self.io_failures.fetch_add(1, Ordering::Relaxed);
        self.degraded.store(true, Ordering::Release);
        IoFailure::with_class(IoClass::Permanent, f.op, f.error)
    }

    /// Appends one commit record in the historical ring format, locking
    /// the sink for exactly the append. Ring-backed handles only — the
    /// durable format needs the commit timestamp and partition mask that
    /// [`WalHandle::append_txn`] carries.
    pub fn append_commit<'a>(
        &self,
        txn_id: u64,
        writes: impl Iterator<Item = (TableId, RowId, &'a Row)>,
    ) {
        match &mut *self.sink.lock() {
            WalSink::Ring(buf) => buf.append_commit(txn_id, writes),
            WalSink::Durable { .. } | WalSink::Poisoned => {
                panic!("append_commit is the ring-only legacy path; use append_txn")
            }
        }
    }

    /// Appends one transaction's redo group — its share on this handle's
    /// partition — after the commit point succeeded.
    ///
    /// * Ring sink: one historical-format record (updates use the row id,
    ///   inserts the key; the ring is never read back).
    /// * Durable sink: a `Begin` / writes / `Commit` record group carrying
    ///   `commit_ts` and `parts_mask`, then the fsync policy runs at the
    ///   commit boundary.
    ///
    /// Returns `Ok(true)` when every byte of the group is durable on return
    /// (always `Ok(true)` for the ring, which has no crash story to
    /// promise), `Ok(false)` when the group is written but a weak fsync
    /// policy deferred the barrier.
    ///
    /// Durable I/O errors surface as [`IoFailure`] instead of a panic:
    /// transient faults are retried up to [`WAL_IO_ATTEMPTS`] times with
    /// backoff (the whole record group is staged up front, so a retry
    /// rewrites identical bytes without re-consuming `writes`); a permanent
    /// fault, an exhausted budget, or a failed rewind degrades the handle
    /// and returns an `IoClass::Permanent` failure — the caller must abort
    /// the transaction (`AbortReason::DurabilityFailed`) without acking.
    pub fn append_txn<'a>(
        &self,
        txn_id: u64,
        commit_ts: u64,
        parts_mask: u64,
        writes: impl Iterator<Item = WalWrite<'a>>,
    ) -> Result<bool, IoFailure> {
        if self.is_degraded() {
            return Err(degraded_error("wal append"));
        }
        match &mut *self.sink.lock() {
            WalSink::Ring(buf) => {
                buf.append_commit(
                    txn_id,
                    writes.map(|w| match w {
                        WalWrite::Update {
                            table,
                            row_id,
                            after,
                            ..
                        } => (table, row_id, after),
                        WalWrite::Insert {
                            table, key, row, ..
                        } => (table, key, row),
                    }),
                );
                Ok(true)
            }
            WalSink::Poisoned => Err(degraded_error("wal append")),
            WalSink::Durable { writer, records } => {
                // Stage the whole Begin / writes / Commit group first: the
                // iterator is consumed exactly once, and retries rewrite
                // the staged bytes verbatim.
                writer.stage_record(&WalRecord::Begin {
                    txn_id,
                    commit_ts,
                    parts_mask,
                });
                for w in writes {
                    match w {
                        WalWrite::Update {
                            table, key, after, ..
                        } => writer.stage_update(table.0, key, after),
                        WalWrite::Insert {
                            table,
                            key,
                            row,
                            secondary,
                        } => writer.stage_insert(
                            table.0,
                            key,
                            row,
                            secondary.map(|(i, k)| (i as u32, k)),
                        ),
                    }
                }
                writer.stage_record(&WalRecord::Commit { txn_id, commit_ts });

                // Phase 1: land the group, retrying transients after
                // cutting any torn prefix back out.
                let mut attempt = 1;
                loop {
                    match writer.flush_group() {
                        Ok(_) => break,
                        Err(e) => {
                            let f = IoFailure::new("wal append", e);
                            if let Err(re) = writer.rewind_partial() {
                                // The segment tail is in an unknown state:
                                // nothing more can be written safely.
                                writer.clear_group();
                                return Err(self.fail(IoFailure::new("wal rewind", re)));
                            }
                            if f.is_transient() && attempt < WAL_IO_ATTEMPTS {
                                self.io_retries.fetch_add(1, Ordering::Relaxed);
                                retry_backoff(attempt);
                                attempt += 1;
                                continue;
                            }
                            writer.clear_group();
                            return Err(self.fail(f));
                        }
                    }
                }

                // Phase 2: the durability barrier (per fsync policy).
                let mut attempt = 1;
                loop {
                    match writer.commit_boundary() {
                        Ok(durable) => {
                            *records += 1;
                            return Ok(durable);
                        }
                        Err(e) => {
                            let f = IoFailure::new("wal fsync", e);
                            if f.is_transient() && attempt < WAL_IO_ATTEMPTS {
                                self.io_retries.fetch_add(1, Ordering::Relaxed);
                                retry_backoff(attempt);
                                attempt += 1;
                                continue;
                            }
                            // The group is written but cannot be promised
                            // durable, and the commit is about to abort:
                            // remove it so recovery never replays an
                            // aborted transaction. If even that fails the
                            // group's fate is ambiguous — degrade either
                            // way and let heal + recovery re-establish a
                            // clean tail.
                            let _ = writer.abandon_group();
                            return Err(self.fail(f));
                        }
                    }
                }
            }
        }
    }

    /// Appends a checkpoint marker (durable sinks; a no-op on the ring)
    /// and returns the sink's current end LSN.
    pub fn append_checkpoint(&self, stable_ts: u64, cuts: &[Lsn]) -> Result<Lsn, IoFailure> {
        if self.is_degraded() {
            return Err(degraded_error("checkpoint append"));
        }
        match &mut *self.sink.lock() {
            WalSink::Ring(buf) => Ok(buf.bytes_logged()),
            WalSink::Poisoned => Err(degraded_error("checkpoint append")),
            WalSink::Durable { writer, .. } => {
                let mut attempt = 1;
                let at = loop {
                    writer.stage_record(&WalRecord::Checkpoint {
                        stable_ts,
                        cuts: cuts.to_vec(),
                    });
                    match writer.flush_group() {
                        Ok(at) => break at,
                        Err(e) => {
                            let f = IoFailure::new("checkpoint append", e);
                            writer.clear_group();
                            if let Err(re) = writer.rewind_partial() {
                                return Err(self.fail(IoFailure::new("wal rewind", re)));
                            }
                            if f.is_transient() && attempt < WAL_IO_ATTEMPTS {
                                self.io_retries.fetch_add(1, Ordering::Relaxed);
                                retry_backoff(attempt);
                                attempt += 1;
                                continue;
                            }
                            return Err(self.fail(f));
                        }
                    }
                };
                let mut attempt = 1;
                loop {
                    match writer.sync() {
                        Ok(()) => break,
                        Err(e) => {
                            let f = IoFailure::new("checkpoint fsync", e);
                            if f.is_transient() && attempt < WAL_IO_ATTEMPTS {
                                self.io_retries.fetch_add(1, Ordering::Relaxed);
                                retry_backoff(attempt);
                                attempt += 1;
                                continue;
                            }
                            let _ = writer.abandon_group();
                            return Err(self.fail(f));
                        }
                    }
                }
                debug_assert!(at < writer.lsn());
                Ok(writer.lsn())
            }
        }
    }

    /// Forces buffered bytes to disk (durable sinks; a no-op on the ring).
    pub fn sync(&self) -> Result<(), IoFailure> {
        if self.is_degraded() {
            return Err(degraded_error("wal fsync"));
        }
        match &mut *self.sink.lock() {
            WalSink::Ring(_) => Ok(()),
            WalSink::Poisoned => Err(degraded_error("wal fsync")),
            WalSink::Durable { writer, .. } => {
                let mut attempt = 1;
                loop {
                    match writer.sync() {
                        Ok(()) => return Ok(()),
                        Err(e) => {
                            let f = IoFailure::new("wal fsync", e);
                            if f.is_transient() && attempt < WAL_IO_ATTEMPTS {
                                self.io_retries.fetch_add(1, Ordering::Relaxed);
                                retry_backoff(attempt);
                                attempt += 1;
                                continue;
                            }
                            return Err(self.fail(f));
                        }
                    }
                }
            }
        }
    }

    /// The sink's current end position: the next LSN on a durable sink,
    /// total bytes appended on a ring.
    pub fn current_lsn(&self) -> Lsn {
        match &*self.sink.lock() {
            WalSink::Ring(buf) => buf.bytes_logged(),
            WalSink::Durable { writer, .. } => writer.lsn(),
            WalSink::Poisoned => 0,
        }
    }

    /// The durable sink's fsync policy (`None` on a ring or a poisoned
    /// handle).
    pub fn fsync_policy(&self) -> Option<FsyncPolicy> {
        match &*self.sink.lock() {
            WalSink::Ring(_) => None,
            WalSink::Durable { writer, .. } => Some(writer.policy()),
            WalSink::Poisoned => None,
        }
    }

    /// Total bytes appended over the sink's lifetime.
    pub fn bytes_logged(&self) -> u64 {
        match &*self.sink.lock() {
            WalSink::Ring(buf) => buf.bytes_logged(),
            WalSink::Durable { writer, .. } => writer.lsn(),
            WalSink::Poisoned => 0,
        }
    }

    /// Number of commit records (ring) / commit groups (durable) appended.
    pub fn records(&self) -> u64 {
        match &*self.sink.lock() {
            WalSink::Ring(buf) => buf.records(),
            WalSink::Durable { records, .. } => *records,
            WalSink::Poisoned => 0,
        }
    }
}

impl Default for WalHandle {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row::from(vec![Value::U64(7), Value::I64(-3), Value::from("hi")])
    }

    #[test]
    fn append_accounts_bytes_and_records() {
        let mut w = WalBuffer::for_tests();
        let r = row();
        w.append_commit(1, [(TableId(0), 5u64, &r)].into_iter());
        assert_eq!(w.records(), 1);
        // 4 magic + 8 txn + 8 table + 8 row + 8 len + (1+8)*2 values +
        // (1+8+2) string + 8 count.
        assert!(w.bytes_logged() > 40);
    }

    #[test]
    fn ring_wraps_without_panicking() {
        let mut w = WalBuffer::with_capacity(64);
        let r = row();
        for i in 0..100 {
            w.append_commit(i, [(TableId(0), i, &r)].into_iter());
        }
        assert_eq!(w.records(), 100);
        assert!(w.bytes_logged() > 64 * 10);
    }

    #[test]
    fn empty_write_set_still_logs_header() {
        let mut w = WalBuffer::for_tests();
        w.append_commit(9, std::iter::empty());
        assert_eq!(w.records(), 1);
        assert_eq!(w.bytes_logged(), 4 + 8 + 8);
    }

    #[test]
    fn scratch_encoding_preserves_record_format() {
        // Byte-exact format lock for the scratch-encoded record: magic +
        // txn id + per-write (table + row id + len + tagged values) +
        // write count. Guards the single-put rewrite of the append path.
        let mut w = WalBuffer::for_tests();
        let r = row(); // [U64, I64, Str("hi")]
        w.append_commit(1, [(TableId(0), 5u64, &r)].into_iter());
        let per_write = 8 + 8 + 8 + (1 + 8) + (1 + 8) + (1 + 8 + 2);
        assert_eq!(w.bytes_logged(), 4 + 8 + per_write + 8);
        // The scratch buffer is reused: a second identical append adds
        // exactly the same byte count (no header drift, no realloc-driven
        // size change).
        let before = w.bytes_logged();
        w.append_commit(2, [(TableId(0), 5u64, &r)].into_iter());
        assert_eq!(w.bytes_logged() - before, before);
        assert_eq!(w.records(), 2);
    }
}
