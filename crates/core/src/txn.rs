//! Transaction handles.
//!
//! A transaction has two halves:
//!
//! * [`TxnShared`] — the part *other* transactions touch concurrently:
//!   timestamp, status word, the `commit_semaphore` of paper §3.2.1 and a
//!   condvar used to park for lock grants / semaphore-zero / wound delivery.
//!   Lock entries hold `Arc<TxnShared>`s.
//! * [`TxnCtx`] — the worker-local execution state: the access set with the
//!   local row copies the paper mandates ("Bamboo keeps a local copy of the
//!   tuple for each read request", §3.2.2), buffered inserts, per-attempt
//!   timers, and protocol-specific scratch (Silo read set, IC3 piece state).

use crate::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bamboo_storage::{Row, RowId, TableId, Tuple};
use parking_lot::{Condvar, Mutex};

use crate::meta::TupleCc;
use crate::ts::UNASSIGNED;

/// Lock modes (paper §2.1: shared SH and exclusive EX).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock.
    Sh,
    /// Exclusive (write) lock.
    Ex,
}

impl LockMode {
    /// True when two locks of these modes cannot coexist.
    #[inline]
    pub fn conflicts(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Ex, _) | (_, LockMode::Ex))
    }
}

/// Why a transaction aborted. Paper §4.1 distinguishes (1) wounds,
/// (2) cascading aborts and (3) self/user aborts; the protocol-specific
/// variants below refine that taxonomy for the baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// Wounded by a higher-priority transaction (Wound-Wait rule).
    Wounded,
    /// Aborted cascadingly because a transaction it read dirty data from
    /// aborted (paper challenge 2).
    Cascade,
    /// Self-aborted on conflict with an older owner (Wait-Die rule).
    WaitDie,
    /// Self-aborted on any conflict (No-Wait rule).
    NoWait,
    /// Silo read-set validation failed at commit.
    SiloValidation,
    /// Silo could not lock its write set at commit.
    SiloLockFail,
    /// User-initiated abort (e.g. TPC-C NewOrder invalid item).
    User,
    /// IC3 piece validation failed (optimistic execution).
    Ic3Validation,
    /// A snapshot-mode read resolved to a row that does not exist or is
    /// not yet visible at the snapshot timestamp (e.g. inserted after the
    /// snapshot was taken). Callers scanning volatile key spaces treat it
    /// as "row absent" ([`crate::session::Txn::read_opt`] does exactly
    /// that); surfacing it as an abort keeps the read signature uniform.
    SnapshotNotVisible,
    /// A snapshot-mode read found the commit clock more than the
    /// transaction's configured lag cap ahead of its snapshot timestamp
    /// ([`crate::session::TxnOptions::snapshot_max_lag`]): the reader is
    /// pinning version chains "too old" and is aborted so the GC
    /// watermark can advance. Off unless the cap was set; retrying takes
    /// a fresh snapshot.
    SnapshotTooOld,
    /// The durable log could not persist this transaction's commit record
    /// group (permanent storage fault or exhausted retry budget), and the
    /// owning partition degrades to read-only until healed
    /// ([`crate::PartitionedDb::heal`]). Not retryable — the partition
    /// fails fast until then. Two flavors share this reason:
    ///
    /// * **Append-time** (every policy): the commit point is revoked —
    ///   locks release, nothing installs, the commit never happened.
    /// * **Ack-time** (`FsyncPolicy::GroupCommit` only): the batch fsync
    ///   failed *after* the commit installed and released its locks. The
    ///   install stands in memory but was never acknowledged, and crash
    ///   recovery's horizon cut may drop it; the post-heal sealing
    ///   checkpoint re-seals the gap (see `DURABILITY.md` "Group commit").
    DurabilityFailed,
}

/// The terminal error of a transaction attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Abort(pub AbortReason);

impl std::fmt::Display for Abort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transaction aborted: {:?}", self.0)
    }
}

impl std::error::Error for Abort {}

/// Status word values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TxnStatus {
    /// Executing or waiting.
    Running = 0,
    /// Marked for abort (wound / cascade / self); the owning worker will
    /// notice and run the release path.
    Aborted = 1,
    /// Passed its commit point (paper Definition 1): logged and immune to
    /// wounds; releases will install its writes.
    Committed = 2,
}

/// How long a parked transaction sleeps between predicate re-checks. A
/// notification wakes it immediately; the timeout only bounds lost-wakeup
/// windows.
const PARK_TIMEOUT: Duration = Duration::from_micros(100);

/// Pause-hinted spin iterations [`TxnShared::wait_until`] burns before
/// falling back to the condvar park (sub-microsecond waits then cost no
/// park/unpark round trip).
const SPIN_BEFORE_PARK: u32 = 64;

/// The concurrently-shared half of a transaction.
pub struct TxnShared {
    /// Unique incarnation id (also the tie-break for unassigned timestamps).
    pub id: u64,
    ts: AtomicU64,
    status: AtomicU8,
    /// Paper §3.2.1: incremented when this transaction starts depending on a
    /// retired conflicting transaction; it may reach its commit point only
    /// once the semaphore is zero (Algorithm 1 lines 4–5).
    pub commit_semaphore: AtomicI64,
    /// Number of IC3 pieces this transaction has completed (used by other
    /// transactions' piece-level waits).
    pub pieces_done: AtomicU32,
    /// IC3: set once commit installs / abort withdrawals fully finished.
    /// Commit-order waits block on this rather than on the commit point so
    /// a dependent's install can never race ahead of its predecessor's.
    released: crate::sync::atomic::AtomicBool,
    /// Why this transaction was told to abort (valid once status=Aborted).
    abort_reason: AtomicU8,
    /// Threads currently parked on `cond`. [`TxnShared::notify`] skips the
    /// park lock entirely while this is zero — the common case, since
    /// waiters spin before parking. The unsynchronized check can lose a
    /// wakeup racing a parking thread, but every park is bounded by
    /// [`PARK_TIMEOUT`], so the miss costs at most one timeout tick.
    waiters: AtomicU32,
    park: Mutex<()>,
    cond: Condvar,
}

fn encode_reason(r: AbortReason) -> u8 {
    match r {
        AbortReason::Wounded => 0,
        AbortReason::Cascade => 1,
        AbortReason::WaitDie => 2,
        AbortReason::NoWait => 3,
        AbortReason::SiloValidation => 4,
        AbortReason::SiloLockFail => 5,
        AbortReason::User => 6,
        AbortReason::Ic3Validation => 7,
        AbortReason::SnapshotNotVisible => 8,
        AbortReason::SnapshotTooOld => 9,
        AbortReason::DurabilityFailed => 10,
    }
}

fn decode_reason(v: u8) -> AbortReason {
    match v {
        0 => AbortReason::Wounded,
        1 => AbortReason::Cascade,
        2 => AbortReason::WaitDie,
        3 => AbortReason::NoWait,
        4 => AbortReason::SiloValidation,
        5 => AbortReason::SiloLockFail,
        6 => AbortReason::User,
        7 => AbortReason::Ic3Validation,
        8 => AbortReason::SnapshotNotVisible,
        9 => AbortReason::SnapshotTooOld,
        _ => AbortReason::DurabilityFailed,
    }
}

impl TxnShared {
    /// Creates a running transaction with the given id and timestamp
    /// (`UNASSIGNED` under dynamic timestamp assignment).
    pub fn new(id: u64, ts: u64) -> Arc<Self> {
        Arc::new(TxnShared {
            id,
            ts: AtomicU64::new(ts),
            status: AtomicU8::new(TxnStatus::Running as u8),
            commit_semaphore: AtomicI64::new(0),
            pieces_done: AtomicU32::new(0),
            released: crate::sync::atomic::AtomicBool::new(false),
            abort_reason: AtomicU8::new(0),
            waiters: AtomicU32::new(0),
            park: Mutex::new(()),
            cond: Condvar::new(),
        })
    }

    /// Current timestamp (possibly [`UNASSIGNED`]).
    #[inline]
    pub fn ts(&self) -> u64 {
        self.ts.load(Ordering::Acquire)
    }

    /// Priority key: smaller sorts first = higher priority. Unassigned
    /// timestamps sort last, tie-broken by arrival id so ordering stays
    /// total and stable.
    #[inline]
    pub fn prio(&self) -> (u64, u64) {
        (self.ts(), self.id)
    }

    /// Assigns a timestamp if none was assigned yet (Algorithm 3,
    /// `set_ts_if_unassigned`). Returns the winning timestamp.
    pub fn assign_ts_if_unassigned(&self, source: &crate::ts::TsSource) -> u64 {
        let cur = self.ts();
        if cur != UNASSIGNED {
            return cur;
        }
        let fresh = source.assign();
        match self
            .ts
            .compare_exchange(UNASSIGNED, fresh, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => fresh,
            Err(winner) => winner,
        }
    }

    /// Current status.
    #[inline]
    pub fn status(&self) -> TxnStatus {
        match self.status.load(Ordering::Acquire) {
            0 => TxnStatus::Running,
            1 => TxnStatus::Aborted,
            _ => TxnStatus::Committed,
        }
    }

    /// True once marked for abort.
    #[inline]
    pub fn is_aborted(&self) -> bool {
        self.status.load(Ordering::Acquire) == TxnStatus::Aborted as u8
    }

    /// Wound/cascade entry point: transitions Running → Aborted. Fails (and
    /// is a no-op) when the target already aborted or passed its commit
    /// point — this CAS is what makes the commit point (Definition 1)
    /// atomic with respect to wounds.
    pub fn set_abort(&self, reason: AbortReason) -> bool {
        let ok = self
            .status
            .compare_exchange(
                TxnStatus::Running as u8,
                TxnStatus::Aborted as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        if ok {
            self.abort_reason
                .store(encode_reason(reason), Ordering::Release);
            self.notify();
        }
        ok
    }

    /// The reason recorded by the successful [`TxnShared::set_abort`].
    pub fn abort_reason(&self) -> AbortReason {
        decode_reason(self.abort_reason.load(Ordering::Acquire))
    }

    /// Revokes a won commit point: Committed → Aborted, recording `reason`.
    /// Only the owning worker may call this, and only **before** any
    /// install, release, or acknowledgment happened — the one legitimate
    /// caller is the commit path whose durable log append failed after
    /// [`TxnShared::try_commit_point`] succeeded. At that moment nothing
    /// observed `Committed` irreversibly: dependents still hold their
    /// semaphore counts (the abort release path cascades them), a waiter
    /// blocked on a committed-unreleased retired entry re-evaluates when
    /// the release path mutates the lock entry, and a wounder whose
    /// `set_abort` lost simply waits for the release either way.
    pub fn revoke_commit(&self, reason: AbortReason) -> bool {
        let ok = self
            .status
            .compare_exchange(
                TxnStatus::Committed as u8,
                TxnStatus::Aborted as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        if ok {
            self.abort_reason
                .store(encode_reason(reason), Ordering::Release);
            self.notify();
        }
        ok
    }

    /// Commit-point transition: Running → Committed. Fails when a wound won
    /// the race, in which case the caller must abort.
    pub fn try_commit_point(&self) -> bool {
        self.status
            .compare_exchange(
                TxnStatus::Running as u8,
                TxnStatus::Committed as u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// True once the transaction finished (committed or aborted) — IC3's
    /// accessor lists use this to skip dead entries.
    #[inline]
    pub fn is_finished(&self) -> bool {
        self.status.load(Ordering::Acquire) != TxnStatus::Running as u8
    }

    /// Marks installs/withdrawals complete (IC3 release barrier).
    #[inline]
    pub fn mark_released(&self) {
        self.released.store(true, Ordering::Release);
        self.notify();
    }

    /// True once [`TxnShared::mark_released`] ran.
    #[inline]
    pub fn is_released(&self) -> bool {
        self.released.load(Ordering::Acquire)
    }

    /// Wakes the owning worker if it is parked. Lock-free when nobody is
    /// parked (the common case with the pre-park spin): one atomic load.
    pub fn notify(&self) {
        // ordering: SeqCst — the waiter's fetch_add and this load must
        // fall into one total order with the state flip that precedes this
        // notify: either the waiter sees the new state before parking, or
        // this load sees the waiter and takes the park lock to wake it.
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        let _guard = self.park.lock();
        self.cond.notify_all();
    }

    /// Parks until `pred()` is true or the transaction is marked aborted.
    /// Returns `Err(Abort)` on abort. Used for lock waits and the
    /// commit-semaphore wait of Algorithm 1.
    ///
    /// A short bounded spin precedes the condvar park: lock grants and
    /// commit-semaphore zeroings routinely land within a microsecond, and
    /// a park/unpark round trip (syscall both sides) costs more than the
    /// whole wait in that regime. The spin only burns `SPIN_BEFORE_PARK`
    /// pause-hinted iterations before falling back to parking, so long
    /// waits still sleep.
    pub fn wait_until(&self, mut pred: impl FnMut() -> bool) -> Result<(), Abort> {
        loop {
            if self.is_aborted() {
                return Err(Abort(self.abort_reason()));
            }
            if pred() {
                return Ok(());
            }
            for _ in 0..SPIN_BEFORE_PARK {
                std::hint::spin_loop();
                if self.is_aborted() {
                    return Err(Abort(self.abort_reason()));
                }
                if pred() {
                    return Ok(());
                }
            }
            let mut guard = self.park.lock();
            // Re-check under the park lock: notifiers flip state first, then
            // take this lock to notify, so a state change cannot slip
            // between this check and the wait. (A notifier that raced the
            // `waiters` publication below may still skip the wakeup; the
            // bounded `wait_for` re-checks within PARK_TIMEOUT.)
            if self.is_aborted() || pred() {
                continue;
            }
            // ordering: SeqCst — pairs with the SeqCst `waiters` load in
            // `notify` (see there); publication must not sink below the
            // predicate re-check or above the wait.
            self.waiters.fetch_add(1, Ordering::SeqCst);
            self.cond.wait_for(&mut guard, PARK_TIMEOUT);
            // ordering: SeqCst — symmetric retraction of the publication.
            self.waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Parks briefly (until notified or the park timeout elapses). Callers
    /// re-check their predicate in a loop; the timeout bounds any missed
    /// notification window.
    pub fn park_brief(&self) {
        let mut guard = self.park.lock();
        // ordering: SeqCst — same pairing as `wait_until`'s publication.
        self.waiters.fetch_add(1, Ordering::SeqCst);
        self.cond.wait_for(&mut guard, PARK_TIMEOUT);
        // ordering: SeqCst — symmetric retraction of the publication.
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Non-blocking semaphore read.
    #[inline]
    pub fn semaphore(&self) -> i64 {
        self.commit_semaphore.load(Ordering::Acquire)
    }

    /// Increment the commit semaphore (a dirty-read dependency appeared).
    #[inline]
    pub fn semaphore_inc(&self) {
        self.commit_semaphore.fetch_add(1, Ordering::AcqRel);
    }

    /// Decrement the commit semaphore (a dependency cleared); wakes the
    /// owner when it reaches zero.
    #[inline]
    pub fn semaphore_dec(&self) {
        if self.commit_semaphore.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.notify();
        }
    }
}

impl std::fmt::Debug for TxnShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnShared")
            .field("id", &self.id)
            .field("ts", &self.ts())
            .field("status", &self.status())
            .field("semaphore", &self.semaphore())
            .finish()
    }
}

/// Snapshot-mode state of a [`TxnCtx`]: the registry grant (which carries
/// the snapshot timestamp) plus the optional "snapshot too old" lag cap
/// from [`crate::session::TxnOptions::snapshot_max_lag`].
#[derive(Clone, Copy, Debug)]
pub struct SnapshotCtx {
    /// The registry registration; released exactly once by
    /// [`TxnCtx::end_snapshot`].
    pub grant: crate::db::SnapshotGrant,
    /// Abort reads with [`AbortReason::SnapshotTooOld`] once the commit
    /// clock's stable point runs more than this many timestamps ahead of
    /// the snapshot. `None` (the default) = never.
    pub max_lag: Option<u64>,
}

impl SnapshotCtx {
    /// The snapshot timestamp reads resolve at.
    #[inline]
    pub fn ts(&self) -> u64 {
        self.grant.ts
    }
}

/// Where this transaction's lock entry currently lives for an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessState {
    /// In the tuple's `owners` list.
    Owner,
    /// In the tuple's `retired` list (paper Figure 2).
    Retired,
    /// Entry already removed (released, or never had a lock — Silo reads).
    Released,
}

/// One tuple accessed by the transaction, with its local row copy.
pub struct Access {
    /// Table the tuple belongs to.
    pub table: TableId,
    /// The tuple.
    pub tuple: Arc<Tuple<TupleCc>>,
    /// Lock mode held (strongest requested so far).
    pub mode: LockMode,
    /// Local copy: read image, or the in-progress write image.
    pub local: Row,
    /// True once the local copy was modified.
    pub dirty: bool,
    /// Where our lock entry lives.
    pub state: AccessState,
    /// Silo: TID observed at read time. IC3: id of the version-chain writer
    /// observed at access time (0 = committed base). Validation token.
    pub observed_tid: u64,
    /// IC3: the tuple's install sequence number observed at access time —
    /// catches predecessors that committed *and installed* between our read
    /// and our piece validation (their version leaves the chain, so the
    /// tail id alone would falsely validate).
    pub observed_seq: u64,
    /// IC3: the group (merged piece) this access belongs to.
    pub group: u32,
}

/// A buffered insert, applied at commit (storage-level inserts are
/// immediately visible, so buffering gives abort atomicity; see DESIGN.md on
/// phantom handling).
pub struct PendingInsert {
    /// Destination table.
    pub table: TableId,
    /// Primary key.
    pub key: u64,
    /// Row image.
    pub row: Row,
    /// Optional secondary-index maintenance: (index slot, secondary key).
    pub secondary: Option<(usize, u64)>,
}

/// Per-attempt wall-clock timers, matching the paper's runtime breakdown
/// (Figures 4b/5b/6b/...: "lock wait", "commit wait", with "abort" derived
/// by the executor from failed attempts).
#[derive(Clone, Copy, Debug, Default)]
pub struct TxnTimers {
    /// Time parked waiting for lock grants.
    pub lock_wait: Duration,
    /// Time parked waiting for `commit_semaphore == 0`.
    pub commit_wait: Duration,
}

/// One IC3 commit-order dependency.
pub struct Ic3Dep {
    /// The predecessor transaction.
    pub txn: Arc<TxnShared>,
    /// Whether the dependency involves the predecessor's *write* (true ⇒
    /// its abort cascades to us; false ⇒ pure write-after-read ordering).
    pub wrote: bool,
    /// The predecessor's template index (drives IC3's order-preservation
    /// waits: we may not access a table before the predecessor has passed
    /// its conflicting piece on that table).
    pub template: u32,
}

/// IC3 per-attempt state.
#[derive(Default)]
pub struct Ic3Ctx {
    /// Index of the registered template being executed.
    pub template: usize,
    /// Original (pre-merge) piece currently executing.
    pub piece: usize,
    /// Group (merged piece) currently executing.
    pub group: usize,
    /// Transactions this one must commit after.
    pub deps: Vec<Ic3Dep>,
}

/// Worker-local transaction context.
pub struct TxnCtx {
    /// Shared half.
    pub shared: Arc<TxnShared>,
    /// Access set in access order.
    pub accesses: Vec<Access>,
    index: HashMap<(u32, RowId), usize>,
    /// Buffered inserts.
    pub inserts: Vec<PendingInsert>,
    /// Read-only snapshot mode: `Some` when every read resolves against
    /// the committed version chains at the grant's timestamp with zero
    /// lock-manager interaction. Writes are forbidden. Set by
    /// [`crate::protocol::Protocol::begin_snapshot`], cleared (and the
    /// registry entry released) by [`TxnCtx::end_snapshot`].
    pub snapshot: Option<SnapshotCtx>,
    /// Commit timestamp allocated at the commit point (0 until then);
    /// versioned installs and commit-time inserts are tagged with it.
    pub commit_ts: u64,
    /// Lock-manager acquisitions this attempt (lock table requests, Silo
    /// write-set locks). Snapshot-mode attempts must end with 0 — the
    /// stats layer asserts the read path truly bypasses the lock manager.
    pub locks_acquired: u64,
    /// Declared number of operations (stored-procedure mode) for the δ
    /// heuristic of Optimization 2; `None` in interactive mode.
    pub planned_ops: Option<usize>,
    /// Operations issued so far this attempt.
    pub op_seq: usize,
    /// Phase timers.
    pub timers: TxnTimers,
    /// Opacity requested (§3.4): accesses wait out dirty state and never
    /// read uncommitted versions; the transaction runs effectively under
    /// plain Wound-Wait.
    pub opaque: bool,
    /// Attempt start time (for the adaptive clause of Optimization 2).
    pub started: Instant,
    /// Silo read set: (access index) entries live in `accesses` with
    /// `observed_tid`; this holds extra read-only observations.
    pub silo_reads: Vec<(Arc<Tuple<TupleCc>>, u64)>,
    /// IC3 state.
    pub ic3: Ic3Ctx,
    /// Group-commit durability ticket, set by a successful commit under
    /// `FsyncPolicy::GroupCommit`: the session must wait it out before
    /// acknowledging the client (`None` everywhere else — the commit was
    /// durable, or never promised to be, when `commit` returned).
    pub durability: Option<crate::wal::DurabilityTicket>,
}

impl TxnCtx {
    /// Fresh context for one attempt.
    pub fn new(shared: Arc<TxnShared>) -> Self {
        TxnCtx {
            shared,
            accesses: Vec::with_capacity(16),
            index: HashMap::with_capacity(16),
            inserts: Vec::new(),
            snapshot: None,
            commit_ts: 0,
            locks_acquired: 0,
            planned_ops: None,
            op_seq: 0,
            timers: TxnTimers::default(),
            opaque: false,
            started: Instant::now(),
            silo_reads: Vec::new(),
            ic3: Ic3Ctx::default(),
            durability: None,
        }
    }

    /// Finds an existing access of `(table, key)`. Keyed by *primary key*,
    /// not row id: row ids are per-shard slab positions, so on a
    /// partitioned database two tuples of one table on different
    /// partitions can share a row id — the primary key is unique across
    /// the whole logical keyspace (replicated tables always resolve to
    /// the local replica, so one key still means one tuple per
    /// transaction).
    #[inline]
    pub fn find_access(&self, table: TableId, key: u64) -> Option<usize> {
        self.index.get(&(table.0, key)).copied()
    }

    /// Drops the cache entry for `(table, key)` so the next access of the
    /// key takes a fresh acquire (read-committed re-reads, read-uncommitted
    /// re-writes).
    pub fn forget_access(&mut self, table: TableId, key: u64) {
        self.index.remove(&(table.0, key));
    }

    /// Records a new access and returns its index.
    pub fn push_access(&mut self, access: Access) -> usize {
        let idx = self.accesses.len();
        self.index.insert((access.table.0, access.tuple.key), idx);
        self.accesses.push(access);
        idx
    }

    /// Timestamp shortcut.
    #[inline]
    pub fn ts(&self) -> u64 {
        self.shared.ts()
    }

    /// Returns an abort error carrying the shared handle's recorded reason.
    pub fn abort_err(&self) -> Abort {
        Abort(self.shared.abort_reason())
    }

    /// Panics when this context is a read-only snapshot: every protocol's
    /// write paths call this before mutating, keeping the enforcement (and
    /// its message) uniform.
    #[inline]
    pub fn forbid_snapshot_write(&self, op: &str) {
        assert!(
            self.snapshot.is_none(),
            "read-only snapshot transactions cannot {op}"
        );
    }

    /// Ends snapshot mode: releases the registry entry so the GC
    /// watermark can advance past this snapshot. Idempotent; called by
    /// every protocol's commit and abort paths.
    pub fn end_snapshot(&mut self, db: &crate::db::Database) {
        if let Some(snap) = self.snapshot.take() {
            db.release_snapshot(snap.grant);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ts::TsSource;

    #[test]
    fn lock_mode_conflicts() {
        assert!(!LockMode::Sh.conflicts(LockMode::Sh));
        assert!(LockMode::Sh.conflicts(LockMode::Ex));
        assert!(LockMode::Ex.conflicts(LockMode::Sh));
        assert!(LockMode::Ex.conflicts(LockMode::Ex));
    }

    #[test]
    fn wound_then_commit_point_fails() {
        let t = TxnShared::new(1, 10);
        assert!(t.set_abort(AbortReason::Wounded));
        assert!(!t.try_commit_point());
        assert_eq!(t.status(), TxnStatus::Aborted);
        assert_eq!(t.abort_reason(), AbortReason::Wounded);
    }

    #[test]
    fn commit_point_then_wound_fails() {
        let t = TxnShared::new(1, 10);
        assert!(t.try_commit_point());
        assert!(!t.set_abort(AbortReason::Wounded));
        assert_eq!(t.status(), TxnStatus::Committed);
    }

    #[test]
    fn double_wound_reports_first_reason() {
        let t = TxnShared::new(1, 10);
        assert!(t.set_abort(AbortReason::Cascade));
        assert!(!t.set_abort(AbortReason::Wounded));
        assert_eq!(t.abort_reason(), AbortReason::Cascade);
    }

    #[test]
    fn semaphore_inc_dec() {
        let t = TxnShared::new(1, 10);
        t.semaphore_inc();
        t.semaphore_inc();
        assert_eq!(t.semaphore(), 2);
        t.semaphore_dec();
        t.semaphore_dec();
        assert_eq!(t.semaphore(), 0);
    }

    #[test]
    fn wait_until_observes_abort() {
        let t = TxnShared::new(1, 10);
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || t2.wait_until(|| false));
        std::thread::sleep(Duration::from_millis(5));
        t.set_abort(AbortReason::Wounded);
        assert_eq!(h.join().unwrap(), Err(Abort(AbortReason::Wounded)));
    }

    #[test]
    fn wait_until_observes_semaphore_zero() {
        let t = TxnShared::new(1, 10);
        t.semaphore_inc();
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            let t3 = Arc::clone(&t2);
            t2.wait_until(move || t3.semaphore() == 0)
        });
        std::thread::sleep(Duration::from_millis(5));
        t.semaphore_dec();
        assert_eq!(h.join().unwrap(), Ok(()));
    }

    #[test]
    fn dynamic_ts_assignment_is_idempotent() {
        let src = TsSource::new();
        let t = TxnShared::new(7, crate::ts::UNASSIGNED);
        assert_eq!(t.ts(), crate::ts::UNASSIGNED);
        let a = t.assign_ts_if_unassigned(&src);
        let b = t.assign_ts_if_unassigned(&src);
        assert_eq!(a, b);
        assert_eq!(t.ts(), a);
        assert_ne!(a, crate::ts::UNASSIGNED);
    }

    #[test]
    fn prio_orders_unassigned_last() {
        let assigned = TxnShared::new(100, 5);
        let unassigned = TxnShared::new(1, crate::ts::UNASSIGNED);
        assert!(assigned.prio() < unassigned.prio());
    }
}
