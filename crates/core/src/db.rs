//! The database: a storage catalog instantiated with [`crate::TupleCc`]
//! metadata plus the global counters the protocols share (timestamp source,
//! transaction-id allocator, Silo epoch).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bamboo_storage::{Catalog, Schema, Table, TableId};

use crate::meta::TupleCc;
use crate::ts::TsSource;

/// A loaded database shared by all worker threads.
pub struct Database {
    catalog: Catalog<TupleCc>,
    /// Global timestamp source (Wound-Wait priorities).
    pub ts_source: TsSource,
    /// Silo epoch counter (advanced by the executor).
    pub epoch: AtomicU64,
    txn_ids: AtomicU64,
}

impl Database {
    /// Starts building a database: register tables, then [`DatabaseBuilder::build`].
    pub fn builder() -> DatabaseBuilder {
        DatabaseBuilder {
            catalog: Catalog::new(),
        }
    }

    /// Table accessor.
    #[inline]
    pub fn table(&self, id: TableId) -> &Arc<Table<TupleCc>> {
        self.catalog.table(id)
    }

    /// Table id by name (setup paths).
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.catalog.table_id(name)
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog<TupleCc> {
        &self.catalog
    }

    /// Allocates a unique transaction incarnation id.
    #[inline]
    pub fn next_txn_id(&self) -> u64 {
        self.txn_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Total rows across all tables (sanity checks / stats).
    pub fn total_rows(&self) -> usize {
        self.catalog.tables().iter().map(|t| t.len()).sum()
    }
}

/// Builder for [`Database`].
pub struct DatabaseBuilder {
    catalog: Catalog<TupleCc>,
}

impl DatabaseBuilder {
    /// Registers a table.
    pub fn add_table(&mut self, name: &str, schema: Schema) -> TableId {
        self.catalog.add_table(name, schema)
    }

    /// Registers a table pre-sized for `cap` tuples.
    pub fn add_table_with_capacity(&mut self, name: &str, schema: Schema, cap: usize) -> TableId {
        self.catalog.add_table_with_capacity(name, schema, cap)
    }

    /// Finalizes the database.
    pub fn build(self) -> Arc<Database> {
        Arc::new(Database {
            catalog: self.catalog,
            ts_source: TsSource::new(),
            epoch: AtomicU64::new(1),
            txn_ids: AtomicU64::new(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_storage::DataType;

    #[test]
    fn builder_registers_tables() {
        let mut b = Database::builder();
        let a = b.add_table("a", Schema::build().column("k", DataType::U64));
        let db = b.build();
        assert_eq!(db.table_id("a"), Some(a));
        assert_eq!(db.table(a).name, "a");
        assert_eq!(db.total_rows(), 0);
    }

    #[test]
    fn txn_ids_are_unique() {
        let db = Database::builder().build();
        let a = db.next_txn_id();
        let b = db.next_txn_id();
        assert_ne!(a, b);
    }
}
