//! The database: a storage catalog instantiated with [`crate::TupleCc`]
//! metadata plus the global counters the protocols share (timestamp source,
//! transaction-id allocator, Silo epoch) and the MVCC snapshot machinery
//! (commit clock, active-snapshot registry, published GC watermark).
//!
//! # The lock-free commit pipeline
//!
//! Every commit brackets its install phase with
//! [`CommitClock::allocate`]/[`CommitClock::finish`], and every snapshot
//! begins with [`CommitClock::stable`] plus a registry registration — so
//! these five operations are the hottest shared seam in the system. None
//! of them acquires a `Mutex`/`RwLock` on the steady-state path (the
//! commit-pipeline stress test asserts this against the lock counter in
//! the vendored `parking_lot` shim):
//!
//! * [`CommitClock`] is an atomic `next` counter plus a fixed ring of
//!   cache-padded per-slot atomics recording finished timestamps; the
//!   stable point is maintained in a cached atomic advanced by finishers.
//! * [`SnapshotRegistry`] is a set of sharded epoch bins — each bin one
//!   packed `AtomicU64` holding `(epoch, refcount)` — so concurrent
//!   snapshot register/release operations touch disjoint cache lines and
//!   never serialize against each other or against commits.
//!
//! # Memory-ordering contract
//!
//! The invariant the orderings protect: **a snapshot taken at timestamp
//! `s` observes every install of every commit with timestamp `<= s`**, and
//! **the published GC watermark never exceeds the timestamp of any live
//! snapshot**.
//!
//! * `finish(ts)` stores the slot with `Release` *after* the commit's
//!   installs, then issues a `SeqCst` fence and advances the cached
//!   stable point with an `AcqRel` compare-exchange. The fence totally
//!   orders concurrent finishers' store-then-scan sequences, so at least
//!   one of any pair observes the other's slot and walks `stable` over
//!   both (without it, store-buffering could strand a finished commit
//!   outside `stable` forever). Advancing to `t` requires an `Acquire`
//!   load of slot `t` (synchronizing with `t`'s finisher) and an
//!   `Acquire` view of the previous stable value (synchronizing with the
//!   previous advancer), so a reader that `Acquire`-loads `stable() == s`
//!   transitively happens-after the installs of *every* commit `<= s`.
//! * Snapshot registration orders a `SeqCst` bin update **before** a
//!   `SeqCst` re-read of the stable point (which becomes the snapshot
//!   timestamp), while the watermark publisher `SeqCst`-reads the stable
//!   point **before** `SeqCst`-scanning the bins. In the single total
//!   order of those operations, a publisher that misses a registration
//!   must have read a stable value no newer than the one the registrant
//!   adopted — so the published floor (which is capped by that stable
//!   read) can never exceed the registrant's snapshot timestamp. A
//!   publisher that *sees* the registration is capped by the bin's epoch
//!   floor instead, which is `<=` the snapshot timestamp by construction.
//! * The watermark itself is published with `fetch_max` (`AcqRel`), so a
//!   stale racer can never move it backwards.

use std::sync::Arc;

use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use bamboo_storage::{Catalog, PartitionId, Router, Schema, Table, TableId};

use crate::meta::TupleCc;
use crate::partition::PartitionStats;
use crate::sync::CachePadded;
use crate::ts::TsSource;
use crate::wal::{DurabilityHorizon, WalHandle};

/// Default epoch-tick period: every `EPOCH_COMMITS`-th commit advances the
/// Silo epoch and republishes the snapshot watermark (the epoch advance
/// doubles as the watermark publisher, so GC keeps up even when no
/// snapshot churn refreshes it). Tunable per database through
/// [`DbOptions::epoch_commits`].
pub const EPOCH_COMMITS: u64 = 64;

/// Database-level tuning knobs, applied at build time through
/// [`DatabaseBuilder::with_options`] (or
/// [`crate::partition::PartitionedDbBuilder::with_options`]). The defaults
/// reproduce the historical hard-coded constants, so an un-tuned database
/// behaves exactly as before the knobs existed.
#[derive(Clone, Debug)]
pub struct DbOptions {
    /// Epoch-tick period: every `epoch_commits`-th commit advances the
    /// Silo epoch and republishes the snapshot GC watermark. Smaller
    /// values keep the watermark fresher (tighter version-chain GC) at the
    /// cost of more registry scans; larger values amortize the scan
    /// further but let chains run up to one extra epoch of commits long.
    /// Must be at least 1.
    pub epoch_commits: u64,
    /// Version-chain trim threshold: a tuple's chain trims once it
    /// retains more than this many older versions even when the watermark
    /// looks unchanged (see
    /// [`bamboo_storage::VersionChain::install_at_with`]).
    pub trim_threshold: usize,
    /// Directory for durable per-partition WAL segments. `None` (the
    /// default) keeps the historical in-memory ring: no files, no fsync,
    /// nothing survives the process. Set through
    /// [`DbOptions::with_wal_dir`] to make
    /// [`crate::partition::PartitionedDbBuilder::build`] open file-backed
    /// segments instead.
    pub wal_dir: Option<std::path::PathBuf>,
    /// When (if ever) the durable log fsyncs on the commit path. Ignored
    /// unless [`DbOptions::wal_dir`] is set. See
    /// [`bamboo_storage::FsyncPolicy`] for the durability horizon each
    /// policy buys.
    pub fsync_policy: bamboo_storage::FsyncPolicy,
    /// Size at which a durable WAL segment rotates to a fresh file.
    /// Ignored unless [`DbOptions::wal_dir`] is set.
    pub segment_bytes: u64,
    /// Storage backend behind every durable file operation (WAL segments
    /// and checkpoint files). `None` (the default) uses the real
    /// filesystem; the chaos suite installs a seeded
    /// [`bamboo_storage::FaultBackend`] here through
    /// [`DbOptions::with_log_backend`]. Ignored unless
    /// [`DbOptions::wal_dir`] is set.
    pub log_backend: Option<std::sync::Arc<dyn bamboo_storage::LogBackend>>,
}

/// Default durable-segment rotation size (8 MiB).
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 << 20;

impl Default for DbOptions {
    fn default() -> Self {
        DbOptions {
            epoch_commits: EPOCH_COMMITS,
            trim_threshold: bamboo_storage::DEFAULT_TRIM_THRESHOLD,
            wal_dir: None,
            fsync_policy: bamboo_storage::FsyncPolicy::Never,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            log_backend: None,
        }
    }
}

impl DbOptions {
    /// Default options (the historical constants).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the epoch-tick period (clamped to at least 1).
    pub fn with_epoch_commits(mut self, n: u64) -> Self {
        self.epoch_commits = n.max(1);
        self
    }

    /// Sets the version-chain trim threshold.
    pub fn with_trim_threshold(mut self, n: usize) -> Self {
        self.trim_threshold = n;
        self
    }

    /// Enables durable WAL segments under `dir` (per-partition files; the
    /// directory is created on build if missing).
    pub fn with_wal_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.wal_dir = Some(dir.into());
        self
    }

    /// Sets the fsync policy of the durable log (no effect without
    /// [`DbOptions::with_wal_dir`]).
    pub fn with_fsync_policy(mut self, policy: bamboo_storage::FsyncPolicy) -> Self {
        self.fsync_policy = policy;
        self
    }

    /// Sets the durable-segment rotation size in bytes.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Installs a storage backend behind every durable file operation
    /// (segments *and* checkpoint files). The chaos suite passes a
    /// [`bamboo_storage::FaultBackend`] wrapping a seeded
    /// [`bamboo_storage::FaultInjector`]; production code leaves the
    /// default (`None` → the real filesystem).
    pub fn with_log_backend(
        mut self,
        backend: std::sync::Arc<dyn bamboo_storage::LogBackend>,
    ) -> Self {
        self.log_backend = Some(backend);
        self
    }

    /// The effective storage backend: the configured one, or the real
    /// filesystem.
    pub fn backend(&self) -> std::sync::Arc<dyn bamboo_storage::LogBackend> {
        self.log_backend
            .clone()
            .unwrap_or_else(bamboo_storage::log::real_backend)
    }
}

/// A partition's view of the whole partitioned database: the router plus
/// every sibling partition's catalog, WAL segment and stats slab. Held by
/// each partition's [`Database`] so any partition can resolve any
/// `(table, key)` — the seam that lets one `Session` execute
/// cross-partition transactions without new protocol plumbing.
///
/// The vectors hold catalogs/WALs (not `Database`s), so there is no `Arc`
/// cycle: partitions share these slices, and nothing in them points back
/// at a `Database`.
pub(crate) struct Topology {
    /// The (table, key) → partition map.
    pub(crate) router: Arc<Router>,
    /// Every partition's catalog shard, indexed by partition id.
    pub(crate) catalogs: Arc<[Arc<Catalog<TupleCc>>]>,
    /// Every partition's WAL segment, indexed by partition id.
    pub(crate) wals: Arc<[Arc<WalHandle>]>,
    /// Every partition's stats slab (cache-padded), indexed by partition
    /// id.
    pub(crate) stats: Arc<[CachePadded<PartitionStats>]>,
    /// The partition this view belongs to.
    pub(crate) me: PartitionId,
}

/// Ring width of the commit clock: the maximum number of commits that can
/// be between `allocate` and `finish` at once before an allocator has to
/// wait for the oldest one. Must be a power of two; 4096 is ~2 orders of
/// magnitude above any realistic in-flight commit count (one per worker
/// thread), so the wrap guard never fires in practice.
#[cfg(not(bamboo_model))]
const CLOCK_WINDOW: usize = 4096;

/// Under the model checker every slot is a model memory location created
/// per explored schedule, so the ring shrinks to keep iterations cheap.
/// Still far above the 2–3 in-flight commits the model tests drive.
#[cfg(bamboo_model)]
const CLOCK_WINDOW: usize = 16;

/// Allocates commit timestamps and tracks which are still *in flight*
/// (allocated but not fully installed). [`CommitClock::stable`] is the
/// largest timestamp `s` such that every commit with timestamp `<= s` has
/// finished installing — the only timestamps snapshots may be taken at:
/// reading at a higher timestamp could miss a write that is still being
/// installed.
///
/// Lock-free: an atomic `next` counter, a fixed ring of per-slot atomics
/// (slot `ts % CLOCK_WINDOW` holds the newest *finished* timestamp mapping
/// to it), and a cached `stable` atomic that finishers advance with a
/// bounded forward scan. `allocate` is one `fetch_add`, `finish` one store
/// plus the scan, `stable` a single load. See the module docs for the
/// memory-ordering contract.
pub struct CommitClock {
    /// Next timestamp to hand out (1-based; 0 is the loader timestamp).
    next: CachePadded<AtomicU64>,
    /// Cached stable point: all commits `<= stable` have finished.
    stable: CachePadded<AtomicU64>,
    /// `slots[ts % CLOCK_WINDOW]` = newest finished timestamp congruent to
    /// `ts` (0 = none yet). Monotone per slot: an allocator reuses a slot
    /// only after its previous occupant finished.
    slots: Box<[CachePadded<AtomicU64>]>,
}

impl CommitClock {
    pub(crate) fn new() -> Self {
        CommitClock {
            next: CachePadded::new(AtomicU64::new(1)),
            stable: CachePadded::new(AtomicU64::new(0)),
            slots: (0..CLOCK_WINDOW)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    #[inline]
    fn slot(&self, ts: u64) -> &AtomicU64 {
        &self.slots[(ts as usize) & (CLOCK_WINDOW - 1)]
    }

    /// Allocates a fresh commit timestamp, marked in flight until
    /// [`CommitClock::finish`].
    ///
    /// Wait-free except when `CLOCK_WINDOW` commits are simultaneously in
    /// flight (the slot being reused still belongs to timestamp
    /// `ts - CLOCK_WINDOW`); then it spins until that commit finishes.
    pub fn allocate(&self) -> u64 {
        // ordering: Relaxed — the ticket value itself carries no payload;
        // all install-visibility ordering hangs off finish()'s slot store.
        let ts = self.next.fetch_add(1, Ordering::Relaxed);
        if ts > CLOCK_WINDOW as u64 {
            let prev = ts - CLOCK_WINDOW as u64;
            let slot = self.slot(ts);
            let mut spins = 0u32;
            // ordering: Acquire — reusing the slot must happen-after the
            // previous occupant's finish (its Release store), so the new
            // occupant never overwrites an unpublished finish.
            while slot.load(Ordering::Acquire) < prev {
                // The previous occupant is typically a thread that was
                // preempted between allocate and finish: on an
                // oversubscribed machine it cannot finish until it runs
                // again, so burn a few pause-hinted spins and then yield
                // the CPU to it instead of spinning a full quantum.
                spins += 1;
                if spins < 32 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        ts
    }

    /// Marks `ts` fully installed. Must be called exactly once per
    /// [`CommitClock::allocate`], including on the abort path after the
    /// commit point failed — a leaked timestamp would pin [`stable`]
    /// forever.
    ///
    /// [`stable`]: CommitClock::stable
    pub fn finish(&self, ts: u64) {
        let slot = self.slot(ts);
        // ordering: Relaxed — debug-only sanity reads; no synchronization
        // is derived from them.
        debug_assert!(
            slot.load(Ordering::Relaxed) < ts && ts < self.next.load(Ordering::Relaxed),
            "finish of unallocated or already-finished commit ts {ts}"
        );
        // ordering: Release — everything this commit installed
        // happens-before any thread that observes the slot (and hence any
        // stable point covering `ts`).
        slot.store(ts, Ordering::Release);
        // ordering: SeqCst fence — without it, two finishers of adjacent
        // timestamps can each have their slot store sitting in the store
        // buffer while scanning past the other's slot (store-buffering
        // reordering — legal even on x86), leaving `stable` permanently
        // short of a finished commit with no later finisher to re-scan.
        // The fence totally orders the finishers: the later one is
        // guaranteed to see the earlier one's slot store and advances over
        // both. Model-checked by `model_check::clock_*`; compiling with
        // `--cfg bamboo_model_no_fence` removes it so the checker can
        // demonstrate the stranded-stable schedule it prevents.
        #[cfg(not(bamboo_model_no_fence))]
        crate::sync::fence(Ordering::SeqCst);
        self.advance_stable();
    }

    /// Advances the cached stable point past every contiguously-finished
    /// timestamp. Bounded: scans at most the in-flight window. Concurrent
    /// finishers race benignly — the CAS keeps `stable` monotone, and the
    /// finisher of a gap-filling timestamp walks past all already-finished
    /// successors.
    fn advance_stable(&self) {
        // ordering: Acquire — synchronizes with the previous advancer's
        // AcqRel CAS, so this scan starts from a fully-published prefix.
        let mut s = self.stable.load(Ordering::Acquire);
        loop {
            let t = s + 1;
            // `>= t`: the slot holds the newest finished ts congruent to
            // `t`; a larger value implies `t` finished long ago (its slot
            // was reused, which required `t` finished first).
            // ordering: Acquire — synchronizes with `t`'s finisher's
            // Release slot store: covering `t` happens-after its installs.
            if self.slot(t).load(Ordering::Acquire) < t {
                return;
            }
            // ordering: AcqRel success / Acquire failure — publishing the
            // new stable point releases the chain of installs it covers to
            // any Acquire reader of `stable`; a lost race re-reads the
            // winner's value with Acquire for the same reason.
            match self
                .stable
                .compare_exchange_weak(s, t, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => s = t,
                // Another finisher advanced past us; continue from its
                // value (monotone, so `cur > s` — never re-check `t`).
                Err(cur) => s = cur,
            }
        }
    }

    /// The next timestamp to be handed out: every allocated timestamp is
    /// strictly below the returned value.
    ///
    /// The fuzzy checkpoint reads this *after* capturing the per-partition
    /// log cuts: any commit whose timestamp is at or above the returned
    /// value allocated after this load, hence logs after the cuts — which
    /// is exactly the bound that makes `stable = next - 1` a safe
    /// checkpoint horizon.
    pub fn next(&self) -> u64 {
        // ordering: SeqCst — must not read a stale value that misses an
        // allocation whose log records precede the checkpoint's cut
        // capture; SeqCst puts this load after the cut capture in the
        // single total order the checkpoint reasons about.
        self.next.load(Ordering::SeqCst)
    }

    /// Fast-forwards a quiescent clock so every timestamp `<= ts` counts
    /// as finished and `ts + 1` is the next allocation. Recovery-only:
    /// callers guarantee no concurrent allocator or finisher exists.
    pub(crate) fn restore(&self, ts: u64) {
        // ordering: Relaxed throughout — recovery is single-threaded
        // before any session exists; the first post-recovery finish()'s
        // Release store publishes everything this wrote.
        for i in 0..CLOCK_WINDOW as u64 {
            // Newest t <= ts congruent to slot i (0 when none: timestamps
            // are 1-based, so slot value 0 means "never occupied").
            let base = ts - (ts % CLOCK_WINDOW as u64);
            let cand = base + i;
            let newest = if cand <= ts {
                cand
            } else {
                cand.saturating_sub(CLOCK_WINDOW as u64)
            };
            self.slots[i as usize].store(newest, Ordering::Relaxed);
        }
        self.stable.store(ts, Ordering::Relaxed);
        self.next.store(ts + 1, Ordering::Relaxed);
    }

    /// The newest timestamp at which a consistent snapshot can be taken
    /// (monotonically non-decreasing). A single atomic load.
    ///
    /// `SeqCst` so snapshot registration (bin update, then this load) and
    /// watermark publication (this load, then bin scan) order into one
    /// total order — see the module docs.
    #[inline]
    pub fn stable(&self) -> u64 {
        // ordering: SeqCst — participates in the registration/publication
        // total order described in the module docs (bin update before this
        // load; this load before the publisher's bin scan).
        self.stable.load(Ordering::SeqCst)
    }
}

/// Shards in the snapshot registry. Registrants pick a shard round-robin
/// per thread, so concurrent register/release traffic from different
/// threads lands on different cache lines.
#[cfg(not(bamboo_model))]
const SNAP_SHARDS: usize = 8;
/// Model-checking size: every bin load in a floor scan is a scheduling
/// point, so the registry shrinks to keep exhaustive exploration
/// tractable. The register/floor ordering argument is size-independent.
#[cfg(bamboo_model)]
const SNAP_SHARDS: usize = 2;

/// Epoch bins per shard. Live snapshot timestamps cluster near the clock
/// head, so a handful of bins per shard keeps collisions (two live epochs
/// `BINS * BIN_WIDTH` apart sharing a bin) vanishingly rare — and a
/// collision only makes the floor conservative, never wrong.
#[cfg(not(bamboo_model))]
const SNAP_BINS: usize = 32;
/// Model-checking size — see `SNAP_SHARDS`.
#[cfg(bamboo_model)]
const SNAP_BINS: usize = 4;

/// Commit timestamps per epoch bin. The bin floor (`epoch * BIN_WIDTH`)
/// understates its members' timestamps by at most `BIN_WIDTH - 1`, which
/// only delays GC by that many commits — it never reclaims a live version.
const BIN_WIDTH: u64 = 64;

/// Bits of the packed bin word holding the refcount.
const BIN_COUNT_BITS: u32 = 16;
const BIN_COUNT_MASK: u64 = (1 << BIN_COUNT_BITS) - 1;

#[inline]
fn bin_pack(epoch: u64, count: u64) -> u64 {
    debug_assert!(count <= BIN_COUNT_MASK, "snapshot bin refcount overflow");
    (epoch << BIN_COUNT_BITS) | count
}

#[inline]
fn bin_unpack(word: u64) -> (u64, u64) {
    (word >> BIN_COUNT_BITS, word & BIN_COUNT_MASK)
}

/// One registry shard: epoch bins plus the shard's published floor
/// (maintained by [`SnapshotRegistry::floor`] scans; `u64::MAX` = empty).
struct SnapShard {
    bins: [AtomicU64; SNAP_BINS],
    floor: AtomicU64,
}

/// A live snapshot registration: the snapshot timestamp plus the registry
/// coordinates needed to release it. Returned by
/// [`Database::register_snapshot`]; must be passed back to
/// [`Database::release_snapshot`] exactly once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotGrant {
    /// The snapshot timestamp: reads resolve against the version chains
    /// at this point.
    pub ts: u64,
    shard: usize,
    bin: usize,
}

/// Registry of live read-only snapshots. The *watermark* — the oldest
/// timestamp any live snapshot can still read — gates version-chain GC:
/// [`bamboo_storage::VersionChain::gc`] only reclaims versions superseded
/// at or below it.
///
/// Lock-free: registration is one packed compare-exchange on a sharded
/// epoch bin plus two stable-point loads; release is one compare-exchange.
/// The floor is computed by scanning the bins, bounded above by a stable
/// value read *before* the scan — the ordering that makes a concurrent
/// registration either visible to the scan or newer than its bound (see
/// the module docs).
pub struct SnapshotRegistry {
    shards: Box<[CachePadded<SnapShard>]>,
    /// Round-robin shard assignment for registrant threads.
    next_shard: AtomicUsize,
}

thread_local! {
    /// The registry shard this thread registers snapshots in (assigned
    /// round-robin on first use; `usize::MAX` = unassigned).
    static SNAP_SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

impl SnapshotRegistry {
    pub(crate) fn new() -> Self {
        SnapshotRegistry {
            shards: (0..SNAP_SHARDS)
                .map(|_| {
                    CachePadded::new(SnapShard {
                        bins: std::array::from_fn(|_| AtomicU64::new(0)),
                        floor: AtomicU64::new(u64::MAX),
                    })
                })
                .collect(),
            next_shard: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn my_shard(&self) -> usize {
        SNAP_SHARD.with(|c| {
            let mut s = c.get();
            if s == usize::MAX {
                // ordering: Relaxed — round-robin counter; the value only
                // spreads threads over shards, it synchronizes nothing.
                s = self.next_shard.fetch_add(1, Ordering::Relaxed) % SNAP_SHARDS;
                c.set(s);
            }
            s
        })
    }

    /// Registers a snapshot: publishes presence in an epoch bin *first*,
    /// then adopts the stable point re-read *after* publication as the
    /// snapshot timestamp. That order is what makes the registration
    /// race-free against watermark publication without a lock.
    fn register(&self, clock: &CommitClock) -> SnapshotGrant {
        let shard_i = self.my_shard();
        let provisional = clock.stable();
        let epoch = provisional / BIN_WIDTH;
        let bin_i = (epoch as usize) % SNAP_BINS;
        let bin = &self.shards[shard_i].bins[bin_i];
        // ordering: SeqCst — the bin update must precede the stable re-read
        // below in the single total order the watermark publisher also
        // participates in (module docs, bullet 2).
        let mut cur = bin.load(Ordering::SeqCst);
        loop {
            let (e, c) = bin_unpack(cur);
            // An empty bin adopts our epoch. An occupied bin keeps the
            // *smaller* epoch label: the label must lower-bound every
            // member's timestamp, and a delayed registrant may arrive with
            // an older epoch than the current occupants'.
            let new = if c == 0 {
                bin_pack(epoch, 1)
            } else {
                bin_pack(e.min(epoch), c + 1)
            };
            // ordering: SeqCst — see the bin load above: publication of
            // this registration orders before the stable re-read.
            match bin.compare_exchange_weak(cur, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => break,
                Err(observed) => cur = observed,
            }
        }
        // Adopt the freshest stable point now that the bin pins us: any
        // publisher that missed the bin update read its stable bound
        // before this load, so its floor cannot exceed our timestamp.
        let ts = clock.stable();
        debug_assert!(ts >= epoch * BIN_WIDTH);
        SnapshotGrant {
            ts,
            shard: shard_i,
            bin: bin_i,
        }
    }

    /// Unregisters a snapshot: one compare-exchange decrementing the bin's
    /// refcount. The epoch label of an emptied bin goes stale harmlessly —
    /// floor scans skip bins with a zero count.
    fn unregister(&self, grant: SnapshotGrant) {
        let bin = &self.shards[grant.shard].bins[grant.bin];
        // ordering: SeqCst — releases participate in the same total order
        // as registrations and floor scans; a weaker release could let a
        // concurrent scan double-count or miss the bin transition.
        let mut cur = bin.load(Ordering::SeqCst);
        loop {
            let (e, c) = bin_unpack(cur);
            debug_assert!(c > 0, "unregister of unknown snapshot {}", grant.ts);
            let new = bin_pack(e, c.saturating_sub(1));
            // ordering: SeqCst — see the bin load above.
            match bin.compare_exchange_weak(cur, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Computes the GC floor: the minimum over every shard's occupied-bin
    /// epoch floors and a stable point read **before** the scan (the bound
    /// that covers registrations the scan raced past). Also publishes each
    /// shard's floor into its `floor` slot for observability; the global
    /// watermark is the min over those published per-shard floors, capped
    /// by the pre-scan stable bound.
    fn floor(&self, clock: &CommitClock) -> u64 {
        // Read stable BEFORE scanning: a registrant that the scan misses
        // adopted a stable value read after its bin publication, which in
        // the SeqCst total order is >= this one.
        let bound = clock.stable();
        let mut floor = bound;
        for shard in self.shards.iter() {
            let mut shard_floor = u64::MAX;
            for bin in &shard.bins {
                // ordering: SeqCst — the scan must order after the pre-scan
                // stable read in the registration/publication total order; a
                // registration this scan misses then provably adopted a
                // timestamp >= our stable bound (module docs, bullet 2).
                let (e, c) = bin_unpack(bin.load(Ordering::SeqCst));
                if c > 0 {
                    shard_floor = shard_floor.min(e * BIN_WIDTH);
                }
            }
            // ordering: Release — observability slot only (tests/stats
            // read it with Acquire); the real watermark is published by
            // the caller via fetch_max.
            shard.floor.store(shard_floor, Ordering::Release);
            floor = floor.min(shard_floor);
        }
        floor
    }

    /// Number of live snapshots (tests/stats).
    pub fn active_count(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.bins.iter())
            // ordering: SeqCst — counts taken in the same total order as
            // register/unregister, so a quiesced registry reads exactly 0.
            .map(|b| bin_unpack(b.load(Ordering::SeqCst)).1 as usize)
            .sum()
    }
}

/// A loaded database shared by all worker threads — either a monolithic
/// database (one catalog, built by [`Database::builder`]) or *one
/// partition* of a [`crate::partition::PartitionedDb`] (its own catalog
/// shard plus a `Topology` view of its siblings).
///
/// The commit clock, snapshot registry, timestamp source, epoch counter,
/// published watermark and transaction-id source are behind `Arc`s so
/// every partition of one partitioned database shares them: commit
/// timestamps stay globally unique and snapshots stay globally consistent
/// no matter which partition a transaction enters through.
pub struct Database {
    pub(crate) catalog: Arc<Catalog<TupleCc>>,
    /// Global timestamp source (Wound-Wait priorities).
    pub ts_source: Arc<TsSource>,
    /// Silo epoch counter (advanced every [`DbOptions::epoch_commits`]
    /// commits; the advance also republishes the snapshot watermark).
    pub epoch: Arc<CachePadded<AtomicU64>>,
    /// MVCC commit clock: versioned installs are tagged with its
    /// timestamps; snapshots are taken at its stable point.
    pub commit_clock: Arc<CommitClock>,
    /// Live read-only snapshots (watermark source).
    pub snapshots: Arc<SnapshotRegistry>,
    /// Published GC watermark: a cached, possibly slightly stale lower
    /// bound on the oldest timestamp a live snapshot can read. Staleness
    /// only delays GC; it never reclaims a visible version.
    pub(crate) watermark: Arc<CachePadded<AtomicU64>>,
    /// Transaction incarnation ids (the TID source).
    pub(crate) txn_ids: Arc<CachePadded<AtomicU64>>,
    /// Global durability horizon: group-commit acknowledgments park on it
    /// until every commit with a smaller timestamp is durable. Shared by
    /// every partition, like the commit clock it advances with.
    pub(crate) horizon: Arc<DurabilityHorizon>,
    /// Tuning knobs fixed at build time.
    pub(crate) options: DbOptions,
    /// `Some` when this database is one partition of a partitioned
    /// database; `None` for a monolithic database.
    pub(crate) topology: Option<Topology>,
}

impl Database {
    /// Starts building a database: register tables, then [`DatabaseBuilder::build`].
    pub fn builder() -> DatabaseBuilder {
        DatabaseBuilder {
            catalog: Catalog::new(),
            options: DbOptions::default(),
        }
    }

    /// Table accessor. On a partition of a partitioned database this is
    /// the *local shard* of the table; use [`Database::table_for`] to
    /// resolve a specific key to the shard that owns it.
    #[inline]
    pub fn table(&self, id: TableId) -> &Arc<Table<TupleCc>> {
        self.catalog.table(id)
    }

    /// Resolves `(table, key)` to the table shard owning that key: the
    /// local catalog on a monolithic database, the routed partition's
    /// shard on a partitioned one (replicated tables resolve locally).
    /// This is the lookup every protocol operation goes through, so a
    /// transaction begun on any partition can transparently read and
    /// write tuples of every partition.
    #[inline]
    pub fn table_for(&self, table: TableId, key: u64) -> &Arc<Table<TupleCc>> {
        match &self.topology {
            None => self.catalog.table(table),
            Some(t) => {
                let p = t.router.route_from(t.me, table, key);
                t.catalogs[p.idx()].table(table)
            }
        }
    }

    /// Table id by name (setup paths).
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.catalog.table_id(name)
    }

    /// The underlying catalog (the local shard when partitioned).
    pub fn catalog(&self) -> &Catalog<TupleCc> {
        &self.catalog
    }

    /// The partition this database is, when it is one partition of a
    /// [`crate::partition::PartitionedDb`]; `None` for a monolithic
    /// database.
    pub fn partition_id(&self) -> Option<PartitionId> {
        self.topology.as_ref().map(|t| t.me)
    }

    /// The partition topology, when partitioned.
    #[inline]
    pub(crate) fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// The build-time tuning knobs.
    #[inline]
    pub fn options(&self) -> &DbOptions {
        &self.options
    }

    /// The version-chain trim threshold installs should use.
    #[inline]
    pub fn trim_threshold(&self) -> usize {
        self.options.trim_threshold
    }

    /// True when `table` is replicated on every partition (always false on
    /// a monolithic database). Replicated tables are read-only reference
    /// data: a write would only touch the local replica and silently
    /// diverge the copies, so the write paths debug-assert against this.
    #[inline]
    pub fn is_table_replicated(&self, table: TableId) -> bool {
        self.topology
            .as_ref()
            .is_some_and(|t| t.router.is_replicated(table))
    }

    /// True when `table` has an ordered index (checked on the local shard;
    /// partitioned databases enable ordered indexes uniformly across
    /// shards via `PartitionedDb::enable_ordered_index`).
    pub fn has_ordered_index(&self, table: TableId) -> bool {
        self.catalog.table(table).ordered_index().is_some()
    }

    /// All keys of `table` within `range`, ascending — merged across every
    /// partition's shard when partitioned (replicated tables scan the
    /// local replica only). Panics when the ordered index is missing, like
    /// the scan paths always have.
    pub fn scan_keys(&self, table: TableId, range: std::ops::RangeInclusive<u64>) -> Vec<u64> {
        let idx_of = |cat: &Catalog<TupleCc>| {
            cat.table(table)
                .ordered_index()
                .expect("scan requires an ordered index (Table::enable_ordered_index)")
        };
        match &self.topology {
            Some(t) if !t.router.is_replicated(table) => {
                let mut keys: Vec<u64> = Vec::new();
                for cat in t.catalogs.iter() {
                    keys.extend(idx_of(cat).range(range.clone()).into_iter().map(|(k, _)| k));
                }
                keys.sort_unstable();
                keys
            }
            _ => idx_of(&self.catalog)
                .range(range)
                .into_iter()
                .map(|(k, _)| k)
                .collect(),
        }
    }

    /// The smallest existing key of `table` strictly greater than `key`,
    /// across every partition's shard when partitioned (next-key phantom
    /// protection spans the whole logical keyspace). `None` when no such
    /// key exists or the ordered index is missing.
    pub fn next_key_after(&self, table: TableId, key: u64) -> Option<u64> {
        let next_in = |cat: &Catalog<TupleCc>| {
            cat.table(table)
                .ordered_index()
                .and_then(|idx| idx.next_key_after(key).map(|(k, _)| k))
        };
        match &self.topology {
            Some(t) if !t.router.is_replicated(table) => {
                t.catalogs.iter().filter_map(|c| next_in(c)).min()
            }
            _ => next_in(&self.catalog),
        }
    }

    /// Number of distinct partitions the given `(table, key)` accesses
    /// touch (1 on a monolithic database). Drives the executor's
    /// cross-partition commit accounting.
    pub fn partitions_spanned(&self, keys: impl Iterator<Item = (TableId, u64)>) -> u32 {
        let Some(t) = &self.topology else { return 1 };
        let n = t.router.partitions() as usize;
        let mut seen = vec![false; n];
        let mut count = 0u32;
        for (table, key) in keys {
            let p = t.router.route_from(t.me, table, key).idx();
            if !seen[p] {
                seen[p] = true;
                count += 1;
            }
        }
        count.max(1)
    }

    /// The global durability horizon (group-commit acknowledgments park
    /// on it; see [`crate::wal::DurabilityHorizon`]).
    #[inline]
    pub fn durability_horizon(&self) -> &DurabilityHorizon {
        &self.horizon
    }

    /// Allocates a unique transaction incarnation id.
    #[inline]
    pub fn next_txn_id(&self) -> u64 {
        // ordering: Relaxed — uniqueness is all that matters; ids carry no
        // happens-before obligations.
        self.txn_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a live read-only snapshot and returns its grant. The
    /// grant's timestamp is a stable point of the commit clock, at which
    /// every smaller commit is fully installed. Must be paired with
    /// [`Database::release_snapshot`].
    ///
    /// Steady-state cost: two atomic loads plus one shard-bin
    /// compare-exchange — no lock of any kind. Registration cannot raise
    /// the watermark, so nothing is published here.
    pub fn register_snapshot(&self) -> SnapshotGrant {
        self.snapshots.register(&self.commit_clock)
    }

    /// Releases a snapshot previously returned by
    /// [`Database::register_snapshot`], letting the watermark advance.
    ///
    /// One compare-exchange; the watermark itself is republished lazily by
    /// the next epoch tick ([`Database::advance_epoch`], every
    /// `EPOCH_COMMITS`-th commit) or an explicit
    /// [`Database::publish_watermark`] — keeping the registry scan off the
    /// snapshot-end hot path. The staleness only delays GC by at most one
    /// epoch of commits; it never reclaims a live version.
    pub fn release_snapshot(&self, grant: SnapshotGrant) {
        self.snapshots.unregister(grant);
    }

    /// The published GC watermark: version-chain GC may reclaim versions
    /// superseded at or below it. Reads a cached atomic — the hot commit
    /// path never scans the registry.
    #[inline]
    pub fn gc_watermark(&self) -> u64 {
        // ordering: Acquire — pairs with the AcqRel fetch_max publish, so
        // a GC that reads the watermark sees the registry state that
        // justified it.
        self.watermark.load(Ordering::Acquire)
    }

    /// Recomputes and publishes the watermark from the registry/clock.
    pub fn publish_watermark(&self) {
        let floor = self.snapshots.floor(&self.commit_clock);
        // Monotonic publish: a stale racer must not move the watermark
        // backwards past a newer floor (fetch_max keeps it safe — the
        // floor is a lower bound on every *live* snapshot by construction,
        // see `SnapshotRegistry::register`/`floor`).
        // ordering: AcqRel — the publish releases the scan that justified
        // the floor to Acquire readers (`gc_watermark`) and keeps racing
        // publishers totally ordered on the cell.
        self.watermark.fetch_max(floor, Ordering::AcqRel);
    }

    /// Commit-side bookkeeping after a versioned install completes: marks
    /// `commit_ts` finished on the clock and, every
    /// [`DbOptions::epoch_commits`]-th commit, advances the Silo epoch and
    /// republishes the watermark. On a partition, additionally bumps the
    /// partition's commit counter (one relaxed add on a cache-padded slab
    /// owned by this partition).
    pub fn note_commit(&self, commit_ts: u64) {
        self.commit_clock.finish(commit_ts);
        if let Some(t) = &self.topology {
            // ordering: Relaxed — statistics counter; read only by
            // quiesced reporting paths.
            t.stats[t.me.idx()].commits.fetch_add(1, Ordering::Relaxed);
        }
        if commit_ts % self.options.epoch_commits == 0 {
            self.advance_epoch();
        }
    }

    /// Advances the Silo epoch and republishes the snapshot watermark (the
    /// paper-style epoch tick doubles as the watermark publisher).
    pub fn advance_epoch(&self) {
        // ordering: AcqRel — Silo's epoch protocol requires a committer
        // that reads epoch `e` to see every installation the advancer to
        // `e` observed; the RMW chains advancers into one release sequence.
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.publish_watermark();
    }

    /// Total rows across all tables (sanity checks / stats).
    pub fn total_rows(&self) -> usize {
        self.catalog.tables().iter().map(|t| t.len()).sum()
    }
}

/// Builder for [`Database`].
pub struct DatabaseBuilder {
    catalog: Catalog<TupleCc>,
    options: DbOptions,
}

impl DatabaseBuilder {
    /// Registers a table.
    pub fn add_table(&mut self, name: &str, schema: Schema) -> TableId {
        self.catalog.add_table(name, schema)
    }

    /// Registers a table pre-sized for `cap` tuples.
    pub fn add_table_with_capacity(&mut self, name: &str, schema: Schema, cap: usize) -> TableId {
        self.catalog.add_table_with_capacity(name, schema, cap)
    }

    /// Replaces the tuning knobs (defaults reproduce the historical
    /// constants).
    pub fn with_options(&mut self, options: DbOptions) -> &mut Self {
        self.options = options;
        self
    }

    /// Finalizes the database.
    pub fn build(self) -> Arc<Database> {
        Arc::new(Database {
            catalog: Arc::new(self.catalog),
            ts_source: Arc::new(TsSource::new()),
            epoch: Arc::new(CachePadded::new(AtomicU64::new(1))),
            commit_clock: Arc::new(CommitClock::new()),
            snapshots: Arc::new(SnapshotRegistry::new()),
            watermark: Arc::new(CachePadded::new(AtomicU64::new(0))),
            txn_ids: Arc::new(CachePadded::new(AtomicU64::new(1))),
            horizon: Arc::new(DurabilityHorizon::new()),
            options: DbOptions {
                epoch_commits: self.options.epoch_commits.max(1),
                ..self.options
            },
            topology: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_storage::DataType;

    #[test]
    fn builder_registers_tables() {
        let mut b = Database::builder();
        let a = b.add_table("a", Schema::build().column("k", DataType::U64));
        let db = b.build();
        assert_eq!(db.table_id("a"), Some(a));
        assert_eq!(db.table(a).name, "a");
        assert_eq!(db.total_rows(), 0);
    }

    #[test]
    fn txn_ids_are_unique() {
        let db = Database::builder().build();
        let a = db.next_txn_id();
        let b = db.next_txn_id();
        assert_ne!(a, b);
    }

    #[test]
    fn commit_clock_stable_excludes_inflight() {
        let db = Database::builder().build();
        assert_eq!(db.commit_clock.stable(), 0);
        let a = db.commit_clock.allocate();
        let b = db.commit_clock.allocate();
        assert_eq!((a, b), (1, 2));
        // Both in flight: nothing is stable yet.
        assert_eq!(db.commit_clock.stable(), 0);
        // Finishing out of order: stable only advances past the gap once
        // the oldest in-flight commit finishes.
        db.commit_clock.finish(b);
        assert_eq!(db.commit_clock.stable(), 0);
        db.commit_clock.finish(a);
        assert_eq!(db.commit_clock.stable(), 2);
    }

    #[test]
    fn commit_clock_survives_ring_wrap() {
        let db = Database::builder().build();
        for _ in 0..(CLOCK_WINDOW as u64 * 2 + 17) {
            let ts = db.commit_clock.allocate();
            db.commit_clock.finish(ts);
        }
        assert_eq!(db.commit_clock.stable(), CLOCK_WINDOW as u64 * 2 + 17);
    }

    #[test]
    fn snapshot_registry_pins_watermark() {
        let db = Database::builder().build();
        for _ in 0..3 {
            let ts = db.commit_clock.allocate();
            db.note_commit(ts);
        }
        let snap = db.register_snapshot();
        assert_eq!(snap.ts, 3);
        assert_eq!(db.snapshots.active_count(), 1);
        // Later commits do not move the watermark past the live snapshot's
        // bin floor (bin-granular: the floor is ts rounded down to the
        // epoch-bin width, never above the snapshot itself).
        for _ in 0..(BIN_WIDTH * 2) {
            let ts = db.commit_clock.allocate();
            db.note_commit(ts);
        }
        db.publish_watermark();
        assert!(db.gc_watermark() <= snap.ts);
        db.release_snapshot(snap);
        assert_eq!(db.snapshots.active_count(), 0);
        // Release itself is one CAS; the next publish (epoch tick or
        // explicit) moves the watermark past the released snapshot.
        db.publish_watermark();
        assert_eq!(db.gc_watermark(), 3 + BIN_WIDTH * 2);
    }

    #[test]
    fn duplicate_snapshots_refcount() {
        let db = Database::builder().build();
        let a = db.register_snapshot();
        let b = db.register_snapshot();
        assert_eq!(a.ts, b.ts);
        db.release_snapshot(a);
        assert_eq!(db.snapshots.active_count(), 1);
        db.release_snapshot(b);
        assert_eq!(db.snapshots.active_count(), 0);
    }

    #[test]
    fn epoch_advance_publishes_watermark() {
        let db = Database::builder().build();
        let e0 = db.epoch.load(Ordering::Acquire);
        for _ in 0..EPOCH_COMMITS {
            let ts = db.commit_clock.allocate();
            db.note_commit(ts);
        }
        assert_eq!(db.epoch.load(Ordering::Acquire), e0 + 1);
        assert_eq!(db.gc_watermark(), EPOCH_COMMITS);
    }

    #[test]
    fn db_options_tune_epoch_tick_period() {
        // Defaults reproduce the historical constants.
        let db = Database::builder().build();
        assert_eq!(db.options().epoch_commits, EPOCH_COMMITS);
        assert_eq!(db.trim_threshold(), bamboo_storage::DEFAULT_TRIM_THRESHOLD);
        // A shorter period ticks the epoch (and republishes the
        // watermark) proportionally earlier.
        let mut b = Database::builder();
        b.with_options(
            DbOptions::new()
                .with_epoch_commits(4)
                .with_trim_threshold(2),
        );
        let db = b.build();
        assert_eq!(db.trim_threshold(), 2);
        let e0 = db.epoch.load(Ordering::Acquire);
        for _ in 0..4 {
            let ts = db.commit_clock.allocate();
            db.note_commit(ts);
        }
        assert_eq!(db.epoch.load(Ordering::Acquire), e0 + 1);
        assert_eq!(db.gc_watermark(), 4);
        // A zero period is clamped rather than dividing by zero.
        let mut b = Database::builder();
        b.with_options(DbOptions::new().with_epoch_commits(0));
        assert_eq!(b.build().options().epoch_commits, 1);
    }

    #[test]
    fn db_options_durability_knobs() {
        use bamboo_storage::FsyncPolicy;
        // Default stays in-memory: no wal dir, no fsync, stock rotation.
        let opts = DbOptions::new();
        assert_eq!(opts.wal_dir, None);
        assert_eq!(opts.fsync_policy, FsyncPolicy::Never);
        assert_eq!(opts.segment_bytes, DEFAULT_SEGMENT_BYTES);
        // The builders set each knob independently.
        let opts = DbOptions::new()
            .with_wal_dir("/tmp/bamboo-wal")
            .with_fsync_policy(FsyncPolicy::GroupEveryN(8))
            .with_segment_bytes(1 << 16);
        assert_eq!(
            opts.wal_dir.as_deref(),
            Some(std::path::Path::new("/tmp/bamboo-wal"))
        );
        assert_eq!(opts.fsync_policy, FsyncPolicy::GroupEveryN(8));
        assert_eq!(opts.segment_bytes, 1 << 16);
        // A database built without a wal dir ignores the other knobs (in
        // particular its options survive round-tripping through build).
        let mut b = Database::builder();
        b.with_options(DbOptions::new().with_fsync_policy(FsyncPolicy::EveryCommit));
        assert_eq!(b.build().options().fsync_policy, FsyncPolicy::EveryCommit);
    }

    #[test]
    fn commit_clock_restore_resumes_allocation() {
        let clock = CommitClock::new();
        // Restore well past the slot window to exercise the wrap guard.
        let resume = CLOCK_WINDOW as u64 * 2 + 5;
        clock.restore(resume);
        assert_eq!(clock.stable(), resume);
        assert_eq!(clock.next(), resume + 1);
        // Allocation continues seamlessly: no spin on a stale slot, and
        // finishing advances stable as usual.
        let ts = clock.allocate();
        assert_eq!(ts, resume + 1);
        clock.finish(ts);
        assert_eq!(clock.stable(), resume + 1);
    }

    #[test]
    fn bin_packing_round_trips() {
        let w = bin_pack(123456, 7);
        assert_eq!(bin_unpack(w), (123456, 7));
        assert_eq!(bin_unpack(0), (0, 0));
    }

    #[test]
    fn shard_floors_published_on_scan() {
        let db = Database::builder().build();
        for _ in 0..BIN_WIDTH {
            let ts = db.commit_clock.allocate();
            db.commit_clock.finish(ts);
        }
        let snap = db.register_snapshot();
        db.publish_watermark();
        // Exactly one shard publishes a finite floor (the grant's bin).
        let finite: Vec<u64> = db
            .snapshots
            .shards
            .iter()
            .map(|s| s.floor.load(Ordering::Acquire))
            .filter(|&f| f != u64::MAX)
            .collect();
        assert_eq!(finite, vec![(snap.ts / BIN_WIDTH) * BIN_WIDTH]);
        db.release_snapshot(snap);
    }
}
