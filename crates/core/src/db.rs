//! The database: a storage catalog instantiated with [`crate::TupleCc`]
//! metadata plus the global counters the protocols share (timestamp source,
//! transaction-id allocator, Silo epoch) and the MVCC snapshot machinery
//! (commit clock, active-snapshot registry, published GC watermark).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bamboo_storage::{Catalog, Schema, Table, TableId};
use parking_lot::Mutex;

use crate::meta::TupleCc;
use crate::ts::TsSource;

/// Every `EPOCH_COMMITS`-th commit advances the Silo epoch and republishes
/// the snapshot watermark (the epoch advance doubles as the watermark
/// publisher, so GC keeps up even when no snapshot churn refreshes it).
const EPOCH_COMMITS: u64 = 64;

/// Allocates commit timestamps and tracks which are still *in flight*
/// (allocated but not fully installed). [`CommitClock::stable`] is the
/// largest timestamp `s` such that every commit with timestamp `<= s` has
/// finished installing — the only timestamps snapshots may be taken at:
/// reading at a higher timestamp could miss a write that is still being
/// installed.
pub struct CommitClock {
    inner: Mutex<ClockInner>,
}

struct ClockInner {
    /// Next timestamp to hand out (1-based; 0 is the loader timestamp).
    next: u64,
    /// Allocated-but-unfinished commit timestamps.
    inflight: BTreeSet<u64>,
}

impl CommitClock {
    fn new() -> Self {
        CommitClock {
            inner: Mutex::new(ClockInner {
                next: 1,
                inflight: BTreeSet::new(),
            }),
        }
    }

    /// Allocates a fresh commit timestamp, marked in flight until
    /// [`CommitClock::finish`].
    pub fn allocate(&self) -> u64 {
        let mut g = self.inner.lock();
        let ts = g.next;
        g.next += 1;
        g.inflight.insert(ts);
        ts
    }

    /// Marks `ts` fully installed. Must be called exactly once per
    /// [`CommitClock::allocate`], including on the abort path after the
    /// commit point failed — a leaked timestamp would pin [`stable`]
    /// forever.
    ///
    /// [`stable`]: CommitClock::stable
    pub fn finish(&self, ts: u64) {
        let removed = self.inner.lock().inflight.remove(&ts);
        debug_assert!(removed, "finish of unallocated commit ts {ts}");
    }

    /// The newest timestamp at which a consistent snapshot can be taken
    /// (monotonically non-decreasing).
    pub fn stable(&self) -> u64 {
        let g = self.inner.lock();
        match g.inflight.first() {
            Some(&min) => min - 1,
            None => g.next - 1,
        }
    }
}

/// Registry of live read-only snapshots. The *watermark* — the oldest
/// timestamp any live snapshot can still read — gates version-chain GC:
/// [`bamboo_storage::VersionChain::gc`] only reclaims versions superseded
/// at or below it.
pub struct SnapshotRegistry {
    /// Live snapshot timestamps with reference counts.
    active: Mutex<BTreeMap<u64, usize>>,
}

impl SnapshotRegistry {
    fn new() -> Self {
        SnapshotRegistry {
            active: Mutex::new(BTreeMap::new()),
        }
    }

    /// Registers a snapshot and returns `(snapshot ts, current floor)` —
    /// the floor is computed while the lock is already held so callers can
    /// publish it without re-locking.
    fn register(&self, clock: &CommitClock) -> (u64, u64) {
        let mut g = self.active.lock();
        // `stable` is read under the registry lock so a concurrent
        // watermark computation can never observe a floor above a snapshot
        // that is about to register (stable is monotonic, so the snapshot's
        // timestamp is >= any previously published watermark).
        let snap = clock.stable();
        *g.entry(snap).or_insert(0) += 1;
        let floor = *g.keys().next().expect("just inserted");
        (snap, floor)
    }

    /// Unregisters a snapshot and returns the new floor.
    fn unregister(&self, snap: u64, clock: &CommitClock) -> u64 {
        let mut g = self.active.lock();
        match g.get_mut(&snap) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                g.remove(&snap);
            }
            None => debug_assert!(false, "unregister of unknown snapshot {snap}"),
        }
        match g.keys().next() {
            Some(&min) => min,
            None => clock.stable(),
        }
    }

    fn floor(&self, clock: &CommitClock) -> u64 {
        let g = self.active.lock();
        match g.keys().next() {
            Some(&min) => min,
            None => clock.stable(),
        }
    }

    /// Number of live snapshots (tests/stats).
    pub fn active_count(&self) -> usize {
        self.active.lock().values().sum()
    }
}

/// A loaded database shared by all worker threads.
pub struct Database {
    catalog: Catalog<TupleCc>,
    /// Global timestamp source (Wound-Wait priorities).
    pub ts_source: TsSource,
    /// Silo epoch counter (advanced every `EPOCH_COMMITS` commits; the
    /// advance also republishes the snapshot watermark).
    pub epoch: AtomicU64,
    /// MVCC commit clock: versioned installs are tagged with its
    /// timestamps; snapshots are taken at its stable point.
    pub commit_clock: CommitClock,
    /// Live read-only snapshots (watermark source).
    pub snapshots: SnapshotRegistry,
    /// Published GC watermark: a cached, possibly slightly stale lower
    /// bound on the oldest timestamp a live snapshot can read. Staleness
    /// only delays GC; it never reclaims a visible version.
    watermark: AtomicU64,
    txn_ids: AtomicU64,
}

impl Database {
    /// Starts building a database: register tables, then [`DatabaseBuilder::build`].
    pub fn builder() -> DatabaseBuilder {
        DatabaseBuilder {
            catalog: Catalog::new(),
        }
    }

    /// Table accessor.
    #[inline]
    pub fn table(&self, id: TableId) -> &Arc<Table<TupleCc>> {
        self.catalog.table(id)
    }

    /// Table id by name (setup paths).
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.catalog.table_id(name)
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog<TupleCc> {
        &self.catalog
    }

    /// Allocates a unique transaction incarnation id.
    #[inline]
    pub fn next_txn_id(&self) -> u64 {
        self.txn_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a live read-only snapshot and returns its timestamp: the
    /// commit clock's stable point, at which every smaller commit is fully
    /// installed. Must be paired with [`Database::release_snapshot`].
    pub fn register_snapshot(&self) -> u64 {
        let (snap, floor) = self.snapshots.register(&self.commit_clock);
        self.watermark.fetch_max(floor, Ordering::AcqRel);
        snap
    }

    /// Releases a snapshot previously returned by
    /// [`Database::register_snapshot`], letting the watermark advance.
    pub fn release_snapshot(&self, snap: u64) {
        let floor = self.snapshots.unregister(snap, &self.commit_clock);
        self.watermark.fetch_max(floor, Ordering::AcqRel);
    }

    /// The published GC watermark: version-chain GC may reclaim versions
    /// superseded at or below it. Reads a cached atomic — the hot commit
    /// path never takes the registry lock.
    #[inline]
    pub fn gc_watermark(&self) -> u64 {
        self.watermark.load(Ordering::Acquire)
    }

    /// Recomputes and publishes the watermark from the registry/clock.
    pub fn publish_watermark(&self) {
        let floor = self.snapshots.floor(&self.commit_clock);
        // Monotonic publish: a stale racer must not move the watermark
        // backwards past a newer floor (fetch_max keeps it safe — the
        // watermark is a lower bound on every *live* snapshot by
        // construction, see `SnapshotRegistry::register`).
        self.watermark.fetch_max(floor, Ordering::AcqRel);
    }

    /// Commit-side bookkeeping after a versioned install completes: marks
    /// `commit_ts` finished on the clock and, every `EPOCH_COMMITS`-th
    /// commit, advances the Silo epoch and republishes the watermark.
    pub fn note_commit(&self, commit_ts: u64) {
        self.commit_clock.finish(commit_ts);
        if commit_ts % EPOCH_COMMITS == 0 {
            self.advance_epoch();
        }
    }

    /// Advances the Silo epoch and republishes the snapshot watermark (the
    /// paper-style epoch tick doubles as the watermark publisher).
    pub fn advance_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.publish_watermark();
    }

    /// Total rows across all tables (sanity checks / stats).
    pub fn total_rows(&self) -> usize {
        self.catalog.tables().iter().map(|t| t.len()).sum()
    }
}

/// Builder for [`Database`].
pub struct DatabaseBuilder {
    catalog: Catalog<TupleCc>,
}

impl DatabaseBuilder {
    /// Registers a table.
    pub fn add_table(&mut self, name: &str, schema: Schema) -> TableId {
        self.catalog.add_table(name, schema)
    }

    /// Registers a table pre-sized for `cap` tuples.
    pub fn add_table_with_capacity(&mut self, name: &str, schema: Schema, cap: usize) -> TableId {
        self.catalog.add_table_with_capacity(name, schema, cap)
    }

    /// Finalizes the database.
    pub fn build(self) -> Arc<Database> {
        Arc::new(Database {
            catalog: self.catalog,
            ts_source: TsSource::new(),
            epoch: AtomicU64::new(1),
            commit_clock: CommitClock::new(),
            snapshots: SnapshotRegistry::new(),
            watermark: AtomicU64::new(0),
            txn_ids: AtomicU64::new(1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_storage::DataType;

    #[test]
    fn builder_registers_tables() {
        let mut b = Database::builder();
        let a = b.add_table("a", Schema::build().column("k", DataType::U64));
        let db = b.build();
        assert_eq!(db.table_id("a"), Some(a));
        assert_eq!(db.table(a).name, "a");
        assert_eq!(db.total_rows(), 0);
    }

    #[test]
    fn txn_ids_are_unique() {
        let db = Database::builder().build();
        let a = db.next_txn_id();
        let b = db.next_txn_id();
        assert_ne!(a, b);
    }

    #[test]
    fn commit_clock_stable_excludes_inflight() {
        let db = Database::builder().build();
        assert_eq!(db.commit_clock.stable(), 0);
        let a = db.commit_clock.allocate();
        let b = db.commit_clock.allocate();
        assert_eq!((a, b), (1, 2));
        // Both in flight: nothing is stable yet.
        assert_eq!(db.commit_clock.stable(), 0);
        // Finishing out of order: stable only advances past the gap once
        // the oldest in-flight commit finishes.
        db.commit_clock.finish(b);
        assert_eq!(db.commit_clock.stable(), 0);
        db.commit_clock.finish(a);
        assert_eq!(db.commit_clock.stable(), 2);
    }

    #[test]
    fn snapshot_registry_pins_watermark() {
        let db = Database::builder().build();
        for _ in 0..3 {
            let ts = db.commit_clock.allocate();
            db.note_commit(ts);
        }
        let snap = db.register_snapshot();
        assert_eq!(snap, 3);
        assert_eq!(db.snapshots.active_count(), 1);
        // Later commits do not move the watermark past the live snapshot.
        for _ in 0..5 {
            let ts = db.commit_clock.allocate();
            db.note_commit(ts);
        }
        db.publish_watermark();
        assert_eq!(db.gc_watermark(), 3);
        db.release_snapshot(snap);
        assert_eq!(db.snapshots.active_count(), 0);
        assert_eq!(db.gc_watermark(), 8);
    }

    #[test]
    fn duplicate_snapshots_refcount() {
        let db = Database::builder().build();
        let a = db.register_snapshot();
        let b = db.register_snapshot();
        assert_eq!(a, b);
        db.release_snapshot(a);
        assert_eq!(db.snapshots.active_count(), 1);
        db.release_snapshot(b);
        assert_eq!(db.snapshots.active_count(), 0);
    }

    #[test]
    fn epoch_advance_publishes_watermark() {
        let db = Database::builder().build();
        let e0 = db.epoch.load(Ordering::Acquire);
        for _ in 0..EPOCH_COMMITS {
            let ts = db.commit_clock.allocate();
            db.note_commit(ts);
        }
        assert_eq!(db.epoch.load(Ordering::Acquire), e0 + 1);
        assert_eq!(db.gc_watermark(), EPOCH_COMMITS);
    }
}
