//! The benchmark executor: one worker per thread, each running a
//! generate → execute → commit/abort/retry loop against a shared
//! [`Database`] through a per-worker [`Session`] — the same harness shape
//! as DBx1000's (paper §5.1: "We collect transaction statistics, such as
//! throughput, latency, and abort rates by running each workload for at
//! least 30 seconds"; our durations are configurable because the figure
//! reproduction sweeps dozens of points).
//!
//! The attempt/retry machinery itself lives on
//! [`Session::run`]/[`Session::run_reporting`] — this module only owns the
//! worker orchestration (threads, warmup/measure switching, stats merging).

use crate::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::db::Database;
use crate::protocol::Protocol;
use crate::session::{RetryPolicy, Session, Txn};
use crate::stats::{BenchResult, WorkerStats};
use crate::sync::CachePadded;
use crate::txn::Abort;

/// One generated transaction instance: executed piece by piece (non-IC3
/// protocols see the pieces as consecutive program segments; IC3 uses the
/// boundaries for visibility).
pub trait TxnSpec: Send {
    /// Number of pieces (defaults to a single piece).
    fn pieces(&self) -> usize {
        1
    }

    /// Total operations the transaction will issue, when known ahead of
    /// time (stored-procedure mode; drives Optimization 2's δ heuristic).
    fn planned_ops(&self) -> Option<usize> {
        None
    }

    /// IC3 template index this instance was generated from.
    fn template(&self) -> usize {
        0
    }

    /// The partition this transaction is *homed* on: the partition whose
    /// session executes it (and whose WAL segment logs its local writes).
    /// Workloads partition-aware by construction (TPC-C by warehouse,
    /// YCSB by key range) home each transaction where most of its keys
    /// live; remote accesses route transparently. Ignored by
    /// [`run_bench`] on monolithic databases.
    fn home_partition(&self) -> u32 {
        0
    }

    /// True when this transaction is read-only and should run in snapshot
    /// mode: reads resolve against the committed version chains with zero
    /// lock-manager interaction
    /// ([`Protocol::begin_snapshot`]).
    /// Defaults to the locking read path.
    fn read_only_snapshot(&self) -> bool {
        false
    }

    /// Executes piece `piece` against the attempt's [`Txn`] handle. Called
    /// in order; any `Err` aborts the attempt (the `Txn` owns the release
    /// path). Retries re-run all pieces with the same inputs.
    fn run_piece(&self, piece: usize, txn: &mut Txn<'_>) -> Result<(), Abort>;
}

/// A workload generates transaction instances.
pub trait Workload: Send + Sync {
    /// Human-readable name.
    fn name(&self) -> &str;

    /// Draws the next transaction for `worker`.
    fn generate(&self, worker: usize, rng: &mut SmallRng) -> Box<dyn TxnSpec>;
}

/// Benchmark configuration.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Worker threads.
    pub threads: usize,
    /// Measured duration.
    pub duration: Duration,
    /// Warm-up (executed, not measured).
    pub warmup: Duration,
    /// RNG seed (worker `i` uses `seed + i`).
    pub seed: u64,
    /// Retry/backoff rules handed to each worker's [`Session`].
    pub retry: RetryPolicy,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig::quick(1)
    }
}

impl BenchConfig {
    /// A quick configuration for tests and smoke runs.
    pub fn quick(threads: usize) -> Self {
        BenchConfig {
            threads,
            duration: Duration::from_millis(200),
            warmup: Duration::from_millis(20),
            seed: 42,
            retry: RetryPolicy::default(),
        }
    }

    /// Sets the measured duration.
    pub fn with_duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Sets the warm-up duration.
    pub fn with_warmup(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the retry/backoff policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// One worker's execution state inside [`drive_bench`]: how a generated
/// spec is executed and what per-worker accounting runs when the loop
/// stops. Constructed on the worker's own thread.
trait BenchWorker {
    /// Executes one spec, reporting into `stats`. Returns whether it
    /// committed.
    fn run_one(
        &self,
        spec: &dyn TxnSpec,
        stats: &mut WorkerStats,
        stop: &AtomicBool,
        deadline: Instant,
    ) -> bool;

    /// Final per-worker accounting after the loop stops.
    fn finish(&self, _stats: &mut WorkerStats) {}
}

/// The measurement scaffold shared by [`run_bench`] and
/// [`run_part_bench`]: worker threads with warmup/measure switching over a
/// pre-allocated slab of cache-padded stats slots (written at commit rate
/// from different threads — the padding keeps neighbouring workers'
/// counters off each other's cache lines, and the slab is what lets the
/// scoped workers borrow instead of funnelling stats through join
/// handles).
fn drive_bench<W: BenchWorker>(
    protocol: &str,
    workload: &Arc<dyn Workload>,
    cfg: &BenchConfig,
    make_worker: impl Fn(usize) -> W + Sync,
) -> BenchResult {
    let measuring = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let mut slots: Vec<CachePadded<WorkerStats>> = (0..cfg.threads)
        .map(|_| CachePadded::new(WorkerStats::default()))
        .collect();
    let total_time = cfg.warmup + cfg.duration + Duration::from_secs(30);
    let elapsed = std::thread::scope(|s| {
        for (w, slot) in slots.iter_mut().enumerate() {
            let seed = cfg.seed + w as u64;
            let (measuring, stop, make_worker) = (&measuring, &stop, &make_worker);
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed);
                let worker = make_worker(w);
                let mut warm = WorkerStats::default();
                let measured: &mut WorkerStats = slot;
                let hard_deadline = Instant::now() + total_time;
                while !stop.load(Ordering::Relaxed) {
                    let spec = workload.generate(w, &mut rng);
                    let stats = if measuring.load(Ordering::Relaxed) {
                        &mut *measured
                    } else {
                        &mut warm
                    };
                    worker.run_one(spec.as_ref(), stats, stop, hard_deadline);
                }
                worker.finish(measured);
            });
        }
        std::thread::sleep(cfg.warmup);
        // ordering: SeqCst — conservative fences around the measurement
        // window edges so no worker's transition straddles the timer reads
        // (off the hot path; workers poll with Relaxed loads).
        measuring.store(true, Ordering::SeqCst);
        let t0 = Instant::now();
        std::thread::sleep(cfg.duration);
        let elapsed = t0.elapsed();
        // ordering: SeqCst — see `measuring` above.
        stop.store(true, Ordering::SeqCst);
        elapsed
    });

    let mut totals = WorkerStats::default();
    for slot in &slots {
        totals.merge(slot);
    }
    BenchResult {
        protocol: protocol.to_string(),
        threads: cfg.threads,
        elapsed,
        totals,
    }
}

/// Monolithic worker: one [`Session`] per thread (thread-local WAL ring).
struct SessionWorker {
    session: Session,
}

impl BenchWorker for SessionWorker {
    fn run_one(
        &self,
        spec: &dyn TxnSpec,
        stats: &mut WorkerStats,
        stop: &AtomicBool,
        deadline: Instant,
    ) -> bool {
        self.session.run_reporting(spec, stats, stop, deadline)
    }

    fn finish(&self, stats: &mut WorkerStats) {
        stats.log_bytes = self.session.log_bytes();
    }
}

/// Runs `workload` under `proto` with `cfg`; returns the merged result.
pub fn run_bench(
    db: &Arc<Database>,
    proto: &Arc<dyn Protocol>,
    workload: &Arc<dyn Workload>,
    cfg: &BenchConfig,
) -> BenchResult {
    drive_bench(proto.name(), workload, cfg, |_w| SessionWorker {
        session: Session::new(Arc::clone(db), Arc::clone(proto)).with_retry(cfg.retry.clone()),
    })
}

/// Partitioned worker: one [`crate::partition::PartSession`] per thread,
/// dispatching each spec to its home partition's session.
struct PartWorker {
    session: crate::partition::PartSession,
    parts: u32,
}

impl BenchWorker for PartWorker {
    fn run_one(
        &self,
        spec: &dyn TxnSpec,
        stats: &mut WorkerStats,
        stop: &AtomicBool,
        deadline: Instant,
    ) -> bool {
        let home = bamboo_storage::PartitionId(spec.home_partition() % self.parts);
        self.session
            .session(home)
            .run_reporting(spec, stats, stop, deadline)
    }
    // No per-worker log accounting: the partition WAL segments are shared
    // by every worker and collected once by `run_part_bench`.
}

/// [`run_bench`] over a partitioned database: each worker owns one
/// [`crate::partition::PartSession`] and dispatches every generated
/// transaction to the session of its [`TxnSpec::home_partition`] — the
/// partition-local fast path when the spec's keys are home keys,
/// transparent cross-partition execution otherwise. Redo-log bytes are
/// collected from the partitions' WAL segments (which all workers share)
/// rather than per worker.
pub fn run_part_bench(
    pdb: &Arc<crate::partition::PartitionedDb>,
    proto: &Arc<dyn Protocol>,
    workload: &Arc<dyn Workload>,
    cfg: &BenchConfig,
) -> BenchResult {
    let parts = pdb.partitions();
    let log_before = pdb.log_bytes();
    let mut res = drive_bench(proto.name(), workload, cfg, |_w| PartWorker {
        session: crate::partition::PartSession::new(Arc::clone(pdb), Arc::clone(proto))
            .with_retry(cfg.retry.clone()),
        parts,
    });
    // Per-partition WAL segments are shared by all workers: attribute the
    // run's total append volume once (includes warmup, like the
    // monolithic path's lifetime counters).
    res.totals.log_bytes = pdb.log_bytes() - log_before;
    // Durability health, same shared-handle reasoning as `log_bytes`:
    // retries/failures are run-lifetime sums over the partition WALs,
    // degraded_partitions is the post-run snapshot. All zero unless a
    // fault-injecting `LogBackend` (or a genuinely failing disk) is
    // underneath.
    res.totals.wal_io_retries = pdb.wal_io_retries();
    res.totals.wal_io_failures = pdb.wal_io_failures();
    res.totals.degraded_partitions = pdb.degraded_partitions();
    // Group-commit coordinator counters, same convention: leader batch
    // fsyncs and horizon acks are lifetime totals over shared state.
    res.totals.group_commit_fsyncs = pdb.group_fsyncs();
    res.totals.group_commit_acks = pdb.group_acks();
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LockingProtocol;
    use bamboo_storage::{DataType, Row, Schema, TableId, Value};

    struct IncWorkload {
        table: TableId,
        keys: u64,
    }

    struct IncSpec {
        table: TableId,
        key: u64,
    }

    impl TxnSpec for IncSpec {
        fn planned_ops(&self) -> Option<usize> {
            Some(1)
        }

        fn run_piece(&self, _piece: usize, txn: &mut Txn<'_>) -> Result<(), Abort> {
            txn.update(self.table, self.key, |row| {
                let v = row.get_i64(1);
                row.set(1, Value::I64(v + 1));
            })
        }
    }

    impl Workload for IncWorkload {
        fn name(&self) -> &str {
            "inc"
        }

        fn generate(&self, _worker: usize, rng: &mut SmallRng) -> Box<dyn TxnSpec> {
            use rand::Rng;
            Box::new(IncSpec {
                table: self.table,
                key: rng.gen_range(0..self.keys),
            })
        }
    }

    #[test]
    fn bench_executes_and_counts_consistently() {
        let mut b = Database::builder();
        let t = b.add_table(
            "kv",
            Schema::build()
                .column("k", DataType::U64)
                .column("v", DataType::I64),
        );
        let db = b.build();
        for k in 0..4u64 {
            db.table(t)
                .insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
        }
        let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
        let wl: Arc<dyn Workload> = Arc::new(IncWorkload { table: t, keys: 4 });
        let res = run_bench(&db, &proto, &wl, &BenchConfig::quick(2));
        assert!(res.totals.commits > 0, "some transactions must commit");
        assert!(res.throughput() > 0.0);
        // Conservation: the sum of counters equals total commits across
        // warmup + measurement — at least the measured commits.
        let sum: i64 = (0..4)
            .map(|k| db.table(t).get(k).unwrap().read_row().get_i64(1))
            .sum();
        assert!(
            sum >= res.totals.commits as i64,
            "each committed txn incremented exactly one counter"
        );
    }

    #[test]
    fn session_run_commits_and_respects_user_aborts() {
        use crate::txn::AbortReason;
        let mut b = Database::builder();
        let t = b.add_table(
            "kv",
            Schema::build()
                .column("k", DataType::U64)
                .column("v", DataType::I64),
        );
        let db = b.build();
        db.table(t)
            .insert(0, Row::from(vec![Value::U64(0), Value::I64(0)]));
        let session = Session::new(
            Arc::clone(&db),
            Arc::new(LockingProtocol::bamboo()) as Arc<dyn Protocol>,
        );
        session.run(&IncSpec { table: t, key: 0 }).unwrap();
        assert_eq!(db.table(t).get(0).unwrap().read_row().get_i64(1), 1);

        struct UserAbort {
            table: TableId,
        }
        impl TxnSpec for UserAbort {
            fn run_piece(&self, _p: usize, txn: &mut Txn<'_>) -> Result<(), Abort> {
                txn.update(self.table, 0, |row| row.set(1, Value::I64(99)))?;
                Err(Abort(AbortReason::User))
            }
        }
        // User aborts are logical rollbacks: surfaced, not retried.
        assert_eq!(
            session.run(&UserAbort { table: t }),
            Err(Abort(AbortReason::User))
        );
        assert_eq!(
            db.table(t).get(0).unwrap().read_row().get_i64(1),
            1,
            "user-aborted write rolled back"
        );
        assert!(db.table(t).get(0).unwrap().meta.lock.lock().is_quiescent());
    }
}
