//! The benchmark executor: one worker per thread, each running a
//! generate → execute → commit/abort/retry loop against a shared
//! [`Database`] through a pluggable [`Protocol`] — the same harness shape
//! as DBx1000's (paper §5.1: "We collect transaction statistics, such as
//! throughput, latency, and abort rates by running each workload for at
//! least 30 seconds"; our durations are configurable because the figure
//! reproduction sweeps dozens of points).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::db::Database;
use crate::protocol::Protocol;
use crate::stats::{BenchResult, WorkerStats};
use crate::txn::{Abort, TxnCtx};
use crate::wal::WalBuffer;

/// One generated transaction instance: executed piece by piece (non-IC3
/// protocols see the pieces as consecutive program segments; IC3 uses the
/// boundaries for visibility).
pub trait TxnSpec: Send {
    /// Number of pieces (defaults to a single piece).
    fn pieces(&self) -> usize {
        1
    }

    /// Total operations the transaction will issue, when known ahead of
    /// time (stored-procedure mode; drives Optimization 2's δ heuristic).
    fn planned_ops(&self) -> Option<usize> {
        None
    }

    /// IC3 template index this instance was generated from.
    fn template(&self) -> usize {
        0
    }

    /// True when this transaction is read-only and should run in snapshot
    /// mode: reads resolve against the committed version chains with zero
    /// lock-manager interaction ([`Protocol::begin_snapshot`]). Defaults
    /// to the locking read path.
    fn read_only_snapshot(&self) -> bool {
        false
    }

    /// Executes piece `piece`. Called in order; any `Err` aborts the
    /// attempt. Retries re-run all pieces with the same inputs.
    fn run_piece(
        &self,
        piece: usize,
        db: &Database,
        proto: &dyn Protocol,
        ctx: &mut TxnCtx,
    ) -> Result<(), Abort>;
}

/// A workload generates transaction instances.
pub trait Workload: Send + Sync {
    /// Human-readable name.
    fn name(&self) -> &str;

    /// Draws the next transaction for `worker`.
    fn generate(&self, worker: usize, rng: &mut SmallRng) -> Box<dyn TxnSpec>;
}

/// Benchmark configuration.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Worker threads.
    pub threads: usize,
    /// Measured duration.
    pub duration: Duration,
    /// Warm-up (executed, not measured).
    pub warmup: Duration,
    /// RNG seed (worker `i` uses `seed + i`).
    pub seed: u64,
}

impl BenchConfig {
    /// A quick configuration for tests and smoke runs.
    pub fn quick(threads: usize) -> Self {
        BenchConfig {
            threads,
            duration: Duration::from_millis(200),
            warmup: Duration::from_millis(20),
            seed: 42,
        }
    }

    /// Sets the measured duration.
    pub fn with_duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }
}

/// Runs one transaction attempt to completion (commit or abort). Returns
/// the abort cascade count on failure.
fn run_attempt(
    spec: &dyn TxnSpec,
    db: &Database,
    proto: &dyn Protocol,
    wal: &mut WalBuffer,
) -> (Result<(), Abort>, usize, crate::txn::TxnTimers, u64) {
    let mut ctx = if spec.read_only_snapshot() {
        proto.begin_snapshot(db)
    } else {
        proto.begin(db)
    };
    ctx.planned_ops = spec.planned_ops();
    ctx.ic3.template = spec.template();
    let res = (|| -> Result<(), Abort> {
        for p in 0..spec.pieces() {
            proto.piece_begin(db, &mut ctx, p)?;
            spec.run_piece(p, db, proto, &mut ctx)?;
            proto.piece_end(db, &mut ctx)?;
        }
        proto.commit(db, &mut ctx, wal)
    })();
    match res {
        Ok(()) => (Ok(()), 0, ctx.timers, ctx.locks_acquired),
        Err(e) => {
            let cascaded = proto.abort(db, &mut ctx);
            (Err(e), cascaded, ctx.timers, ctx.locks_acquired)
        }
    }
}

/// Executes one transaction until it commits, the stop flag rises, or the
/// deadline passes. Returns whether it committed.
fn run_txn_to_commit(
    spec: &dyn TxnSpec,
    db: &Database,
    proto: &dyn Protocol,
    wal: &mut WalBuffer,
    stats: &mut WorkerStats,
    stop: &AtomicBool,
    deadline: Instant,
) -> bool {
    let mut attempt = 0u32;
    let snapshot = spec.read_only_snapshot();
    loop {
        let t0 = Instant::now();
        let (res, cascaded, timers, locks) = run_attempt(spec, db, proto, wal);
        stats.lock_wait += timers.lock_wait;
        stats.commit_wait += timers.commit_wait;
        if snapshot {
            stats.snapshot_lock_acquisitions += locks;
        } else {
            stats.lock_acquisitions += locks;
        }
        match res {
            Ok(()) => {
                if snapshot {
                    stats.record_snapshot_commit(t0.elapsed());
                } else {
                    stats.record_commit(t0.elapsed());
                }
                return true;
            }
            Err(e) => {
                stats.record_abort(e.0, t0.elapsed(), cascaded);
                if snapshot {
                    stats.snapshot_aborts += 1;
                }
                // User-initiated aborts are logical rollbacks (e.g. TPC-C's
                // invalid-item NewOrder): the transaction is *done*, not
                // retried — re-running it would abort identically forever.
                if e.0 == crate::txn::AbortReason::User {
                    return false;
                }
                if stop.load(Ordering::Relaxed) || Instant::now() >= deadline {
                    return false;
                }
                // Exponential restart backoff (DBx1000's restart penalty):
                // lets the conflicting transactions drain instead of
                // re-colliding immediately — vital for cascade storms.
                attempt += 1;
                if attempt <= 1 {
                    std::thread::yield_now();
                } else {
                    let us = 5u64 << attempt.min(6);
                    std::thread::sleep(Duration::from_micros(us));
                }
            }
        }
    }
}

/// Executes one transaction until it commits, retrying aborted attempts.
/// Returns the number of attempts (1 = committed first try). Used by the
/// Criterion micro-benchmarks; the figure harness uses [`run_bench`].
pub fn execute_to_commit(
    spec: &dyn TxnSpec,
    db: &Database,
    proto: &dyn Protocol,
    wal: &mut WalBuffer,
) -> usize {
    let mut attempts = 0;
    loop {
        attempts += 1;
        let (res, _, _, _) = run_attempt(spec, db, proto, wal);
        if res.is_ok() {
            return attempts;
        }
        std::thread::yield_now();
    }
}

/// Runs `workload` under `proto` with `cfg`; returns the merged result.
pub fn run_bench(
    db: &Arc<Database>,
    proto: &Arc<dyn Protocol>,
    workload: &Arc<dyn Workload>,
    cfg: &BenchConfig,
) -> BenchResult {
    let measuring = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::with_capacity(cfg.threads);
    for w in 0..cfg.threads {
        let db = Arc::clone(db);
        let proto = Arc::clone(proto);
        let workload = Arc::clone(workload);
        let measuring = Arc::clone(&measuring);
        let stop = Arc::clone(&stop);
        let seed = cfg.seed + w as u64;
        let total_time = cfg.warmup + cfg.duration + Duration::from_secs(30);
        handles.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut wal = WalBuffer::new();
            let mut warm = WorkerStats::default();
            let mut measured = WorkerStats::default();
            let hard_deadline = Instant::now() + total_time;
            while !stop.load(Ordering::Relaxed) {
                let spec = workload.generate(w, &mut rng);
                let stats = if measuring.load(Ordering::Relaxed) {
                    &mut measured
                } else {
                    &mut warm
                };
                run_txn_to_commit(
                    spec.as_ref(),
                    &db,
                    proto.as_ref(),
                    &mut wal,
                    stats,
                    &stop,
                    hard_deadline,
                );
            }
            measured.log_bytes = wal.bytes_logged();
            measured
        }));
    }

    std::thread::sleep(cfg.warmup);
    measuring.store(true, Ordering::SeqCst);
    let t0 = Instant::now();
    std::thread::sleep(cfg.duration);
    let elapsed = t0.elapsed();
    stop.store(true, Ordering::SeqCst);

    let mut totals = WorkerStats::default();
    for h in handles {
        let s = h.join().expect("worker panicked");
        totals.merge(&s);
    }
    BenchResult {
        protocol: proto.name().to_string(),
        threads: cfg.threads,
        elapsed,
        totals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LockingProtocol;
    use bamboo_storage::{DataType, Row, Schema, TableId, Value};

    struct IncWorkload {
        table: TableId,
        keys: u64,
    }

    struct IncSpec {
        table: TableId,
        key: u64,
    }

    impl TxnSpec for IncSpec {
        fn planned_ops(&self) -> Option<usize> {
            Some(1)
        }

        fn run_piece(
            &self,
            _piece: usize,
            db: &Database,
            proto: &dyn Protocol,
            ctx: &mut TxnCtx,
        ) -> Result<(), Abort> {
            proto.update(db, ctx, self.table, self.key, &mut |row| {
                let v = row.get_i64(1);
                row.set(1, Value::I64(v + 1));
            })
        }
    }

    impl Workload for IncWorkload {
        fn name(&self) -> &str {
            "inc"
        }

        fn generate(&self, _worker: usize, rng: &mut SmallRng) -> Box<dyn TxnSpec> {
            use rand::Rng;
            Box::new(IncSpec {
                table: self.table,
                key: rng.gen_range(0..self.keys),
            })
        }
    }

    #[test]
    fn bench_executes_and_counts_consistently() {
        let mut b = Database::builder();
        let t = b.add_table(
            "kv",
            Schema::build()
                .column("k", DataType::U64)
                .column("v", DataType::I64),
        );
        let db = b.build();
        for k in 0..4u64 {
            db.table(t)
                .insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
        }
        let proto: Arc<dyn Protocol> = Arc::new(LockingProtocol::bamboo());
        let wl: Arc<dyn Workload> = Arc::new(IncWorkload { table: t, keys: 4 });
        let res = run_bench(&db, &proto, &wl, &BenchConfig::quick(2));
        assert!(res.totals.commits > 0, "some transactions must commit");
        assert!(res.throughput() > 0.0);
        // Conservation: the sum of counters equals total commits across
        // warmup + measurement — at least the measured commits.
        let sum: i64 = (0..4)
            .map(|k| db.table(t).get(k).unwrap().read_row().get_i64(1))
            .sum();
        assert!(
            sum >= res.totals.commits as i64,
            "each committed txn incremented exactly one counter"
        );
    }
}
