//! Durability orchestration: fuzzy checkpoints and crash recovery for the
//! partitioned database.
//!
//! The storage layer ([`bamboo_storage::log`]) owns the file formats —
//! segment framing, record codec, checkpoint files. This module owns the
//! *protocol* above them:
//!
//! * [`PartitionedDb::checkpoint`] takes a **fuzzy checkpoint** while
//!   transactions keep committing: it pins the GC watermark with a
//!   snapshot registration, captures each partition's log high-water LSN
//!   (the replay *cuts*), fences a commit-clock bound `S` and waits for
//!   every commit at or below it to finish installing, then dumps each
//!   shard's tuples *as of `S`* through the MVCC version chains. The data
//!   files are written first and the meta file last — the meta file's
//!   presence is what makes a checkpoint complete, so a crash mid-dump
//!   leaves the previous checkpoint authoritative.
//! * [`PartitionedDb::recover`] rebuilds a database from the newest
//!   complete checkpoint plus the per-partition logs: ARIES-style
//!   *analysis* (scan from the cuts, group records into transactions,
//!   check cross-partition completeness against each record's partition
//!   mask) followed by *redo* (replay committed groups in commit-timestamp
//!   order, guarded per tuple so replay is idempotent). There is no undo
//!   pass: the commit pipeline logs **after** the commit-point CAS, so
//!   uncommitted work never reaches a segment.
//!
//! # Replayability and the fsync policy
//!
//! Within one partition the log is written by a single appender under the
//! WAL lock, so whatever survives a crash is a byte-prefix of what was
//! written, and a transaction's record group (`Begin … Commit`) is never
//! interleaved with another group or split by a checkpoint cut. Across
//! partitions, a transaction is replayable iff its group is complete on
//! *every* partition in its mask:
//!
//! * Under [`bamboo_storage::FsyncPolicy::EveryCommit`] an incomplete transaction was
//!   never acknowledged **and never installed** (installs happen after all
//!   appends), so no later transaction can depend on it — incomplete
//!   groups are dropped individually and every fsync-acknowledged commit
//!   survives.
//! * Under the weaker policies a suffix of any partition's log may vanish,
//!   so recovery applies a **horizon cut**: every transaction with a
//!   commit timestamp at or above the oldest incomplete transaction's is
//!   discarded. Dependency closure holds because a reader's group always
//!   sits above its writer's group on the shared partition's log — if the
//!   reader survived the prefix, so did the writer (or the writer is
//!   incomplete elsewhere and the horizon removes both).
//! * [`bamboo_storage::FsyncPolicy::GroupCommit`] also takes the horizon
//!   branch even though its acknowledgments are durable: it installs
//!   *before* the batch fsync (early lock release), so a dependent that is
//!   durable on its own partitions can outlive a writer that never became
//!   durable elsewhere — only the horizon cut removes both. Every
//!   acknowledged commit still survives, because the acknowledgment waited
//!   for the global durability horizon: when `T` was acked, every commit
//!   with a timestamp at or below `T`'s was already durable on all its
//!   partitions, so the oldest incomplete transaction (and hence the cut)
//!   sits strictly above `T`. See `DURABILITY.md` "Group commit".
//!
//! Recovery ends by taking a fresh checkpoint of the recovered state, so
//! the ambiguous log region behind it is never scanned again — running
//! recovery twice (or crashing *during* recovery, before the new meta file
//! lands) converges to the same state.
//!
//! Loader-path inserts ([`PartitionedDb::insert`]) bypass the WAL; a
//! durable database must checkpoint after loading (the *genesis*
//! checkpoint) or the loaded rows are not recoverable — `recover` fails
//! cleanly when no checkpoint exists.
//!
//! Durable replay is defined for the whole-row-install protocols (the 2PL
//! family and Silo). IC3 installs column-masked merges, which a full-row
//! after-image cannot capture raceless-ly; logging column-masked update
//! records for IC3 is future work (see `DURABILITY.md`).

use std::collections::HashMap;
use std::io;
use std::sync::Arc;

use bamboo_storage::log::{
    latest_checkpoint_with, read_checkpoint_part_with, retire_segments_below_with,
    write_checkpoint_meta_with, write_checkpoint_part_with, CheckpointMeta, CheckpointPart, Lsn,
    TableDump, TableMeta, WalRecord,
};
use bamboo_storage::{PartitionId, TableId};

use crate::db::DbOptions;
use crate::partition::PartitionedDb;
use crate::sync::atomic::Ordering;

/// What [`PartitionedDb::recover`] did, for observability and tests.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Stable bound of the checkpoint recovery started from.
    pub checkpoint_ts: u64,
    /// Tuples restored from the checkpoint dump (all shards).
    pub restored_tuples: u64,
    /// Committed transactions replayed from the logs.
    pub replayed_txns: u64,
    /// Individual redo records applied.
    pub replayed_writes: u64,
    /// Transactions dropped because a partition's group was missing or
    /// unterminated (never acknowledged under `EveryCommit`).
    pub dropped_incomplete: u64,
    /// Complete transactions discarded by the weak-policy horizon cut.
    pub dropped_horizon: u64,
    /// Partitions whose log ended in a torn (checksum-failing) tail.
    pub torn_partitions: u32,
    /// The commit timestamp the clock resumed from.
    pub recovered_ts: u64,
}

/// One transaction reassembled during the analysis pass.
struct TxnGroup {
    commit_ts: u64,
    /// Partitions the transaction declared it would log to.
    parts_mask: u64,
    /// Partitions a *complete* group was found on.
    seen_mask: u64,
    /// Per-partition redo records, in append order.
    writes: Vec<(u32, Vec<WalRecord>)>,
}

impl PartitionedDb {
    /// Takes a fuzzy checkpoint of the whole database and returns its
    /// stable bound. See the module docs for the algorithm; requires a
    /// durable WAL ([`DbOptions::with_wal_dir`]).
    pub fn checkpoint(&self) -> io::Result<u64> {
        let db0 = self.db(PartitionId(0));
        let dir = db0
            .options()
            .wal_dir
            .clone()
            .expect("checkpoint requires a durable WAL (DbOptions::with_wal_dir)");
        let backend = db0.options().backend();
        // The currently-newest complete checkpoint (if any) is about to
        // become second-newest: its cuts bound what log compaction below
        // may retire.
        let prev = latest_checkpoint_with(&*backend, &dir)?;
        // A degraded partition has no trustworthy log high-water mark (its
        // writer is torn down), so a checkpoint taken now could record a
        // replay cut that skips whatever its log actually holds. Refuse —
        // heal first.
        if self.degraded_partitions() > 0 {
            return Err(io::Error::other(
                "checkpoint requires every partition healthy (heal degraded partitions first)",
            ));
        }
        // 1. Pin the GC watermark: versions needed by the dump below can
        //    not be reclaimed while this grant is live.
        let grant = db0.register_snapshot();
        // 2. Capture the replay cuts. `current_lsn` takes each WAL lock,
        //    and appends hold it for a whole record group, so a cut never
        //    lands inside a group. Any commit with ts > S that logged
        //    *before* its cut was captured is replayed redundantly and
        //    absorbed by the per-tuple guards.
        let cuts: Vec<Lsn> = self.parts().iter().map(|p| p.wal().current_lsn()).collect();
        // 3. Fence the stable bound: S is below every timestamp allocated
        //    after the cuts, and waiting for stable >= S means every
        //    commit at or below S finished installing before the dump.
        let stable_ts = db0.commit_clock.next().saturating_sub(1);
        while db0.commit_clock.stable() < stable_ts {
            std::thread::yield_now();
        }
        // 4. Schema-level metadata, from partition 0's catalog (identical
        //    on every shard) and the router.
        let tables: Vec<TableMeta> = db0
            .catalog()
            .tables()
            .iter()
            .enumerate()
            .map(|(i, t)| TableMeta {
                name: t.name.clone(),
                schema: t.schema.clone(),
                route: self.router().strategy(TableId(i as u32)).clone(),
                ordered: t.ordered_index().is_some(),
                secondary: self
                    .parts()
                    .iter()
                    .map(|p| p.db().table(TableId(i as u32)).secondary_count())
                    .max()
                    .unwrap_or(0) as u32,
            })
            .collect();
        // 5. Dump every shard as of S, one thread per partition, then
        //    write the data files. The meta file goes last — its presence
        //    is what commits the checkpoint.
        let dumps: Vec<io::Result<()>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.partitions())
                .map(|p| {
                    let dir = &dir;
                    let backend = &backend;
                    s.spawn(move || {
                        let part = CheckpointPart {
                            stable_ts,
                            partition: p,
                            tables: self.dump_shard(PartitionId(p), stable_ts),
                        };
                        write_checkpoint_part_with(&**backend, dir, &part)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("checkpoint dump thread panicked"))
                .collect()
        });
        for r in dumps {
            r?;
        }
        write_checkpoint_meta_with(
            &*backend,
            &dir,
            &CheckpointMeta {
                stable_ts,
                partitions: self.partitions(),
                tables,
                cuts: cuts.clone(),
            },
        )?;
        // 6. Drop a checkpoint marker into every partition's log (scan
        //    diagnostics; recovery itself reads the meta file). The
        //    checkpoint is already committed by the meta file above, so a
        //    marker failure does not invalidate it — the handle degrades
        //    itself (observable via `degraded_partitions`) and later
        //    commits abort fast until healed.
        for p in self.parts() {
            let _ = p.wal().append_checkpoint(stable_ts, &cuts);
        }
        // 7. Log compaction, one checkpoint behind: retire sealed segments
        //    wholly below the *previous* complete checkpoint's cuts. The
        //    log needed by the checkpoint that just landed stays intact,
        //    and so does everything the previous checkpoint could replay —
        //    recovery can still fall back one checkpoint if this one's
        //    meta file turns out to be the casualty of the next crash.
        //    Best-effort: a failed delete only postpones reclamation.
        if let Some(prev) = prev {
            if prev.cuts.len() == self.partitions() as usize {
                for p in 0..self.partitions() {
                    if let Ok(n) =
                        retire_segments_below_with(&*backend, &dir, p, prev.cuts[p as usize])
                    {
                        self.note_segments_retired(n);
                    }
                }
            }
        }
        db0.release_snapshot(grant);
        Ok(stable_ts)
    }

    /// Dumps one partition shard's tables as of `stable_ts`: tuples in
    /// row-id order through the version chains, secondary postings as
    /// `(secondary key, primary key)` pairs (primary keys survive the
    /// row-id reassignment of recovery; raw row ids would not, because
    /// tuples inserted after `stable_ts` leave row-id gaps the replay
    /// fills in a different order).
    fn dump_shard(&self, p: PartitionId, stable_ts: u64) -> Vec<TableDump> {
        let db = self.db(p);
        db.catalog()
            .tables()
            .iter()
            .map(|table| {
                let mut dump = TableDump::default();
                let len = table.len() as u64;
                for row_id in 0..len {
                    let tuple = table.get_by_row_id(row_id).expect("row ids are dense");
                    if let Some((ts, row)) = tuple.read_version_at(stable_ts) {
                        dump.tuples.push((tuple.key, ts, row));
                    }
                }
                for slot in 0..table.secondary_count() {
                    let postings = table
                        .secondary_index(slot)
                        .entries()
                        .into_iter()
                        .filter_map(|(skey, row_id)| {
                            let tuple = table.get_by_row_id(row_id)?;
                            tuple.visible_at(stable_ts).then_some((skey, tuple.key))
                        })
                        .collect();
                    dump.secondary.push(postings);
                }
                dump
            })
            .collect()
    }

    /// Rebuilds a partitioned database from the durable state in
    /// `opts.wal_dir`: newest complete checkpoint + per-partition log
    /// replay. Returns the recovered database (with fresh durable WAL
    /// writers resuming at the log end) and a [`RecoveryReport`].
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] when the directory holds
    /// no complete checkpoint (a durable database must checkpoint once
    /// after loading).
    pub fn recover(opts: DbOptions) -> io::Result<(Arc<PartitionedDb>, RecoveryReport)> {
        let dir = opts
            .wal_dir
            .clone()
            .expect("recover requires a durable WAL (DbOptions::with_wal_dir)");
        let backend = opts.backend();
        let meta = latest_checkpoint_with(&*backend, &dir)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "no complete checkpoint found (durable databases checkpoint after loading)",
            )
        })?;
        let parts_n = meta.partitions;
        assert_eq!(meta.cuts.len(), parts_n as usize, "corrupt checkpoint meta");

        // Analysis 1/2: scan every partition's log from its cut, in
        // parallel. Scans stop cleanly at a torn or corrupt frame.
        let scans: Vec<bamboo_storage::log::LogScan> = {
            let results: Vec<io::Result<_>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..parts_n)
                    .map(|p| {
                        let dir = &dir;
                        let backend = &backend;
                        let from = meta.cuts[p as usize];
                        s.spawn(move || {
                            bamboo_storage::log::scan_partition_log_from_with(
                                &**backend, dir, p, from,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("log scan thread panicked"))
                    .collect()
            });
            results.into_iter().collect::<io::Result<Vec<_>>>()?
        };
        let mut report = RecoveryReport {
            checkpoint_ts: meta.stable_ts,
            torn_partitions: scans.iter().filter(|s| s.torn).count() as u32,
            ..RecoveryReport::default()
        };

        // Analysis 2/2: reassemble transactions across partitions and
        // decide which are replayable. Keyed by txn id — logs hold tens of
        // thousands of groups, so lookup must not be linear.
        let mut groups: HashMap<u64, TxnGroup> = HashMap::new();
        let mut max_txn_id = 0u64;
        for (p, scan) in scans.iter().enumerate() {
            let mut open: Option<(u64, Vec<WalRecord>)> = None;
            for (_, rec) in &scan.records {
                match rec {
                    WalRecord::Begin {
                        txn_id,
                        commit_ts,
                        parts_mask,
                    } => {
                        max_txn_id = max_txn_id.max(*txn_id);
                        debug_assert!(open.is_none(), "record groups never interleave");
                        open = Some((*txn_id, Vec::new()));
                        groups.entry(*txn_id).or_insert_with(|| TxnGroup {
                            commit_ts: *commit_ts,
                            parts_mask: *parts_mask,
                            seen_mask: 0,
                            writes: Vec::new(),
                        });
                    }
                    WalRecord::Update { .. } | WalRecord::Insert { .. } => {
                        if let Some((_, writes)) = open.as_mut() {
                            writes.push(rec.clone());
                        }
                    }
                    WalRecord::Commit { txn_id, .. } => {
                        if let Some((id, writes)) = open.take() {
                            debug_assert_eq!(id, *txn_id, "Commit closes its own Begin");
                            let g = groups.get_mut(&id).expect("Begin registered the group");
                            g.seen_mask |= 1u64 << p;
                            g.writes.push((p as u32, writes));
                        }
                    }
                    WalRecord::Checkpoint { .. } => {}
                }
            }
            // An unterminated group at the tail: the crash landed inside
            // the append. The transaction is incomplete by construction.
        }
        let complete = |g: &TxnGroup| g.seen_mask & g.parts_mask == g.parts_mask;
        report.dropped_incomplete = groups.values().filter(|g| !complete(g)).count() as u64;
        // The horizon cut (every policy that installs before durability —
        // see module docs; `GroupCommit` acks are durable but its installs
        // are not, so it takes the horizon branch like the weak policies).
        let horizon = if opts.fsync_policy.recovery_drops_individually() {
            u64::MAX
        } else {
            groups
                .values()
                .filter(|g| !complete(g))
                .map(|g| g.commit_ts)
                .min()
                .unwrap_or(u64::MAX)
        };
        report.dropped_horizon = groups
            .values()
            .filter(|g| complete(g) && g.commit_ts >= horizon)
            .count() as u64;
        let mut kept: Vec<TxnGroup> = groups
            .into_values()
            .filter(|g| complete(g) && g.commit_ts < horizon)
            .collect();
        kept.sort_by_key(|g| g.commit_ts);
        report.replayed_txns = kept.len() as u64;

        // Rebuild the catalog shards from the checkpoint's table metadata.
        // `build` opens fresh durable segment writers (truncating any torn
        // tail) — after the scans above, so nothing is lost to that.
        let mut builder = PartitionedDb::builder(parts_n);
        for m in &meta.tables {
            builder.add_table(&m.name, m.schema.clone(), m.route.clone());
        }
        builder.with_options(opts.clone());
        let pdb = builder.build();
        for (i, m) in meta.tables.iter().enumerate() {
            for p in pdb.parts() {
                let table = p.db().table(TableId(i as u32));
                for _ in 0..m.secondary {
                    table.add_secondary_index();
                }
            }
        }

        // Restore the checkpoint image, one thread per partition. Tuples
        // are re-inserted in dump (row-id) order with their dumped version
        // timestamps.
        let restored: Vec<io::Result<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..parts_n)
                .map(|p| {
                    let dir = &dir;
                    let backend = &backend;
                    let pdb = &pdb;
                    let stable_ts = meta.stable_ts;
                    s.spawn(move || {
                        let part = read_checkpoint_part_with(&**backend, dir, stable_ts, p)?;
                        let mut restored = 0u64;
                        for (t, dump) in part.tables.iter().enumerate() {
                            let table = pdb.db(PartitionId(p)).table(TableId(t as u32));
                            for (key, ts, row) in &dump.tuples {
                                table.insert_at(*key, row.clone(), *ts);
                                restored += 1;
                            }
                            for (slot, postings) in dump.secondary.iter().enumerate() {
                                let idx = table.secondary_index(slot);
                                for (skey, primary) in postings {
                                    let tuple = table
                                        .get(*primary)
                                        .expect("postings reference dumped tuples");
                                    idx.insert(*skey, tuple.row_id);
                                }
                            }
                        }
                        Ok(restored)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("checkpoint restore thread panicked"))
                .collect()
        });
        for r in restored {
            report.restored_tuples += r?;
        }

        // Redo: replay each partition's share of every kept transaction,
        // one thread per partition, in commit-timestamp order. Shards are
        // disjoint, so partitions replay independently; the per-tuple
        // timestamp guards make replay idempotent.
        let mut per_part: Vec<Vec<(u64, &[WalRecord])>> =
            (0..parts_n as usize).map(|_| Vec::new()).collect();
        for g in &kept {
            for (p, writes) in &g.writes {
                per_part[*p as usize].push((g.commit_ts, writes.as_slice()));
            }
        }
        let replayed: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = per_part
                .iter()
                .enumerate()
                .map(|(p, share)| {
                    let pdb = &pdb;
                    s.spawn(move || {
                        let db = pdb.db(PartitionId(p as u32));
                        let mut applied = 0u64;
                        for (ts, writes) in share {
                            for rec in *writes {
                                applied += u64::from(replay_record(db, *ts, rec));
                            }
                        }
                        applied
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("redo thread panicked"))
                .collect()
        });
        report.replayed_writes = replayed.into_iter().sum();

        // Resume the commit pipeline where the replayed history ends.
        let max_ts = kept
            .last()
            .map(|g| g.commit_ts)
            .unwrap_or(0)
            .max(meta.stable_ts);
        let db0 = pdb.db(PartitionId(0));
        db0.commit_clock.restore(max_ts);
        // ordering: Release — the recovered watermark must be visible to
        // any thread that later observes the database; no concurrent
        // readers exist yet.
        db0.watermark.store(max_ts, Ordering::Release);
        // ordering: Relaxed — single-threaded at this point; the id source
        // only needs to resume above every replayed transaction id.
        db0.txn_ids
            .store(max_txn_id.saturating_add(1), Ordering::Relaxed);
        for (i, m) in meta.tables.iter().enumerate() {
            if m.ordered {
                pdb.enable_ordered_index(TableId(i as u32));
            }
        }
        report.recovered_ts = max_ts;

        // Seal recovery with a fresh checkpoint: its cuts sit at the new
        // writers' LSNs, past any dropped or ambiguous log region, so a
        // second recovery (or a crash right now) converges to this state.
        pdb.checkpoint()?;
        Ok((pdb, report))
    }
}

/// Applies one redo record to a partition shard. Returns whether it took
/// effect (guards make redo idempotent: a tuple already at or above the
/// record's timestamp is left alone).
fn replay_record(db: &crate::db::Database, ts: u64, rec: &WalRecord) -> bool {
    match rec {
        WalRecord::Update { table, key, row } => {
            let t = db.table(TableId(*table));
            match t.get(*key) {
                Some(tuple) if tuple.commit_ts() >= ts => false,
                Some(tuple) => {
                    tuple.install_versioned(row.clone(), ts, 0);
                    true
                }
                // An update to a key neither in the checkpoint nor
                // inserted by an earlier replayed group cannot happen on a
                // well-formed log; restore it defensively.
                None => {
                    t.insert_at(*key, row.clone(), ts);
                    true
                }
            }
        }
        WalRecord::Insert {
            table,
            key,
            row,
            secondary,
        } => {
            let t = db.table(TableId(*table));
            if t.get(*key).is_some() {
                return false;
            }
            let tuple = t.insert_at(*key, row.clone(), ts);
            if let Some((slot, skey)) = secondary {
                t.secondary_index(*slot as usize)
                    .insert(*skey, tuple.row_id);
            }
            true
        }
        _ => false,
    }
}
