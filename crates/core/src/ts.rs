//! Timestamp allocation.
//!
//! Wound-Wait (and therefore Bamboo) assigns each transaction a unique,
//! monotonically increasing timestamp; smaller timestamp = higher priority
//! (paper §2.1). Optimization 4 (§3.5, Algorithm 3) defers assignment until
//! the transaction's *first conflict*: a transaction starts `UNASSIGNED` and
//! the conflict site assigns timestamps to every transaction in the tuple's
//! lists (in list order) and then to the incoming transaction, all through
//! compare-and-swap so concurrent assignment sites agree.

use crate::sync::atomic::{AtomicU64, Ordering};

use crate::sync::CachePadded;

/// Sentinel for "no timestamp assigned yet" (Optimization 4). Sorts after
/// every assigned timestamp, i.e. unassigned transactions have the lowest
/// priority and are wounded first — they have done no conflicting work yet.
pub const UNASSIGNED: u64 = u64::MAX;

/// Global monotonic timestamp source. The counter is cache-padded: it is
/// hammered by every conflicting transaction's first-conflict assignment
/// and must not false-share with the database's other hot counters.
#[derive(Debug)]
pub struct TsSource {
    next: CachePadded<AtomicU64>,
}

impl TsSource {
    /// Creates a source starting at 1 (0 is reserved so that "smallest
    /// possible timestamp" comparisons never collide with a real value).
    pub fn new() -> Self {
        TsSource {
            next: CachePadded::new(AtomicU64::new(1)),
        }
    }

    /// Draws the next unique timestamp.
    #[inline]
    pub fn assign(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// The next timestamp that would be handed out (for tests/stats).
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

impl Default for TsSource {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn timestamps_are_unique_and_increasing() {
        let s = TsSource::new();
        let a = s.assign();
        let b = s.assign();
        assert!(a < b);
        assert!(b < UNASSIGNED);
    }

    #[test]
    fn concurrent_assignment_is_unique() {
        let s = Arc::new(TsSource::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || (0..1000).map(|_| s.assign()).collect::<Vec<_>>())
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
    }
}
