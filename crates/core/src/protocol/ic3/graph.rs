//! Static chopping for IC3 (paper §2.2).
//!
//! IC3 performs column-level static analysis over the workload's
//! transaction templates: pieces of different templates get a conflict
//! (C-) edge when they may touch the same table with overlapping columns
//! and at least one write. Chopping must then "guarantee no crosses of
//! C-edges to avoid potential deadlocks. For example, if one transaction
//! accesses table A before B while the other accesses table B before A,
//! the accesses of table A and B must be merged into one piece."
//!
//! [`chop`] implements that rule: starting from the declared (finest)
//! pieces it repeatedly merges the contiguous ranges spanned by crossing
//! C-edge pairs until a fixpoint, producing for each template a
//! non-decreasing `piece → group` map. Groups are the runtime's unit of
//! visibility and dependency tracking.

use bamboo_storage::TableId;

/// One declared access inside a piece: a table plus column bitmasks
/// (bit *i* = column *i* of that table's schema).
#[derive(Clone, Copy, Debug)]
pub struct PieceAccess {
    /// Accessed table.
    pub table: TableId,
    /// Columns that may be read.
    pub read_cols: u64,
    /// Columns that may be written.
    pub write_cols: u64,
}

impl PieceAccess {
    /// Read-only access helper.
    pub fn read(table: TableId, cols: u64) -> Self {
        PieceAccess {
            table,
            read_cols: cols,
            write_cols: 0,
        }
    }

    /// Read-modify-write access helper.
    pub fn write(table: TableId, read_cols: u64, write_cols: u64) -> Self {
        PieceAccess {
            table,
            read_cols,
            write_cols,
        }
    }

    /// Column-level conflict test: same table, overlapping columns, at
    /// least one side writing.
    pub fn conflicts(&self, other: &PieceAccess) -> bool {
        self.table == other.table
            && ((self.write_cols & (other.read_cols | other.write_cols))
                | (other.write_cols & (self.read_cols | self.write_cols)))
                != 0
    }
}

/// One piece: the set of accesses IC3's static analysis attributes to it.
#[derive(Clone, Debug, Default)]
pub struct PieceDecl {
    /// Declared accesses.
    pub accesses: Vec<PieceAccess>,
}

impl PieceDecl {
    /// Builds a piece from accesses.
    pub fn new(accesses: Vec<PieceAccess>) -> Self {
        PieceDecl { accesses }
    }

    fn conflicts(&self, other: &PieceDecl) -> bool {
        self.accesses
            .iter()
            .any(|a| other.accesses.iter().any(|b| a.conflicts(b)))
    }
}

/// A transaction template: an ordered list of pieces.
#[derive(Clone, Debug)]
pub struct TemplateDecl {
    /// Display name.
    pub name: String,
    /// Pieces in program order.
    pub pieces: Vec<PieceDecl>,
}

/// The chopping result.
#[derive(Clone, Debug)]
pub struct Chopping {
    /// `groups[t][p]` = group index of piece `p` in template `t`;
    /// non-decreasing in `p`, normalized to `0..n_groups[t]`.
    pub groups: Vec<Vec<usize>>,
    /// Number of groups per template.
    pub n_groups: Vec<usize>,
}

/// Union of declared accesses of all pieces mapped to `group` in template
/// `t` (used by the runtime to find the column masks of an access).
pub fn group_accesses<'a>(
    template: &'a TemplateDecl,
    groups: &'a [usize],
    group: usize,
) -> impl Iterator<Item = &'a PieceAccess> {
    template
        .pieces
        .iter()
        .zip(groups)
        .filter(move |(_, g)| **g == group)
        .flat_map(|(p, _)| p.accesses.iter())
}

/// Computes the coarsest-needed chopping with no crossing C-edges.
pub fn chop(templates: &[TemplateDecl]) -> Chopping {
    let mut groups: Vec<Vec<usize>> = templates
        .iter()
        .map(|t| (0..t.pieces.len()).collect())
        .collect();
    loop {
        let mut changed = false;
        for s in 0..templates.len() {
            for t in 0..templates.len() {
                let pairs = conflicting_group_pairs(templates, &groups, s, t);
                let mut merges: Vec<(usize, usize, usize, usize)> = Vec::new();
                for &(a1, b1) in &pairs {
                    for &(a2, b2) in &pairs {
                        if a1 < a2 && b1 > b2 {
                            merges.push((a1, a2, b2, b1));
                        }
                    }
                }
                for (alo, ahi, blo, bhi) in merges {
                    changed |= merge_range(&mut groups[s], alo, ahi);
                    changed |= merge_range(&mut groups[t], blo, bhi);
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Normalize group ids to dense 0..n per template.
    let mut n_groups = Vec::with_capacity(groups.len());
    for g in &mut groups {
        let mut next = 0usize;
        let mut last_raw = usize::MAX;
        for v in g.iter_mut() {
            if *v != last_raw {
                last_raw = *v;
                *v = next;
                next += 1;
            } else {
                *v = next - 1;
            }
        }
        n_groups.push(next);
    }
    Chopping { groups, n_groups }
}

/// All ordered pairs `(group in s, group in t)` whose combined accesses
/// conflict. When `s == t` this models two concurrent instances of the
/// same template.
fn conflicting_group_pairs(
    templates: &[TemplateDecl],
    groups: &[Vec<usize>],
    s: usize,
    t: usize,
) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let sg = &groups[s];
    let tg = &groups[t];
    let mut s_groups: Vec<usize> = sg.clone();
    s_groups.dedup();
    let mut t_groups: Vec<usize> = tg.clone();
    t_groups.dedup();
    for &ga in &s_groups {
        for &gb in &t_groups {
            let a_pieces = templates[s]
                .pieces
                .iter()
                .zip(sg)
                .filter(|(_, g)| **g == ga);
            let conflict = a_pieces.clone().any(|(pa, _)| {
                templates[t]
                    .pieces
                    .iter()
                    .zip(tg)
                    .filter(|(_, g)| **g == gb)
                    .any(|(pb, _)| pa.conflicts(pb))
            });
            if conflict {
                pairs.push((ga, gb));
            }
        }
    }
    pairs
}

/// Assigns every piece whose (raw) group id lies in `[lo, hi]` the id `lo`.
fn merge_range(groups: &mut [usize], lo: usize, hi: usize) -> bool {
    let mut changed = false;
    for g in groups.iter_mut() {
        if *g > lo && *g <= hi {
            *g = lo;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: u64 = u64::MAX;

    fn tmpl(name: &str, pieces: Vec<Vec<PieceAccess>>) -> TemplateDecl {
        TemplateDecl {
            name: name.into(),
            pieces: pieces.into_iter().map(PieceDecl::new).collect(),
        }
    }

    #[test]
    fn column_conflicts_respect_masks() {
        let t = TableId(0);
        let w_ytd = PieceAccess::write(t, 0b01, 0b01);
        let r_tax = PieceAccess::read(t, 0b10);
        let r_ytd = PieceAccess::read(t, 0b01);
        assert!(
            !w_ytd.conflicts(&r_tax),
            "different columns of the same table do not conflict (IC3's win)"
        );
        assert!(w_ytd.conflicts(&r_ytd));
        assert!(!r_tax.conflicts(&r_ytd), "read-read never conflicts");
    }

    #[test]
    fn opposite_order_tables_are_merged() {
        // T1: A then B; T2: B then A — the paper's canonical crossing
        // example; both templates collapse to one group.
        let a = TableId(0);
        let b = TableId(1);
        let t1 = tmpl(
            "t1",
            vec![
                vec![PieceAccess::write(a, ALL, ALL)],
                vec![PieceAccess::write(b, ALL, ALL)],
            ],
        );
        let t2 = tmpl(
            "t2",
            vec![
                vec![PieceAccess::write(b, ALL, ALL)],
                vec![PieceAccess::write(a, ALL, ALL)],
            ],
        );
        let c = chop(&[t1, t2]);
        assert_eq!(c.n_groups, vec![1, 1]);
    }

    #[test]
    fn same_order_tables_stay_chopped() {
        // Both templates access A then B: no crossing, finest chopping
        // survives.
        let a = TableId(0);
        let b = TableId(1);
        let mk = |name: &str| {
            tmpl(
                name,
                vec![
                    vec![PieceAccess::write(a, ALL, ALL)],
                    vec![PieceAccess::write(b, ALL, ALL)],
                ],
            )
        };
        let c = chop(&[mk("t1"), mk("t2")]);
        assert_eq!(c.n_groups, vec![2, 2]);
        assert_eq!(c.groups[0], vec![0, 1]);
    }

    #[test]
    fn self_crossing_within_one_template_merges() {
        // A template touching table A in piece 0 and again in piece 2: two
        // concurrent instances produce crossing C-edges, so pieces 0..=2
        // must merge.
        let a = TableId(0);
        let b = TableId(1);
        let t = tmpl(
            "t",
            vec![
                vec![PieceAccess::write(a, ALL, ALL)],
                vec![PieceAccess::write(b, ALL, ALL)],
                vec![PieceAccess::write(a, ALL, ALL)],
            ],
        );
        let c = chop(&[t]);
        assert_eq!(c.n_groups, vec![1], "pieces spanning the re-access merge");
    }

    #[test]
    fn column_disjoint_templates_keep_finest_chopping() {
        // Payment writes column 1 of A; NewOrder reads column 2 of A:
        // column-level analysis sees no C-edge at all.
        let a = TableId(0);
        let pay = tmpl("pay", vec![vec![PieceAccess::write(a, 0b01, 0b01)]]);
        let no = tmpl(
            "no",
            vec![
                vec![PieceAccess::read(a, 0b10)],
                vec![PieceAccess::write(TableId(1), ALL, ALL)],
            ],
        );
        let c = chop(&[pay, no]);
        assert_eq!(c.n_groups, vec![1, 2]);
    }

    #[test]
    fn group_accesses_unions_merged_pieces() {
        let a = TableId(0);
        let b = TableId(1);
        let t = tmpl(
            "t",
            vec![
                vec![PieceAccess::write(a, ALL, ALL)],
                vec![PieceAccess::write(b, ALL, ALL)],
                vec![PieceAccess::write(a, ALL, ALL)],
            ],
        );
        let c = chop(std::slice::from_ref(&t));
        let acc: Vec<_> = group_accesses(&t, &c.groups[0], 0).collect();
        assert_eq!(acc.len(), 3, "merged group exposes all three accesses");
    }

    #[test]
    fn normalization_produces_dense_nondecreasing_ids() {
        let a = TableId(0);
        let b = TableId(1);
        let cdecl = TableId(2);
        let t1 = tmpl(
            "t1",
            vec![
                vec![PieceAccess::write(a, ALL, ALL)],
                vec![PieceAccess::write(b, ALL, ALL)],
                vec![PieceAccess::write(cdecl, ALL, ALL)],
            ],
        );
        let t2 = tmpl(
            "t2",
            vec![
                vec![PieceAccess::write(b, ALL, ALL)],
                vec![PieceAccess::write(a, ALL, ALL)],
            ],
        );
        let c = chop(&[t1, t2]);
        // t1's A,B merge (crossing with t2); C stays separate.
        assert_eq!(c.groups[0], vec![0, 0, 1]);
        assert_eq!(c.n_groups[0], 2);
        assert_eq!(c.groups[1], vec![0, 0]);
    }
}
