//! IC3 — the state-of-the-art transaction-chopping baseline (paper §2.2,
//! compared against Bamboo in §5.6 / Figure 11).
//!
//! IC3 decomposes each registered transaction template into pieces and
//! makes a piece's updates visible as soon as the piece finishes. Static
//! column-level analysis (our [`graph::chop`]) merges pieces whose conflict
//! edges would cross; at runtime, per-tuple accessor lists track which
//! uncommitted transaction touched a tuple in which piece, and a piece
//! accessing the tuple waits only until the *conflicting piece* of its
//! predecessors has finished — not until their commit. Commits are ordered
//! along the recorded dependencies.
//!
//! Substitutions versus the original system (see DESIGN.md): IC3 analyses
//! stored-procedure source code; our templates declare their per-piece
//! column access sets explicitly, which is the same information. Optimistic
//! piece execution validates at piece end and, on failure, aborts the
//! attempt (the original re-executes just the piece; modelling that as a
//! transaction retry preserves "optimistic execution induces more aborts",
//! which is the behaviour Figure 11d reports).

mod graph;

use crate::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bamboo_storage::{Row, TableId, Tuple};

pub use graph::{chop, group_accesses, Chopping, PieceAccess, PieceDecl, TemplateDecl};

use crate::db::Database;
use crate::meta::TupleCc;
use crate::protocol::{apply_inserts, Protocol};
use crate::txn::{Abort, AbortReason, Access, AccessState, LockMode, PendingInsert, TxnCtx};
use crate::wal::WalHandle;

/// Ceiling on a single piece-level wait; exceeded waits self-abort. Piece
/// waits are normally microseconds — this is a liveness backstop, not a
/// tuning knob. Staggered per transaction id so that if an unforeseen wait
/// cycle ever forms, one participant times out first and the rest proceed.
const PIECE_WAIT_TIMEOUT: Duration = Duration::from_millis(50);

/// Ceiling on the commit-order wait (same stagger rationale).
const DEP_WAIT_TIMEOUT: Duration = Duration::from_millis(100);

/// Per-transaction stagger added to the liveness timeouts.
fn stagger(id: u64) -> Duration {
    Duration::from_millis((id % 16) * 5)
}

/// One entry in a tuple's accessor list.
pub struct Ic3Accessor {
    txn: Arc<crate::txn::TxnShared>,
    template: u32,
    group: u32,
    read_cols: u64,
    write_cols: u64,
}

/// One published piece write: the writer, its local image, and the mask of
/// columns it actually owns. Masked composition keeps column-disjoint
/// writers from clobbering each other — IC3's whole point is that they
/// never conflict. The writer handle lets readers skip versions of writers
/// already marked aborted (their release, which withdraws the version and
/// cascades, may still be in flight on the owning thread).
struct Ic3Version {
    txn: Arc<crate::txn::TxnShared>,
    row: Row,
    write_cols: u64,
}

/// Per-tuple IC3 state: the accessor list plus the chain of published
/// piece writes (uncommitted versions, newest last).
#[derive(Default)]
pub struct Ic3TupleState {
    accessors: Vec<Ic3Accessor>,
    versions: Vec<Ic3Version>,
    /// Bumped on every commit install; part of the optimistic validation
    /// token (a committed-and-installed predecessor empties the chain, so
    /// the tail id alone cannot detect it).
    install_seq: u64,
}

/// Copies the columns in `mask` from `src` over `dst`.
fn apply_masked(dst: &mut Row, src: &Row, mask: u64) {
    for c in 0..dst.len().min(64) {
        if mask & (1 << c) != 0 {
            dst.set(c, src.get(c).clone());
        }
    }
}

impl Ic3TupleState {
    /// Latest visible image: committed row with every published piece
    /// write applied column-masked in chain order, skipping versions whose
    /// writer is already marked aborted. Returns the id of the chain tail
    /// (0 = committed base) as the validation token.
    fn visible(&self, tuple: &Tuple<TupleCc>) -> (u64, u64, Row) {
        let mut row = tuple.read_row();
        let mut tail = 0;
        for v in &self.versions {
            if v.txn.is_aborted() {
                continue;
            }
            apply_masked(&mut row, &v.row, v.write_cols);
            tail = v.txn.id;
        }
        (tail, self.install_seq, row)
    }

    /// True when no transaction is registered on the tuple (tests).
    pub fn is_quiescent(&self) -> bool {
        self.accessors.is_empty() && self.versions.is_empty()
    }
}

#[inline]
fn masks_conflict(my_r: u64, my_w: u64, other_r: u64, other_w: u64) -> bool {
    (my_w & (other_r | other_w)) | (other_w & (my_r | my_w)) != 0
}

/// The IC3 protocol.
pub struct Ic3Protocol {
    templates: Vec<TemplateDecl>,
    chopping: Chopping,
    /// Per template: `(table, group, read mask, write mask)` of every
    /// declared access, used by the order-preservation waits.
    group_tables: Vec<Vec<(TableId, usize, u64, u64)>>,
    optimistic: bool,
    name: String,
}

impl Ic3Protocol {
    /// Builds the protocol from the full workload's templates — IC3
    /// "requires the knowledge of the entire workload" (§5.6). `optimistic`
    /// enables optimistic piece execution.
    pub fn new(templates: Vec<TemplateDecl>, optimistic: bool) -> Self {
        let chopping = chop(&templates);
        let group_tables = templates
            .iter()
            .enumerate()
            .map(|(t, decl)| {
                decl.pieces
                    .iter()
                    .zip(&chopping.groups[t])
                    .flat_map(|(piece, &g)| {
                        piece
                            .accesses
                            .iter()
                            .map(move |a| (a.table, g, a.read_cols, a.write_cols))
                    })
                    .collect()
            })
            .collect();
        Ic3Protocol {
            templates,
            chopping,
            group_tables,
            optimistic,
            name: if optimistic {
                "IC3".into()
            } else {
                "IC3-pess".into()
            },
        }
    }

    /// IC3's order preservation ("enforces pieces involving C-edges to
    /// execute in order", §2.2): once we track a predecessor, we may not
    /// access a table it conflicts with until it has passed its conflicting
    /// piece. Returns true when some predecessor still blocks this access.
    fn dep_blocks(&self, ctx: &TxnCtx, table: TableId, my_r: u64, my_w: u64) -> bool {
        ctx.ic3.deps.iter().any(|dep| {
            if dep.txn.is_finished() {
                return false;
            }
            let done = dep.txn.pieces_done.load(Ordering::Acquire) as usize;
            self.group_tables[dep.template as usize]
                .iter()
                .any(|&(t, g, r, w)| t == table && g >= done && masks_conflict(my_r, my_w, r, w))
        })
    }

    /// The computed chopping (for tests and reporting).
    pub fn chopping(&self) -> &Chopping {
        &self.chopping
    }

    /// Declared column masks for accessing `table` in `group` of `template`.
    fn declared_masks(&self, template: usize, group: usize, table: TableId) -> (u64, u64) {
        self.declared_masks_inner(template, group, table)
    }

    fn declared_masks_inner(&self, template: usize, group: usize, table: TableId) -> (u64, u64) {
        let t = &self.templates[template];
        let mut r = 0u64;
        let mut w = 0u64;
        let mut found = false;
        for a in group_accesses(t, &self.chopping.groups[template], group) {
            if a.table == table {
                r |= a.read_cols;
                w |= a.write_cols;
                found = true;
            }
        }
        assert!(
            found,
            "template {:?} group {group} accesses table {} without declaring it",
            t.name, table.0
        );
        (r, w)
    }

    /// Shared access path. Registers the accessor entry, waits for
    /// conflicting predecessors' pieces (pessimistic mode), and returns the
    /// index of the access.
    fn access(
        &self,
        db: &Database,
        ctx: &mut TxnCtx,
        table: TableId,
        key: u64,
        write: bool,
    ) -> Result<usize, Abort> {
        ctx.op_seq += 1;
        let tuple = db
            .table_for(table, key)
            .get(key)
            .unwrap_or_else(|| panic!("ic3: missing key {key} in table {}", table.0));
        if let Some(i) = ctx.find_access(table, tuple.key) {
            if write {
                ctx.accesses[i].mode = LockMode::Ex;
            }
            return Ok(i);
        }
        let group = ctx.ic3.group;
        let (rmask, wmask) = self.declared_masks(ctx.ic3.template, group, table);
        let (my_r, my_w) = if write { (rmask, wmask) } else { (rmask, 0) };
        debug_assert!(!write || wmask != 0, "write access must declare write cols");
        let deadline = Instant::now() + PIECE_WAIT_TIMEOUT + stagger(ctx.shared.id);
        let (observed, observed_seq, row) = loop {
            if ctx.shared.is_aborted() {
                return Err(ctx.abort_err());
            }
            if self.dep_blocks(ctx, table, my_r, my_w) {
                if Instant::now() > deadline {
                    ctx.shared.set_abort(AbortReason::Ic3Validation);
                    return Err(Abort(AbortReason::Ic3Validation));
                }
                std::thread::yield_now();
                continue;
            }
            let mut st = tuple.meta.ic3.lock();
            let blocker = !self.optimistic
                && st.accessors.iter().any(|e| {
                    e.txn.id != ctx.shared.id
                        && !e.txn.is_finished()
                        && masks_conflict(my_r, my_w, e.read_cols, e.write_cols)
                        && e.txn.pieces_done.load(Ordering::Acquire) <= e.group
                });
            if !blocker {
                // Record commit-order dependencies on every conflicting
                // unfinished accessor (flag: did they write?).
                for e in &st.accessors {
                    // Record commit-order deps on every conflicting accessor
                    // that has not fully released yet — including committed
                    // ones whose installs are still in flight, so our own
                    // install can never overtake theirs.
                    if e.txn.id != ctx.shared.id
                        && !e.txn.is_released()
                        && masks_conflict(my_r, my_w, e.read_cols, e.write_cols)
                        && !ctx.ic3.deps.iter().any(|d| d.txn.id == e.txn.id)
                    {
                        ctx.ic3.deps.push(crate::txn::Ic3Dep {
                            txn: Arc::clone(&e.txn),
                            wrote: e.write_cols & (my_r | my_w) != 0,
                            template: e.template,
                        });
                    }
                }
                st.accessors.push(Ic3Accessor {
                    txn: Arc::clone(&ctx.shared),
                    template: ctx.ic3.template as u32,
                    group: group as u32,
                    read_cols: my_r,
                    write_cols: my_w,
                });
                break st.visible(&tuple);
            }
            drop(st);
            if Instant::now() > deadline {
                ctx.shared.set_abort(AbortReason::Ic3Validation);
                return Err(Abort(AbortReason::Ic3Validation));
            }
            std::thread::yield_now();
        };
        Ok(ctx.push_access(Access {
            table,
            tuple,
            mode: if write { LockMode::Ex } else { LockMode::Sh },
            local: row,
            dirty: false,
            state: AccessState::Owner,
            observed_tid: observed,
            observed_seq,
            group: group as u32,
        }))
    }

    /// Finalizes the current group: optimistic validation, publication of
    /// the group's dirty writes, and the `pieces_done` bump that unblocks
    /// waiters.
    fn finalize_group(&self, ctx: &mut TxnCtx) -> Result<(), Abort> {
        let group = ctx.ic3.group as u32;
        if self.optimistic {
            // Wait (only now) for conflicting predecessors, then check the
            // chain tail each access observed is still the tail.
            for i in 0..ctx.accesses.len() {
                if ctx.accesses[i].group != group || ctx.accesses[i].state != AccessState::Owner {
                    continue;
                }
                let deadline = Instant::now() + PIECE_WAIT_TIMEOUT;
                loop {
                    if ctx.shared.is_aborted() {
                        return Err(ctx.abort_err());
                    }
                    let a = &ctx.accesses[i];
                    let st = a.tuple.meta.ic3.lock();
                    let me = st
                        .accessors
                        .iter()
                        .position(|e| e.txn.id == ctx.shared.id)
                        .expect("own accessor entry present");
                    let pending = st.accessors[..me].iter().any(|e| {
                        !e.txn.is_finished()
                            && masks_conflict(
                                a.read_cols_hint(),
                                a.write_cols_hint(),
                                e.read_cols,
                                e.write_cols,
                            )
                            && e.txn.pieces_done.load(Ordering::Acquire) <= e.group
                    });
                    if !pending {
                        let (tail, seq, _) = st.visible(&a.tuple);
                        if tail != a.observed_tid || seq != a.observed_seq {
                            drop(st);
                            ctx.shared.set_abort(AbortReason::Ic3Validation);
                            return Err(Abort(AbortReason::Ic3Validation));
                        }
                        break;
                    }
                    drop(st);
                    if Instant::now() > deadline {
                        ctx.shared.set_abort(AbortReason::Ic3Validation);
                        return Err(Abort(AbortReason::Ic3Validation));
                    }
                    std::thread::yield_now();
                }
            }
        }
        // Publish this group's writes: visible dirty data, like Bamboo's
        // retire but at piece granularity, masked to the declared columns.
        let template = ctx.ic3.template;
        for a in ctx.accesses.iter_mut() {
            if a.group == group && a.state == AccessState::Owner && a.dirty {
                let (_, wmask) = self.declared_masks_inner(template, group as usize, a.table);
                let mut st = a.tuple.meta.ic3.lock();
                st.versions.push(Ic3Version {
                    txn: Arc::clone(&ctx.shared),
                    row: a.local.clone(),
                    write_cols: wmask,
                });
                a.state = AccessState::Retired;
            }
        }
        ctx.shared.pieces_done.store(group + 1, Ordering::Release);
        Ok(())
    }

    /// Removes this transaction from a tuple's accessor list; when
    /// `cascade` (abort of a writer), aborts every conflicting later
    /// accessor. Returns the number cascaded.
    fn remove_from_tuple(&self, ctx: &TxnCtx, a: &Access, cascade: bool) -> usize {
        let mut st = a.tuple.meta.ic3.lock();
        let mut cascaded = 0;
        if let Some(me) = st.accessors.iter().position(|e| e.txn.id == ctx.shared.id) {
            if cascade {
                let my_w = st.accessors[me].write_cols;
                let my_r = st.accessors[me].read_cols;
                for e in &st.accessors[me + 1..] {
                    if masks_conflict(my_r, my_w, e.read_cols, e.write_cols)
                        && e.txn.set_abort(AbortReason::Cascade)
                    {
                        cascaded += 1;
                    }
                }
            }
            st.accessors.retain(|e| e.txn.id != ctx.shared.id);
        }
        st.versions.retain(|v| v.txn.id != ctx.shared.id);
        cascaded
    }
}

impl Access {
    fn read_cols_hint(&self) -> u64 {
        // The accessor entry holds the authoritative masks; accesses only
        // need "did I read / did I write" granularity for re-validation.
        u64::MAX
    }

    fn write_cols_hint(&self) -> u64 {
        if self.mode == LockMode::Ex {
            u64::MAX
        } else {
            0
        }
    }
}

impl Protocol for Ic3Protocol {
    fn name(&self) -> &str {
        &self.name
    }

    fn begin(&self, db: &Database) -> TxnCtx {
        let id = db.next_txn_id();
        TxnCtx::new(crate::txn::TxnShared::new(id, id))
    }

    fn piece_begin(&self, _db: &Database, ctx: &mut TxnCtx, piece: usize) -> Result<(), Abort> {
        if ctx.shared.is_aborted() {
            return Err(ctx.abort_err());
        }
        ctx.ic3.piece = piece;
        ctx.ic3.group = self.chopping.groups[ctx.ic3.template][piece];
        Ok(())
    }

    fn piece_end(&self, _db: &Database, ctx: &mut TxnCtx) -> Result<(), Abort> {
        let t = ctx.ic3.template;
        let piece = ctx.ic3.piece;
        let groups = &self.chopping.groups[t];
        let last_of_group = piece + 1 >= groups.len() || groups[piece + 1] != groups[piece];
        if last_of_group {
            self.finalize_group(ctx)?;
        }
        Ok(())
    }

    fn read<'c>(
        &self,
        db: &Database,
        ctx: &'c mut TxnCtx,
        table: TableId,
        key: u64,
    ) -> Result<&'c Row, Abort> {
        if ctx.snapshot.is_some() {
            return crate::protocol::snapshot_read(db, ctx, table, key);
        }
        let i = self.access(db, ctx, table, key, false)?;
        Ok(&ctx.accesses[i].local)
    }

    fn update(
        &self,
        db: &Database,
        ctx: &mut TxnCtx,
        table: TableId,
        key: u64,
        f: &mut dyn FnMut(&mut Row),
    ) -> Result<(), Abort> {
        ctx.forbid_snapshot_write("update");
        let i = self.access(db, ctx, table, key, true)?;
        f(&mut ctx.accesses[i].local);
        ctx.accesses[i].dirty = true;
        Ok(())
    }

    fn insert(
        &self,
        _db: &Database,
        ctx: &mut TxnCtx,
        table: TableId,
        key: u64,
        row: Row,
        secondary: Option<(usize, u64)>,
    ) -> Result<(), Abort> {
        if ctx.shared.is_aborted() {
            return Err(ctx.abort_err());
        }
        ctx.forbid_snapshot_write("insert");
        ctx.op_seq += 1;
        ctx.inserts.push(PendingInsert {
            table,
            key,
            row,
            secondary,
        });
        Ok(())
    }

    fn commit(&self, db: &Database, ctx: &mut TxnCtx, wal: &WalHandle) -> Result<(), Abort> {
        // Snapshot mode bypasses pieces, dependencies and accessor lists.
        if ctx.snapshot.is_some() {
            let res = crate::protocol::commit_snapshot(db, ctx);
            ctx.shared.mark_released();
            return res;
        }
        // The manual (piece-less) session API never calls `piece_end`, so
        // the final group's writes are still unpublished here. Finalize it
        // now — publish the pending versions (and validate the group in
        // optimistic mode) — so a conflicting accessor unblocked by our
        // commit point reads the published image instead of falling
        // through to the committed chain during the commit-point → install
        // window (a lost update: it would base its own write on the
        // pre-install value).
        if ctx
            .accesses
            .iter()
            .any(|a| a.dirty && a.state == AccessState::Owner)
        {
            self.finalize_group(ctx)?;
        }
        // Commit ordering: wait for every dependency to finish; a finished-
        // aborted dependency that wrote data we (may) have read cascades.
        let t0 = Instant::now();
        let deadline = t0 + DEP_WAIT_TIMEOUT + stagger(ctx.shared.id);
        for i in 0..ctx.ic3.deps.len() {
            loop {
                if ctx.shared.is_aborted() {
                    ctx.timers.commit_wait += t0.elapsed();
                    return Err(ctx.abort_err());
                }
                let dep = &ctx.ic3.deps[i];
                if dep.txn.is_finished() && dep.txn.is_released() {
                    if dep.txn.is_aborted() && dep.wrote {
                        ctx.shared.set_abort(AbortReason::Cascade);
                        ctx.timers.commit_wait += t0.elapsed();
                        return Err(Abort(AbortReason::Cascade));
                    }
                    break;
                }
                if Instant::now() > deadline {
                    ctx.shared.set_abort(AbortReason::Ic3Validation);
                    ctx.timers.commit_wait += t0.elapsed();
                    return Err(Abort(AbortReason::Ic3Validation));
                }
                ctx.shared.park_brief();
            }
        }
        ctx.timers.commit_wait += t0.elapsed();
        // MVCC commit timestamp for the versioned installs below.
        ctx.commit_ts = db.commit_clock.allocate();
        if !ctx.shared.try_commit_point() {
            db.commit_clock.finish(ctx.commit_ts);
            return Err(ctx.abort_err());
        }
        // Log after the commit point with the commit timestamp, before any
        // install (parity with the other protocols' ordering: only
        // committed work reaches the log). Note the record carries the
        // *column-local* copy: IC3 installs are column-masked merges
        // computed atomically under each tuple's accessor lock below, so a
        // full after-image cannot be captured here without racing
        // concurrent disjoint-column writers — durable redo replay is
        // therefore defined for the whole-row-install protocols (the 2PL
        // family and Silo); IC3 durable logging would need column-masked
        // update records (see DURABILITY.md).
        match crate::protocol::log_commit(db, ctx, wal) {
            // Under group commit the appends defer the fsync: stash the
            // durability ticket for the session to wait out after the
            // installs below — early lock release.
            Ok(ticket) => ctx.durability = ticket,
            Err(_) => {
                // Durable sink failed before any install: revoke the commit
                // point and abort with the durability reason. The `abort`
                // call this `Err` obliges removes our accessor entries
                // (cascading readers of published writes) and marks the
                // context released, exactly like any pre-install abort.
                let revoked = ctx
                    .shared
                    .revoke_commit(crate::txn::AbortReason::DurabilityFailed);
                debug_assert!(revoked, "only the owning worker moves Committed");
                db.commit_clock.finish(ctx.commit_ts);
                return Err(Abort(crate::txn::AbortReason::DurabilityFailed));
            }
        }
        // Install writes (column-masked) as new committed versions and
        // clear accessor entries and versions.
        let watermark = db.gc_watermark();
        let trim = db.trim_threshold();
        for i in 0..ctx.accesses.len() {
            let a = &ctx.accesses[i];
            let mut st = a.tuple.meta.ic3.lock();
            if a.dirty {
                let (_, wmask) =
                    self.declared_masks_inner(ctx.ic3.template, a.group as usize, a.table);
                st.versions.retain(|v| v.txn.id != ctx.shared.id);
                let mut base = a.tuple.read_row();
                apply_masked(&mut base, &a.local, wmask);
                a.tuple
                    .install_versioned_with(base, ctx.commit_ts, watermark, trim);
                st.install_seq += 1;
            }
            st.accessors.retain(|e| e.txn.id != ctx.shared.id);
            drop(st);
            ctx.accesses[i].state = AccessState::Released;
        }
        apply_inserts(db, ctx);
        db.note_commit(ctx.commit_ts);
        ctx.shared.mark_released();
        Ok(())
    }

    fn abort(&self, db: &Database, ctx: &mut TxnCtx) -> usize {
        ctx.shared.set_abort(AbortReason::User);
        ctx.inserts.clear();
        ctx.end_snapshot(db);
        let mut cascaded = 0;
        for i in 0..ctx.accesses.len() {
            if ctx.accesses[i].state == AccessState::Released {
                continue;
            }
            let a = &ctx.accesses[i];
            // Published writes cascade to later conflicting accessors.
            let wrote = a.dirty;
            cascaded += self.remove_from_tuple(ctx, a, wrote);
            ctx.accesses[i].state = AccessState::Released;
        }
        ctx.shared.mark_released();
        cascaded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_storage::{DataType, Schema, Value};

    const COL_A: u64 = 1 << 1;
    const COL_B: u64 = 1 << 2;

    /// Two tables with columns (k, a, b); the two-piece template writes
    /// column `a` of table 0 in piece 0 and column `a` of table 1 in piece
    /// 1 — same order in every instance, so chopping keeps both pieces.
    fn setup() -> (Arc<Database>, TableId, TableId) {
        let mut b = Database::builder();
        let schema = || {
            Schema::build()
                .column("k", DataType::U64)
                .column("a", DataType::I64)
                .column("b", DataType::I64)
        };
        let t0 = b.add_table("t0", schema());
        let t1 = b.add_table("t1", schema());
        let db = b.build();
        for t in [t0, t1] {
            for k in 0..10u64 {
                db.table(t).insert(
                    k,
                    Row::from(vec![Value::U64(k), Value::I64(0), Value::I64(0)]),
                );
            }
        }
        (db, t0, t1)
    }

    fn two_piece_template(t0: TableId, t1: TableId) -> TemplateDecl {
        TemplateDecl {
            name: "bump2".into(),
            pieces: vec![
                PieceDecl::new(vec![PieceAccess::write(t0, COL_A, COL_A)]),
                PieceDecl::new(vec![PieceAccess::write(t1, COL_A, COL_A)]),
            ],
        }
    }

    fn bump_a(row: &mut Row) {
        let v = row.get_i64(1);
        row.set(1, Value::I64(v + 1));
    }

    fn run_txn(
        p: &Ic3Protocol,
        db: &Database,
        keys: [u64; 2],
        tables: [TableId; 2],
    ) -> Result<(), Abort> {
        let wal = WalHandle::for_tests();
        let mut ctx = p.begin(db);
        ctx.ic3.template = 0;
        let res = (|| {
            for piece in 0..2 {
                p.piece_begin(db, &mut ctx, piece)?;
                p.update(db, &mut ctx, tables[piece], keys[piece], &mut bump_a)?;
                p.piece_end(db, &mut ctx)?;
            }
            p.commit(db, &mut ctx, &wal)
        })();
        if res.is_err() {
            p.abort(db, &mut ctx);
        }
        res
    }

    #[test]
    fn chopping_keeps_same_order_pieces_separate() {
        let (_, t0, t1) = setup();
        let p = Ic3Protocol::new(vec![two_piece_template(t0, t1)], false);
        assert_eq!(p.chopping().n_groups, vec![2]);
    }

    #[test]
    fn single_transaction_commits_and_installs() {
        let (db, t0, t1) = setup();
        let p = Ic3Protocol::new(vec![two_piece_template(t0, t1)], false);
        run_txn(&p, &db, [0, 1], [t0, t1]).unwrap();
        assert_eq!(db.table(t0).get(0).unwrap().read_row().get_i64(1), 1);
        assert_eq!(db.table(t1).get(1).unwrap().read_row().get_i64(1), 1);
        assert!(db.table(t0).get(0).unwrap().meta.ic3.lock().is_quiescent());
        assert!(db.table(t1).get(1).unwrap().meta.ic3.lock().is_quiescent());
    }

    #[test]
    fn piece_visibility_before_commit() {
        // T1 finishes piece 0 (writes t0/key0) but has not committed; T2's
        // piece 0 on the same tuple must see T1's dirty write and record a
        // commit dependency.
        let (db, t0, t1) = setup();
        let p = Ic3Protocol::new(vec![two_piece_template(t0, t1)], false);
        let wal = WalHandle::for_tests();
        let mut c1 = p.begin(&db);
        c1.ic3.template = 0;
        p.piece_begin(&db, &mut c1, 0).unwrap();
        p.update(&db, &mut c1, t0, 0, &mut bump_a).unwrap();
        p.piece_end(&db, &mut c1).unwrap();
        let mut c2 = p.begin(&db);
        c2.ic3.template = 0;
        p.piece_begin(&db, &mut c2, 0).unwrap();
        p.update(&db, &mut c2, t0, 0, &mut bump_a).unwrap();
        assert_eq!(
            c2.accesses[0].local.get_i64(1),
            2,
            "T2 saw T1's published piece write"
        );
        p.piece_end(&db, &mut c2).unwrap();
        assert_eq!(c2.ic3.deps.len(), 1, "T2 depends on T1");
        // Finish both in dependency order.
        p.piece_begin(&db, &mut c1, 1).unwrap();
        p.update(&db, &mut c1, t1, 1, &mut bump_a).unwrap();
        p.piece_end(&db, &mut c1).unwrap();
        p.commit(&db, &mut c1, &wal).unwrap();
        p.piece_begin(&db, &mut c2, 1).unwrap();
        p.update(&db, &mut c2, t1, 2, &mut bump_a).unwrap();
        p.piece_end(&db, &mut c2).unwrap();
        p.commit(&db, &mut c2, &wal).unwrap();
        assert_eq!(db.table(t0).get(0).unwrap().read_row().get_i64(1), 2);
        assert!(db.table(t0).get(0).unwrap().meta.ic3.lock().is_quiescent());
    }

    #[test]
    fn second_piece_access_waits_for_unfinished_piece() {
        // T1 is mid-piece on t0/key0 (accessor registered, piece not done):
        // T2's conflicting access must block and eventually time out since
        // T1 never finishes in this test.
        let (db, t0, t1) = setup();
        let p = Ic3Protocol::new(vec![two_piece_template(t0, t1)], false);
        let mut c1 = p.begin(&db);
        c1.ic3.template = 0;
        p.piece_begin(&db, &mut c1, 0).unwrap();
        p.update(&db, &mut c1, t0, 0, &mut bump_a).unwrap();
        // no piece_end: piece unfinished.
        let mut c2 = p.begin(&db);
        c2.ic3.template = 0;
        p.piece_begin(&db, &mut c2, 0).unwrap();
        let t_start = Instant::now();
        let err = p.update(&db, &mut c2, t0, 0, &mut bump_a).unwrap_err();
        assert_eq!(err.0, AbortReason::Ic3Validation, "timed-out piece wait");
        assert!(t_start.elapsed() >= PIECE_WAIT_TIMEOUT);
        p.abort(&db, &mut c2);
        p.abort(&db, &mut c1);
        assert!(db.table(t0).get(0).unwrap().meta.ic3.lock().is_quiescent());
    }

    #[test]
    fn abort_cascades_to_piece_readers() {
        let (db, t0, t1) = setup();
        let p = Ic3Protocol::new(vec![two_piece_template(t0, t1)], false);
        let mut c1 = p.begin(&db);
        c1.ic3.template = 0;
        p.piece_begin(&db, &mut c1, 0).unwrap();
        p.update(&db, &mut c1, t0, 0, &mut bump_a).unwrap();
        p.piece_end(&db, &mut c1).unwrap();
        let mut c2 = p.begin(&db);
        c2.ic3.template = 0;
        p.piece_begin(&db, &mut c2, 0).unwrap();
        p.update(&db, &mut c2, t0, 0, &mut bump_a).unwrap();
        p.piece_end(&db, &mut c2).unwrap();
        // T1 user-aborts: T2 saw its write → cascade.
        let cascaded = p.abort(&db, &mut c1);
        assert_eq!(cascaded, 1);
        assert!(c2.shared.is_aborted());
        p.abort(&db, &mut c2);
        assert_eq!(
            db.table(t0).get(0).unwrap().read_row().get_i64(1),
            0,
            "committed image untouched by either"
        );
        assert!(db.table(t0).get(0).unwrap().meta.ic3.lock().is_quiescent());
    }

    #[test]
    fn column_disjoint_pieces_do_not_wait_or_clobber() {
        // Template A writes column a; template B writes column b of the
        // same tuple: no conflict at column granularity, and both writes
        // must survive (masked install).
        let (db, t0, _) = setup();
        let ta = TemplateDecl {
            name: "wa".into(),
            pieces: vec![PieceDecl::new(vec![PieceAccess::write(t0, COL_A, COL_A)])],
        };
        let tb = TemplateDecl {
            name: "wb".into(),
            pieces: vec![PieceDecl::new(vec![PieceAccess::write(t0, COL_B, COL_B)])],
        };
        let p = Ic3Protocol::new(vec![ta, tb], false);
        let wal = WalHandle::for_tests();
        let mut c1 = p.begin(&db);
        c1.ic3.template = 0;
        p.piece_begin(&db, &mut c1, 0).unwrap();
        p.update(&db, &mut c1, t0, 0, &mut bump_a).unwrap();
        // c1's piece is *not* finished. c2 writes column b of the same
        // tuple: must proceed without waiting (column-disjoint).
        let mut c2 = p.begin(&db);
        c2.ic3.template = 1;
        p.piece_begin(&db, &mut c2, 0).unwrap();
        p.update(&db, &mut c2, t0, 0, &mut |row| {
            let v = row.get_i64(2);
            row.set(2, Value::I64(v + 1));
        })
        .unwrap();
        p.piece_end(&db, &mut c2).unwrap();
        p.commit(&db, &mut c2, &wal).unwrap();
        assert!(c2.ic3.deps.is_empty(), "no dependency across columns");
        p.piece_end(&db, &mut c1).unwrap();
        p.commit(&db, &mut c1, &wal).unwrap();
        let row = db.table(t0).get(0).unwrap().read_row();
        assert_eq!(row.get_i64(1), 1, "column a from template A");
        assert_eq!(row.get_i64(2), 1, "column b from template B survives");
    }

    #[test]
    fn optimistic_mode_validates_at_piece_end() {
        let (db, t0, t1) = setup();
        let p = Ic3Protocol::new(vec![two_piece_template(t0, t1)], true);
        assert_eq!(p.name(), "IC3");
        // Without contention, optimistic transactions just commit.
        run_txn(&p, &db, [0, 1], [t0, t1]).unwrap();
        assert_eq!(db.table(t0).get(0).unwrap().read_row().get_i64(1), 1);
    }

    #[test]
    fn concurrent_hotspot_increments_serialize() {
        let (db, t0, t1) = setup();
        let p = Arc::new(Ic3Protocol::new(vec![two_piece_template(t0, t1)], false));
        let threads = 4;
        let per = 100;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let db = Arc::clone(&db);
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let mut done = 0;
                    while done < per {
                        // Everyone bumps hotspot t0/key0 then a private key.
                        if run_txn(&p, &db, [0, 2 + w], [t0, t1]).is_ok() {
                            done += 1;
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            db.table(t0).get(0).unwrap().read_row().get_i64(1),
            (threads * per) as i64
        );
        assert!(db.table(t0).get(0).unwrap().meta.ic3.lock().is_quiescent());
    }
}
