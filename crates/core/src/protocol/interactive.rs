//! Interactive-mode decorator.
//!
//! The paper's interactive mode runs transaction logic on a client that
//! issues `get_row()` / `update_row()` / `commit()` requests to the DB
//! server over gRPC (§5.1). The performance-relevant consequence is that
//! every operation pays a network round-trip, which (a) stretches lock hold
//! times enormously and (b) makes aborted work far more expensive — the two
//! effects behind Figures 8–10's interactive panels.
//!
//! [`InteractiveProtocol`] reproduces that cost model in-process: it wraps
//! any inner protocol and charges a configurable round-trip delay on each
//! operation and on commit. Delays are slept, not spun, so oversubscribed
//! thread counts behave like blocked RPC clients rather than burning CPU.

use std::time::Duration;

use bamboo_storage::{Row, TableId};

use crate::db::Database;
use crate::protocol::Protocol;
use crate::txn::{Abort, TxnCtx};
use crate::wal::WalHandle;

/// Default simulated round-trip: in the ballpark of an intra-datacenter
/// gRPC call.
pub const DEFAULT_RPC: Duration = Duration::from_micros(100);

/// Wraps a protocol with per-operation RPC delays.
pub struct InteractiveProtocol<P> {
    inner: P,
    rpc: Duration,
    name: String,
}

impl<P: Protocol> InteractiveProtocol<P> {
    /// Wraps `inner`, charging `rpc` per operation.
    pub fn new(inner: P, rpc: Duration) -> Self {
        let name = format!("{}(interactive)", inner.name());
        InteractiveProtocol { inner, rpc, name }
    }

    /// Wraps with the default round-trip.
    pub fn with_default_rpc(inner: P) -> Self {
        Self::new(inner, DEFAULT_RPC)
    }

    #[inline]
    fn round_trip(&self) {
        if !self.rpc.is_zero() {
            std::thread::sleep(self.rpc);
        }
    }
}

impl<P: Protocol> Protocol for InteractiveProtocol<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn begin(&self, db: &Database) -> TxnCtx {
        let mut ctx = self.inner.begin(db);
        // Interactive clients do not know access positions ahead of time —
        // the δ heuristic is inapplicable (paper §5.1: "the second
        // optimization of no retiring does not apply").
        ctx.planned_ops = None;
        ctx
    }

    fn read<'c>(
        &self,
        db: &Database,
        ctx: &'c mut TxnCtx,
        table: TableId,
        key: u64,
    ) -> Result<&'c Row, Abort> {
        self.round_trip();
        self.inner.read(db, ctx, table, key)
    }

    fn update(
        &self,
        db: &Database,
        ctx: &mut TxnCtx,
        table: TableId,
        key: u64,
        f: &mut dyn FnMut(&mut Row),
    ) -> Result<(), Abort> {
        self.round_trip();
        self.inner.update(db, ctx, table, key, f)
    }

    fn insert(
        &self,
        db: &Database,
        ctx: &mut TxnCtx,
        table: TableId,
        key: u64,
        row: Row,
        secondary: Option<(usize, u64)>,
    ) -> Result<(), Abort> {
        self.round_trip();
        self.inner.insert(db, ctx, table, key, row, secondary)
    }

    fn scan(
        &self,
        db: &Database,
        ctx: &mut TxnCtx,
        table: TableId,
        range: std::ops::RangeInclusive<u64>,
    ) -> Result<Vec<Row>, Abort> {
        // One round trip: an interactive client issues the range predicate
        // as a single request; the server-side scan (including the inner
        // protocol's next-key locking) runs without further hops.
        self.round_trip();
        self.inner.scan(db, ctx, table, range)
    }

    fn commit(&self, db: &Database, ctx: &mut TxnCtx, wal: &WalHandle) -> Result<(), Abort> {
        self.round_trip();
        self.inner.commit(db, ctx, wal)
    }

    fn abort(&self, db: &Database, ctx: &mut TxnCtx) -> usize {
        self.round_trip();
        self.inner.abort(db, ctx)
    }

    fn piece_begin(&self, db: &Database, ctx: &mut TxnCtx, piece: usize) -> Result<(), Abort> {
        self.inner.piece_begin(db, ctx, piece)
    }

    fn piece_end(&self, db: &Database, ctx: &mut TxnCtx) -> Result<(), Abort> {
        self.inner.piece_end(db, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LockingProtocol;
    use bamboo_storage::{DataType, Schema, Value};
    use std::time::Instant;

    #[test]
    fn delays_are_charged_per_operation() {
        let mut b = Database::builder();
        let t = b.add_table(
            "kv",
            Schema::build()
                .column("k", DataType::U64)
                .column("v", DataType::I64),
        );
        let db = b.build();
        db.table(t)
            .insert(1, Row::from(vec![Value::U64(1), Value::I64(0)]));
        let p = InteractiveProtocol::new(LockingProtocol::bamboo(), Duration::from_millis(2));
        assert!(p.name().contains("interactive"));
        let wal = WalHandle::for_tests();
        let mut ctx = p.begin(&db);
        assert_eq!(ctx.planned_ops, None);
        let t0 = Instant::now();
        p.read(&db, &mut ctx, t, 1).unwrap();
        p.update(&db, &mut ctx, t, 1, &mut |r| r.set(1, Value::I64(9)))
            .unwrap();
        p.commit(&db, &mut ctx, &wal).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(6),
            "three operations at 2ms RPC each"
        );
        assert_eq!(db.table(t).get(1).unwrap().read_row().get_i64(1), 9);
    }
}
