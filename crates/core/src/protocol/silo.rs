//! The SILO baseline — a variant of optimistic concurrency control
//! (Tu et al., SOSP'13), the paper's strongest OCC competitor (§5.1).
//!
//! Each tuple carries a TID word (`TupleCc::tid`): bit 0 is the lock bit,
//! the upper bits a version number. Reads are lock-free snapshots validated
//! by TID stability; writes are buffered locally and installed during a
//! three-phase commit: (1) lock the write set in global (table, row) order,
//! (2) validate the read set, (3) install and release with a fresh TID.
//!
//! Simplifications vs. the original (documented in DESIGN.md): Silo's epoch
//! machinery exists for recovery/read-only snapshots; our TIDs take the max
//! of observed versions + 1, which preserves all concurrency behaviour the
//! paper's figures depend on (abort rate under contention, cache-warm-up
//! retries, no lock waiting).
//!
//! MVCC integration: commits additionally allocate a commit timestamp from
//! the database's commit clock and install their write set as new committed
//! versions, so lock-free snapshot readers can run concurrently. As in real
//! Silo, anti-dependencies (a validated read overwritten by a later writer)
//! are not totally ordered by these timestamps; write-write and write-read
//! ordering is exact, which is what the update-only invariants and the
//! paper's figures rely on — the original handles the same caveat by taking
//! snapshots only at epoch boundaries.

use crate::sync::atomic::Ordering;
#[cfg(test)]
use std::sync::Arc;

use bamboo_storage::{Row, TableId, Tuple};

use crate::db::Database;
use crate::meta::TupleCc;
use crate::protocol::{apply_inserts, commit_snapshot, log_commit, snapshot_read, Protocol};
use crate::txn::{Abort, AbortReason, Access, AccessState, LockMode, PendingInsert, TxnCtx};
use crate::wal::WalHandle;

const LOCK_BIT: u64 = 1;

/// How many times to retry a TID-stable read before yielding.
const READ_SPIN: usize = 64;

/// Bounded spin when locking the write set; beyond this the attempt aborts
/// (`SiloLockFail`) rather than risking a stall behind a slow writer.
const LOCK_SPIN: usize = 4096;

/// The SILO protocol.
#[derive(Clone, Debug, Default)]
pub struct SiloProtocol;

impl SiloProtocol {
    /// Creates the protocol.
    pub fn new() -> Self {
        SiloProtocol
    }

    /// TID-stable read: returns (row, tid).
    fn stable_read(tuple: &Tuple<TupleCc>) -> (Row, u64) {
        let mut spins = 0;
        loop {
            let v1 = tuple.meta.tid.load(Ordering::Acquire);
            if v1 & LOCK_BIT == 0 {
                let row = tuple.read_row();
                let v2 = tuple.meta.tid.load(Ordering::Acquire);
                if v1 == v2 {
                    return (row, v1);
                }
            }
            spins += 1;
            if spins % READ_SPIN == 0 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    fn try_lock(tuple: &Tuple<TupleCc>) -> bool {
        let mut spins = 0;
        loop {
            let v = tuple.meta.tid.load(Ordering::Acquire);
            if v & LOCK_BIT == 0
                && tuple
                    .meta
                    .tid
                    .compare_exchange_weak(v, v | LOCK_BIT, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return true;
            }
            spins += 1;
            if spins >= LOCK_SPIN {
                return false;
            }
            std::hint::spin_loop();
        }
    }

    fn unlock(tuple: &Tuple<TupleCc>) {
        let v = tuple.meta.tid.load(Ordering::Acquire);
        debug_assert!(v & LOCK_BIT != 0);
        tuple.meta.tid.store(v & !LOCK_BIT, Ordering::Release);
    }

    fn unlock_with(tuple: &Tuple<TupleCc>, tid: u64) {
        debug_assert!(tid & LOCK_BIT == 0);
        tuple.meta.tid.store(tid, Ordering::Release);
    }
}

impl Protocol for SiloProtocol {
    fn name(&self) -> &str {
        "SILO"
    }

    fn begin(&self, db: &Database) -> TxnCtx {
        // OCC has no priorities; the id doubles as the timestamp for the
        // shared handle (unused in validation).
        let id = db.next_txn_id();
        TxnCtx::new(crate::txn::TxnShared::new(id, id))
    }

    fn read<'c>(
        &self,
        db: &Database,
        ctx: &'c mut TxnCtx,
        table: TableId,
        key: u64,
    ) -> Result<&'c Row, Abort> {
        ctx.op_seq += 1;
        if ctx.snapshot.is_some() {
            return snapshot_read(db, ctx, table, key);
        }
        let tuple = db
            .table_for(table, key)
            .get(key)
            .unwrap_or_else(|| panic!("read: missing key {key} in table {}", table.0));
        if let Some(i) = ctx.find_access(table, tuple.key) {
            return Ok(&ctx.accesses[i].local);
        }
        let (row, tid) = Self::stable_read(&tuple);
        let i = ctx.push_access(Access {
            table,
            tuple,
            mode: LockMode::Sh,
            local: row,
            dirty: false,
            state: AccessState::Released, // no lock entry — OCC
            observed_tid: tid,
            observed_seq: 0,
            group: 0,
        });
        Ok(&ctx.accesses[i].local)
    }

    fn update(
        &self,
        db: &Database,
        ctx: &mut TxnCtx,
        table: TableId,
        key: u64,
        f: &mut dyn FnMut(&mut Row),
    ) -> Result<(), Abort> {
        ctx.forbid_snapshot_write("update");
        ctx.op_seq += 1;
        let tuple = db
            .table_for(table, key)
            .get(key)
            .unwrap_or_else(|| panic!("update: missing key {key} in table {}", table.0));
        let i = match ctx.find_access(table, tuple.key) {
            Some(i) => {
                ctx.accesses[i].mode = LockMode::Ex;
                i
            }
            None => {
                let (row, tid) = Self::stable_read(&tuple);
                ctx.push_access(Access {
                    table,
                    tuple,
                    mode: LockMode::Ex,
                    local: row,
                    dirty: false,
                    state: AccessState::Released,
                    observed_tid: tid,
                    observed_seq: 0,
                    group: 0,
                })
            }
        };
        f(&mut ctx.accesses[i].local);
        ctx.accesses[i].dirty = true;
        Ok(())
    }

    fn insert(
        &self,
        _db: &Database,
        ctx: &mut TxnCtx,
        table: TableId,
        key: u64,
        row: Row,
        secondary: Option<(usize, u64)>,
    ) -> Result<(), Abort> {
        ctx.forbid_snapshot_write("insert");
        ctx.op_seq += 1;
        ctx.inserts.push(PendingInsert {
            table,
            key,
            row,
            secondary,
        });
        Ok(())
    }

    fn commit(&self, db: &Database, ctx: &mut TxnCtx, wal: &WalHandle) -> Result<(), Abort> {
        // Snapshot mode: no write set to lock, no read set to validate.
        if ctx.snapshot.is_some() {
            return commit_snapshot(db, ctx);
        }
        // Phase 1: lock the write set in deterministic global order.
        let mut write_idx: Vec<usize> = (0..ctx.accesses.len())
            .filter(|&i| ctx.accesses[i].dirty)
            .collect();
        write_idx.sort_by_key(|&i| (ctx.accesses[i].table.0, ctx.accesses[i].tuple.row_id));
        let mut locked: Vec<usize> = Vec::with_capacity(write_idx.len());
        for &i in &write_idx {
            ctx.locks_acquired += 1;
            if Self::try_lock(&ctx.accesses[i].tuple) {
                locked.push(i);
            } else {
                for &j in &locked {
                    Self::unlock(&ctx.accesses[j].tuple);
                }
                ctx.shared.set_abort(AbortReason::SiloLockFail);
                return Err(Abort(AbortReason::SiloLockFail));
            }
        }

        // Phase 2: validate the read set — every observed TID must be
        // unchanged and not locked by someone else.
        let mut max_tid = 0u64;
        for (i, a) in ctx.accesses.iter().enumerate() {
            let cur = a.tuple.meta.tid.load(Ordering::Acquire);
            let locked_by_us = a.dirty && locked.contains(&i);
            let version_changed = (cur & !LOCK_BIT) != (a.observed_tid & !LOCK_BIT);
            let locked_by_other = (cur & LOCK_BIT != 0) && !locked_by_us;
            if version_changed || locked_by_other {
                for &j in &locked {
                    Self::unlock(&ctx.accesses[j].tuple);
                }
                ctx.shared.set_abort(AbortReason::SiloValidation);
                return Err(Abort(AbortReason::SiloValidation));
            }
            max_tid = max_tid.max(cur & !LOCK_BIT);
        }
        let new_tid = max_tid + 2; // LSB reserved for the lock bit.

        // MVCC commit timestamp: the write set is locked and validation
        // passed, so the serialization point is now; snapshots cannot be
        // taken past this timestamp until every install lands.
        ctx.commit_ts = db.commit_clock.allocate();
        let committed = ctx.shared.try_commit_point();
        debug_assert!(committed, "nothing wounds a Silo transaction");
        // Log after the commit point, carrying the commit timestamp, and
        // before any install (per-partition WAL appends in partition-id
        // order when the database is partitioned): only committed work
        // reaches a durable sink, and a crash between log and install is
        // covered by redo replay.
        match log_commit(db, ctx, wal) {
            // Under group commit the appends defer the fsync: stash the
            // durability ticket for the session to wait out after Phase 3
            // installed and unlocked — early lock release.
            Ok(ticket) => ctx.durability = ticket,
            Err(_) => {
                // Durable sink failed before any install. Unlock the write
                // set here — Silo's `abort` never touches TID locks (OCC
                // aborts normally hold none) — then revoke the commit point
                // and abort with the durability reason. TIDs are *not*
                // bumped: no version was installed, so concurrent
                // validators must not observe a phantom TID change.
                for &j in &locked {
                    Self::unlock(&ctx.accesses[j].tuple);
                }
                let revoked = ctx.shared.revoke_commit(AbortReason::DurabilityFailed);
                debug_assert!(revoked, "only the owning worker moves Committed");
                db.commit_clock.finish(ctx.commit_ts);
                return Err(Abort(AbortReason::DurabilityFailed));
            }
        }

        // Phase 3: install write set as new committed versions, bump TIDs,
        // unlock.
        let watermark = db.gc_watermark();
        let trim = db.trim_threshold();
        for &i in &write_idx {
            let a = &ctx.accesses[i];
            a.tuple
                .install_versioned_with(a.local.clone(), ctx.commit_ts, watermark, trim);
            Self::unlock_with(&a.tuple, new_tid);
        }
        apply_inserts(db, ctx);
        // Finishing the timestamp doubles as Silo's epoch tick: every
        // EPOCH_COMMITS-th commit advances the epoch and republishes the
        // snapshot watermark (db::note_commit).
        db.note_commit(ctx.commit_ts);
        Ok(())
    }

    fn abort(&self, db: &Database, ctx: &mut TxnCtx) -> usize {
        ctx.shared.set_abort(AbortReason::User);
        ctx.inserts.clear();
        ctx.end_snapshot(db);
        0 // OCC never cascades.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_storage::{DataType, Schema, Value};

    fn setup() -> (Arc<Database>, TableId) {
        let mut b = Database::builder();
        let t = b.add_table(
            "kv",
            Schema::build()
                .column("k", DataType::U64)
                .column("v", DataType::I64),
        );
        let db = b.build();
        for k in 0..10u64 {
            db.table(t)
                .insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
        }
        (db, t)
    }

    fn inc(row: &mut Row) {
        let v = row.get_i64(1);
        row.set(1, Value::I64(v + 1));
    }

    #[test]
    fn read_update_commit_installs() {
        let (db, t) = setup();
        let p = SiloProtocol::new();
        let wal = WalHandle::for_tests();
        let mut ctx = p.begin(&db);
        assert_eq!(p.read(&db, &mut ctx, t, 1).unwrap().get_i64(1), 0);
        p.update(&db, &mut ctx, t, 1, &mut inc).unwrap();
        p.commit(&db, &mut ctx, &wal).unwrap();
        assert_eq!(db.table(t).get(1).unwrap().read_row().get_i64(1), 1);
        let tid = db.table(t).get(1).unwrap().meta.tid.load(Ordering::Acquire);
        assert!(tid >= 2 && tid & LOCK_BIT == 0);
    }

    #[test]
    fn stale_read_fails_validation() {
        let (db, t) = setup();
        let p = SiloProtocol::new();
        let wal = WalHandle::for_tests();
        // T1 reads key 1.
        let mut c1 = p.begin(&db);
        p.read(&db, &mut c1, t, 1).unwrap();
        p.update(&db, &mut c1, t, 2, &mut inc).unwrap();
        // T2 writes key 1 and commits first.
        let mut c2 = p.begin(&db);
        p.update(&db, &mut c2, t, 1, &mut inc).unwrap();
        p.commit(&db, &mut c2, &wal).unwrap();
        // T1's validation must fail.
        let err = p.commit(&db, &mut c1, &wal).unwrap_err();
        assert_eq!(err.0, AbortReason::SiloValidation);
        // Key 2 untouched by the failed T1.
        assert_eq!(db.table(t).get(2).unwrap().read_row().get_i64(1), 0);
    }

    #[test]
    fn write_write_conflict_one_wins() {
        let (db, t) = setup();
        let p = SiloProtocol::new();
        let wal = WalHandle::for_tests();
        let mut c1 = p.begin(&db);
        let mut c2 = p.begin(&db);
        p.update(&db, &mut c1, t, 3, &mut inc).unwrap();
        p.update(&db, &mut c2, t, 3, &mut inc).unwrap();
        p.commit(&db, &mut c1, &wal).unwrap();
        // c2 observed the pre-c1 TID → validation failure.
        assert!(p.commit(&db, &mut c2, &wal).is_err());
        assert_eq!(db.table(t).get(3).unwrap().read_row().get_i64(1), 1);
    }

    #[test]
    fn concurrent_increments_are_serializable() {
        let (db, t) = setup();
        let p = Arc::new(SiloProtocol::new());
        let threads = 4;
        let per = 200;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let db = Arc::clone(&db);
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let wal = WalHandle::for_tests();
                    let mut done = 0;
                    while done < per {
                        let mut ctx = p.begin(&db);
                        p.update(&db, &mut ctx, t, 0, &mut inc).unwrap();
                        match p.commit(&db, &mut ctx, &wal) {
                            Ok(()) => done += 1,
                            Err(_) => {
                                p.abort(&db, &mut ctx);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            db.table(t).get(0).unwrap().read_row().get_i64(1),
            (threads * per) as i64,
            "every successful increment must be preserved"
        );
    }

    #[test]
    fn read_own_write() {
        let (db, t) = setup();
        let p = SiloProtocol::new();
        let mut ctx = p.begin(&db);
        p.update(&db, &mut ctx, t, 5, &mut inc).unwrap();
        assert_eq!(p.read(&db, &mut ctx, t, 5).unwrap().get_i64(1), 1);
    }
}
