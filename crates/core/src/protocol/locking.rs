//! The 2PL-family protocol: Bamboo, Wound-Wait, Wait-Die and No-Wait.
//!
//! One implementation serves all four because the paper designs Bamboo as a
//! strict extension of Wound-Wait: disable retiring and it *is* Wound-Wait
//! (§3.2.2, §3.4 "Compatibility with Underlying 2PL"); the Wait-Die /
//! No-Wait baselines differ only in the conflict policy inside the lock
//! table. This module owns the transaction lifecycle of Algorithm 1:
//!
//! ```text
//! LockAcquire … LockRetire … LockAcquire …
//! while commit_semaphore != 0 { pause }
//! writeLog(); LockRelease(…); terminate
//! ```
//!
//! plus Optimization 2 (δ = don't retire trailing writes; adaptively retire
//! them anyway if the semaphore wait drags on).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bamboo_storage::{Row, TableId, Tuple};

use crate::db::Database;
use crate::lock::{Acquired, CommitInstall, LockPolicy};
use crate::meta::TupleCc;
use crate::protocol::{apply_inserts, commit_snapshot, log_commit, snapshot_read, Protocol};
use crate::ts::UNASSIGNED;
use crate::txn::{Abort, AbortReason, Access, AccessState, LockMode, PendingInsert, TxnCtx};
use crate::wal::WalHandle;

/// Liveness backstop on lock/upgrade waits: three orders of magnitude above
/// a healthy wait (which is microseconds to a few milliseconds), so it never
/// fires under normal operation; if an unforeseen cross-resource cycle ever
/// forms, the waiter self-aborts and retries instead of hanging the worker —
/// the same role a lock timeout plays in production lock managers.
const LOCK_WAIT_TIMEOUT: Duration = Duration::from_millis(500);

/// Same backstop for the commit-semaphore wait (dependencies normally
/// resolve in milliseconds; an aborted-and-stuck predecessor is the only
/// path here).
const COMMIT_WAIT_TIMEOUT: Duration = Duration::from_millis(2000);

/// Isolation levels (paper §3.4, "Weak Isolation"). Serializable is the
/// default; the weaker levels trade anomalies for concurrency exactly as
/// the paper sketches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IsolationLevel {
    /// Full serializability (the protocol as specified).
    Serializable,
    /// "Repeatable read is supported by giving up phantom protection."
    /// Point accesses behave identically to Serializable here because the
    /// workloads have no range predicates; kept as a distinct level for
    /// API fidelity.
    RepeatableRead,
    /// "Read committed is supported by releasing shared locks early": a
    /// read takes the committed image under the tuple latch and holds no
    /// entry — non-repeatable reads become possible, dirty reads do not.
    ReadCommitted,
    /// "Read uncommitted means each retire becomes a release": writes
    /// install at retire time with no dependency tracking; reads take the
    /// newest dirty version with no locks at all. These early installs
    /// overwrite the committed image *in place* (no commit timestamp, no
    /// version-chain entry), so RU writers are **not** snapshot-consistent:
    /// a concurrent [`crate::protocol::Protocol::begin_snapshot`] reader
    /// may see RU writes mutate under its snapshot. Snapshot mode composes
    /// with the timestamped commit paths (Serializable / RepeatableRead /
    /// ReadCommitted writers, Silo, IC3) only.
    ReadUncommitted,
}

/// 2PL-family protocol configuration.
#[derive(Clone, Debug)]
pub struct LockingProtocol {
    /// Lock-table policy (variant + list-level optimizations).
    pub policy: LockPolicy,
    /// Whether writes may retire at all (Bamboo yes, baselines no).
    pub retire_writes: bool,
    /// Optimization 2's δ: writes among the last `δ` fraction of a
    /// stored procedure's accesses are not retired (0 disables the
    /// heuristic — the paper's BAMBOO-base).
    pub delta: f64,
    /// Optimization 2's adaptive clause: if the commit-semaphore wait
    /// exceeds δ of the execution time so far, retire the held-back writes
    /// after all.
    pub adaptive_retire: bool,
    /// Isolation level (§3.4); Serializable unless configured otherwise.
    pub isolation: IsolationLevel,
    name: String,
}

impl LockingProtocol {
    /// Full Bamboo with all four §3.5 optimizations (the paper's BAMBOO:
    /// δ = 0.15 "across all workloads").
    pub fn bamboo() -> Self {
        LockingProtocol {
            policy: LockPolicy::bamboo(),
            retire_writes: true,
            delta: 0.15,
            adaptive_retire: true,
            isolation: IsolationLevel::Serializable,
            name: "BAMBOO".into(),
        }
    }

    /// Bamboo without Optimization 2 (the paper's BAMBOO-base in Figures
    /// 4–5): every write retires immediately.
    pub fn bamboo_base() -> Self {
        LockingProtocol {
            policy: LockPolicy::bamboo(),
            retire_writes: true,
            delta: 0.0,
            adaptive_retire: false,
            isolation: IsolationLevel::Serializable,
            name: "BAMBOO-base".into(),
        }
    }

    /// Wound-Wait baseline (Bamboo with retiring disabled).
    pub fn wound_wait() -> Self {
        LockingProtocol {
            policy: LockPolicy::wound_wait(),
            retire_writes: false,
            delta: 0.0,
            adaptive_retire: false,
            isolation: IsolationLevel::Serializable,
            name: "WOUND_WAIT".into(),
        }
    }

    /// Wait-Die baseline.
    pub fn wait_die() -> Self {
        LockingProtocol {
            policy: LockPolicy::wait_die(),
            retire_writes: false,
            delta: 0.0,
            adaptive_retire: false,
            isolation: IsolationLevel::Serializable,
            name: "WAIT_DIE".into(),
        }
    }

    /// No-Wait baseline.
    pub fn no_wait() -> Self {
        LockingProtocol {
            policy: LockPolicy::no_wait(),
            retire_writes: false,
            delta: 0.0,
            adaptive_retire: false,
            isolation: IsolationLevel::Serializable,
            name: "NO_WAIT".into(),
        }
    }

    /// Renames the configuration (ablation studies).
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.into();
        self
    }

    /// Selects an isolation level (§3.4).
    pub fn with_isolation(mut self, level: IsolationLevel) -> Self {
        self.isolation = level;
        self
    }

    /// Begins an *opaque* transaction (§3.4, "Opacity"): its accesses wait
    /// until the tuple carries no conflicting uncommitted state, and none
    /// of its own locks retire — it effectively runs under Wound-Wait, as
    /// the paper prescribes for transactions that need consistent reads
    /// before commit.
    pub fn begin_opaque(&self, db: &Database) -> TxnCtx {
        let mut ctx = self.begin(db);
        ctx.opaque = true;
        ctx
    }

    /// The policy an access of `ctx` should use: opaque transactions never
    /// bypass into `retired` and never auto-retire reads.
    fn access_policy(&self, ctx: &TxnCtx) -> LockPolicy {
        if ctx.opaque {
            LockPolicy {
                retire_reads: false,
                no_raw_abort: false,
                ..self.policy
            }
        } else {
            self.policy
        }
    }

    /// Acquire with wait loop; returns the working image and entry
    /// placement on success.
    fn acquire_blocking(
        &self,
        db: &Database,
        ctx: &mut TxnCtx,
        tuple: &Arc<Tuple<TupleCc>>,
        mode: LockMode,
    ) -> Result<(Row, bool), Abort> {
        ctx.locks_acquired += 1;
        let pol = self.access_policy(ctx);
        if ctx.opaque {
            // §3.4 opacity: "wait on a tuple until the retired and owners
            // lists are empty" — concretely, until no conflicting retired
            // entry (and no dirty version we could observe) remains.
            let t0 = Instant::now();
            loop {
                if ctx.shared.is_aborted() || t0.elapsed() > LOCK_WAIT_TIMEOUT {
                    ctx.shared.set_abort(AbortReason::Wounded);
                    ctx.timers.lock_wait += t0.elapsed();
                    return Err(ctx.abort_err());
                }
                let st = tuple.meta.lock.lock();
                if !st.has_conflicting_retired(mode) && st.versions_len() == 0 {
                    break;
                }
                drop(st);
                ctx.shared.park_brief();
            }
            ctx.timers.lock_wait += t0.elapsed();
        }
        let outcome = {
            let mut st = tuple.meta.lock.lock();
            st.acquire(tuple, &pol, &ctx.shared, mode, &db.ts_source)
        };
        match outcome {
            Acquired::Granted { row, retired } => Ok((row, retired)),
            Acquired::Die(reason) => {
                ctx.shared.set_abort(reason);
                Err(Abort(reason))
            }
            Acquired::Wait => {
                let t0 = Instant::now();
                let res = loop {
                    {
                        let st = tuple.meta.lock.lock();
                        if let Some((row, retired)) = st.check_granted(tuple, &ctx.shared) {
                            break Ok((row, retired));
                        }
                    }
                    if ctx.shared.is_aborted() || t0.elapsed() > LOCK_WAIT_TIMEOUT {
                        ctx.shared.set_abort(AbortReason::Wounded);
                        let mut st = tuple.meta.lock.lock();
                        // Re-check for a grant that raced the wound; if
                        // granted, cancel_wait fully releases the entry.
                        st.cancel_wait(&ctx.shared, &pol);
                        break Err(ctx.abort_err());
                    }
                    ctx.shared.park_brief();
                };
                ctx.timers.lock_wait += t0.elapsed();
                res
            }
        }
    }

    /// Optimization 2 δ heuristic: should the write issued as operation
    /// `op_seq` retire now? ("writes in the last δ fraction of accesses are
    /// not retired" — hotspots at the very end of a transaction would not
    /// unblock anyone for long, but retiring them costs latching and risks
    /// cascades.)
    fn should_retire_now(&self, ctx: &TxnCtx) -> bool {
        if !self.retire_writes || ctx.opaque {
            return false;
        }
        if self.delta <= 0.0 {
            return true;
        }
        match ctx.planned_ops {
            // Interactive mode: positions unknown, treat every write as the
            // last write and retire immediately (paper §5.1).
            None => true,
            Some(k) => (ctx.op_seq as f64) <= (1.0 - self.delta) * k as f64,
        }
    }

    /// Retires every still-owned dirty access (used by the adaptive clause
    /// of Optimization 2 during the semaphore wait).
    fn retire_pending(&self, ctx: &mut TxnCtx) {
        for a in ctx.accesses.iter_mut() {
            if a.state == AccessState::Owner && a.mode == LockMode::Ex && a.dirty {
                let mut st = a.tuple.meta.lock.lock();
                st.retire(&ctx.shared, a.local.clone(), &self.policy);
                a.state = AccessState::Retired;
            }
        }
    }

    /// Next-key (gap) lock for an insert of `key`: exclusive-locks the
    /// smallest existing key greater than `key`, forcing an ordering with
    /// any scanner holding that key shared. Only taken under Serializable
    /// with an ordered index present. On a partitioned database the next
    /// key is resolved across every shard ([`Database::next_key_after`]),
    /// so the gap guard spans partition boundaries.
    fn lock_insert_gap(
        &self,
        db: &Database,
        ctx: &mut TxnCtx,
        table: TableId,
        key: u64,
    ) -> Result<(), Abort> {
        if self.isolation != IsolationLevel::Serializable {
            return Ok(());
        }
        if !db.has_ordered_index(table) {
            return Ok(());
        }
        let Some(next) = db.next_key_after(table, key) else {
            return Ok(());
        };
        let tuple = db
            .table_for(table, next)
            .get(next)
            .expect("ordered index points at existing tuple");
        if ctx.find_access(table, tuple.key).is_some() {
            // Already hold it (e.g. several inserts into one gap): any
            // held mode suffices for ordering with scanners.
            return Ok(());
        }
        let (row, retired) = self.acquire_blocking(db, ctx, &tuple, LockMode::Ex)?;
        debug_assert!(!retired);
        ctx.push_access(Access {
            table,
            tuple,
            mode: LockMode::Ex,
            local: row,
            dirty: false, // gap guard only; nothing to install
            state: AccessState::Owner,
            observed_tid: 0,
            observed_seq: 0,
            group: 0,
        });
        Ok(())
    }

    /// Like [`Protocol::update`] but with explicit retire control: when
    /// `retire` is false the lock is kept in `owners` regardless of the δ
    /// heuristic. Used by the §3.3 retire-point analysis, whose synthesized
    /// conditions decide retiring at runtime (see `bamboo-analysis`).
    pub fn update_manual(
        &self,
        db: &Database,
        ctx: &mut TxnCtx,
        table: TableId,
        key: u64,
        f: &mut dyn FnMut(&mut Row),
        retire: bool,
    ) -> Result<(), Abort> {
        let saved = self.clone_with_retire(retire);
        Protocol::update(&saved, db, ctx, table, key, f)
    }

    fn clone_with_retire(&self, retire: bool) -> LockingProtocol {
        let mut c = self.clone();
        c.retire_writes = retire && self.retire_writes;
        if retire {
            c.delta = 0.0; // explicit retire request overrides δ
        }
        c
    }

    /// Explicitly retires an already-written access (Algorithm 2
    /// `LockRetire` as a standalone call — "the LockRetire() function call
    /// is completely optional" §3.2.2). No-op when the access already
    /// retired or is clean.
    pub fn retire_now(&self, ctx: &mut TxnCtx, table: TableId, key: u64) {
        let Some(i) = ctx
            .accesses
            .iter()
            .position(|a| a.table == table && a.tuple.key == key)
        else {
            return;
        };
        let a = &mut ctx.accesses[i];
        if a.state == AccessState::Owner && a.mode == LockMode::Ex && a.dirty {
            let mut st = a.tuple.meta.lock.lock();
            st.retire(&ctx.shared, a.local.clone(), &self.policy);
            a.state = AccessState::Retired;
        }
    }

    /// Releases every entry (commit or abort path). On commit, dirty
    /// images install as new committed versions tagged with the
    /// transaction's commit timestamp; `watermark` drives the eager
    /// version-chain GC and `trim_threshold` its amortization. Returns
    /// cascaded count.
    fn release_all(
        &self,
        ctx: &mut TxnCtx,
        committed: bool,
        watermark: u64,
        trim_threshold: usize,
    ) -> usize {
        let mut cascaded = 0;
        let commit_ts = ctx.commit_ts;
        for a in ctx.accesses.iter_mut() {
            if a.state == AccessState::Released {
                continue;
            }
            let install = if committed && a.dirty {
                Some(CommitInstall {
                    tuple: &a.tuple,
                    row: &a.local,
                    commit_ts,
                    watermark,
                    trim_threshold,
                })
            } else {
                None
            };
            let mut st = a.tuple.meta.lock.lock();
            let out = st.release(&ctx.shared, &self.policy, committed, install);
            cascaded += out.cascaded;
            a.state = AccessState::Released;
        }
        cascaded
    }
}

impl Protocol for LockingProtocol {
    fn name(&self) -> &str {
        &self.name
    }

    fn begin(&self, db: &Database) -> TxnCtx {
        let id = db.next_txn_id();
        let ts = if self.policy.dynamic_ts {
            UNASSIGNED
        } else {
            db.ts_source.assign()
        };
        TxnCtx::new(crate::txn::TxnShared::new(id, ts))
    }

    fn read<'c>(
        &self,
        db: &Database,
        ctx: &'c mut TxnCtx,
        table: TableId,
        key: u64,
    ) -> Result<&'c Row, Abort> {
        if ctx.shared.is_aborted() {
            return Err(ctx.abort_err());
        }
        ctx.op_seq += 1;
        if ctx.snapshot.is_some() {
            return snapshot_read(db, ctx, table, key);
        }
        let tuple = db
            .table_for(table, key)
            .get(key)
            .unwrap_or_else(|| panic!("read: missing key {key} in table {}", table.0));
        if let Some(i) = ctx.find_access(table, tuple.key) {
            // Own writes are always visible; under read committed a clean
            // cached read is refreshed instead (non-repeatable by design).
            if self.isolation != IsolationLevel::ReadCommitted
                || ctx.accesses[i].dirty
                || ctx.opaque
            {
                return Ok(&ctx.accesses[i].local);
            }
            let row = {
                let _st = tuple.meta.lock.lock();
                tuple.read_row()
            };
            ctx.accesses[i].local = row;
            return Ok(&ctx.accesses[i].local);
        }
        if !ctx.opaque {
            match self.isolation {
                IsolationLevel::ReadCommitted => {
                    // §3.4: shared locks release immediately — modelled as a
                    // latched snapshot of the committed image with no entry.
                    let row = {
                        let _st = tuple.meta.lock.lock();
                        tuple.read_row()
                    };
                    let i = ctx.push_access(Access {
                        table,
                        tuple,
                        mode: LockMode::Sh,
                        local: row,
                        dirty: false,
                        state: AccessState::Released,
                        observed_tid: 0,
                        observed_seq: 0,
                        group: 0,
                    });
                    return Ok(&ctx.accesses[i].local);
                }
                IsolationLevel::ReadUncommitted => {
                    // §3.4: no read locks at all; take the newest dirty
                    // version.
                    let row = {
                        let st = tuple.meta.lock.lock();
                        st.dirty_snapshot(&tuple)
                    };
                    let i = ctx.push_access(Access {
                        table,
                        tuple,
                        mode: LockMode::Sh,
                        local: row,
                        dirty: false,
                        state: AccessState::Released,
                        observed_tid: 0,
                        observed_seq: 0,
                        group: 0,
                    });
                    return Ok(&ctx.accesses[i].local);
                }
                IsolationLevel::Serializable | IsolationLevel::RepeatableRead => {}
            }
        }
        let (row, retired) = self.acquire_blocking(db, ctx, &tuple, LockMode::Sh)?;
        let i = ctx.push_access(Access {
            table,
            tuple,
            mode: LockMode::Sh,
            local: row,
            dirty: false,
            state: if retired {
                AccessState::Retired
            } else {
                AccessState::Owner
            },
            observed_tid: 0,
            observed_seq: 0,
            group: 0,
        });
        Ok(&ctx.accesses[i].local)
    }

    fn update(
        &self,
        db: &Database,
        ctx: &mut TxnCtx,
        table: TableId,
        key: u64,
        f: &mut dyn FnMut(&mut Row),
    ) -> Result<(), Abort> {
        if ctx.shared.is_aborted() {
            return Err(ctx.abort_err());
        }
        ctx.forbid_snapshot_write("update");
        ctx.op_seq += 1;
        let tuple = db
            .table_for(table, key)
            .get(key)
            .unwrap_or_else(|| panic!("update: missing key {key} in table {}", table.0));
        let i = match ctx.find_access(table, tuple.key) {
            Some(i) => {
                // Re-access. Three cases:
                //  * still an exclusive owner: just mutate the local copy;
                //  * retired (second write after retire, §3.3) or a retired
                //    read being upgraded: abort observers and move back to
                //    owners via reacquire;
                //  * shared owner upgrade (baselines): unsupported — our
                //    workloads take EX up front for RMW, as DBx1000 does.
                let (state, mode) = (ctx.accesses[i].state, ctx.accesses[i].mode);
                match (state, mode) {
                    (AccessState::Owner, LockMode::Ex) => i,
                    (AccessState::Retired, _) => {
                        let a = &mut ctx.accesses[i];
                        let mut st = a.tuple.meta.lock.lock();
                        st.reacquire_ex(&ctx.shared, &self.policy);
                        drop(st);
                        a.state = AccessState::Owner;
                        a.mode = LockMode::Ex;
                        i
                    }
                    (AccessState::Owner, LockMode::Sh) => {
                        // Shared-owner upgrade (baselines where reads hold
                        // ownership). The local copy stays valid: we held SH
                        // continuously, so the committed image cannot have
                        // changed under us.
                        ctx.locks_acquired += 1;
                        let t0 = Instant::now();
                        let res = loop {
                            let outcome = {
                                let mut st = ctx.accesses[i].tuple.meta.lock.lock();
                                st.try_upgrade(&ctx.shared, &self.policy)
                            };
                            match outcome {
                                Acquired::Granted { .. } => break Ok(()),
                                Acquired::Die(reason) => {
                                    ctx.shared.set_abort(reason);
                                    break Err(Abort(reason));
                                }
                                Acquired::Wait => {
                                    if ctx.shared.is_aborted() || t0.elapsed() > LOCK_WAIT_TIMEOUT {
                                        ctx.shared.set_abort(AbortReason::Wounded);
                                        break Err(ctx.abort_err());
                                    }
                                    ctx.shared.park_brief();
                                }
                            }
                        };
                        ctx.timers.lock_wait += t0.elapsed();
                        res?;
                        ctx.accesses[i].mode = LockMode::Ex;
                        i
                    }
                    (AccessState::Released, LockMode::Sh) => {
                        // A weak-isolation read cached this key without a
                        // lock entry; forget it and take a fresh exclusive
                        // acquire.
                        ctx.forget_access(table, tuple.key);
                        let (row, retired) =
                            self.acquire_blocking(db, ctx, &tuple, LockMode::Ex)?;
                        debug_assert!(!retired);
                        ctx.push_access(Access {
                            table,
                            tuple: Arc::clone(&tuple),
                            mode: LockMode::Ex,
                            local: row,
                            dirty: false,
                            state: AccessState::Owner,
                            observed_tid: 0,
                            observed_seq: 0,
                            group: 0,
                        })
                    }
                    (AccessState::Released, LockMode::Ex) => {
                        debug_assert_eq!(
                            self.isolation,
                            IsolationLevel::ReadUncommitted,
                            "only RU releases writes mid-transaction"
                        );
                        ctx.forget_access(table, tuple.key);
                        let (row, _) = self.acquire_blocking(db, ctx, &tuple, LockMode::Ex)?;
                        ctx.push_access(Access {
                            table,
                            tuple: Arc::clone(&tuple),
                            mode: LockMode::Ex,
                            local: row,
                            dirty: false,
                            state: AccessState::Owner,
                            observed_tid: 0,
                            observed_seq: 0,
                            group: 0,
                        })
                    }
                }
            }
            None => {
                let (row, retired) = self.acquire_blocking(db, ctx, &tuple, LockMode::Ex)?;
                debug_assert!(!retired, "exclusive grants start as owners");
                ctx.push_access(Access {
                    table,
                    tuple,
                    mode: LockMode::Ex,
                    local: row,
                    dirty: false,
                    state: AccessState::Owner,
                    observed_tid: 0,
                    observed_seq: 0,
                    group: 0,
                })
            }
        };
        f(&mut ctx.accesses[i].local);
        ctx.accesses[i].dirty = true;
        // Algorithm 1 line 2: retire after the (presumed) last write, subject
        // to Optimization 2. Under read uncommitted "each retire becomes a
        // release" (§3.4): the write installs immediately, no dependency is
        // tracked, and an abort cannot take it back.
        if self.should_retire_now(ctx) {
            let a = &mut ctx.accesses[i];
            if self.isolation == IsolationLevel::ReadUncommitted {
                let mut st = a.tuple.meta.lock.lock();
                st.release(
                    &ctx.shared,
                    &self.policy,
                    true,
                    Some(CommitInstall::untimed(&a.tuple, &a.local)),
                );
                a.state = AccessState::Released;
            } else {
                let mut st = a.tuple.meta.lock.lock();
                st.retire(&ctx.shared, a.local.clone(), &self.policy);
                a.state = AccessState::Retired;
            }
        }
        Ok(())
    }

    fn insert(
        &self,
        db: &Database,
        ctx: &mut TxnCtx,
        table: TableId,
        key: u64,
        row: Row,
        secondary: Option<(usize, u64)>,
    ) -> Result<(), Abort> {
        if ctx.shared.is_aborted() {
            return Err(ctx.abort_err());
        }
        ctx.forbid_snapshot_write("insert");
        ctx.op_seq += 1;
        // Phantom protection: lock the gap before making the insert
        // pending (tables without an ordered index skip this, as DBx1000's
        // hash-only configuration does).
        self.lock_insert_gap(db, ctx, table, key)?;
        ctx.inserts.push(PendingInsert {
            table,
            key,
            row,
            secondary,
        });
        Ok(())
    }

    fn commit(&self, db: &Database, ctx: &mut TxnCtx, wal: &WalHandle) -> Result<(), Abort> {
        // Snapshot mode holds no locks, wrote nothing, and cannot be
        // wounded: the commit is just the registry release.
        if ctx.snapshot.is_some() {
            return commit_snapshot(db, ctx);
        }
        // Algorithm 1 lines 4–5: wait for the commit semaphore. The
        // adaptive clause of Optimization 2 fires mid-wait: once we have
        // been stalled for longer than δ of the execution time so far, the
        // trailing writes held back by the δ heuristic are blocking others
        // for real, so retire them after all.
        let t0 = Instant::now();
        let mut may_retire_late = self.adaptive_retire && self.delta > 0.0;
        let budget = ctx.started.elapsed().mul_f64(self.delta.max(0.0));
        loop {
            if ctx.shared.is_aborted() {
                ctx.timers.commit_wait += t0.elapsed();
                return Err(ctx.abort_err());
            }
            if ctx.shared.semaphore() == 0 {
                break;
            }
            if t0.elapsed() > COMMIT_WAIT_TIMEOUT {
                // Liveness backstop (see COMMIT_WAIT_TIMEOUT).
                ctx.shared.set_abort(AbortReason::Cascade);
                ctx.timers.commit_wait += t0.elapsed();
                return Err(ctx.abort_err());
            }
            if may_retire_late && t0.elapsed() > budget {
                self.retire_pending(ctx);
                may_retire_late = false;
            }
            ctx.shared.park_brief();
        }
        ctx.timers.commit_wait += t0.elapsed();

        // Allocate the MVCC commit timestamp just before the commit point:
        // installs (and commit-time inserts) are tagged with it, and the
        // clock keeps it "in flight" until every install landed, so
        // snapshots can never be taken in the middle of this commit.
        ctx.commit_ts = db.commit_clock.allocate();
        if !ctx.shared.try_commit_point() {
            // A wound won the race: nothing installs under this timestamp,
            // so retire it immediately or the stable point stalls.
            db.commit_clock.finish(ctx.commit_ts);
            return Err(ctx.abort_err());
        }
        // Algorithm 1 line 6: the log write, here *after* the commit point
        // (Definition 1) so a wounded transaction never reaches the log —
        // with a durable sink that is what makes recovery redo-only — and
        // carrying the just-allocated commit timestamp. On a partitioned
        // database the group splits into per-partition WAL appends in
        // ascending partition-id order (the PartitionedDb commit-ordering
        // contract). Logging precedes every install: if the process dies
        // between fsync-acknowledged log and install, replay redoes the
        // writes; if it dies before the log write completes, nothing was
        // installed either.
        match log_commit(db, ctx, wal) {
            // Under group commit the appends defer the fsync: stash the
            // durability ticket for the session to wait out *after* this
            // commit installed and released — early lock release.
            Ok(ticket) => ctx.durability = ticket,
            Err(_) => {
                // Durable sink failed: the group never became durable (torn
                // bytes were rewound / the group abandoned), so revoke the
                // commit point — nothing installed yet, no lock released, no
                // dependent saw a Committed status it could act on — and
                // abort this one transaction. The timestamp retires
                // immediately so the stable point cannot stall on a commit
                // that never was; locks are released by the `abort` call the
                // `Err` obliges.
                let revoked = ctx.shared.revoke_commit(AbortReason::DurabilityFailed);
                debug_assert!(revoked, "only the owning worker moves Committed");
                db.commit_clock.finish(ctx.commit_ts);
                return Err(Abort(AbortReason::DurabilityFailed));
            }
        }
        apply_inserts(db, ctx);
        self.release_all(ctx, true, db.gc_watermark(), db.trim_threshold());
        db.note_commit(ctx.commit_ts);
        Ok(())
    }

    /// Range scan with phantom protection (§3.4: "next-key locking in
    /// indexes; this technique achieves the same effect as predicate
    /// locking"). Requires the table's ordered index
    /// ([`bamboo_storage::Table::enable_ordered_index`]).
    ///
    /// Every matching key is read (shared access) and — under
    /// [`IsolationLevel::Serializable`] — the *next existing key* past the
    /// range end is share-locked too, so a concurrent insert into the gap
    /// must order itself after this transaction. Under
    /// [`IsolationLevel::RepeatableRead`] the next-key lock is skipped:
    /// "repeatable read is supported by giving up phantom protection".
    /// Ranges extending past the largest existing key are protected only
    /// when a sentinel max-key row exists (documented in DESIGN.md).
    /// Snapshot-mode scans take no locks at all; rows invisible at the
    /// snapshot are skipped as phantoms.
    fn scan(
        &self,
        db: &Database,
        ctx: &mut TxnCtx,
        table: TableId,
        range: std::ops::RangeInclusive<u64>,
    ) -> Result<Vec<Row>, Abort> {
        let in_snapshot = ctx.snapshot.is_some();
        let mut rows = Vec::new();
        // Partitioned databases merge the key set across every shard's
        // index; each key then reads from its owning shard. A remote key
        // invisible at the snapshot is skipped exactly like a local one —
        // the Txn::read_opt absorption rule, never an abort.
        for key in db.scan_keys(table, range.clone()) {
            match self.read(db, ctx, table, key) {
                Ok(row) => rows.push(row.clone()),
                Err(Abort(AbortReason::SnapshotNotVisible)) if in_snapshot => continue,
                Err(e) => return Err(e),
            }
        }
        if self.isolation == IsolationLevel::Serializable && !in_snapshot {
            if let Some(next) = db.next_key_after(table, *range.end()) {
                self.read(db, ctx, table, next)?;
            }
        }
        Ok(rows)
    }

    fn abort(&self, db: &Database, ctx: &mut TxnCtx) -> usize {
        // Self-aborts (user logic) arrive here without a prior set_abort.
        ctx.shared.set_abort(AbortReason::User);
        ctx.inserts.clear();
        ctx.end_snapshot(db);
        self.release_all(ctx, false, 0, db.trim_threshold())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_storage::{DataType, Schema, Value};

    fn setup() -> (Arc<Database>, TableId) {
        let mut b = Database::builder();
        let t = b.add_table(
            "kv",
            Schema::build()
                .column("k", DataType::U64)
                .column("v", DataType::I64),
        );
        let db = b.build();
        for k in 0..10u64 {
            db.table(t).insert(
                k,
                Row::from(vec![Value::U64(k), Value::I64(k as i64 * 100)]),
            );
        }
        (db, t)
    }

    fn add_100(row: &mut Row) {
        let v = row.get_i64(1);
        row.set(1, Value::I64(v + 100));
    }

    #[test]
    fn single_txn_read_update_commit() {
        for proto in [
            LockingProtocol::bamboo(),
            LockingProtocol::bamboo_base(),
            LockingProtocol::wound_wait(),
            LockingProtocol::wait_die(),
            LockingProtocol::no_wait(),
        ] {
            let (db, t) = setup();
            let wal = WalHandle::for_tests();
            let mut ctx = proto.begin(&db);
            assert_eq!(proto.read(&db, &mut ctx, t, 3).unwrap().get_i64(1), 300);
            proto.update(&db, &mut ctx, t, 3, &mut add_100).unwrap();
            // Read-own-write.
            assert_eq!(proto.read(&db, &mut ctx, t, 3).unwrap().get_i64(1), 400);
            proto.commit(&db, &mut ctx, &wal).unwrap();
            assert_eq!(
                db.table(t).get(3).unwrap().read_row().get_i64(1),
                400,
                "{} must install the write",
                proto.name()
            );
            assert_eq!(wal.records(), 1);
        }
    }

    #[test]
    fn abort_discards_writes_and_inserts() {
        let (db, t) = setup();
        let proto = LockingProtocol::bamboo();
        let mut ctx = proto.begin(&db);
        proto.update(&db, &mut ctx, t, 5, &mut add_100).unwrap();
        proto
            .insert(
                &db,
                &mut ctx,
                t,
                99,
                Row::from(vec![Value::U64(99), Value::I64(0)]),
                None,
            )
            .unwrap();
        proto.abort(&db, &mut ctx);
        assert_eq!(db.table(t).get(5).unwrap().read_row().get_i64(1), 500);
        assert!(db.table(t).get(99).is_none());
    }

    #[test]
    fn insert_visible_after_commit() {
        let (db, t) = setup();
        let proto = LockingProtocol::bamboo();
        let wal = WalHandle::for_tests();
        let mut ctx = proto.begin(&db);
        proto
            .insert(
                &db,
                &mut ctx,
                t,
                42,
                Row::from(vec![Value::U64(42), Value::I64(7)]),
                None,
            )
            .unwrap();
        proto.commit(&db, &mut ctx, &wal).unwrap();
        assert_eq!(db.table(t).get(42).unwrap().read_row().get_i64(1), 7);
    }

    #[test]
    fn bamboo_pipelines_two_writers() {
        // T1 writes and retires; T2 reads T1's dirty write, but can only
        // commit after T1.
        let (db, t) = setup();
        let proto = LockingProtocol::bamboo_base();
        let wal = WalHandle::for_tests();
        let mut c1 = proto.begin(&db);
        let mut c2 = proto.begin(&db);
        proto.update(&db, &mut c1, t, 0, &mut add_100).unwrap();
        // T2 sees the dirty value because T1 retired its lock.
        proto.update(&db, &mut c2, t, 0, &mut add_100).unwrap();
        assert_eq!(
            {
                let a = &c2.accesses[0];
                a.local.get_i64(1)
            },
            200,
            "T2 read T1's dirty 100 and added 100"
        );
        assert_eq!(c2.shared.semaphore(), 1, "T2 depends on T1");
        proto.commit(&db, &mut c1, &wal).unwrap();
        assert_eq!(c2.shared.semaphore(), 0);
        proto.commit(&db, &mut c2, &wal).unwrap();
        assert_eq!(db.table(t).get(0).unwrap().read_row().get_i64(1), 200);
    }

    #[test]
    fn bamboo_cascade_on_writer_abort() {
        let (db, t) = setup();
        let proto = LockingProtocol::bamboo_base();
        let mut c1 = proto.begin(&db);
        let mut c2 = proto.begin(&db);
        proto.update(&db, &mut c1, t, 0, &mut add_100).unwrap();
        proto.update(&db, &mut c2, t, 0, &mut add_100).unwrap();
        // T1 aborts: T2 must be cascade-aborted.
        let cascaded = proto.abort(&db, &mut c1);
        assert_eq!(cascaded, 1);
        assert!(c2.shared.is_aborted());
        assert_eq!(c2.shared.abort_reason(), AbortReason::Cascade);
        // T2's commit fails; its abort releases cleanly.
        let wal = WalHandle::for_tests();
        assert!(proto.commit(&db, &mut c2, &wal).is_err());
        proto.abort(&db, &mut c2);
        assert_eq!(db.table(t).get(0).unwrap().read_row().get_i64(1), 0);
        let st = db.table(t).get(0).unwrap();
        assert!(st.meta.lock.lock().is_quiescent());
    }

    #[test]
    fn wound_wait_baseline_blocks_second_writer() {
        let (db, t) = setup();
        let proto = LockingProtocol::wound_wait();
        let wal = WalHandle::for_tests();
        let mut c1 = proto.begin(&db);
        proto.update(&db, &mut c1, t, 0, &mut add_100).unwrap();
        // Younger writer on another thread: must block until T1 commits.
        let db2 = Arc::clone(&db);
        let proto2 = proto.clone();
        let h = std::thread::spawn(move || {
            let wal = WalHandle::for_tests();
            let mut c2 = proto2.begin(&db2);
            proto2.update(&db2, &mut c2, t, 0, &mut add_100).unwrap();
            proto2.commit(&db2, &mut c2, &wal).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!h.is_finished(), "Wound-Wait must block the younger writer");
        proto.commit(&db, &mut c1, &wal).unwrap();
        h.join().unwrap();
        assert_eq!(db.table(t).get(0).unwrap().read_row().get_i64(1), 200);
    }

    #[test]
    fn delta_heuristic_skips_trailing_writes() {
        let (db, t) = setup();
        let proto = LockingProtocol::bamboo(); // δ = 0.15
        let mut ctx = proto.begin(&db);
        ctx.planned_ops = Some(10);
        // ops 1..=8 are within the first 85%; ops 9, 10 are the trailing δ.
        for k in 0..8u64 {
            proto.update(&db, &mut ctx, t, k, &mut add_100).unwrap();
        }
        assert!(ctx.accesses.iter().all(|a| a.state == AccessState::Retired));
        proto.update(&db, &mut ctx, t, 8, &mut add_100).unwrap();
        proto.update(&db, &mut ctx, t, 9, &mut add_100).unwrap();
        assert_eq!(
            ctx.accesses
                .iter()
                .filter(|a| a.state == AccessState::Owner)
                .count(),
            2,
            "trailing writes stay owned"
        );
        let wal = WalHandle::for_tests();
        proto.commit(&db, &mut ctx, &wal).unwrap();
    }

    #[test]
    fn second_write_after_retire_reacquires() {
        let (db, t) = setup();
        let proto = LockingProtocol::bamboo_base();
        let wal = WalHandle::for_tests();
        let mut ctx = proto.begin(&db);
        proto.update(&db, &mut ctx, t, 1, &mut add_100).unwrap();
        assert_eq!(ctx.accesses[0].state, AccessState::Retired);
        proto.update(&db, &mut ctx, t, 1, &mut add_100).unwrap();
        proto.commit(&db, &mut ctx, &wal).unwrap();
        assert_eq!(db.table(t).get(1).unwrap().read_row().get_i64(1), 300);
    }

    #[test]
    fn read_uncommitted_early_installs_do_not_version() {
        // RU's retire-becomes-release installs have no commit timestamp;
        // they must overwrite in place — pushing chain entries that no
        // watermark ever collects would leak a version per write.
        let (db, t) = setup();
        let proto = LockingProtocol::bamboo().with_isolation(IsolationLevel::ReadUncommitted);
        let wal = WalHandle::for_tests();
        for _ in 0..50 {
            let mut ctx = proto.begin(&db);
            proto.update(&db, &mut ctx, t, 0, &mut add_100).unwrap();
            proto.commit(&db, &mut ctx, &wal).unwrap();
        }
        let tup = db.table(t).get(0).unwrap();
        assert_eq!(
            tup.retained_versions(),
            0,
            "untimed installs must not grow the version chain"
        );
        assert_eq!(tup.read_row().get_i64(1), 5000);
    }

    #[test]
    fn no_wait_conflict_self_aborts() {
        let (db, t) = setup();
        let proto = LockingProtocol::no_wait();
        let mut c1 = proto.begin(&db);
        let mut c2 = proto.begin(&db);
        proto.update(&db, &mut c1, t, 0, &mut add_100).unwrap();
        let err = proto.update(&db, &mut c2, t, 0, &mut add_100).unwrap_err();
        assert_eq!(err.0, AbortReason::NoWait);
        proto.abort(&db, &mut c2);
        let wal = WalHandle::for_tests();
        proto.commit(&db, &mut c1, &wal).unwrap();
    }
}
