//! Transaction-facing concurrency-control protocols.
//!
//! DBx1000 (the paper's prototype) "includes a pluggable lock manager that
//! supports different concurrency control schemes", which is what lets the
//! paper compare Bamboo with its baselines inside one system (§5.1). The
//! [`Protocol`] trait is that plug:
//!
//! * [`LockingProtocol`] — the whole 2PL family: **Bamboo**, Wound-Wait,
//!   Wait-Die and No-Wait (the paper's BAMBOO / WOUND_WAIT / WAIT_DIE /
//!   NO_WAIT configurations).
//! * [`SiloProtocol`] — the OCC baseline (SILO).
//! * [`ic3::Ic3Protocol`] — the transaction-chopping baseline (IC3).
//! * [`InteractiveProtocol`] — a decorator that charges a simulated RPC
//!   round-trip per operation, reproducing the paper's interactive mode.

pub mod ic3;
mod interactive;
mod locking;
mod silo;

use bamboo_storage::log::{IoClass, IoFailure};
use bamboo_storage::{Row, TableId};

pub use ic3::{Ic3Protocol, PieceAccess, PieceDecl, TemplateDecl};
pub use interactive::InteractiveProtocol;
pub use locking::{IsolationLevel, LockingProtocol};
pub use silo::SiloProtocol;

use crate::db::Database;
use crate::txn::{Abort, TxnCtx};
use crate::wal::{DurabilityTicket, WalHandle, WalWrite};

/// A pluggable concurrency-control protocol.
///
/// Contract: a transaction is driven as
/// `begin → (read | update | insert | scan)* → commit | abort`; any
/// `Err(Abort)` from an operation obliges the caller to invoke
/// [`Protocol::abort`] exactly once for the attempt. `commit` consumes the
/// attempt on success.
///
/// This trait is the *internal* plug — the seam protocols implement. User
/// code drives transactions through [`crate::session::Session`] and the
/// RAII [`crate::session::Txn`] guard, which own this lifecycle contract
/// (in particular the "abort exactly once" obligation) by construction.
pub trait Protocol: Send + Sync {
    /// Protocol display name (matches the paper's legends).
    fn name(&self) -> &str;

    /// Starts a new transaction attempt.
    fn begin(&self, db: &Database) -> TxnCtx;

    /// Starts a *read-only snapshot* attempt: every read resolves against
    /// the committed version chains at the registered snapshot timestamp
    /// with zero lock-manager interaction — the transaction can neither
    /// block nor be aborted by writers. Writes are forbidden in this mode.
    ///
    /// Consistency requires writers to commit through the timestamped MVCC
    /// install path, which every protocol's commit does — except
    /// [`IsolationLevel::ReadUncommitted`](crate::protocol::IsolationLevel)
    /// writers, whose early installs overwrite in place and are therefore
    /// not snapshot-consistent (RU permits dirty reads by definition).
    fn begin_snapshot(&self, db: &Database) -> TxnCtx {
        let mut ctx = self.begin(db);
        ctx.snapshot = Some(crate::txn::SnapshotCtx {
            grant: db.register_snapshot(),
            max_lag: None,
        });
        ctx
    }

    /// Reads a row (shared access); returns a reference to the
    /// transaction-local copy.
    fn read<'c>(
        &self,
        db: &Database,
        ctx: &'c mut TxnCtx,
        table: TableId,
        key: u64,
    ) -> Result<&'c Row, Abort>;

    /// Read-modify-write (exclusive access): `f` mutates the local copy;
    /// visibility of the dirty result is protocol-specific (Bamboo retires
    /// the lock according to Optimization 2's δ heuristic).
    fn update(
        &self,
        db: &Database,
        ctx: &mut TxnCtx,
        table: TableId,
        key: u64,
        f: &mut dyn FnMut(&mut Row),
    ) -> Result<(), Abort>;

    /// Buffers an insert; applied atomically at commit. `secondary` is an
    /// optional `(secondary index slot, secondary key)` to maintain.
    fn insert(
        &self,
        db: &Database,
        ctx: &mut TxnCtx,
        table: TableId,
        key: u64,
        row: Row,
        secondary: Option<(usize, u64)>,
    ) -> Result<(), Abort>;

    /// Range scan over the table's ordered index: reads every key in
    /// `range` (shared access) and returns copies of the matching rows.
    ///
    /// The default implementation performs plain per-key reads — correct
    /// under every protocol, with no phantom protection. Protocols with a
    /// stronger story override it ([`LockingProtocol`] adds §3.4's
    /// next-key locking under Serializable). On a partitioned database the
    /// key set merges every partition's index shard
    /// ([`Database::scan_keys`]), so a range spanning partitions reads
    /// each key from its owning shard. In snapshot mode, rows not visible
    /// at the snapshot timestamp are skipped — an index entry committed
    /// after the snapshot was taken is a phantom to this transaction, not
    /// an error — and the skip applies identically to local and remote
    /// partitions' keys (the same `Ok(None)`-style absorption as
    /// [`crate::session::Txn::read_opt`], never an abort).
    fn scan(
        &self,
        db: &Database,
        ctx: &mut TxnCtx,
        table: TableId,
        range: std::ops::RangeInclusive<u64>,
    ) -> Result<Vec<Row>, Abort> {
        let in_snapshot = ctx.snapshot.is_some();
        let mut rows = Vec::new();
        for key in db.scan_keys(table, range) {
            match self.read(db, ctx, table, key) {
                Ok(row) => rows.push(row.clone()),
                Err(Abort(crate::txn::AbortReason::SnapshotNotVisible)) if in_snapshot => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(rows)
    }

    /// Commits: waits out commit dependencies, logs, installs, releases.
    fn commit(&self, db: &Database, ctx: &mut TxnCtx, wal: &WalHandle) -> Result<(), Abort>;

    /// Aborts the attempt, releasing everything. Returns the number of
    /// transactions cascadingly aborted by this release (abort-chain
    /// accounting, §4.2).
    fn abort(&self, db: &Database, ctx: &mut TxnCtx) -> usize;

    /// IC3 hook: a new piece begins. No-op elsewhere.
    fn piece_begin(&self, _db: &Database, _ctx: &mut TxnCtx, _piece: usize) -> Result<(), Abort> {
        Ok(())
    }

    /// IC3 hook: the current piece ended (publish piece writes). No-op
    /// elsewhere.
    fn piece_end(&self, _db: &Database, _ctx: &mut TxnCtx) -> Result<(), Abort> {
        Ok(())
    }
}

/// Applies buffered inserts at commit time (shared by all protocols). The
/// new rows' first version carries the transaction's commit timestamp, so
/// snapshots older than the inserting transaction do not see them. Each
/// insert lands in the shard owning its key (the local table on a
/// monolithic database), and secondary-index maintenance stays within
/// that shard.
pub(crate) fn apply_inserts(db: &Database, ctx: &mut TxnCtx) {
    for ins in ctx.inserts.drain(..) {
        let table = db.table_for(ins.table, ins.key);
        let tuple = table.insert_at(ins.key, ins.row, ctx.commit_ts);
        if let Some((slot, skey)) = ins.secondary {
            table.secondary_index(slot).insert(skey, tuple.row_id);
        }
    }
}

/// Appends one commit's redo group to the WAL (shared by all protocols).
/// Called **after** the commit timestamp is allocated and the commit-point
/// CAS succeeded, so `ctx.commit_ts` is final and uncommitted work never
/// reaches a durable sink — recovery is redo-only by construction.
///
/// * Monolithic database: one append to the session's sink, as always.
/// * Partitioned database: the group is split by partition and appended
///   to each *written* partition's WAL segment **in ascending
///   partition-id order** — the commit-ordering contract of
///   [`crate::partition::PartitionedDb`]. Every per-partition group
///   carries the same commit timestamp and the full partition mask, which
///   is what lets recovery check cross-partition completeness. A
///   partition-local transaction therefore performs exactly one append, to
///   its home segment (which is what the session's handle is bound to
///   under [`crate::partition::PartSession`]).
///
/// Buffered inserts are logged alongside updates: an insert's row lives in
/// `ctx.inserts` until [`apply_inserts`] runs (after this), so the log
/// carries its key and image explicitly.
///
/// ## Group commit
///
/// Under [`bamboo_storage::FsyncPolicy::GroupCommit`] the appends return
/// without a durability barrier. This function then registers the commit
/// on the global [`crate::wal::DurabilityHorizon`] — after the *last*
/// append succeeded and before anything installs, the ordering that keeps
/// the commit clock's stable point from passing an unregistered committed
/// transaction — and returns a [`DurabilityTicket`] carrying the end LSN
/// of every per-partition group. The session parks on the ticket before
/// acknowledging (`Session` ack path); the protocols just thread it from
/// here into [`TxnCtx::durability`](crate::txn::TxnCtx).
///
/// ## Failure semantics
///
/// A durable sink can fail ([`IoFailure`]); the caller — each protocol's
/// commit — must then revoke the commit point
/// ([`crate::txn::TxnShared::revoke_commit`]) and abort with
/// [`crate::txn::AbortReason::DurabilityFailed`], releasing locks and
/// installing nothing. (Every error here is a *pre-install* failure, even
/// under group commit: the deferred batch fsync happens after install, but
/// its failures surface through the ticket wait, not through this
/// function.) On the cross-partition path the degraded flag of
/// *every* target partition is checked before the first append, so a
/// commit never writes an orphan group to a healthy partition only to
/// fail fast on a known-degraded sibling; a fault that strikes *during*
/// the sequence can still orphan earlier groups, which recovery drops
/// because their `seen_mask` never completes `parts_mask`.
pub(crate) fn log_commit(
    db: &Database,
    ctx: &TxnCtx,
    wal: &WalHandle,
) -> Result<Option<DurabilityTicket>, IoFailure> {
    // Tickets exist only under group commit, and only when the append
    // actually deferred the barrier (a ring sink is durable by fiat).
    let ticketing = matches!(
        db.options().fsync_policy,
        bamboo_storage::FsyncPolicy::GroupCommit { .. }
    );
    let ticket = |parts: Vec<(u32, bamboo_storage::log::Lsn)>| {
        if parts.is_empty() {
            None
        } else {
            // Register after every append succeeded, before the caller
            // installs: see the horizon's type-level invariant.
            db.durability_horizon().register(ctx.commit_ts);
            Some(DurabilityTicket {
                commit_ts: ctx.commit_ts,
                parts,
            })
        }
    };
    // Partition bit for the durable completeness mask. Masks cap the
    // partition count at 64 for durable databases (asserted at build);
    // ring-backed databases ignore the mask, so larger counts just
    // saturate to 0 here instead of overflowing the shift.
    let part_bit = |p: usize| 1u64.checked_shl(p as u32).unwrap_or(0);
    fn updates(ctx: &TxnCtx) -> impl Iterator<Item = WalWrite<'_>> + '_ {
        ctx.accesses
            .iter()
            .filter(|a| a.dirty)
            .map(|a| WalWrite::Update {
                table: a.table,
                row_id: a.tuple.row_id,
                key: a.tuple.key,
                after: &a.local,
            })
    }
    fn inserts(ctx: &TxnCtx) -> impl Iterator<Item = WalWrite<'_>> + '_ {
        ctx.inserts.iter().map(|i| WalWrite::Insert {
            table: i.table,
            key: i.key,
            row: &i.row,
            secondary: i.secondary,
        })
    }
    let Some(topo) = db.topology() else {
        let ga = wal.append_txn(
            ctx.shared.id,
            ctx.commit_ts,
            1,
            updates(ctx).chain(inserts(ctx)),
        )?;
        if ticketing && !ga.durable {
            return Ok(ticket(vec![(0, ga.end_lsn)]));
        }
        return Ok(None);
    };
    // Fast path: the write set usually lives on a single partition (the
    // partition-local transactions the architecture optimizes for), so
    // first scan for the set of written partitions without allocating.
    let mut single: Option<bamboo_storage::PartitionId> = None;
    let mut homogeneous = true;
    let routes = ctx
        .accesses
        .iter()
        .filter(|a| a.dirty)
        .map(|a| (a.table, a.tuple.key))
        .chain(ctx.inserts.iter().map(|i| (i.table, i.key)));
    for (table, key) in routes {
        let p = topo.router.route_from(topo.me, table, key);
        match single {
            None => single = Some(p),
            Some(prev) if prev != p => {
                homogeneous = false;
                break;
            }
            Some(_) => {}
        }
    }
    // A commit with no writes still logs its header record, to the home
    // partition (parity with the monolithic path); a single-partition
    // write set appends once to the owning segment — no grouping, no
    // allocation.
    if homogeneous {
        let p = single.unwrap_or(topo.me);
        let ga = topo.wals[p.idx()].append_txn(
            ctx.shared.id,
            ctx.commit_ts,
            part_bit(p.idx()),
            updates(ctx).chain(inserts(ctx)),
        )?;
        if ticketing && !ga.durable {
            return Ok(ticket(vec![(p.idx() as u32, ga.end_lsn)]));
        }
        return Ok(None);
    }
    // Cross-partition write set: group by owning partition (small vecs of
    // write descriptors; write sets are tens of entries, partitions a
    // handful).
    let n = topo.router.partitions() as usize;
    let mut groups: Vec<Vec<WalWrite<'_>>> = (0..n).map(|_| Vec::new()).collect();
    for w in updates(ctx).chain(inserts(ctx)) {
        let (table, key) = match &w {
            WalWrite::Update { table, key, .. } => (*table, *key),
            WalWrite::Insert { table, key, .. } => (*table, *key),
        };
        let p = topo.router.route_from(topo.me, table, key);
        groups[p.idx()].push(w);
    }
    let parts_mask = groups
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.is_empty())
        .fold(0u64, |m, (p, _)| m | part_bit(p));
    // Fail fast before the *first* append when any target partition is
    // already known-degraded: better one clean DurabilityFailed abort than
    // orphan groups on the healthy partitions.
    for (p, group) in groups.iter().enumerate() {
        if !group.is_empty() && topo.wals[p].is_degraded() {
            return Err(IoFailure::with_class(
                IoClass::Permanent,
                "wal append",
                std::io::Error::other(format!(
                    "partition {p} WAL is degraded (read-only until healed)"
                )),
            ));
        }
    }
    // Ascending partition-id order: the fixed acquisition order of the
    // commit-ordering contract.
    let mut last: Option<usize> = None;
    let mut ends: Vec<(u32, bamboo_storage::log::Lsn)> = Vec::new();
    for (p, group) in groups.iter_mut().enumerate() {
        if group.is_empty() {
            continue;
        }
        debug_assert!(
            last.is_none_or(|l| l < p),
            "cross-partition WAL appends out of order: {last:?} before {p}"
        );
        last = Some(p);
        let ga =
            topo.wals[p].append_txn(ctx.shared.id, ctx.commit_ts, parts_mask, group.drain(..))?;
        if ticketing && !ga.durable {
            ends.push((p as u32, ga.end_lsn));
        }
    }
    Ok(ticket(ends))
}

/// Shared read path of snapshot mode: resolve `key` against the version
/// chain at the context's snapshot timestamp — no lock-manager interaction
/// of any kind. A row that does not exist, or is not yet visible at the
/// snapshot (inserted by a transaction that committed after the snapshot
/// was taken), surfaces as
/// [`AbortReason::SnapshotNotVisible`](crate::txn::AbortReason): callers
/// scanning volatile key spaces treat it as "row absent" (that is what
/// [`crate::session::Txn::read_opt`] does), never as a failed attempt.
pub(crate) fn snapshot_read<'c>(
    db: &Database,
    ctx: &'c mut TxnCtx,
    table: TableId,
    key: u64,
) -> Result<&'c Row, crate::txn::Abort> {
    use crate::txn::AbortReason;
    let snap = ctx
        .snapshot
        .expect("snapshot_read outside snapshot mode")
        .ts();
    // "Snapshot too old" lag cap (TxnOptions::snapshot_max_lag): a capped
    // long reader whose snapshot fell more than `lag` commit timestamps
    // behind the stable point is aborted so its registration stops
    // pinning the GC watermark. One atomic load — the check keeps the
    // read path lock-free.
    if let Some(lag) = ctx.snapshot.and_then(|s| s.max_lag) {
        if db.commit_clock.stable().saturating_sub(snap) > lag {
            ctx.shared.set_abort(AbortReason::SnapshotTooOld);
            return Err(Abort(AbortReason::SnapshotTooOld));
        }
    }
    let Some(tuple) = db.table_for(table, key).get(key) else {
        return Err(Abort(AbortReason::SnapshotNotVisible));
    };
    if let Some(i) = ctx.find_access(table, tuple.key) {
        return Ok(&ctx.accesses[i].local);
    }
    let Some(row) = tuple.read_at(snap) else {
        return Err(Abort(AbortReason::SnapshotNotVisible));
    };
    let i = ctx.push_access(crate::txn::Access {
        table,
        tuple,
        mode: crate::txn::LockMode::Sh,
        local: row,
        dirty: false,
        state: crate::txn::AccessState::Released,
        observed_tid: 0,
        observed_seq: 0,
        group: 0,
    });
    Ok(&ctx.accesses[i].local)
}

/// Shared commit path of snapshot mode: no locks to release, no log to
/// write — pass the commit point and release the snapshot registration so
/// the GC watermark can advance.
pub(crate) fn commit_snapshot(db: &Database, ctx: &mut TxnCtx) -> Result<(), Abort> {
    debug_assert_eq!(
        ctx.locks_acquired, 0,
        "snapshot mode must never touch the lock manager"
    );
    let committed = ctx.shared.try_commit_point();
    debug_assert!(committed, "nothing can wound a snapshot transaction");
    ctx.end_snapshot(db);
    Ok(())
}
