//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment> [--duration-ms N] [--warmup-ms N] [--threads a,b,c]
//!                    [--rpc-us N] [--full]
//!
//! experiments: sec52 fig3a fig3b fig4 fig5 fig6 fig7 fig8 readratio
//!              fig9 fig10 fig11 ablation model all
//! ```
//!
//! Defaults are quick smoke settings (~300 ms per point); `--full` matches
//! longer paper-style runs. See EXPERIMENTS.md for recorded outputs.

use std::time::Duration;

use bamboo_bench::figures;
use bamboo_bench::RunOpts;

fn usage() -> ! {
    eprintln!(
        "usage: repro <sec52|fig3a|fig3b|fig4|fig5|fig6|fig7|fig8|readratio|fig9|fig10|fig11|ablation|model|all>\n\
         \x20      [--duration-ms N] [--warmup-ms N] [--threads a,b,c] [--rpc-us N] [--full]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let exp = args[0].clone();
    let mut opts = RunOpts::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => {
                opts = RunOpts {
                    threads: opts.threads.clone(),
                    ..RunOpts::full()
                }
            }
            "--duration-ms" => {
                i += 1;
                opts.duration = Duration::from_millis(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--warmup-ms" => {
                i += 1;
                opts.warmup = Duration::from_millis(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--rpc-us" => {
                i += 1;
                opts.rpc = Duration::from_micros(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--threads" => {
                i += 1;
                opts.threads = args
                    .get(i)
                    .map(|v| {
                        v.split(',')
                            .map(|s| s.parse().unwrap_or_else(|_| usage()))
                            .collect()
                    })
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }

    let run = |name: &str, opts: &RunOpts| match name {
        "sec52" => figures::sec52(opts),
        "fig3a" => figures::fig3a(opts),
        "fig3b" => figures::fig3b(opts),
        "fig4" => figures::fig4(opts),
        "fig5" => figures::fig5(opts),
        "fig6" => figures::fig6(opts),
        "fig7" => figures::fig7(opts),
        "fig8" => figures::fig8(opts),
        "readratio" => figures::read_ratio(opts),
        "ablation" => figures::ablation(opts),
        "fig9" => figures::fig9(opts),
        "fig10" => figures::fig10(opts),
        "fig11" => figures::fig11(opts),
        "model" => figures::model_table(),
        _ => usage(),
    };

    if exp == "all" {
        for name in [
            "model",
            "sec52",
            "fig3a",
            "fig3b",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "readratio",
            "fig9",
            "fig10",
            "fig11",
            "ablation",
        ] {
            run(name, &opts);
        }
    } else {
        run(&exp, &opts);
    }
}
