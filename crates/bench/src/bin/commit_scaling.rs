//! Commit-pipeline scaling bench: the three hot-path primitives this
//! repo's MVCC machinery puts on every commit and every snapshot, measured
//! standalone and end-to-end at 1/4/8 worker threads.
//!
//! Emitted metrics (ops/second, per thread count):
//!
//! * `clock_ops` — raw [`bamboo_core::db::CommitClock`] `allocate`+`finish`
//!   pairs, the per-commit timestamp cost every protocol pays around its
//!   commit point.
//! * `snapshot_ops` — `register_snapshot`+`release_snapshot` pairs, the
//!   per-snapshot begin/end cost of the MVCC read path.
//! * `commit_tput` — end-to-end committed single-update transactions
//!   through [`bamboo_core::Session`] under Bamboo, with each worker
//!   updating a private key partition so the lock table is uncontended and
//!   the commit pipeline (clock + WAL + install + watermark) dominates.
//!
//! Output is a JSON document with two sections: `baseline` (the numbers
//! recorded on this machine *before* the lock-free commit-pipeline rework,
//! frozen below) and `current` (measured by this run). CI uploads the file
//! as `BENCH_commit_scaling.json`; the committed copy at the repo root is
//! the first point of the perf trajectory.

use bamboo_core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bamboo_core::protocol::LockingProtocol;
use bamboo_core::{Database, Session};
use bamboo_storage::{DataType, Row, Schema, TableId, Value};

/// Thread counts swept (the ISSUE's 1/4/8 roster).
const THREADS: &[usize] = &[1, 4, 8];

/// Pre-change baseline, measured on the dev container (1 CPU) at commit
/// `adbb9b8` with the PR-2 mutex-based `CommitClock` (`Mutex<BTreeSet>`)
/// and mutex `SnapshotRegistry` (mean of two 300 ms/point runs).
/// Regenerate by checking out that commit and running this binary with
/// `--print-current-as-baseline`.
const BASELINE: Measurement = Measurement {
    label: "mutex commit clock + mutex snapshot registry (pre lock-free rework, commit adbb9b8)",
    clock_ops: [18_245_501.0, 19_957_228.0, 19_431_122.0],
    snapshot_ops: [12_858_771.0, 18_041_557.0, 18_899_665.0],
    commit_tput: [1_230_015.0, 1_147_736.0, 1_053_421.0],
};

/// One full sweep: ops/second per metric, indexed like [`THREADS`].
struct Measurement {
    label: &'static str,
    clock_ops: [f64; 3],
    snapshot_ops: [f64; 3],
    commit_tput: [f64; 3],
}

/// Runs `work` on `threads` workers for `dur` and returns total ops/sec.
/// Each worker counts completed operations in its own padded counter.
fn run_workers(
    threads: usize,
    dur: Duration,
    work: impl Fn(usize, &AtomicBool) -> u64 + Sync,
) -> f64 {
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for w in 0..threads {
            let stop = &stop;
            let total = &total;
            let work = &work;
            s.spawn(move || {
                let ops = work(w, stop);
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
        std::thread::sleep(dur);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = t0.elapsed().as_secs_f64();
    total.load(Ordering::Relaxed) as f64 / elapsed
}

fn bench_clock(db: &Arc<Database>, threads: usize, dur: Duration) -> f64 {
    run_workers(threads, dur, |_, stop| {
        let mut ops = 0u64;
        while !stop.load(Ordering::Relaxed) {
            for _ in 0..64 {
                let ts = db.commit_clock.allocate();
                db.commit_clock.finish(ts);
                ops += 1;
            }
        }
        ops
    })
}

fn bench_snapshots(db: &Arc<Database>, threads: usize, dur: Duration) -> f64 {
    run_workers(threads, dur, |_, stop| {
        let mut ops = 0u64;
        while !stop.load(Ordering::Relaxed) {
            for _ in 0..64 {
                let snap = db.register_snapshot();
                db.release_snapshot(snap);
                ops += 1;
            }
        }
        ops
    })
}

/// Keys per worker in the private-partition commit workload.
const KEYS_PER_WORKER: u64 = 16;

fn load_commit_db(threads: usize) -> (Arc<Database>, TableId) {
    let mut b = Database::builder();
    let t = b.add_table(
        "kv",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
    );
    let db = b.build();
    for k in 0..(threads as u64 * KEYS_PER_WORKER) {
        db.table(t)
            .insert(k, Row::from(vec![Value::U64(k), Value::I64(0)]));
    }
    (db, t)
}

fn bench_commits(threads: usize, dur: Duration) -> f64 {
    let (db, t) = load_commit_db(threads);
    run_workers(threads, dur, |w, stop| {
        let session = Session::new(Arc::clone(&db), Arc::new(LockingProtocol::bamboo()));
        let base = w as u64 * KEYS_PER_WORKER;
        let mut ops = 0u64;
        while !stop.load(Ordering::Relaxed) {
            let key = base + (ops % KEYS_PER_WORKER);
            let mut txn = session.begin();
            let committed = txn
                .update(t, key, |row| {
                    let v = row.get_i64(1);
                    row.set(1, Value::I64(v + 1));
                })
                .and_then(|_| txn.commit())
                .is_ok();
            if committed {
                ops += 1;
            }
        }
        ops
    })
}

fn sweep(dur: Duration, label: &'static str) -> Measurement {
    let mut m = Measurement {
        label,
        clock_ops: [0.0; 3],
        snapshot_ops: [0.0; 3],
        commit_tput: [0.0; 3],
    };
    for (i, &threads) in THREADS.iter().enumerate() {
        let db = Database::builder().build();
        m.clock_ops[i] = bench_clock(&db, threads, dur);
        m.snapshot_ops[i] = bench_snapshots(&db, threads, dur);
        m.commit_tput[i] = bench_commits(threads, dur);
        eprintln!(
            "threads={threads:<2} clock={:>12.0} ops/s  snapshot={:>12.0} ops/s  commits={:>10.0} txn/s",
            m.clock_ops[i], m.snapshot_ops[i], m.commit_tput[i]
        );
    }
    m
}

fn json_section(m: &Measurement) -> String {
    let series = |v: &[f64; 3]| {
        THREADS
            .iter()
            .zip(v.iter())
            .map(|(t, ops)| format!("{{\"threads\": {t}, \"ops_per_sec\": {ops:.0}}}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "{{\n    \"label\": \"{}\",\n    \"clock_ops\": [{}],\n    \"snapshot_ops\": [{}],\n    \"commit_tput\": [{}]\n  }}",
        m.label,
        series(&m.clock_ops),
        series(&m.snapshot_ops),
        series(&m.commit_tput)
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out: Option<String> = None;
    let mut dur = Duration::from_millis(200);
    let mut print_baseline_block = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out = Some(args[i + 1].clone());
                i += 2;
            }
            "--duration-ms" => {
                dur = Duration::from_millis(args[i + 1].parse().expect("duration in ms"));
                i += 2;
            }
            "--print-current-as-baseline" => {
                print_baseline_block = true;
                i += 1;
            }
            other => panic!("unknown flag {other}"),
        }
    }

    let current = sweep(dur, "lock-free commit pipeline");
    if print_baseline_block {
        println!(
            "clock_ops: {:?}\nsnapshot_ops: {:?}\ncommit_tput: {:?}",
            current.clock_ops, current.snapshot_ops, current.commit_tput
        );
        return;
    }

    let doc = format!(
        "{{\n  \"bench\": \"commit_scaling\",\n  \"threads\": {THREADS:?},\n  \"baseline\": {},\n  \"current\": {}\n}}\n",
        json_section(&BASELINE),
        json_section(&current)
    );
    match out {
        Some(path) => {
            std::fs::write(&path, &doc).expect("write JSON output");
            eprintln!("wrote {path}");
        }
        None => print!("{doc}"),
    }
}
