//! # bamboo-bench
//!
//! The figure-reproduction harness: one module per experiment of the
//! paper's §5, each regenerating the corresponding table/figure series
//! (who wins, by what factor, where crossovers fall — see EXPERIMENTS.md
//! for paper-vs-measured records).
//!
//! Run via the `repro` binary:
//!
//! ```text
//! cargo run -p bamboo-bench --release --bin repro -- fig6
//! cargo run -p bamboo-bench --release --bin repro -- all --duration-ms 1000
//! ```

pub mod figures;
pub mod harness;

pub use harness::{RunOpts, Series};
