//! One function per paper figure/table (experiment index in DESIGN.md).
//!
//! Every function loads its workload, sweeps the paper's parameter, and
//! prints the same series the paper plots: throughput and — for the
//! "runtime analysis" panels — amortized per-commit lock-wait / abort /
//! commit-wait times. Absolute numbers depend on the host; EXPERIMENTS.md
//! records the measured *shapes* against the paper's.

use std::sync::Arc;
use std::time::Duration;

use bamboo_core::executor::Workload;
use bamboo_core::model;
use bamboo_core::protocol::{
    Ic3Protocol, InteractiveProtocol, LockingProtocol, Protocol, SiloProtocol,
};
use bamboo_workload::synthetic::{self, SyntheticConfig, SyntheticWorkload};
use bamboo_workload::tpcc::{self, TpccConfig, TpccWorkload};
use bamboo_workload::ycsb::{self, YcsbConfig, YcsbWorkload};

use crate::harness::{all_protocols, all_protocols_interactive, RunOpts, Series};

fn bamboo_vs_ww() -> Vec<Arc<dyn Protocol>> {
    vec![
        Arc::new(LockingProtocol::bamboo()),
        Arc::new(LockingProtocol::wound_wait()),
    ]
}

/// §5.2 headline: single RMW hotspot at the beginning; stored-procedure
/// BAMBOO vs best 2PL (the paper reports 6×) and interactive BAMBOO vs
/// WOUND_WAIT (7×).
pub fn sec52(opts: &RunOpts) {
    let cfg = SyntheticConfig::one_hotspot(0.0);
    let (db, t) = synthetic::load(&cfg);
    let wl: Arc<dyn Workload> = Arc::new(SyntheticWorkload::new(cfg.clone(), t));
    let threads = *opts.threads.last().unwrap_or(&8);

    let mut s = Series::new("sec5.2 single hotspot at beginning (stored procedure)");
    for proto in all_protocols() {
        s.run_point(threads, &db, &proto, &wl, &opts.config(threads));
    }
    s.print();

    let mut si = Series::new("sec5.2 single hotspot at beginning (interactive)");
    for proto in all_protocols_interactive(opts.rpc) {
        si.run_point(threads, &db, &proto, &wl, &opts.config(threads));
    }
    si.print();
}

/// Figure 3a: speedup of BAMBOO over WOUND_WAIT vs thread count, for
/// transaction lengths {4, 16, 64}.
pub fn fig3a(opts: &RunOpts) {
    for ops in [4usize, 16, 64] {
        let cfg = SyntheticConfig::one_hotspot(0.0).with_ops(ops);
        let (db, t) = synthetic::load(&cfg);
        let wl: Arc<dyn Workload> = Arc::new(SyntheticWorkload::new(cfg.clone(), t));
        let mut s = Series::new(&format!("fig3a speedup BB/WW ({ops} ops per txn)"));
        for &threads in &opts.threads {
            for proto in bamboo_vs_ww() {
                s.run_point(threads, &db, &proto, &wl, &opts.config(threads));
            }
        }
        s.print();
        println!("-- speedup (BB over WW) --");
        for &threads in &opts.threads {
            let x = threads.to_string();
            if let (Some(bb), Some(ww)) = (
                s.throughput_of(&x, "BAMBOO"),
                s.throughput_of(&x, "WOUND_WAIT"),
            ) {
                println!("threads={threads:<3} speedup={:.2}x", bb / ww.max(1.0));
            }
        }
    }
}

/// Figure 3b: throughput vs hotspot position (0 → start, 1 → end),
/// 16-operation transactions.
pub fn fig3b(opts: &RunOpts) {
    let threads = 16.min(*opts.threads.last().unwrap_or(&16));
    let mut s = Series::new("fig3b throughput vs hotspot position (16 ops)");
    // One table serves every position: only the workload changes.
    let base = SyntheticConfig::one_hotspot(0.0);
    let (db, t) = synthetic::load(&base);
    for pos in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let cfg = SyntheticConfig::one_hotspot(pos).with_rows(base.rows);
        let wl: Arc<dyn Workload> = Arc::new(SyntheticWorkload::new(cfg, t));
        for proto in bamboo_vs_ww() {
            s.run_point(pos, &db, &proto, &wl, &opts.config(threads));
        }
    }
    s.print();
}

fn two_hotspot_protocols() -> Vec<Arc<dyn Protocol>> {
    vec![
        Arc::new(LockingProtocol::bamboo_base()),
        Arc::new(LockingProtocol::bamboo()),
        Arc::new(LockingProtocol::wound_wait()),
    ]
}

/// Figure 4: two hotspots, the first fixed at the beginning, the second
/// swept; BAMBOO-base vs BAMBOO vs WOUND_WAIT, throughput + breakdown.
pub fn fig4(opts: &RunOpts) {
    let threads = 32.min(*opts.threads.last().unwrap_or(&32));
    let mut s = Series::new("fig4 two hotspots, 1st at beginning, 2nd swept (32 threads)");
    let base = SyntheticConfig::two_hotspots(0.0, 0.5);
    let (db, t) = synthetic::load(&base);
    for dist in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let cfg = SyntheticConfig::two_hotspots(0.0, dist).with_rows(base.rows);
        let wl: Arc<dyn Workload> = Arc::new(SyntheticWorkload::new(cfg, t));
        for proto in two_hotspot_protocols() {
            s.run_point(dist, &db, &proto, &wl, &opts.config(threads));
        }
    }
    s.print();
}

/// Figure 5: second hotspot fixed at the end, first swept.
pub fn fig5(opts: &RunOpts) {
    let threads = 32.min(*opts.threads.last().unwrap_or(&32));
    let mut s = Series::new("fig5 two hotspots, 2nd at end, 1st swept (32 threads)");
    let base = SyntheticConfig::two_hotspots(0.0, 1.0);
    let (db, t) = synthetic::load(&base);
    for dist in [0.0, 0.25, 0.5, 0.75, 1.0] {
        // x = distance of the 1st hotspot from the fixed (end) hotspot:
        // position of the 1st = 1 - dist.
        let cfg = SyntheticConfig::two_hotspots(1.0 - dist, 1.0).with_rows(base.rows);
        let wl: Arc<dyn Workload> = Arc::new(SyntheticWorkload::new(cfg, t));
        for proto in two_hotspot_protocols() {
            s.run_point(dist, &db, &proto, &wl, &opts.config(threads));
        }
    }
    s.print();
}

/// Figure 6: YCSB (θ = 0.9, read ratio 0.5) with the thread count swept,
/// all five protocols.
pub fn fig6(opts: &RunOpts) {
    let cfg = YcsbConfig::default().with_theta(0.9).with_read_ratio(0.5);
    let (db, t) = ycsb::load(&cfg);
    let wl: Arc<dyn Workload> = Arc::new(YcsbWorkload::new(cfg.clone(), t));
    let mut s = Series::new("fig6 YCSB theta=0.9 rr=0.5, threads swept");
    for &threads in &opts.threads {
        for proto in all_protocols() {
            s.run_point(threads, &db, &proto, &wl, &opts.config(threads));
        }
    }
    s.print();
}

/// Figure 7: YCSB with 5% long read-only transactions (1000 accesses),
/// plus the beyond-the-paper `snapshot` series: the same mix with the long
/// readers running as lock-free MVCC snapshots. The snapshot series prints
/// the per-point proof that the read-only transactions commit without a
/// single lock-manager acquisition, and the writer throughput to compare
/// against the locking series of the same run.
pub fn fig7(opts: &RunOpts) {
    let cfg = YcsbConfig::default()
        .with_theta(0.9)
        .with_read_ratio(0.5)
        .with_long_readonly(0.05, 1000);
    let (db, t) = ycsb::load(&cfg);
    let wl: Arc<dyn Workload> = Arc::new(YcsbWorkload::new(cfg.clone(), t));
    let mut s = Series::new("fig7 YCSB + 5% long read-only (1000 tuples, locking reads)");
    for &threads in &opts.threads {
        for proto in all_protocols() {
            s.run_point(threads, &db, &proto, &wl, &opts.config(threads));
        }
    }
    s.print();

    let snap_cfg = cfg.with_snapshot_readonly(true);
    let wl_snap: Arc<dyn Workload> = Arc::new(YcsbWorkload::new(snap_cfg, t));
    let mut ss = Series::new("fig7 snapshot series (long RO via lock-free MVCC snapshots)");
    for &threads in &opts.threads {
        for proto in all_protocols() {
            ss.run_point(threads, &db, &proto, &wl_snap, &opts.config(threads));
        }
    }
    ss.print();
    // Snapshot fast path: beyond the lock-*manager* counter below, the
    // snapshot begin/commit pair must reach steady state with zero mutex
    // acquisitions of any kind (commit-clock stable load + one registry
    // shard refcount CAS only), measured against the vendored shim's
    // per-thread lock counter.
    println!("-- snapshot fast path: Session::snapshot begin/commit mutexes (must be 0) --");
    for proto in all_protocols() {
        let delta = crate::harness::assert_snapshot_fast_path_lock_free(&db, &proto);
        println!("{:<14} snapshot begin/commit locks={delta}", proto.name());
    }
    println!("-- snapshot series: long-RO bucket (locks must be 0) --");
    for p in &ss.points {
        let r = &p.result;
        assert_eq!(
            r.totals.snapshot_lock_acquisitions, 0,
            "snapshot mode acquired locks"
        );
        println!(
            "threads={:<3} {:<14} snap_commits={:<6} snap_locks={} snap_aborts={} writer_tput={:.0}",
            p.x,
            r.protocol,
            r.totals.snapshot_commits,
            r.totals.snapshot_lock_acquisitions,
            r.totals.snapshot_aborts,
            r.throughput(),
        );
    }
    // Comparable buckets: total_throughput counts locking + snapshot
    // commits on both sides (in the locking series the long ROs are
    // ordinary commits; in the snapshot series they sit in their own
    // bucket — comparing raw `commits` would mix denominators).
    println!("-- total throughput: snapshot vs locking series --");
    for &threads in &opts.threads {
        let x = threads.to_string();
        for proto in all_protocols() {
            let name = proto.name().to_owned();
            let find = |series: &Series| {
                series
                    .points
                    .iter()
                    .find(|p| p.x == x && p.result.protocol == name)
                    .map(|p| p.result.total_throughput())
            };
            if let (Some(lock), Some(snap)) = (find(&s), find(&ss)) {
                println!(
                    "threads={threads:<3} {name:<14} locking={lock:>10.0} snapshot={snap:>10.0} speedup={:.2}x",
                    snap / lock.max(1.0)
                );
            }
        }
    }
}

/// Figure 8: YCSB with zipfian θ swept at a fixed thread count, stored-
/// procedure and interactive modes.
pub fn fig8(opts: &RunOpts) {
    let threads = 16.min(*opts.threads.last().unwrap_or(&16));
    let mut s = Series::new("fig8a YCSB theta swept (16 threads, stored procedure)");
    let mut si = Series::new("fig8b YCSB theta swept (16 threads, interactive)");
    let base = YcsbConfig::default();
    let (db, t) = ycsb::load(&base);
    for theta in [0.5, 0.7, 0.8, 0.9, 0.99] {
        let cfg = YcsbConfig::default().with_theta(theta).with_read_ratio(0.5);
        let wl: Arc<dyn Workload> = Arc::new(YcsbWorkload::new(cfg.clone(), t));
        for proto in all_protocols() {
            s.run_point(theta, &db, &proto, &wl, &opts.config(threads));
        }
        for proto in all_protocols_interactive(opts.rpc) {
            si.run_point(theta, &db, &proto, &wl, &opts.config(threads));
        }
    }
    s.print();
    si.print();
}

/// §5.4 "Varying Read Ratio": Bamboo's improvement across read ratios.
pub fn read_ratio(opts: &RunOpts) {
    let threads = 16.min(*opts.threads.last().unwrap_or(&16));
    let mut s = Series::new("sec5.4 YCSB read ratio swept (theta=0.9, 16 threads)");
    let base = YcsbConfig::default();
    let (db, t) = ycsb::load(&base);
    for rr in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let cfg = YcsbConfig::default().with_theta(0.9).with_read_ratio(rr);
        let wl: Arc<dyn Workload> = Arc::new(YcsbWorkload::new(cfg.clone(), t));
        for proto in all_protocols() {
            s.run_point(rr, &db, &proto, &wl, &opts.config(threads));
        }
    }
    s.print();
}

/// Figure 9: TPC-C with one warehouse, thread count swept, stored-procedure
/// (a) and interactive (b) modes.
pub fn fig9(opts: &RunOpts) {
    let cfg = TpccConfig::default().with_warehouses(1);
    let (db, tables, idx) = tpcc::load(&cfg);
    let wl: Arc<dyn Workload> =
        Arc::new(TpccWorkload::new(cfg.clone(), Arc::clone(&db), tables, idx));
    let mut s = Series::new("fig9a TPC-C 1 warehouse, threads swept (stored procedure)");
    for &threads in &opts.threads {
        for proto in all_protocols() {
            s.run_point(threads, &db, &proto, &wl, &opts.config(threads));
        }
    }
    s.print();
    let mut si = Series::new("fig9b TPC-C 1 warehouse, threads swept (interactive)");
    for &threads in &opts.threads {
        for proto in all_protocols_interactive(opts.rpc) {
            si.run_point(threads, &db, &proto, &wl, &opts.config(threads));
        }
    }
    si.print();
}

/// Figure 10: TPC-C with the warehouse count swept at a fixed thread count.
pub fn fig10(opts: &RunOpts) {
    let threads = 32.min(*opts.threads.last().unwrap_or(&32));
    let mut s = Series::new("fig10a TPC-C warehouses swept (32 threads, stored procedure)");
    let mut si = Series::new("fig10b TPC-C warehouses swept (32 threads, interactive)");
    for wh in [16u64, 8, 4, 2, 1] {
        let cfg = TpccConfig::default().with_warehouses(wh);
        let (db, tables, idx) = tpcc::load(&cfg);
        let wl: Arc<dyn Workload> =
            Arc::new(TpccWorkload::new(cfg.clone(), Arc::clone(&db), tables, idx));
        for proto in all_protocols() {
            s.run_point(wh, &db, &proto, &wl, &opts.config(threads));
        }
        for proto in all_protocols_interactive(opts.rpc) {
            si.run_point(wh, &db, &proto, &wl, &opts.config(threads));
        }
    }
    s.print();
    si.print();
}

/// Figure 11: Bamboo vs IC3 on TPC-C (1 warehouse), original (a/b) and
/// modified-NewOrder (c/d) workloads.
pub fn fig11(opts: &RunOpts) {
    for modified in [false, true] {
        let label = if modified {
            "fig11c/d TPC-C with modified new-order (reads W_YTD)"
        } else {
            "fig11a/b TPC-C with original new-order"
        };
        let cfg = TpccConfig::default()
            .with_warehouses(1)
            .with_neworder_reads_wytd(modified);
        let (db, tables, idx) = tpcc::load(&cfg);
        let wl_t = Arc::new(TpccWorkload::new(cfg.clone(), Arc::clone(&db), tables, idx));
        let templates = wl_t.ic3_templates();
        let wl: Arc<dyn Workload> = wl_t;
        let protos: Vec<Arc<dyn Protocol>> = vec![
            Arc::new(LockingProtocol::bamboo()),
            Arc::new(Ic3Protocol::new(templates, true)),
            Arc::new(LockingProtocol::wound_wait()),
            Arc::new(SiloProtocol::new()),
        ];
        let mut s = Series::new(label);
        for &threads in &opts.threads {
            for proto in &protos {
                s.run_point(threads, &db, proto, &wl, &opts.config(threads));
            }
        }
        s.print();
    }
}

/// Ablation of the §3.5 optimizations: full Bamboo vs each optimization
/// disabled, on the single-hotspot microbenchmark and contended YCSB.
pub fn ablation(opts: &RunOpts) {
    use bamboo_core::lock::LockPolicy;
    let configs: Vec<Arc<dyn Protocol>> = vec![
        Arc::new(LockingProtocol::bamboo()),
        Arc::new(LockingProtocol::bamboo_base().named("BB-no-opt2")),
        Arc::new({
            let mut p = LockingProtocol::bamboo();
            p.policy = LockPolicy {
                retire_reads: false,
                no_raw_abort: false,
                ..p.policy
            };
            p.named("BB-no-opt1+3")
        }),
        Arc::new({
            let mut p = LockingProtocol::bamboo();
            p.policy = LockPolicy {
                no_raw_abort: false,
                ..p.policy
            };
            p.named("BB-no-opt3")
        }),
        Arc::new({
            let mut p = LockingProtocol::bamboo();
            p.policy = LockPolicy {
                dynamic_ts: false,
                ..p.policy
            };
            p.named("BB-no-opt4")
        }),
        Arc::new(LockingProtocol::wound_wait()),
    ];
    let threads = 8.min(*opts.threads.last().unwrap_or(&8));

    let cfg = SyntheticConfig::one_hotspot(0.0);
    let (db, t) = synthetic::load(&cfg);
    let wl: Arc<dyn Workload> = Arc::new(SyntheticWorkload::new(cfg, t));
    let mut s = Series::new("ablation: single hotspot at beginning");
    for proto in &configs {
        s.run_point(threads, &db, proto, &wl, &opts.config(threads));
    }
    s.print();

    let ycfg = YcsbConfig::default().with_theta(0.9).with_read_ratio(0.5);
    let (db, t) = ycsb::load(&ycfg);
    let wl: Arc<dyn Workload> = Arc::new(YcsbWorkload::new(ycfg, t));
    let mut s = Series::new("ablation: YCSB theta=0.9");
    for proto in &configs {
        s.run_point(threads, &db, proto, &wl, &opts.config(threads));
    }
    s.print();
}

/// §4.2 analytic model: the gain condition and throughput estimates.
pub fn model_table() {
    println!("\n== sec4.2 analytic model ==");
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "N", "K", "D", "P_conflict", "P_deadlock", "est_WW", "est_BB", "BB wins"
    );
    for (n, k, d) in [
        (8.0, 4.0, 1e6),
        (32.0, 16.0, 1e6),
        (32.0, 16.0, 1e8),
        (120.0, 16.0, 1e8),
        (120.0, 64.0, 1e8),
        (1000.0, 64.0, 1e3),
    ] {
        println!(
            "{:>8} {:>6} {:>12.0} {:>12.3e} {:>12.3e} {:>10.3} {:>10.3} {:>8}",
            n,
            k,
            d,
            model::p_conflict(n, k, d),
            model::p_deadlock(n, k, d),
            model::ww_throughput(n, k, d, 1.0),
            model::bb_throughput(n, k, d, 1.0),
            model::bamboo_wins(n, k, d),
        );
    }
    println!("\ngain condition N^2*K^4/(2D^2) < (K-1)/(K+1); A_ww=1/2, A_bb=1/(K+1)");
}

/// Interactive-mode single protocol comparison used by `sec52`; exposed for
/// ad-hoc runs.
pub fn interactive_pair(opts: &RunOpts, rpc: Duration) -> (Arc<dyn Protocol>, Arc<dyn Protocol>) {
    let _ = opts;
    (
        Arc::new(InteractiveProtocol::new(LockingProtocol::bamboo(), rpc)),
        Arc::new(InteractiveProtocol::new(LockingProtocol::wound_wait(), rpc)),
    )
}
