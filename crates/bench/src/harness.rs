//! Shared experiment plumbing: protocol roster, run options, and series
//! printing.

use std::sync::Arc;
use std::time::Duration;

use bamboo_core::executor::{run_bench, BenchConfig, Workload};
use bamboo_core::protocol::{InteractiveProtocol, LockingProtocol, Protocol, SiloProtocol};
use bamboo_core::stats::BenchResult;
use bamboo_core::{Database, Session};

/// Options shared by every experiment run.
#[derive(Clone, Debug)]
pub struct RunOpts {
    /// Measured duration per data point.
    pub duration: Duration,
    /// Warm-up per data point.
    pub warmup: Duration,
    /// Thread counts to sweep where the experiment calls for it.
    pub threads: Vec<usize>,
    /// RNG seed.
    pub seed: u64,
    /// Simulated RPC round-trip for interactive-mode panels.
    pub rpc: Duration,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            duration: Duration::from_millis(300),
            warmup: Duration::from_millis(60),
            threads: vec![1, 2, 4, 8, 16, 32],
            seed: 7,
            rpc: Duration::from_micros(100),
        }
    }
}

impl RunOpts {
    /// Longer, lower-variance settings (`repro --full`).
    pub fn full() -> Self {
        RunOpts {
            duration: Duration::from_millis(2000),
            warmup: Duration::from_millis(300),
            ..Default::default()
        }
    }

    /// Builds the per-point bench config.
    pub fn config(&self, threads: usize) -> BenchConfig {
        BenchConfig::quick(threads)
            .with_duration(self.duration)
            .with_warmup(self.warmup)
            .with_seed(self.seed)
    }
}

/// The paper's five stored-procedure protocols (§5.1 roster).
pub fn all_protocols() -> Vec<Arc<dyn Protocol>> {
    vec![
        Arc::new(LockingProtocol::bamboo()),
        Arc::new(LockingProtocol::wound_wait()),
        Arc::new(LockingProtocol::wait_die()),
        Arc::new(LockingProtocol::no_wait()),
        Arc::new(SiloProtocol::new()),
    ]
}

/// Interactive-mode variants of the same roster.
pub fn all_protocols_interactive(rpc: Duration) -> Vec<Arc<dyn Protocol>> {
    vec![
        Arc::new(InteractiveProtocol::new(LockingProtocol::bamboo(), rpc)),
        Arc::new(InteractiveProtocol::new(LockingProtocol::wound_wait(), rpc)),
        Arc::new(InteractiveProtocol::new(LockingProtocol::wait_die(), rpc)),
        Arc::new(InteractiveProtocol::new(LockingProtocol::no_wait(), rpc)),
        Arc::new(InteractiveProtocol::new(SiloProtocol::new(), rpc)),
    ]
}

/// Asserts the snapshot fast path is lock-free end to end: in steady
/// state, `Session::snapshot()` begin + commit must perform **zero**
/// mutex/rwlock acquisitions (commit-clock stable load + one registry
/// shard refcount CAS only), measured against the vendored shim's
/// per-thread lock counter. Returns the measured delta (always 0 on
/// success) so callers can print it. Shared by the fig7 figure driver and
/// the fig7 criterion bench.
pub fn assert_snapshot_fast_path_lock_free(db: &Arc<Database>, proto: &Arc<dyn Protocol>) -> u64 {
    let session = Session::new(Arc::clone(db), Arc::clone(proto));
    // Steady state: warm the session and this thread's registry shard.
    for _ in 0..8 {
        session.snapshot().commit().expect("snapshot commit");
    }
    let before = bamboo_core::sync::thread_lock_acquisitions();
    for _ in 0..100 {
        session.snapshot().commit().expect("snapshot commit");
    }
    let delta = bamboo_core::sync::thread_lock_acquisitions() - before;
    assert_eq!(
        delta,
        0,
        "{}: snapshot begin/commit acquired a mutex",
        proto.name()
    );
    delta
}

/// Criterion helper: executes `iters` transactions serially (one worker)
/// and returns the elapsed wall time — the per-transaction protocol cost
/// without contention.
pub fn time_serial_txns(
    db: &Arc<Database>,
    proto: &Arc<dyn Protocol>,
    wl: &Arc<dyn Workload>,
    iters: u64,
) -> Duration {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let session = Session::new(Arc::clone(db), Arc::clone(proto));
    let start = std::time::Instant::now();
    for _ in 0..iters {
        let spec = wl.generate(0, &mut rng);
        let _ = session.run(spec.as_ref());
    }
    start.elapsed()
}

/// Runs one short contended measurement (`threads` workers, 120 ms) and
/// returns the full result — the criterion helpers and the bench-side
/// snapshot assertions share it.
pub fn run_contended(
    db: &Arc<Database>,
    proto: &Arc<dyn Protocol>,
    wl: &Arc<dyn Workload>,
    threads: usize,
) -> BenchResult {
    let cfg = BenchConfig::quick(threads)
        .with_duration(Duration::from_millis(120))
        .with_warmup(Duration::from_millis(30))
        .with_seed(11);
    run_bench(db, proto, wl, &cfg)
}

/// Criterion helper: runs a short contended benchmark (`threads` workers,
/// 120 ms) and scales the measured per-commit time to `iters` transactions,
/// so Criterion reports time-per-transaction *under contention*.
pub fn time_contended_txns(
    db: &Arc<Database>,
    proto: &Arc<dyn Protocol>,
    wl: &Arc<dyn Workload>,
    threads: usize,
    iters: u64,
) -> Duration {
    let res = run_contended(db, proto, wl, threads);
    let per_txn = res.elapsed.as_secs_f64() / res.totals.commits.max(1) as f64;
    Duration::from_secs_f64(per_txn * iters as f64)
}

/// One measured point of a series.
#[derive(Clone, Debug)]
pub struct Point {
    /// X-axis label (threads, θ, position, ...).
    pub x: String,
    /// Result.
    pub result: BenchResult,
}

/// A printable series of benchmark points.
#[derive(Clone, Debug, Default)]
pub struct Series {
    /// Experiment title.
    pub title: String,
    /// Measured points.
    pub points: Vec<Point>,
}

impl Series {
    /// New empty series.
    pub fn new(title: &str) -> Self {
        Series {
            title: title.into(),
            points: Vec::new(),
        }
    }

    /// Runs one point and records it.
    pub fn run_point(
        &mut self,
        x: impl ToString,
        db: &Arc<Database>,
        proto: &Arc<dyn Protocol>,
        wl: &Arc<dyn Workload>,
        cfg: &BenchConfig,
    ) -> &BenchResult {
        let result = run_bench(db, proto, wl, cfg);
        self.points.push(Point {
            x: x.to_string(),
            result,
        });
        &self.points.last().unwrap().result
    }

    /// Prints the paper-style table: throughput plus the runtime-analysis
    /// breakdown (lock wait / abort / commit wait, amortized ms per commit).
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        println!(
            "{:<10} {:<14} {:>12} {:>9} {:>12} {:>10} {:>13} {:>7}",
            "x",
            "protocol",
            "tput(txn/s)",
            "abort%",
            "lock_wait_ms",
            "abort_ms",
            "commitwait_ms",
            "chain"
        );
        for p in &self.points {
            let r = &p.result;
            println!(
                "{:<10} {:<14} {:>12.0} {:>8.1}% {:>12.4} {:>10.4} {:>13.4} {:>7}",
                p.x,
                r.protocol,
                r.throughput(),
                r.abort_rate() * 100.0,
                r.lock_wait_ms_per_commit(),
                r.abort_ms_per_commit(),
                r.commit_wait_ms_per_commit(),
                r.totals.max_chain,
            );
        }
    }

    /// Throughput of the point matching `(x, protocol)`, if measured.
    pub fn throughput_of(&self, x: &str, protocol: &str) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.x == x && p.result.protocol == protocol)
            .map(|p| p.result.throughput())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rosters_have_five_protocols() {
        assert_eq!(all_protocols().len(), 5);
        assert_eq!(
            all_protocols_interactive(Duration::from_micros(10)).len(),
            5
        );
        let names: Vec<_> = all_protocols()
            .iter()
            .map(|p| p.name().to_owned())
            .collect();
        assert!(names.contains(&"BAMBOO".to_owned()));
        assert!(names.contains(&"SILO".to_owned()));
    }

    #[test]
    fn series_lookup_by_x_and_protocol() {
        let mut s = Series::new("t");
        s.points.push(Point {
            x: "8".into(),
            result: BenchResult {
                protocol: "BAMBOO".into(),
                threads: 8,
                elapsed: Duration::from_secs(1),
                totals: Default::default(),
            },
        });
        assert_eq!(s.throughput_of("8", "BAMBOO"), Some(0.0));
        assert_eq!(s.throughput_of("8", "SILO"), None);
    }
}
