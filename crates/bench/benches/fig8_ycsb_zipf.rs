//! Figure 8 bench: YCSB across zipfian skew levels — BAMBOO vs WOUND_WAIT
//! at low and high contention (crossover shape).

use std::sync::Arc;
use std::time::Duration;

use bamboo_bench::harness::time_contended_txns;
use bamboo_core::executor::Workload;
use bamboo_core::protocol::{LockingProtocol, Protocol};
use bamboo_workload::ycsb::{self, YcsbConfig, YcsbWorkload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_ycsb_zipf");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for theta in [0.5, 0.9, 0.99] {
        let cfg = YcsbConfig {
            rows: 1 << 14,
            ..YcsbConfig::default()
        }
        .with_theta(theta);
        let (db, t) = ycsb::load(&cfg);
        let wl: Arc<dyn Workload> = Arc::new(YcsbWorkload::new(cfg, t));
        let protos: Vec<Arc<dyn Protocol>> = vec![
            Arc::new(LockingProtocol::bamboo()),
            Arc::new(LockingProtocol::wound_wait()),
        ];
        for p in &protos {
            g.bench_function(BenchmarkId::new(format!("theta={theta}"), p.name()), |b| {
                b.iter_custom(|iters| time_contended_txns(&db, p, &wl, 4, iters))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
