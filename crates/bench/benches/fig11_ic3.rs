//! Figure 11 bench: Bamboo vs IC3 on TPC-C (1 warehouse), original and
//! modified (NewOrder reads W_YTD) workloads.

use std::sync::Arc;
use std::time::Duration;

use bamboo_bench::harness::time_contended_txns;
use bamboo_core::executor::Workload;
use bamboo_core::protocol::{Ic3Protocol, LockingProtocol, Protocol};
use bamboo_workload::tpcc::{self, TpccConfig, TpccWorkload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_ic3");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for modified in [false, true] {
        let cfg = TpccConfig {
            items: 1000,
            customers_per_district: 100,
            ..TpccConfig::default()
        }
        .with_neworder_reads_wytd(modified);
        let (db, tables, idx) = tpcc::load(&cfg);
        let wl_t = Arc::new(TpccWorkload::new(cfg, Arc::clone(&db), tables, idx));
        let templates = wl_t.ic3_templates();
        let wl: Arc<dyn Workload> = wl_t;
        let protos: Vec<Arc<dyn Protocol>> = vec![
            Arc::new(LockingProtocol::bamboo()),
            Arc::new(Ic3Protocol::new(templates, true)),
        ];
        let tag = if modified { "modified" } else { "original" };
        for p in &protos {
            g.bench_function(BenchmarkId::new(tag, p.name()), |b| {
                b.iter_custom(|iters| time_contended_txns(&db, p, &wl, 4, iters))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
