//! Figure 9 bench: TPC-C with one warehouse (the high-contention case),
//! all five protocols under 4-thread contention.

use std::sync::Arc;
use std::time::Duration;

use bamboo_bench::harness::{all_protocols, time_contended_txns};
use bamboo_core::executor::Workload;
use bamboo_workload::tpcc::{self, TpccConfig, TpccWorkload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = TpccConfig {
        items: 1000,
        customers_per_district: 100,
        ..TpccConfig::default()
    };
    let (db, tables, idx) = tpcc::load(&cfg);
    let wl: Arc<dyn Workload> = Arc::new(TpccWorkload::new(cfg, Arc::clone(&db), tables, idx));
    let mut g = c.benchmark_group("fig9_tpcc_threads");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for p in all_protocols() {
        g.bench_function(BenchmarkId::new("contended4", p.name()), |b| {
            b.iter_custom(|iters| time_contended_txns(&db, &p, &wl, 4, iters))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
