//! Micro-benchmarks of the lock-table primitives: the grant/release cycle,
//! the retire path (publishing a dirty version) and the dirty-read grant —
//! the per-operation costs behind Optimization 1/2's overhead discussion.

use std::sync::Arc;
use std::time::Duration;

use bamboo_core::lock::{CommitInstall, LockPolicy};
use bamboo_core::ts::TsSource;
use bamboo_core::txn::{LockMode, TxnShared};
use bamboo_core::TupleCc;
use bamboo_storage::{DataType, Row, Schema, Table, Value};
use criterion::{criterion_group, criterion_main, Criterion};

fn mk_tuple() -> (Table<TupleCc>, Arc<bamboo_storage::Tuple<TupleCc>>) {
    let table = Table::new(
        "t",
        Schema::build()
            .column("k", DataType::U64)
            .column("v", DataType::I64),
    );
    let tup = table.insert(0, Row::from(vec![Value::U64(0), Value::I64(0)]));
    (table, tup)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock_primitives");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));

    let ts = TsSource::new();
    let (_table, tup) = mk_tuple();

    g.bench_function("acquire_release_ex", |b| {
        let pol = LockPolicy::wound_wait();
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            let txn = TxnShared::new(id, ts.assign());
            let mut st = tup.meta.lock.lock();
            let _ = st.acquire(&tup, &pol, &txn, LockMode::Ex, &ts);
            st.release(&txn, &pol, true, None);
        })
    });

    g.bench_function("acquire_retire_release_ex", |b| {
        let pol = LockPolicy::bamboo();
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            let txn = TxnShared::new(id, ts.assign());
            let row = {
                let mut st = tup.meta.lock.lock();
                match st.acquire(&tup, &pol, &txn, LockMode::Ex, &ts) {
                    bamboo_core::lock::Acquired::Granted { row, .. } => row,
                    _ => unreachable!(),
                }
            };
            {
                let mut st = tup.meta.lock.lock();
                st.retire(&txn, row.clone(), &pol);
            }
            let mut st = tup.meta.lock.lock();
            st.release(&txn, &pol, true, Some(CommitInstall::untimed(&tup, &row)));
        })
    });

    g.bench_function("dirty_read_grant", |b| {
        // A retired writer sits on the tuple; measure the reader slot-in.
        let pol = LockPolicy::bamboo();
        let writer = TxnShared::new(u64::MAX - 1, ts.assign());
        let row = {
            let mut st = tup.meta.lock.lock();
            let r = match st.acquire(&tup, &pol, &writer, LockMode::Ex, &ts) {
                bamboo_core::lock::Acquired::Granted { row, .. } => row,
                _ => unreachable!(),
            };
            st.retire(&writer, r.clone(), &pol);
            r
        };
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            let txn = TxnShared::new(id, ts.assign());
            let mut st = tup.meta.lock.lock();
            let _ = st.acquire(&tup, &pol, &txn, LockMode::Sh, &ts);
            st.release(&txn, &pol, true, None);
        });
        let mut st = tup.meta.lock.lock();
        st.release(
            &writer,
            &pol,
            true,
            Some(CommitInstall::untimed(&tup, &row)),
        );
    });

    g.finish();

    let mut g2 = c.benchmark_group("workload_primitives");
    g2.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));

    g2.bench_function("zipfian_sample_theta09", |b| {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let z = bamboo_workload::Zipfian::new(1 << 20, 0.9);
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| criterion::black_box(z.sample(&mut rng)))
    });

    g2.bench_function("wal_append_commit_record", |b| {
        use bamboo_core::wal::WalBuffer;
        use bamboo_storage::TableId;
        let mut wal = WalBuffer::new();
        let row = Row::from(vec![Value::U64(1), Value::I64(2)]);
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            wal.append_commit(id, [(TableId(0), 1u64, &row)].into_iter());
        })
    });

    g2.bench_function("row_local_copy", |b| {
        // The cost of the per-read local copy Optimization 1 relies on.
        let row = Row::from(vec![
            Value::U64(1),
            Value::I64(2),
            Value::from("ten-byte-s"),
            Value::F64(3.5),
        ]);
        b.iter(|| criterion::black_box(row.clone()))
    });

    g2.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
