//! Figure 7 bench: YCSB with 5% long read-only transactions (1000 tuples).

use std::sync::Arc;
use std::time::Duration;

use bamboo_bench::harness::time_contended_txns;
use bamboo_core::executor::Workload;
use bamboo_core::protocol::{LockingProtocol, Protocol, SiloProtocol};
use bamboo_workload::ycsb::{self, YcsbConfig, YcsbWorkload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = YcsbConfig {
        rows: 1 << 14,
        ..YcsbConfig::default()
    }
    .with_long_readonly(0.05, 1000);
    let (db, t) = ycsb::load(&cfg);
    let wl: Arc<dyn Workload> = Arc::new(YcsbWorkload::new(cfg, t));
    let protos: Vec<Arc<dyn Protocol>> = vec![
        Arc::new(LockingProtocol::bamboo()),
        Arc::new(LockingProtocol::wound_wait()),
        Arc::new(LockingProtocol::no_wait()),
        Arc::new(SiloProtocol::new()),
    ];
    let mut g = c.benchmark_group("fig7_ycsb_longro");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for p in &protos {
        g.bench_function(BenchmarkId::new("contended4", p.name()), |b| {
            b.iter_custom(|iters| time_contended_txns(&db, p, &wl, 4, iters))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
