//! Figure 7 bench: YCSB with 5% long read-only transactions (1000 tuples).
//!
//! Two series per protocol:
//!
//! * `contended4` — the paper's configuration: the long readers take SH
//!   locks like everyone else and writers queue behind them.
//! * `contended4_snapshot` — the long readers run as lock-free MVCC
//!   snapshots; each measurement asserts the read-only transactions
//!   acquired **zero** locks and never aborted, and the reported
//!   per-transaction time tracks the writer throughput freed up by moving
//!   the scan off the lock table.

use std::sync::Arc;
use std::time::Duration;

use bamboo_bench::harness::{
    assert_snapshot_fast_path_lock_free, run_contended, time_contended_txns,
};
use bamboo_core::executor::Workload;
use bamboo_core::protocol::{LockingProtocol, Protocol, SiloProtocol};
use bamboo_workload::ycsb::{self, YcsbConfig, YcsbWorkload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn protos() -> Vec<Arc<dyn Protocol>> {
    vec![
        Arc::new(LockingProtocol::bamboo()),
        Arc::new(LockingProtocol::wound_wait()),
        Arc::new(LockingProtocol::no_wait()),
        Arc::new(SiloProtocol::new()),
    ]
}

fn bench(c: &mut Criterion) {
    let cfg = YcsbConfig {
        rows: 1 << 14,
        ..YcsbConfig::default()
    }
    .with_long_readonly(0.05, 1000);
    let (db, t) = ycsb::load(&cfg);
    let wl: Arc<dyn Workload> = Arc::new(YcsbWorkload::new(cfg.clone(), t));
    let wl_snap: Arc<dyn Workload> =
        Arc::new(YcsbWorkload::new(cfg.with_snapshot_readonly(true), t));
    // Snapshot fast path: `Session::snapshot()` begin/commit must reach
    // steady state with zero mutex acquisitions of any kind — the
    // end-to-end form of the per-bucket lock-manager assertion below.
    for p in &protos() {
        assert_snapshot_fast_path_lock_free(&db, p);
    }
    let mut g = c.benchmark_group("fig7_ycsb_longro");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for p in &protos() {
        g.bench_function(BenchmarkId::new("contended4", p.name()), |b| {
            b.iter_custom(|iters| time_contended_txns(&db, p, &wl, 4, iters))
        });
    }
    for p in &protos() {
        g.bench_function(BenchmarkId::new("contended4_snapshot", p.name()), |b| {
            b.iter_custom(|iters| {
                let res = run_contended(&db, p, &wl_snap, 4);
                assert_eq!(
                    res.totals.snapshot_lock_acquisitions, 0,
                    "{}: snapshot mode must not touch the lock manager",
                    res.protocol
                );
                assert_eq!(
                    res.totals.snapshot_aborts, 0,
                    "{}: snapshot readers can neither block nor abort",
                    res.protocol
                );
                // Count both buckets so the series is comparable with
                // `contended4`, where the long ROs are ordinary commits.
                let txns = res.totals.commits + res.totals.snapshot_commits;
                let per_txn = res.elapsed.as_secs_f64() / txns.max(1) as f64;
                Duration::from_secs_f64(per_txn * iters as f64)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
