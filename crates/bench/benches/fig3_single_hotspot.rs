//! Figure 3 bench: single RMW hotspot at the beginning of a 16-op
//! transaction — serial protocol cost and 4-thread contended per-txn time
//! for BAMBOO vs WOUND_WAIT.

use std::sync::Arc;
use std::time::Duration;

use bamboo_bench::harness::{time_contended_txns, time_serial_txns};
use bamboo_core::executor::Workload;
use bamboo_core::protocol::{LockingProtocol, Protocol};
use bamboo_workload::synthetic::{self, SyntheticConfig, SyntheticWorkload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = SyntheticConfig::one_hotspot(0.0).with_rows(1 << 14);
    let (db, t) = synthetic::load(&cfg);
    let wl: Arc<dyn Workload> = Arc::new(SyntheticWorkload::new(cfg, t));
    let protos: Vec<Arc<dyn Protocol>> = vec![
        Arc::new(LockingProtocol::bamboo()),
        Arc::new(LockingProtocol::wound_wait()),
    ];
    let mut g = c.benchmark_group("fig3_single_hotspot");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for p in &protos {
        g.bench_function(BenchmarkId::new("serial", p.name()), |b| {
            b.iter_custom(|iters| time_serial_txns(&db, p, &wl, iters))
        });
        g.bench_function(BenchmarkId::new("contended4", p.name()), |b| {
            b.iter_custom(|iters| time_contended_txns(&db, p, &wl, 4, iters))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
