//! Figures 4–5 bench: two RMW hotspots (first at the beginning, second
//! mid-transaction) — the cascading-abort regime; BAMBOO-base vs BAMBOO
//! (δ=0.15) vs WOUND_WAIT under 4-thread contention.

use std::sync::Arc;
use std::time::Duration;

use bamboo_bench::harness::time_contended_txns;
use bamboo_core::executor::Workload;
use bamboo_core::protocol::{LockingProtocol, Protocol};
use bamboo_workload::synthetic::{self, SyntheticConfig, SyntheticWorkload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig45_two_hotspots");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for second in [0.5, 1.0] {
        let cfg = SyntheticConfig::two_hotspots(0.0, second).with_rows(1 << 14);
        let (db, t) = synthetic::load(&cfg);
        let wl: Arc<dyn Workload> = Arc::new(SyntheticWorkload::new(cfg, t));
        let protos: Vec<Arc<dyn Protocol>> = vec![
            Arc::new(LockingProtocol::bamboo_base()),
            Arc::new(LockingProtocol::bamboo()),
            Arc::new(LockingProtocol::wound_wait()),
        ];
        for p in &protos {
            g.bench_function(
                BenchmarkId::new(format!("second={second}"), p.name()),
                |b| b.iter_custom(|iters| time_contended_txns(&db, p, &wl, 4, iters)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
