//! Figure 6 bench: YCSB θ=0.9, read ratio 0.5 — all five protocols under
//! 4-thread contention (the repro binary sweeps the full thread axis).

use std::sync::Arc;
use std::time::Duration;

use bamboo_bench::harness::{all_protocols, time_contended_txns};
use bamboo_core::executor::Workload;
use bamboo_workload::ycsb::{self, YcsbConfig, YcsbWorkload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = YcsbConfig {
        rows: 1 << 14,
        ..YcsbConfig::default()
    };
    let (db, t) = ycsb::load(&cfg);
    let wl: Arc<dyn Workload> = Arc::new(YcsbWorkload::new(cfg, t));
    let mut g = c.benchmark_group("fig6_ycsb_threads");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for p in all_protocols() {
        g.bench_function(BenchmarkId::new("contended4", p.name()), |b| {
            b.iter_custom(|iters| time_contended_txns(&db, &p, &wl, 4, iters))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
