//! Figure 10 bench: TPC-C across warehouse counts — contention falls as
//! warehouses rise; BAMBOO vs WOUND_WAIT.

use std::sync::Arc;
use std::time::Duration;

use bamboo_bench::harness::time_contended_txns;
use bamboo_core::executor::Workload;
use bamboo_core::protocol::{LockingProtocol, Protocol};
use bamboo_workload::tpcc::{self, TpccConfig, TpccWorkload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_tpcc_wh");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for wh in [1u64, 4] {
        let cfg = TpccConfig {
            items: 1000,
            customers_per_district: 100,
            ..TpccConfig::default()
        }
        .with_warehouses(wh);
        let (db, tables, idx) = tpcc::load(&cfg);
        let wl: Arc<dyn Workload> = Arc::new(TpccWorkload::new(cfg, Arc::clone(&db), tables, idx));
        let protos: Vec<Arc<dyn Protocol>> = vec![
            Arc::new(LockingProtocol::bamboo()),
            Arc::new(LockingProtocol::wound_wait()),
        ];
        for p in &protos {
            g.bench_function(BenchmarkId::new(format!("wh={wh}"), p.name()), |b| {
                b.iter_custom(|iters| time_contended_txns(&db, p, &wl, 4, iters))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
